// Algorithm 1 reproduction: ranking budget constraints for each configuration
// by random-walk statistics (§3.3).
//
// For the PySyncObj profile, several candidate budget constraints are scored
// by branch coverage, event diversity and depth, then sorted with the
// built-in heuristic (coverage desc, diversity desc, depth asc). The bench
// then validates the heuristic: hunting PySyncObj#2 under the top-ranked
// constraint should not be slower than under the bottom-ranked one.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/mc/bfs.h"
#include "src/mc/ranking.h"
#include "src/raftspec/raft_spec.h"

using namespace sandtable;  // NOLINT(build/namespaces): bench brevity

namespace {

RaftBudget BudgetFrom(const NamedParams& c) {
  RaftBudget b;
  b.max_timeouts = static_cast<int>(c.Get("timeouts", 3));
  b.max_client_requests = static_cast<int>(c.Get("requests", 2));
  b.max_crashes = static_cast<int>(c.Get("crashes", 0));
  b.max_restarts = static_cast<int>(c.Get("crashes", 0));
  b.max_partitions = static_cast<int>(c.Get("partitions", 0));
  b.max_msg_buffer = static_cast<int>(c.Get("buffer", 4));
  b.max_term = static_cast<int>(c.Get("timeouts", 3));
  b.max_log_len = 3;
  return b;
}

Spec SpecFor(const NamedParams& config, const NamedParams& constraint, bool with_bug) {
  RaftProfile p = GetRaftProfile("pysyncobj", /*with_bugs=*/false);
  p.bugs.pso2_commit_regress = with_bug;
  p.config.num_servers = static_cast<int>(config.Get("nodes", 3));
  p.config.num_values = static_cast<int>(config.Get("values", 2));
  p.budget = BudgetFrom(constraint);
  return MakeRaftSpec(p);
}

}  // namespace

int main() {
  bench::JsonBenchWriter json("alg1_ranking");
  std::printf("Algorithm 1 — ranking budget constraints per configuration\n\n");

  // The paper's §5.1 hunt uses 2-3 nodes, two workload values, 3-6 timeouts,
  // 3-4 client requests, 1-4 failures and 4-10 message buffers.
  const std::vector<NamedParams> configs = {
      {"2 nodes, 2 values", {{"nodes", 2}, {"values", 2}}},
      {"3 nodes, 2 values", {{"nodes", 3}, {"values", 2}}},
  };
  const std::vector<NamedParams> constraints = {
      {"t3 r2 buf4", {{"timeouts", 3}, {"requests", 2}, {"buffer", 4}}},
      {"t4 r2 buf4", {{"timeouts", 4}, {"requests", 2}, {"buffer", 4}}},
      {"t3 r2 c1 buf4", {{"timeouts", 3}, {"requests", 2}, {"crashes", 1}, {"buffer", 4}}},
      {"t3 r2 p1 buf4",
       {{"timeouts", 3}, {"requests", 2}, {"partitions", 1}, {"buffer", 4}}},
      {"t6 r3 buf8", {{"timeouts", 6}, {"requests", 3}, {"buffer", 8}}},
      {"t2 r1 buf3", {{"timeouts", 2}, {"requests", 1}, {"buffer", 3}}},
  };

  SpecFactory factory = [](const NamedParams& config, const NamedParams& constraint) {
    return SpecFor(config, constraint, /*with_bug=*/false);
  };
  RankingOptions opts;
  opts.walks_per_pair = bench::SmokeMode() ? 4 : 48;
  opts.max_walk_depth = 64;
  const auto rankings = RankConstraints(factory, configs, constraints, opts);

  for (const ConfigRanking& ranking : rankings) {
    std::printf("configuration: %s\n", ranking.config_name.c_str());
    std::printf("  %-16s %10s %10s %8s\n", "constraint", "branches", "evtKinds", "depth");
    int rank = 0;
    for (const ConstraintScore& score : ranking.ranked) {
      std::printf("  %-16s %10.1f %10.1f %8.1f\n", score.constraint_name.c_str(),
                  score.avg_branches, score.avg_event_kinds, score.avg_depth);
      JsonObject row;
      row["config"] = Json(ranking.config_name);
      row["constraint"] = Json(score.constraint_name);
      row["rank"] = Json(static_cast<int64_t>(++rank));
      row["avg_branches"] = Json(score.avg_branches);
      row["avg_event_kinds"] = Json(score.avg_event_kinds);
      row["avg_depth"] = Json(score.avg_depth);
      json.Result(std::move(row));
    }
    std::printf("\n");
  }

  // Validate the heuristic on a real hunt: the top-ranked constraint finds
  // PySyncObj#2 at least as fast as the bottom-ranked one.
  const ConfigRanking& three_nodes = rankings.back();
  const NamedParams* top = nullptr;
  const NamedParams* bottom = nullptr;
  for (const NamedParams& c : constraints) {
    if (c.name == three_nodes.ranked.front().constraint_name) {
      top = &c;
    }
    if (c.name == three_nodes.ranked.back().constraint_name) {
      bottom = &c;
    }
  }
  std::printf("heuristic validation — hunting PySyncObj#2 under the extremes:\n");
  for (const auto& [label, constraint] : {std::pair<const char*, const NamedParams*>{
                                              "top-ranked", top},
                                          {"bottom-ranked", bottom}}) {
    const Spec spec = SpecFor(configs.back(), *constraint, /*with_bug=*/true);
    BfsOptions bopts;
    bopts.time_budget_s = bench::BudgetSeconds(120);
    if (bench::StateBudget() > 0) {
      bopts.max_distinct_states = bench::StateBudget();
    }
    const BfsResult r = BfsCheck(spec, bopts);
    JsonObject row;
    row["validation"] = Json(std::string(label));
    row["constraint"] = Json(constraint->name);
    row["result"] = r.ToJson(/*include_trace=*/false);
    json.Result(std::move(row));
    if (r.violation.has_value()) {
      std::printf("  %-14s (%s): found in %s at depth %llu (%s states)\n", label,
                  constraint->name.c_str(), bench::HumanTime(r.violation->seconds).c_str(),
                  static_cast<unsigned long long>(r.violation->depth),
                  bench::HumanCount(r.violation->states_explored).c_str());
    } else {
      std::printf("  %-14s (%s): NOT found in %s (%s states%s)\n", label,
                  constraint->name.c_str(), bench::HumanTime(r.seconds).c_str(),
                  bench::HumanCount(r.distinct_states).c_str(),
                  r.exhausted ? ", space exhausted" : "");
    }
  }
  return 0;
}
