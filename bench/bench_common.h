// Shared helpers for the reproduction benches: environment-tunable budgets
// and aligned table printing.
#ifndef SANDTABLE_BENCH_BENCH_COMMON_H_
#define SANDTABLE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sandtable {
namespace bench {

// Benches scale the paper's one-machine-day budgets down to seconds so the
// full suite completes on a laptop; override per run via the environment,
// e.g. SANDTABLE_BENCH_SECONDS=3600 for a paper-scale run.
inline double BudgetSeconds(double def) {
  if (const char* env = std::getenv("SANDTABLE_BENCH_SECONDS")) {
    return std::atof(env);
  }
  return def;
}

// Distinct-state cap for exploration benches (0 = unlimited). The bench-smoke
// suite sets this to a tiny value so every bench finishes in seconds.
inline unsigned long long StateBudget(unsigned long long def = 0) {
  if (const char* env = std::getenv("SANDTABLE_BENCH_STATES")) {
    return std::strtoull(env, nullptr, 10);
  }
  return def;
}

// bench-smoke mode: validate that the bench runs end-to-end and emits
// schema-valid JSON, nothing more. Benches must not escalate budgets (e.g.
// per-bug minimum hunt times) when this is set.
inline bool SmokeMode() {
  const char* env = std::getenv("SANDTABLE_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline std::string HumanCount(unsigned long long n) {
  char buf[32];
  if (n >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fG", static_cast<double>(n) / 1e9);
  } else if (n >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", n);
  }
  return buf;
}

inline std::string HumanTime(double seconds) {
  char buf[32];
  if (seconds >= 3600) {
    std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600);
  } else if (seconds >= 60) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60);
  } else if (seconds >= 1) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1000);
  }
  return buf;
}

inline void Rule(int width = 100) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

}  // namespace bench
}  // namespace sandtable

#endif  // SANDTABLE_BENCH_BENCH_COMMON_H_
