// Shared helpers for the reproduction benches: environment-tunable budgets
// and aligned table printing.
#ifndef SANDTABLE_BENCH_BENCH_COMMON_H_
#define SANDTABLE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sandtable {
namespace bench {

// Benches scale the paper's one-machine-day budgets down to seconds so the
// full suite completes on a laptop; override per run via the environment,
// e.g. SANDTABLE_BENCH_SECONDS=3600 for a paper-scale run.
inline double BudgetSeconds(double def) {
  if (const char* env = std::getenv("SANDTABLE_BENCH_SECONDS")) {
    return std::atof(env);
  }
  return def;
}

inline std::string HumanCount(unsigned long long n) {
  char buf[32];
  if (n >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fG", static_cast<double>(n) / 1e9);
  } else if (n >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", n);
  }
  return buf;
}

inline std::string HumanTime(double seconds) {
  char buf[32];
  if (seconds >= 3600) {
    std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600);
  } else if (seconds >= 60) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60);
  } else if (seconds >= 1) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1000);
  }
  return buf;
}

inline void Rule(int width = 100) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

}  // namespace bench
}  // namespace sandtable

#endif  // SANDTABLE_BENCH_BENCH_COMMON_H_
