// Figure 6 reproduction: PySyncObj#4 — the timing diagram of the
// non-monotonic match index.
//
// Model check the seeded bug, replay the counterexample deterministically at
// the implementation level, and print the space-time narrative of Figure 6:
// the leader's optimistic next-index advance, the delayed rejection, the
// follower's wrong Inext hint on an entry-carrying AppendEntries, and the
// match-index regression.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/conformance/bug_catalog.h"
#include "src/conformance/raft_harness.h"
#include "src/mc/bfs.h"
#include "src/raftspec/raft_common.h"

using namespace sandtable;               // NOLINT(build/namespaces): bench brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

namespace rs = sandtable::raftspec;

namespace {

// Render one delivery step in Figure 6's vocabulary.
void PrintEvent(size_t i, const TraceStep& step) {
  const std::string& a = step.label.action;
  const Json& p = step.label.params;
  auto node = [](const Json& j) { return "n" + std::to_string(j.as_int() + 1); };
  if (a == "HandleAppendEntriesRequest") {
    const Json& m = p["msg"];
    std::printf("  %2zu: %s receives AE from %s   (prev=%lld, entries=%zu, commit=%lld)\n",
                i, node(p["dst"]).c_str(), node(p["src"]).c_str(),
                static_cast<long long>(m["prevLogIndex"].as_int()), m["entries"].size(),
                static_cast<long long>(m["commit"].as_int()));
  } else if (a == "HandleAppendEntriesResponse") {
    const Json& m = p["msg"];
    std::printf("  %2zu: %s receives AER from %s  (flag=%s, Inext=%lld)\n", i,
                node(p["dst"]).c_str(), node(p["src"]).c_str(),
                m["success"].as_bool() ? "T" : "F",
                static_cast<long long>(m["hint"].as_int()));
  } else if (a == "Timeout" || a == "HeartbeatTimeout") {
    std::printf("  %2zu: %s at %s\n", i, a.c_str(), node(p["node"]).c_str());
  } else if (a == "ClientRequest") {
    std::printf("  %2zu: client request at %s (val=%lld)\n", i, node(p["node"]).c_str(),
                static_cast<long long>(p["val"].as_int()));
  } else {
    std::printf("  %2zu: %s\n", i, step.label.ToString().c_str());
  }
}

}  // namespace

int main() {
  bench::JsonBenchWriter json("fig6_pysyncobj4");
  std::printf("Figure 6 — PySyncObj#4: non-monotonic match index\n\n");

  const BugInfo& bug = FindBug("PySyncObj#4");
  RaftHarness h = MakeRaftHarness("pysyncobj", /*with_bugs=*/false);
  h.profile = MakeBugProfile(bug);
  h.impl_bugs = systems::RaftImplBugs{};

  const Spec spec = MakeHarnessSpec(h);
  BfsOptions opts;
  opts.time_budget_s = bench::BudgetSeconds(300);
  if (bench::StateBudget() > 0) {
    opts.max_distinct_states = bench::StateBudget();
  }
  const BfsResult r = BfsCheck(spec, opts);
  {
    JsonObject row;
    row["bug"] = Json(std::string("PySyncObj#4"));
    row["result"] = r.ToJson(/*include_trace=*/false);
    json.Result(std::move(row));
  }
  if (!r.violation.has_value()) {
    std::printf("bug not found within the budget\n");
    return 1;
  }
  std::printf("model checking: violated %s at depth %llu (%llu states, %s)\n\n",
              r.violation->invariant.c_str(),
              static_cast<unsigned long long>(r.violation->depth),
              static_cast<unsigned long long>(r.violation->states_explored),
              bench::HumanTime(r.violation->seconds).c_str());

  std::printf("event timeline (cf. Figure 6):\n");
  const auto& trace = r.violation->trace;
  for (size_t i = 1; i < trace.size(); ++i) {
    PrintEvent(i, trace[i]);
  }

  // Show the match-index regression across the final edge.
  const State& prev = trace[trace.size() - 2].state;
  const State& last = trace.back().state;
  std::printf("\nmatch-index regression on the final event:\n");
  for (int l = 0; l < 3; ++l) {
    const Value leader = rs::NodeV(l);
    if (rs::Role(last, leader).str_v() != rs::kRoleLeader) {
      continue;
    }
    const Value& before = prev.field(rs::kVarMatchIndex).Apply(leader);
    const Value& after = last.field(rs::kVarMatchIndex).Apply(leader);
    for (const auto& [peer, m] : before.fun_pairs()) {
      if (after.FunHas(peer) && after.Apply(peer).int_v() < m.int_v()) {
        std::printf("  leader n%d: matchIndex[n%d] %lld -> %lld  (NOT monotonic)\n", l + 1,
                    peer.model_index() + 1, static_cast<long long>(m.int_v()),
                    static_cast<long long>(after.Apply(peer).int_v()));
      }
    }
  }

  std::printf("\nconfirming at the implementation level by deterministic replay...\n");
  const ConfirmationResult confirm =
      ConfirmBug(MakeRaftEngineFactory(h), MakeRaftObserver(h), r.violation->trace);
  std::printf("replay: %s (%zu events)\n",
              confirm.confirmed ? "CONFIRMED — implementation state matched the "
                                  "specification after every event"
                                : "diverged",
              confirm.replay.steps_executed);
  std::printf("\npaper: found in 35s at depth 25 after 1512679 states, consequence\n");
  std::printf("\"match index is not monotonic\" -> risk of data inconsistency/loss\n");
  return confirm.confirmed ? 0 : 1;
}
