// Figure 7 reproduction: WRaft#1 + WRaft#2 — data inconsistency from log
// compaction.
//
// The leader should ship a snapshot for a compacted range but sends an empty
// AppendEntries instead (WRaft#2); the follower skips the first-entry
// consistency check and commits its stale conflicting entry (WRaft#1). The
// result is inconsistent committed logs across the cluster.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/conformance/bug_catalog.h"
#include "src/conformance/raft_harness.h"
#include "src/mc/bfs.h"
#include "src/raftspec/raft_common.h"

using namespace sandtable;               // NOLINT(build/namespaces): bench brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

namespace rs = sandtable::raftspec;

int main() {
  bench::JsonBenchWriter json("fig7_wraft12");
  std::printf("Figure 7 — WRaft#1+#2: data inconsistency via compaction\n\n");

  const BugInfo& bug = FindBug("WRaft#1");
  RaftHarness h = MakeRaftHarness("wraft", /*with_bugs=*/false);
  h.profile = MakeBugProfile(bug);
  h.impl_bugs = systems::RaftImplBugs{};

  const Spec spec = MakeHarnessSpec(h);
  BfsOptions opts;
  opts.time_budget_s = bench::BudgetSeconds(600);
  if (bench::StateBudget() > 0) {
    opts.max_distinct_states = bench::StateBudget();
  }
  const BfsResult r = BfsCheck(spec, opts);
  {
    JsonObject row;
    row["bug"] = Json(std::string("WRaft#1"));
    row["result"] = r.ToJson(/*include_trace=*/false);
    json.Result(std::move(row));
  }
  if (!r.violation.has_value()) {
    std::printf("bug not found within the budget\n");
    return 1;
  }
  std::printf("model checking: violated %s at depth %llu (%llu states, %s)\n\n",
              r.violation->invariant.c_str(),
              static_cast<unsigned long long>(r.violation->depth),
              static_cast<unsigned long long>(r.violation->states_explored),
              bench::HumanTime(r.violation->seconds).c_str());

  std::printf("event timeline (cf. Figure 7):\n");
  const auto& trace = r.violation->trace;
  for (size_t i = 1; i < trace.size(); ++i) {
    const std::string& a = trace[i].label.action;
    if (a == "TakeSnapshot") {
      std::printf("  %2zu: n%lld compacts its committed log into a snapshot\n", i,
                  trace[i].label.params["node"].as_int() + 1);
    } else {
      std::printf("  %2zu: %s\n", i, trace[i].label.ToString().c_str());
    }
  }

  // Show the committed-log divergence in the final state.
  const State& last = trace.back().state;
  std::printf("\ncommitted logs in the violating state:\n");
  for (int i = 0; i < 3; ++i) {
    const Value node = rs::NodeV(i);
    std::printf("  n%d: commit=%lld snapshot=(%lld,t%lld) log=%s\n", i + 1,
                static_cast<long long>(rs::CommitIndex(last, node)),
                static_cast<long long>(rs::SnapshotIndex(last, node)),
                static_cast<long long>(rs::SnapshotTerm(last, node)),
                rs::Log(last, node).ToString().c_str());
  }

  std::printf("\nconfirming at the implementation level by deterministic replay...\n");
  const ConfirmationResult confirm =
      ConfirmBug(MakeRaftEngineFactory(h), MakeRaftObserver(h), r.violation->trace);
  std::printf("replay: %s (%zu events)\n",
              confirm.confirmed ? "CONFIRMED" : "diverged", confirm.replay.steps_executed);
  std::printf("\npaper: WRaft#1 found in 9min at depth 22 (6.0M states); WRaft#2 in 22min\n");
  std::printf("at depth 20 (21.0M states); consequence: inconsistent committed logs\n");
  return confirm.confirmed ? 0 : 1;
}
