// Machine-readable bench output: every reproduction bench streams its result
// rows through a JsonBenchWriter so trajectories (BENCH_<name>.json) can be
// tracked across commits and validated by the bench-smoke CTest label.
//
// File format (JSONL):
//   {"type":"meta","bench":"table3_exploration","schema_version":1,...}
//   {"type":"result","bench":"table3_exploration",...}   (zero or more)
//   {"type":"summary","bench":"table3_exploration","results":N}
//
// The meta record is written on construction and the summary on destruction,
// so a bench that crashes mid-run leaves a file without a trailing summary —
// which the validator (bench_validate_json) treats as a failure.
#ifndef SANDTABLE_BENCH_BENCH_JSON_H_
#define SANDTABLE_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "src/util/json.h"

namespace sandtable {
namespace bench {

class JsonBenchWriter {
 public:
  // Writes to $SANDTABLE_BENCH_JSON if set, else BENCH_<name>.json in the
  // current directory.
  explicit JsonBenchWriter(const std::string& name) : name_(name) {
    std::string path;
    if (const char* env = std::getenv("SANDTABLE_BENCH_JSON")) {
      path = env;
    } else {
      path = "BENCH_" + name + ".json";
    }
    out_.open(path);
    if (!out_) {
      std::fprintf(stderr, "bench: cannot open %s, JSON output disabled\n", path.c_str());
      return;
    }
    JsonObject meta;
    meta["type"] = Json(std::string("meta"));
    meta["bench"] = Json(name_);
    meta["schema_version"] = Json(static_cast<int64_t>(1));
    Write(Json(std::move(meta)));
  }

  JsonBenchWriter(const JsonBenchWriter&) = delete;
  JsonBenchWriter& operator=(const JsonBenchWriter&) = delete;

  ~JsonBenchWriter() {
    if (!out_.is_open()) {
      return;
    }
    JsonObject summary;
    summary["type"] = Json(std::string("summary"));
    summary["bench"] = Json(name_);
    summary["results"] = Json(results_);
    Write(Json(std::move(summary)));
  }

  // Append one result row; `fields` are the bench-specific columns.
  void Result(JsonObject fields) {
    ++results_;
    if (!out_.is_open()) {
      return;
    }
    fields["type"] = Json(std::string("result"));
    fields["bench"] = Json(name_);
    Write(Json(std::move(fields)));
  }

  uint64_t results() const { return results_; }

 private:
  void Write(const Json& record) {
    out_ << record.Dump() << '\n';
    out_.flush();  // keep the file valid even if a later row crashes
  }

  std::string name_;
  std::ofstream out_;
  uint64_t results_ = 0;
};

}  // namespace bench
}  // namespace sandtable

#endif  // SANDTABLE_BENCH_BENCH_JSON_H_
