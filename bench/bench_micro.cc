// Micro-benchmarks (google-benchmark) for the building blocks whose cost
// determines the exploration rates of Tables 2-4: value operations,
// fingerprinting (with and without symmetry), successor enumeration, BFS
// steps, stateless-replay redundancy (§2.1 ablation), proxy throughput and
// trace-command conversion.
#include <benchmark/benchmark.h>

#include "src/conformance/raft_harness.h"
#include "src/mc/bfs.h"
#include "src/mc/expand.h"
#include "src/mc/random_walk.h"
#include "src/mc/stateless.h"
#include "src/raftspec/raft_common.h"
#include "src/trace/replay.h"

using namespace sandtable;  // NOLINT(build/namespaces): bench brevity

namespace {

const Spec& PysyncSpec() {
  static const Spec spec = [] {
    RaftProfile p = GetRaftProfile("pysyncobj", false);
    p.budget.max_timeouts = 3;
    p.budget.max_client_requests = 2;
    p.budget.max_crashes = 0;
    p.budget.max_restarts = 0;
    p.budget.max_partitions = 0;
    p.budget.max_term = 2;
    return MakeRaftSpec(p);
  }();
  return spec;
}

// A mid-exploration state with traffic in flight.
const State& MidState() {
  static const State state = [] {
    Rng rng(5);
    WalkOptions opts;
    opts.max_depth = 12;
    opts.collect_trace = true;
    const WalkResult w = RandomWalk(PysyncSpec(), opts, rng);
    return w.trace.back().state;
  }();
  return state;
}

void BM_ValueRecordUpdate(benchmark::State& state) {
  const State& s = MidState();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.WithField(raftspec::kVarCounters,
                    s.field(raftspec::kVarCounters)
                        .WithField("timeouts", Value::Int(9))));
  }
}
BENCHMARK(BM_ValueRecordUpdate);

void BM_ValueHashMemoized(benchmark::State& state) {
  const State& s = MidState();
  s.hash();  // warm the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.hash());
  }
}
BENCHMARK(BM_ValueHashMemoized);

void BM_ValueHashCold(benchmark::State& state) {
  const State& s = MidState();
  for (auto _ : state) {
    // A fresh root defeats the memo at the top level only; the children stay
    // cached, which is the common case during exploration.
    State copy = s.WithField("probe", Value::Int(state.iterations() & 1));
    benchmark::DoNotOptimize(copy.hash());
  }
}
BENCHMARK(BM_ValueHashCold);

void BM_FingerprintAsymmetric(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  const State& s = MidState();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fingerprint(spec, s, false));
  }
}
BENCHMARK(BM_FingerprintAsymmetric);

void BM_FingerprintSymmetric(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  const State& s = MidState();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fingerprint(spec, s, true));
  }
}
BENCHMARK(BM_FingerprintSymmetric);

void BM_ExpandAllSuccessors(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  const State& s = MidState();
  uint64_t succs = 0;
  for (auto _ : state) {
    auto v = ExpandAll(spec, s, nullptr);
    succs += v.size();
    benchmark::DoNotOptimize(v);
  }
  state.counters["successors"] =
      benchmark::Counter(static_cast<double>(succs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExpandAllSuccessors);

void BM_CheckInvariants(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  const State& s = MidState();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckInvariants(spec, s));
  }
}
BENCHMARK(BM_CheckInvariants);

void BM_BfsThroughput(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  uint64_t states_total = 0;
  for (auto _ : state) {
    BfsOptions opts;
    opts.max_distinct_states = 20000;
    const BfsResult r = BfsCheck(spec, opts);
    states_total += r.distinct_states;
    benchmark::DoNotOptimize(r.distinct_states);
  }
  state.counters["states/s"] = benchmark::Counter(static_cast<double>(states_total),
                                                  benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BfsThroughput)->Unit(benchmark::kMillisecond);

// Branch-hit recording, before/after the analytics refactor. "Before" is the
// pre-analytics worker path (still taken when no profile is attached): every
// ctx.Branch() hit concatenates "Action/branch" and inserts into the worker's
// std::set<std::string>. "After" interns the hit into a per-action (id, hits)
// slot — allocation-free on repeats — and names reach the coordinator once
// per level via DrainNewBranches.
void BM_BranchHitStringSet(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  CoverageStats cov;
  static const char* kIds[] = {"grant", "reject", "step_down"};
  size_t i = 0;
  for (auto _ : state) {
    const Action& a = spec.actions[i % spec.actions.size()];
    cov.branches.insert(a.name + "/" + kIds[i % 3]);
    ++i;
    benchmark::DoNotOptimize(cov.branches.size());
  }
}
BENCHMARK(BM_BranchHitStringSet);

void BM_BranchHitInterned(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  obs::ExplorationProfile profile;
  InitProfileFromSpec(&profile, spec);
  static const char* kIds[] = {"grant", "reject", "step_down"};
  size_t i = 0;
  for (auto _ : state) {
    profile.RecordBranch(static_cast<uint32_t>(i % spec.actions.size()),
                         kIds[i % 3]);
    ++i;
  }
  benchmark::DoNotOptimize(profile.num_actions());
}
BENCHMARK(BM_BranchHitInterned);

// The level-barrier fold itself: coordinator absorbing four worker slices.
// "Before" unions each worker's branch string-set; "after" adds the interned
// count arrays, zeroes the slices, and drains first-sighting names only.
void BM_BarrierMergeCoverage(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  std::vector<CoverageStats> workers(4);
  static const char* kIds[] = {"grant", "reject", "step_down"};
  for (CoverageStats& w : workers) {
    for (const Action& a : spec.actions) {
      for (const char* id : kIds) {
        w.branches.insert(a.name + "/" + id);
      }
      w.RecordEvent(a.kind);
    }
  }
  CoverageStats result;
  for (auto _ : state) {
    for (const CoverageStats& w : workers) {
      result.Merge(w);
    }
    benchmark::DoNotOptimize(result.transitions);
  }
}
BENCHMARK(BM_BarrierMergeCoverage);

void BM_BarrierMergeProfile(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  std::vector<obs::ExplorationProfile> workers(4);
  static const char* kIds[] = {"grant", "reject", "step_down"};
  for (obs::ExplorationProfile& w : workers) {
    InitProfileFromSpec(&w, spec);
    for (uint32_t a = 0; a < static_cast<uint32_t>(spec.actions.size()); ++a) {
      for (const char* id : kIds) {
        w.RecordBranch(a, id);
      }
      w.RecordExpand(a, /*emitted=*/2, /*ns=*/100);
    }
  }
  obs::ExplorationProfile result;
  InitProfileFromSpec(&result, spec);
  std::vector<std::string> names;
  for (auto _ : state) {
    for (obs::ExplorationProfile& w : workers) {
      result.MergeCounts(w);
      w.ResetCounts();
    }
    names.clear();
    result.DrainNewBranches(&names);
    benchmark::DoNotOptimize(result.TotalFired());
  }
}
BENCHMARK(BM_BarrierMergeProfile);

void BM_RandomWalkTrace(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  Rng rng(7);
  WalkOptions opts;
  opts.max_depth = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandomWalk(spec, opts, rng).depth);
  }
}
BENCHMARK(BM_RandomWalkTrace)->Unit(benchmark::kMicrosecond);

// §2.1 ablation: stateless depth-bounded replay re-executes shared prefixes;
// the counter reports the redundancy factor vs distinct states.
void BM_StatelessRedundancy(benchmark::State& state) {
  const Spec& spec = PysyncSpec();
  double redundancy = 0;
  for (auto _ : state) {
    StatelessOptions opts;
    opts.max_depth = 6;
    opts.max_transitions = 200000;
    const StatelessResult r = StatelessEnumerate(spec, opts);
    redundancy = r.RedundancyFactor();
    benchmark::DoNotOptimize(r.transitions_executed);
  }
  state.counters["redundancy_x"] = redundancy;
}
BENCHMARK(BM_StatelessRedundancy)->Unit(benchmark::kMillisecond);

void BM_ProxySendDeliver(benchmark::State& state) {
  engine::Proxy proxy(3, /*udp=*/false);
  const std::string bytes = R"({"mtype":"AE","src":0,"dst":1,"term":3})";
  for (auto _ : state) {
    proxy.Send(0, 1, bytes);
    benchmark::DoNotOptimize(proxy.Deliver(0, 1, ""));
  }
}
BENCHMARK(BM_ProxySendDeliver);

void BM_TraceCommandConversion(benchmark::State& state) {
  Rng rng(11);
  WalkOptions opts;
  opts.max_depth = 30;
  opts.collect_trace = true;
  const WalkResult w = RandomWalk(PysyncSpec(), opts, rng);
  size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::CommandFromStep(w.trace[i]));
    i = i + 1 < w.trace.size() ? i + 1 : 1;
  }
}
BENCHMARK(BM_TraceCommandConversion);

// Implementation-level event execution rate: a full replayed trace per
// iteration (cluster construction included), the denominator of Table 4's raw
// column.
void BM_ImplReplayTrace(benchmark::State& state) {
  using namespace sandtable::conformance;  // NOLINT(build/namespaces)
  RaftHarness h = MakeRaftHarness("pysyncobj", false);
  h.impl_bugs = systems::RaftImplBugs{};
  const EngineFactory factory = MakeRaftEngineFactory(h);
  Rng rng(13);
  WalkOptions opts;
  opts.max_depth = 30;
  opts.collect_trace = true;
  const WalkResult w = RandomWalk(PysyncSpec(), opts, rng);
  for (auto _ : state) {
    auto eng = factory();
    (void)eng->StartAll();
    for (size_t s = 1; s < w.trace.size(); ++s) {
      auto cmd = trace::CommandFromStep(w.trace[s]);
      if (!cmd.ok()) {
        break;
      }
      Json resp;
      if (!trace::ExecuteCommand(*eng, cmd.value(), &resp)) {
        break;
      }
    }
    benchmark::DoNotOptimize(eng->stats().commands_executed);
  }
}
BENCHMARK(BM_ImplReplayTrace)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
