// Counterexample minimization bench: the two headline properties of
// src/minimize/ on Table-2 bugs.
//
//  1. Raw random-walk traces shrink a lot. Hunting PySyncObj#2 in simulate
//     mode (per-walk seeded RNG, base seed 20000 — the documented demo) finds
//     a violating walk whose raw trace the minimizer shrinks by >= 40%.
//  2. BFS counterexamples are already depth-minimal, so the minimizer must
//     return them unchanged (a fixed point) — measured on DaosRaft#1, the
//     fastest BFS hunt in the catalog.
#include <chrono>
#include <cstdio>
#include <optional>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/conformance/bug_catalog.h"
#include "src/mc/bfs.h"
#include "src/mc/random_walk.h"
#include "src/minimize/minimize.h"
#include "src/util/rng.h"

using namespace sandtable;               // NOLINT(build/namespaces): bench brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

namespace {

constexpr uint64_t kWalkSeedBase = 20000;  // reproduces the documented 48% demo
constexpr int kMaxWalks = 4000;
constexpr double kShrinkTarget = 0.40;

JsonObject MinimizeRow(const char* demo, const char* bug_id,
                       const minimize::MinimizeResult& m) {
  JsonObject row;
  row["demo"] = Json(std::string(demo));
  row["bug"] = Json(std::string(bug_id));
  row["minimize"] = m.ToJson();
  return row;
}

}  // namespace

int main() {
  bench::JsonBenchWriter json("minimize");
  std::printf("Counterexample minimization (src/minimize/)\n\n");
  const double budget_s = bench::BudgetSeconds(120);
  bool ok = true;

  // --- 1. Walk-trace shrink demo -------------------------------------------
  {
    const BugInfo& bug = FindBug("PySyncObj#2");
    const Spec spec = MakeBugSpec(bug);
    WalkOptions wopts;
    wopts.max_depth = 60;  // sandtable_cli simulate default
    wopts.collect_trace = true;
    wopts.check_invariants = true;
    wopts.check_transition_invariants = true;
    std::printf("hunting %s by random walk (seed base %llu)...\n", bug.id.c_str(),
                static_cast<unsigned long long>(kWalkSeedBase));
    std::optional<Violation> violation;
    int walks = 0;
    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
    };
    for (int i = 0; i < kMaxWalks && elapsed() < budget_s; ++i) {
      Rng rng(kWalkSeedBase + static_cast<uint64_t>(i));
      const WalkResult w = RandomWalk(spec, wopts, rng);
      walks = i + 1;
      if (w.violation.has_value()) {
        violation = w.violation;
        break;
      }
    }
    if (!violation.has_value()) {
      std::printf("no violating walk within the budget (%d walks, %s)\n\n", walks,
                  bench::HumanTime(elapsed()).c_str());
      JsonObject row;
      row["demo"] = Json(std::string("walk_shrink"));
      row["bug"] = Json(bug.id);
      row["found"] = Json(false);
      row["walks"] = Json(static_cast<int64_t>(walks));
      json.Result(std::move(row));
      ok = false;
    } else {
      std::printf("walk %d violated %s after %zu events (%s)\n", walks,
                  violation->invariant.c_str(), violation->trace.size() - 1,
                  bench::HumanTime(elapsed()).c_str());
      const minimize::MinimizeResult m = minimize::MinimizeCounterexample(spec, *violation);
      std::printf("minimized %llu -> %llu events: %.0f%% shrink "
                  "(%llu replays, %s)  [target >= %.0f%%]\n\n",
                  static_cast<unsigned long long>(m.events_before),
                  static_cast<unsigned long long>(m.events_after),
                  m.ShrinkRatio() * 100, static_cast<unsigned long long>(m.replays),
                  bench::HumanTime(m.seconds).c_str(), kShrinkTarget * 100);
      JsonObject row = MinimizeRow("walk_shrink", bug.id.c_str(), m);
      row["found"] = Json(true);
      row["walks"] = Json(static_cast<int64_t>(walks));
      json.Result(std::move(row));
      ok = ok && m.input_reproduced && m.ShrinkRatio() >= kShrinkTarget;
    }
  }

  // --- 2. BFS traces are a fixed point -------------------------------------
  {
    const BugInfo& bug = FindBug("DaosRaft#1");
    const Spec spec = MakeBugSpec(bug);
    BfsOptions opts;
    opts.time_budget_s = budget_s;
    if (bench::StateBudget() > 0) {
      opts.max_distinct_states = bench::StateBudget();
    }
    std::printf("hunting %s by BFS...\n", bug.id.c_str());
    const BfsResult r = BfsCheck(spec, opts);
    if (!r.violation.has_value()) {
      std::printf("bug not found within the budget\n");
      JsonObject row;
      row["demo"] = Json(std::string("bfs_fixed_point"));
      row["bug"] = Json(bug.id);
      row["found"] = Json(false);
      json.Result(std::move(row));
      ok = false;
    } else {
      const minimize::MinimizeResult m =
          minimize::MinimizeCounterexample(spec, *r.violation);
      std::printf("BFS depth %llu; minimizer removed %llu events (%llu replays) "
                  "[expected 0 — BFS is depth-minimal]\n",
                  static_cast<unsigned long long>(r.violation->depth),
                  static_cast<unsigned long long>(m.events_before - m.events_after),
                  static_cast<unsigned long long>(m.replays));
      JsonObject row = MinimizeRow("bfs_fixed_point", bug.id.c_str(), m);
      row["found"] = Json(true);
      json.Result(std::move(row));
      ok = ok && m.input_reproduced && m.events_after == m.events_before;
    }
  }

  if (bench::SmokeMode()) {
    return 0;  // smoke validates schema only; tiny budgets may miss the bugs
  }
  return ok ? 0 : 1;
}
