// Out-of-core exploration bench: the same capped BFS run three times — with
// the engines' built-in in-memory structures, with a deliberately tiny
// memory budget that forces the spilling fingerprint store and the frontier
// spool onto disk, and with the hash-compacted (fingerprint-only) store.
// Reports throughput (states/sec), spill volume and peak RSS, plus the
// compacted run's collision-probability bound, and fails loudly if either
// alternative store changes the distinct-state count: memory strategy must
// never change what gets explored (up to the reported collision bound for
// the compacted row).
//
// Scale with SANDTABLE_BENCH_SECONDS / SANDTABLE_BENCH_STATES as usual.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/mc/bfs.h"
#include "src/obs/report.h"
#include "src/raftspec/raft_spec.h"
#include "src/store/compact_store.h"
#include "src/store/ooc.h"

using namespace sandtable;  // NOLINT(build/namespaces): bench brevity

namespace {

Spec SmallRaftSpec() {
  RaftProfile p = GetRaftProfile("pysyncobj", /*with_bugs=*/false);
  p.budget.max_timeouts = 2;
  p.budget.max_client_requests = 1;
  p.budget.max_crashes = 0;
  p.budget.max_restarts = 0;
  p.budget.max_partitions = 0;
  p.budget.max_drops = 0;
  p.budget.max_dups = 0;
  p.budget.max_term = 2;
  p.budget.max_msg_buffer = 3;
  p.budget.max_log_len = 1;
  p.budget.max_snapshots = 0;
  return MakeRaftSpec(p);
}

}  // namespace

int main() {
  bench::JsonBenchWriter json("ooc");
  const double budget_s = bench::BudgetSeconds(20);
  const unsigned long long state_cap = bench::StateBudget(50000);
  const Spec spec = SmallRaftSpec();

  std::printf("out-of-core exploration: in-memory vs spilling store (pysyncobj)\n");
  std::printf("budget %s, cap %llu states\n\n", bench::HumanTime(budget_s).c_str(),
              state_cap);

  auto run = [&](store::OocConfig ooc) {
    BfsOptions o;
    o.time_budget_s = budget_s;
    o.max_distinct_states = state_cap;
    o.ooc = ooc;
    return BfsCheck(spec, o);
  };

  // Pass 1: pure in-memory baseline.
  const BfsResult in_mem = run({});
  const uint64_t rss_after_in_mem = obs::PeakRssKb();
  std::printf("%-12s %10s states  depth %2llu  %8s st/s  peak RSS %llu KiB\n",
              "in-memory:", bench::HumanCount(in_mem.distinct_states).c_str(),
              static_cast<unsigned long long>(in_mem.depth_reached),
              bench::HumanCount(static_cast<unsigned long long>(
                                    in_mem.distinct_states / std::max(in_mem.seconds, 1e-9)))
                  .c_str(),
              static_cast<unsigned long long>(rss_after_in_mem));

  // Pass 2: out-of-core with a budget far below the visited-set size, so the
  // bulk of the fingerprints and frontier live on disk.
  namespace fs = std::filesystem;
  const fs::path spill = fs::temp_directory_path() /
                         ("sandtable-bench-ooc-" + std::to_string(::getpid()));
  fs::remove_all(spill);
  BfsResult ooc_result;
  uint64_t spilled_fps = 0;
  uint64_t runs = 0;
  uint64_t spilled_frontier = 0;
  {
    obs::MetricsRegistry metrics;
    store::StoreConfig scfg;
    scfg.spill_dir = (spill / "fps").string();
    scfg.max_resident = 2048;  // far below the expected visited-set size
    scfg.metrics = &metrics;
    store::SpillingStateStore sstore(scfg);
    store::SpoolConfig spool;
    spool.dir = (spill / "frontier").string();
    spool.max_resident = 128;
    spool.chunk_states = 64;
    spool.metrics = &metrics;
    store::OocConfig ooc;
    ooc.state_store = &sstore;
    ooc.frontier_spool = &spool;
    ooc_result = run(ooc);
    spilled_fps = sstore.SpilledSize();
    runs = sstore.RunCount();
    spilled_frontier = metrics.GetCounter("frontier.spilled_states").Value();
  }
  fs::remove_all(spill);
  const uint64_t rss_after_ooc = obs::PeakRssKb();
  std::printf("%-12s %10s states  depth %2llu  %8s st/s  peak RSS %llu KiB\n",
              "out-of-core:", bench::HumanCount(ooc_result.distinct_states).c_str(),
              static_cast<unsigned long long>(ooc_result.depth_reached),
              bench::HumanCount(
                  static_cast<unsigned long long>(ooc_result.distinct_states /
                                                  std::max(ooc_result.seconds, 1e-9)))
                  .c_str(),
              static_cast<unsigned long long>(rss_after_ooc));
  std::printf("%-12s %10s fingerprints across %llu runs (+%s frontier states)\n\n",
              "spilled:", bench::HumanCount(spilled_fps).c_str(),
              static_cast<unsigned long long>(runs),
              bench::HumanCount(spilled_frontier).c_str());

  // Pass 3: hash-compacted visited set — 64-bit fingerprints only, no
  // parents. Memory cost collapses to ~8 bytes per distinct state; the trade
  // is the (reported) probability that a fingerprint collision hid a state.
  BfsResult compact_result;
  uint64_t compact_states = 0;
  {
    store::CompactStateStore cstore;
    store::OocConfig ooc;
    ooc.state_store = &cstore;
    compact_result = run(ooc);
    compact_states = cstore.Size();
  }
  std::printf("%-12s %10s states  depth %2llu  %8s st/s  P(missed) <= %.3g\n",
              "compacted:", bench::HumanCount(compact_result.distinct_states).c_str(),
              static_cast<unsigned long long>(compact_result.depth_reached),
              bench::HumanCount(
                  static_cast<unsigned long long>(compact_result.distinct_states /
                                                  std::max(compact_result.seconds, 1e-9)))
                  .c_str(),
              compact_result.collision_probability);

  const bool states_match = in_mem.distinct_states == ooc_result.distinct_states &&
                            in_mem.depth_reached == ooc_result.depth_reached;
  // The compacted run can fall short only by fingerprint collisions; at bench
  // scale the bound is astronomically small, so exact equality is demanded.
  const bool compact_match =
      in_mem.distinct_states == compact_result.distinct_states &&
      in_mem.depth_reached == compact_result.depth_reached &&
      compact_states == compact_result.distinct_states;
  std::printf("equivalence: %s (%llu vs %llu spilled vs %llu compacted states)\n",
              states_match && compact_match ? "OK" : "MISMATCH",
              static_cast<unsigned long long>(in_mem.distinct_states),
              static_cast<unsigned long long>(ooc_result.distinct_states),
              static_cast<unsigned long long>(compact_result.distinct_states));

  JsonObject row;
  row["in_memory"] = in_mem.ToJson(/*include_trace=*/false);
  row["out_of_core"] = ooc_result.ToJson(/*include_trace=*/false);
  row["hash_compact"] = compact_result.ToJson(/*include_trace=*/false);
  row["in_memory_states_per_sec"] =
      Json(in_mem.distinct_states / std::max(in_mem.seconds, 1e-9));
  row["out_of_core_states_per_sec"] =
      Json(ooc_result.distinct_states / std::max(ooc_result.seconds, 1e-9));
  row["hash_compact_states_per_sec"] =
      Json(compact_result.distinct_states / std::max(compact_result.seconds, 1e-9));
  row["spilled_fingerprints"] = Json(spilled_fps);
  row["spill_runs"] = Json(runs);
  row["spilled_frontier_states"] = Json(spilled_frontier);
  row["peak_rss_kb"] = Json(rss_after_ooc);
  row["collision_probability"] = Json(compact_result.collision_probability);
  row["states_match"] = Json(states_match && compact_match);
  json.Result(std::move(row));

  return states_match && compact_match ? 0 : 1;
}
