// Parallel exploration scaling: multi-worker BFS against serial BFS on a
// large Raft configuration.
//
// The paper's Table 3 exploration numbers come from a 20-hyperthread server;
// this bench measures how the src/par/ engine closes that gap. Each row
// explores the same spec under the same state/time caps and reports the
// distinct-state rate plus the speedup over serial BFS.
//
// Defaults target a >=1M-distinct-state run capped at SANDTABLE_BENCH_SECONDS
// (default 60s) per row so the bench finishes on a laptop; on a multi-core
// machine raise the budget (e.g. SANDTABLE_BENCH_SECONDS=600) to let every
// row hit the full state cap and compare wall-clock directly. Expected shape
// on >=4 cores: >=2x rate at 4 workers.
//
// `--trace-out FILE` records a Chrome trace covering every row (per-worker
// lanes, per-level spans, barrier waits) — the input to
// `bench_validate_json --trace` and `scripts/trace_summary.py`.
//
// `--baseline` runs the level-synchronized and work-stealing schedulers
// side by side at each worker count, in one JSONL: every steal row carries
// the steal.chunks/steal.misses/steal.idle_ns counters and a
// "steal_speedup" field (its rate over the level-sync row at the same
// worker count). On >= 4 real cores expect >= 1.3x at 8 workers on this
// irregular-fanout space; on one core both schedulers collapse to ~1x.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/mc/bfs.h"
#include "src/obs/analytics.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/par/parallel_bfs.h"
#include "src/raftspec/raft_spec.h"

using namespace sandtable;  // NOLINT(build/namespaces): bench brevity

namespace {

// Table-3 experiment-#2 shape (doubled constraints): well over 1M distinct
// states for pysyncobj, so the cap — not exhaustion — ends each row.
Spec BigRaftSpec() {
  RaftProfile p = GetRaftProfile("pysyncobj", /*with_bugs=*/false);
  p.budget.max_timeouts = 3;
  p.budget.max_client_requests = 2;
  p.budget.max_crashes = 0;
  p.budget.max_restarts = 0;
  p.budget.max_partitions = 0;
  p.budget.max_drops = 0;
  p.budget.max_dups = 1;
  p.budget.max_term = 3;
  p.budget.max_msg_buffer = 5;
  p.budget.max_log_len = 2;
  p.budget.max_snapshots = 1;
  return MakeRaftSpec(p);
}

uint64_t StateCap() { return bench::StateBudget(1000000); }

// Prints one table row, writes one JSONL result row, and returns the row's
// distinct-state rate. `extra` fields (scheduler tag, steal counters,
// steal_speedup) are merged into the JSONL row.
double PrintRow(const char* label, const BfsResult& r,
                const obs::ExplorationProfile& prof, double serial_rate,
                bench::JsonBenchWriter* json, int workers,
                JsonObject extra = {}) {
  const double rate = r.distinct_states / std::max(r.seconds, 1e-9);
  std::printf("%-10s | %9s %10s %12s/min | %6.2fx%s\n", label,
              bench::HumanTime(r.seconds).c_str(),
              bench::HumanCount(r.distinct_states).c_str(),
              bench::HumanCount(static_cast<unsigned long long>(rate * 60)).c_str(),
              rate / serial_rate, r.exhausted ? "  [exhausted]" : "");
  std::fflush(stdout);
  JsonObject row;
  row["engine"] = Json(std::string(label));
  row["workers"] = Json(static_cast<int64_t>(workers));
  row["states_per_sec"] = Json(rate);
  row["speedup"] = Json(rate / serial_rate);
  row["result"] = r.ToJson(/*include_trace=*/false);
  row["analytics"] = prof.SummaryJson(/*top_n=*/3);
  for (auto& [key, value] : extra) {
    row[key] = std::move(value);
  }
  json->Result(std::move(row));
  return rate;
}

// The steal.* counters of one row's registry, as a JSONL sub-object.
JsonObject StealCounters(const obs::MetricsSnapshot& snap) {
  JsonObject steal;
  for (const char* key : {"steal.chunks", "steal.misses", "steal.idle_ns"}) {
    const auto it = snap.counters.find(key);
    steal[key + 6] = Json(static_cast<int64_t>(  // strip the "steal." prefix
        it == snap.counters.end() ? 0 : it->second));
  }
  return steal;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  bool baseline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline = true;
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out FILE] [--baseline]\n", argv[0]);
      return 1;
    }
  }
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<obs::Tracer>();
    tracer->Install();
  }

  bench::JsonBenchWriter json("parallel_scaling");
  const Spec spec = BigRaftSpec();
  const uint64_t cap = StateCap();
  const double budget = bench::BudgetSeconds(60);

  std::printf("Parallel exploration scaling — pysyncobj, doubled constraints\n");
  std::printf("(cap: %s distinct states or %s per row; hardware threads: %u)\n\n",
              bench::HumanCount(cap).c_str(), bench::HumanTime(budget).c_str(),
              std::thread::hardware_concurrency());
  std::printf("%-10s | %9s %10s %16s | %7s\n", "Engine", "Time", "States", "Rate",
              "Speedup");
  bench::Rule(64);

  BfsOptions base;
  base.max_distinct_states = cap;
  base.time_budget_s = budget;
  obs::ExplorationProfile serial_prof;
  base.analytics = &serial_prof;
  const BfsResult serial = BfsCheck(spec, base);
  const double serial_rate = serial.distinct_states / std::max(serial.seconds, 1e-9);
  {
    JsonObject extra;
    extra["scheduler"] = Json(std::string("serial"));
    PrintRow("serial", serial, serial_prof, serial_rate, &json, 0, std::move(extra));
  }

  for (const int workers : {1, 2, 4, 8}) {
    // Level-synchronized scheduler (always run: in --baseline mode it is the
    // denominator of steal_speedup).
    ParBfsOptions popts;
    popts.base = base;
    obs::ExplorationProfile prof;  // fresh per row — rows must not aggregate
    popts.base.analytics = &prof;
    popts.workers = workers;
    popts.reserve_states = cap;
    char label[16];
    std::snprintf(label, sizeof(label), "par x%d", workers);
    JsonObject extra;
    extra["scheduler"] = Json(std::string("level-sync"));
    const double level_rate = PrintRow(label, ParallelBfsCheck(spec, popts), prof,
                                       serial_rate, &json, workers, std::move(extra));

    if (!baseline) {
      continue;
    }
    // Work-stealing scheduler on the same spec and budgets, with a per-row
    // registry so the steal counters belong to exactly this row.
    obs::MetricsRegistry reg;
    obs::ExplorationProfile steal_prof;
    ParBfsOptions sopts;
    sopts.base = base;
    sopts.base.analytics = &steal_prof;
    sopts.base.metrics = &reg;
    sopts.workers = workers;
    sopts.reserve_states = cap;
    sopts.steal = true;
    const BfsResult stolen = ParallelBfsCheck(spec, sopts);
    const obs::MetricsSnapshot snap = reg.Snapshot();
    std::snprintf(label, sizeof(label), "steal x%d", workers);
    JsonObject sextra;
    sextra["scheduler"] = Json(std::string("steal"));
    sextra["steal"] = Json(StealCounters(snap));
    const double steal_rate = stolen.distinct_states / std::max(stolen.seconds, 1e-9);
    sextra["steal_speedup"] = Json(steal_rate / std::max(level_rate, 1e-9));
    PrintRow(label, stolen, steal_prof, serial_rate, &json, workers,
             std::move(sextra));
    std::printf("%-10s | steal vs level-sync at x%d: %.2fx "
                "(chunks stolen %llu, misses %llu)\n",
                "", workers, steal_rate / std::max(level_rate, 1e-9),
                static_cast<unsigned long long>(
                    snap.counters.count("steal.chunks") ? snap.counters.at("steal.chunks") : 0),
                static_cast<unsigned long long>(
                    snap.counters.count("steal.misses") ? snap.counters.at("steal.misses") : 0));
  }
  bench::Rule(64);
  std::printf("speedup is the distinct-state rate over the serial row; on a single\n");
  std::printf("core all rows collapse to ~1x (level barriers add a few %% overhead)\n");
  if (baseline) {
    std::printf("steal_speedup compares the work-stealing scheduler to level-sync at\n");
    std::printf("the same worker count; the >=1.3x-at-8-workers target needs real cores\n");
  }
  if (tracer != nullptr) {
    tracer->Uninstall();
    const Status st = tracer->WriteChromeTrace(trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.error().c_str());
      return 1;
    }
    std::printf("chrome trace written to %s\n", trace_out.c_str());
  }
  return 0;
}
