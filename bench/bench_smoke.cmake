# Runs one bench binary with tiny budgets and validates its JSON output.
# Invoked by the bench-smoke CTest entries:
#   cmake -DBENCH=<bin> -DVALIDATOR=<bin> -DOUT=<file> [-DGBENCH=1]
#        [-DBENCH_ARGS=<;-list>] -P bench_smoke.cmake
#
# The bench's own exit code is ignored — under smoke budgets a hunt may
# legitimately miss its bug — the gate is that the JSON output is well-formed.

if(NOT DEFINED BENCH OR NOT DEFINED VALIDATOR OR NOT DEFINED OUT)
  message(FATAL_ERROR "bench_smoke.cmake needs -DBENCH, -DVALIDATOR and -DOUT")
endif()

file(REMOVE "${OUT}")

if(GBENCH)
  # google-benchmark writes its own JSON; one cheap micro-bench is enough to
  # prove the binary runs and the reporter works.
  execute_process(
    COMMAND "${BENCH}" --benchmark_filter=BM_ValueRecordUpdate
            "--benchmark_out=${OUT}" --benchmark_out_format=json
    RESULT_VARIABLE bench_rc)
  set(validate_args "${OUT}" --gbench)
else()
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env
            SANDTABLE_BENCH_SECONDS=0.5
            SANDTABLE_BENCH_STATES=2000
            SANDTABLE_BENCH_SMOKE=1
            "SANDTABLE_BENCH_JSON=${OUT}"
            "${BENCH}" ${BENCH_ARGS}
    RESULT_VARIABLE bench_rc
    OUTPUT_VARIABLE bench_stdout
    ERROR_VARIABLE bench_stderr)
  set(validate_args "${OUT}")
endif()

message(STATUS "${BENCH} exited with ${bench_rc} (tolerated; validating JSON)")

execute_process(COMMAND "${VALIDATOR}" ${validate_args} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench JSON validation failed for ${OUT}")
endif()
