// Table 1 reproduction: integrated distributed systems and formal
// specification statistics. The paper reports modeled LOC and person-day
// effort (not reproducible mechanically); this bench reports the measurable
// columns — variables, actions and safety properties per specification — from
// the specs actually built by this repository, plus the network semantics and
// feature set each profile models.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/raftspec/raft_spec.h"
#include "src/zabspec/zab_spec.h"

using namespace sandtable;  // NOLINT(build/namespaces): bench brevity

namespace {

struct Row {
  std::string system;
  std::string paper_system;
  int vars;
  int actions;
  int invariants;
  std::string network;
  std::string features;
};

Row RowFor(const std::string& system) {
  const RaftProfile profile = GetRaftProfile(system, /*with_bugs=*/false);
  const Spec spec = MakeRaftSpec(profile);
  Row row;
  row.system = system;
  row.vars = static_cast<int>(spec.init_states[0].record_fields().size());
  row.actions = static_cast<int>(spec.actions.size());
  row.invariants =
      static_cast<int>(spec.invariants.size() + spec.transition_invariants.size());
  row.network = profile.features.udp ? "UDP" : "TCP";
  std::string f = "election,replication";
  if (profile.features.prevote) {
    f += ",prevote";
  }
  if (profile.features.compaction) {
    f += ",compaction";
  }
  if (profile.features.kv) {
    f += ",kv";
  }
  if (profile.features.optimistic_next) {
    f += ",pipelining";
  }
  row.features = f;
  return row;
}

}  // namespace

int main() {
  bench::JsonBenchWriter json("table1_integration");
  auto emit = [&json](const Row& row, const char* paper) {
    JsonObject o;
    o["system"] = Json(row.system);
    o["paper_system"] = Json(std::string(paper));
    o["vars"] = Json(static_cast<int64_t>(row.vars));
    o["actions"] = Json(static_cast<int64_t>(row.actions));
    o["invariants"] = Json(static_cast<int64_t>(row.invariants));
    o["network"] = Json(row.network);
    o["features"] = Json(row.features);
    json.Result(std::move(o));
  };
  std::printf("Table 1 — integrated systems and specification statistics\n");
  std::printf("(paper columns #Var/#Act/#Inv measured from the specs built here;\n");
  std::printf(" LOC/effort columns are human metrics the paper reports: 490-2037 spec\n");
  std::printf(" LOC and 1-15 person-days per system)\n\n");
  std::printf("%-11s %-10s %5s %5s %5s  %-4s  %s\n", "System", "(paper)", "#Var", "#Act",
              "#Inv", "Net", "Modeled features");
  bench::Rule();

  const struct {
    const char* profile;
    const char* paper;
  } kSystems[] = {
      {"pysyncobj", "PySyncObj"}, {"wraft", "WRaft"},     {"redisraft", "RedisRaft"},
      {"daosraft", "DaosRaft"},   {"raftos", "RaftOS"},   {"xraft", "Xraft"},
      {"xraftkv", "Xraft-KV"},
  };
  for (const auto& s : kSystems) {
    const Row row = RowFor(s.profile);
    std::printf("%-11s %-10s %5d %5d %5d  %-4s  %s\n", row.system.c_str(), s.paper,
                row.vars, row.actions, row.invariants, row.network.c_str(),
                row.features.c_str());
    emit(row, s.paper);
  }
  {
    const Spec zab = MakeZabSpec(GetZabProfile(false));
    Row row;
    row.system = "zookeeper";
    row.vars = static_cast<int>(zab.init_states[0].record_fields().size());
    row.actions = static_cast<int>(zab.actions.size());
    row.invariants =
        static_cast<int>(zab.invariants.size() + zab.transition_invariants.size());
    row.network = "TCP";
    row.features = "election,discovery,sync,broadcast";
    std::printf("%-11s %-10s %5d %5d %5d  %-4s  %s\n", row.system.c_str(), "ZooKeeper",
                row.vars, row.actions, row.invariants, row.network.c_str(),
                row.features.c_str());
    emit(row, "ZooKeeper");
  }
  bench::Rule();
  std::printf("paper Table 1: #Var 12-39, #Act 9-20, #Inv 13-18 across the same systems\n");
  return 0;
}
