// Table 2 reproduction: effectiveness and efficiency in detecting bugs.
//
// For every verification-stage bug in the catalog: seed it, model check with
// BFS until the safety property fires, confirm at the implementation level by
// deterministic replay, and report Time / #Depth / #States next to the
// paper's numbers. Conformance-stage bugs are detected by the conformance
// checker (crash or divergence) and reported with their detection mode.
//
// Budgets are laptop-scaled; SANDTABLE_BENCH_SECONDS overrides the per-bug
// model-checking budget (default 120s).
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/conformance/bug_catalog.h"
#include "src/conformance/raft_harness.h"
#include "src/conformance/zab_harness.h"
#include "src/mc/bfs.h"
#include "src/mc/expand.h"
#include "src/net/specnet.h"
#include "src/raftspec/raft_common.h"

using namespace sandtable;               // NOLINT(build/namespaces): bench brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

namespace {

struct Outcome {
  bool found = false;
  bool confirmed = false;
  std::string fired;
  double seconds = 0;
  uint64_t depth = 0;
  uint64_t states = 0;
  std::string note;
};

Outcome HuntVerificationBug(const BugInfo& bug, double budget_s) {
  Outcome out;

  Spec spec;
  EngineFactory factory;
  std::unique_ptr<ClusterObserver> observer;
  if (bug.zab_bug) {
    ZabHarness h = MakeZabHarness(/*with_bugs=*/true);
    h.profile.budget.max_timeouts = 5;
    h.profile.budget.max_client_requests = 1;
    h.profile.budget.max_crashes = 1;
    h.profile.budget.max_restarts = 1;
    h.profile.budget.max_rounds = 2;
    h.profile.budget.max_epoch = 2;
    h.profile.budget.max_history = 1;
    h.profile.budget.max_msg_buffer = 3;
    spec = MakeHarnessSpec(h);
    factory = MakeZabEngineFactory(h);
    observer = std::make_unique<ZabObserver>(MakeZabObserver(h));
  } else {
    RaftHarness h = MakeRaftHarness(bug.system, /*with_bugs=*/false);
    h.profile = MakeBugProfile(bug);
    h.impl_bugs = systems::RaftImplBugs{};
    spec = MakeHarnessSpec(h);
    factory = MakeRaftEngineFactory(h);
    observer = std::make_unique<RaftObserver>(MakeRaftObserver(h));
  }

  BfsOptions opts;
  opts.time_budget_s = budget_s;
  if (bench::StateBudget() > 0) {
    opts.max_distinct_states = bench::StateBudget();
  }
  const BfsResult r = BfsCheck(spec, opts);
  if (!r.violation.has_value()) {
    out.note = "not found within " + bench::HumanTime(budget_s) + " (" +
               bench::HumanCount(r.distinct_states) + " states)";
    return out;
  }
  out.found = true;
  out.fired = r.violation->invariant;
  out.seconds = r.violation->seconds;
  out.depth = r.violation->depth;
  out.states = r.violation->states_explored;

  const ConfirmationResult confirm = ConfirmBug(factory, *observer, r.violation->trace);
  out.confirmed = confirm.confirmed;
  if (!confirm.confirmed && confirm.replay.discrepancy.has_value()) {
    out.note = "replay diverged: " + confirm.replay.discrepancy->kind;
  }
  return out;
}

// WRaft#3's trigger (an InstallSnapshot arriving at a follower whose log
// conflicts at the snapshot point) is too rare for random walks, so drive it
// like the paper's developers would: model check the fixed spec with a
// falsifiable reachability probe ("no conflicting snapshot is ever in
// flight"), then replay the counterexample against the buggy implementation;
// the rejected snapshot diverges from the spec's accepted one.
Outcome HuntSnapshotRejectBug(const BugInfo& bug, double budget_s) {
  namespace rsp = sandtable::raftspec;
  Outcome out;
  RaftHarness h = MakeRaftHarness(bug.system, /*with_bugs=*/false);
  h.impl_bugs = systems::RaftImplBugs{};
  bug.enable_impl(h.impl_bugs);
  h.profile.budget = MakeBugProfile(FindBug("WRaft#1")).budget;  // same region
  h.profile.config.num_values = 1;

  Spec probe = MakeHarnessSpec(h);
  const int n = h.profile.config.num_servers;
  probe.invariants.push_back(
      {"__ConflictingSnapshotReachable", [n](const State& s) {
         for (const Value& msg : specnet::AllMessages(s.field(rsp::kVarNet))) {
           if (msg.field("mtype").str_v() != rsp::kMsgInstallSnapshot) {
             continue;
           }
           const Value& dst = msg.field("dst");
           const int64_t snap_index = msg.field("lastIndex").int_v();
           if (snap_index <= rsp::SnapshotIndex(s, dst) ||
               snap_index > rsp::LastIndex(s, dst)) {
             continue;
           }
           if (rsp::TermAt(s, dst, snap_index) != msg.field("lastTerm").int_v()) {
             return false;  // probe hit: the replayed trace triggers WRaft#3
           }
         }
         return true;
       }});
  BfsOptions opts;
  opts.time_budget_s = budget_s;
  if (bench::StateBudget() > 0) {
    opts.max_distinct_states = bench::StateBudget();
  }
  const BfsResult r = BfsCheck(probe, opts);
  if (!r.violation.has_value()) {
    out.note = "probe state not reached within " + bench::HumanTime(budget_s);
    return out;
  }
  // One more step: the delivery of that snapshot (any successor delivering it
  // works; replay the trace plus the InstallSnapshot delivery).
  std::vector<TraceStep> trace = r.violation->trace;
  for (Successor& s2 : ExpandAll(probe, trace.back().state, nullptr)) {
    if (s2.label.action == "HandleInstallSnapshotRequest") {
      trace.push_back(TraceStep{s2.label, s2.state});
      break;
    }
  }
  const RaftObserver observer = MakeRaftObserver(h);
  const auto replay =
      conformance::ReplayTrace(MakeRaftEngineFactory(h), observer, trace);
  out.found = !replay.conforms;
  out.confirmed = out.found;
  out.seconds = r.violation->seconds;
  out.depth = trace.size() - 1;
  out.states = r.violation->states_explored;
  out.fired = out.found ? "conformance: " + replay.discrepancy->kind +
                              " (directed probe replay)"
                        : "";
  if (!out.found) {
    out.note = "replay conformed unexpectedly";
  }
  return out;
}

Outcome HuntConformanceBug(const BugInfo& bug, double budget_s) {
  Outcome out;
  RaftHarness h = MakeRaftHarness(bug.system, /*with_bugs=*/false);
  h.profile.bugs = RaftBugs{};
  h.impl_bugs = systems::RaftImplBugs{};
  if (bug.enable_impl != nullptr) {
    bug.enable_impl(h.impl_bugs);
  }
  if (bug.tune_budget != nullptr) {
    bug.tune_budget(h.profile.budget);
  }
  const Spec spec = MakeHarnessSpec(h);
  const RaftObserver observer = MakeRaftObserver(h);

  // WRaft#6 (the leak) does not diverge in protocol state; it is observed
  // through resource inspection of the debug API.
  if (bug.id == "WRaft#6") {
    auto eng = MakeRaftEngineFactory(h)();
    (void)eng->StartAll();
    (void)eng->FireTimeout(0, "election");
    (void)eng->DeliverMessage(0, 1, "");
    (void)eng->DeliverMessage(0, 2, "");
    auto s = eng->QueryNodeState(1);
    out.found = s.ok() && s.value()["leakedBuffers"].as_int() > 0;
    out.confirmed = out.found;
    out.fired = "resource check: leakedBuffers grows";
    return out;
  }

  ConformanceOptions opts;
  opts.max_traces = 100000;
  opts.max_trace_depth = 35;
  opts.time_budget_s = budget_s;
  const ConformanceReport report =
      CheckConformance(spec, MakeRaftEngineFactory(h), observer, opts);
  out.found = !report.conforms;
  out.confirmed = out.found;
  out.seconds = report.seconds;
  if (out.found) {
    out.fired = "conformance: " + report.discrepancy->kind;
    out.depth = report.discrepancy->step;
  } else {
    out.note = "no discrepancy in " + std::to_string(report.traces_replayed) + " traces";
  }
  return out;
}

}  // namespace

int main() {
  const double budget_s = bench::BudgetSeconds(120);
  // Smoke mode checks that every hunt runs end-to-end; per-bug minimum hunt
  // times would otherwise escalate tiny CI budgets back to minutes.
  const bool smoke = bench::SmokeMode();
  bench::JsonBenchWriter json("table2_bugs");
  std::printf("Table 2 — effectiveness and efficiency in detecting bugs\n");
  std::printf("(per-bug model-checking budget %s; paper columns in parentheses)\n\n",
              bench::HumanTime(budget_s).c_str());
  std::printf("%-13s %-13s %-5s %9s %7s %10s  %s\n", "ID", "Stage", "Found", "Time",
              "#Depth", "#States", "Property fired / note");
  bench::Rule(110);

  int found = 0;
  int confirmed = 0;
  int total = 0;
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.stage == BugStage::kModeling) {
      // WRaft#9 was found while writing the specification; there is nothing
      // mechanical to run (documented in DESIGN.md).
      std::printf("%-13s %-13s %-5s %9s %7s %10s  found while modeling (paper: same)\n",
                  bug.id.c_str(), BugStageName(bug.stage), "n/a", "-", "-", "-");
      JsonObject row;
      row["id"] = Json(bug.id);
      row["stage"] = Json(std::string(BugStageName(bug.stage)));
      row["found"] = Json(std::string("n/a"));
      json.Result(std::move(row));
      continue;
    }
    ++total;
    Outcome out;
    if (bug.stage == BugStage::kVerification) {
      out = HuntVerificationBug(bug, smoke ? budget_s : std::max(budget_s, bug.min_hunt_s));
    } else if (bug.id == "WRaft#3") {
      out = HuntSnapshotRejectBug(bug, smoke ? budget_s : std::max(budget_s, 300.0));
    } else {
      out = HuntConformanceBug(bug, std::min(budget_s, 60.0));
    }
    found += out.found ? 1 : 0;
    confirmed += out.confirmed ? 1 : 0;
    {
      JsonObject row;
      row["id"] = Json(bug.id);
      row["stage"] = Json(std::string(BugStageName(bug.stage)));
      row["found"] = Json(out.found);
      row["confirmed"] = Json(out.confirmed);
      row["seconds"] = Json(out.seconds);
      row["depth"] = Json(out.depth);
      row["states"] = Json(out.states);
      if (!out.fired.empty()) {
        row["fired"] = Json(out.fired);
      }
      if (!out.note.empty()) {
        row["note"] = Json(out.note);
      }
      json.Result(std::move(row));
    }
    if (bug.stage == BugStage::kVerification && out.found) {
      char paper[96] = "";
      if (bug.paper_states > 0) {
        std::snprintf(paper, sizeof(paper), " (paper: %s, d%d, %s)",
                      bench::HumanTime(bug.paper_time_s).c_str(), bug.paper_depth,
                      bench::HumanCount(static_cast<unsigned long long>(bug.paper_states))
                          .c_str());
      }
      std::printf("%-13s %-13s %-5s %9s %7llu %10s  %s%s%s\n", bug.id.c_str(),
                  BugStageName(bug.stage), out.confirmed ? "yes" : "FOUND",
                  bench::HumanTime(out.seconds).c_str(),
                  static_cast<unsigned long long>(out.depth),
                  bench::HumanCount(out.states).c_str(), out.fired.c_str(), paper,
                  out.confirmed ? ", replay-confirmed" : "");
    } else {
      std::printf("%-13s %-13s %-5s %9s %7s %10s  %s\n", bug.id.c_str(),
                  BugStageName(bug.stage), out.found ? "yes" : "NO",
                  out.seconds > 0 ? bench::HumanTime(out.seconds).c_str() : "-", "-", "-",
                  out.found ? out.fired.c_str() : out.note.c_str());
    }
    std::fflush(stdout);
  }

  bench::Rule(110);
  std::printf("found %d/%d bugs, %d confirmed at the implementation level "
              "(paper: 23 bugs total, all verification bugs under one machine hour)\n",
              found, total, confirmed);
  return found == total ? 0 : 1;
}
