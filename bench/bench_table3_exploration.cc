// Table 3 reproduction: efficiency of specification-level state exploration.
//
// Experiment #1: restrictive constraints making the space exhaustible —
// report wall-clock to full coverage, depth and distinct states.
// Experiment #2: doubled constraints under a fixed time budget — report depth
// and distinct states reached (the paper uses a one-day budget and reaches
// up to 1e9 states on 20 hyperthreads; this single-core laptop run is scaled
// via SANDTABLE_BENCH_SECONDS, default 20s per system).
//
// Also reports the symmetry-reduction ablation called out in DESIGN.md.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/mc/bfs.h"
#include "src/obs/analytics.h"
#include "src/obs/report.h"
#include "src/raftspec/raft_spec.h"
#include "src/zabspec/zab_spec.h"

using namespace sandtable;  // NOLINT(build/namespaces): bench brevity

namespace {

Spec SystemSpec(const std::string& system, int scale) {
  if (system == "zookeeper") {
    ZabProfile p = GetZabProfile(/*with_bugs=*/false);
    p.budget.max_timeouts = 2 * scale;
    p.budget.max_client_requests = 1 * scale;
    p.budget.max_rounds = 1 + scale;
    p.budget.max_epoch = 1 + scale;
    p.budget.max_history = scale;
    p.budget.max_msg_buffer = 2 + scale;
    return MakeZabSpec(p);
  }
  RaftProfile p = GetRaftProfile(system, /*with_bugs=*/false);
  p.budget.max_timeouts = 1 + scale;        // exp#1: 2-3 timeouts (paper: 3-4)
  p.budget.max_client_requests = scale;
  p.budget.max_crashes = 0;
  p.budget.max_restarts = 0;
  p.budget.max_partitions = 0;
  p.budget.max_drops = 0;
  p.budget.max_dups = scale - 1;
  p.budget.max_term = 1 + scale;
  p.budget.max_msg_buffer = 1 + 2 * scale;  // paper: 3-4 / doubled
  p.budget.max_log_len = scale;
  p.budget.max_snapshots = scale - 1;
  return MakeRaftSpec(p);
}

}  // namespace

int main() {
  bench::JsonBenchWriter json("table3_exploration");
  const double exp2_budget = bench::BudgetSeconds(20);
  const unsigned long long state_cap = bench::StateBudget();
  const char* systems[] = {"pysyncobj", "wraft",  "redisraft", "daosraft",
                           "raftos",    "xraft",  "xraftkv",   "zookeeper"};

  std::printf("Table 3 — efficiency of state exploration (3-node configuration)\n");
  std::printf("experiment #1: restrictive constraints, exhaustive BFS\n");
  std::printf("experiment #2: doubled constraints, %s time budget\n\n",
              bench::HumanTime(exp2_budget).c_str());
  std::printf("%-11s | %9s %7s %10s %10s | %7s %10s %10s\n", "System", "e1 Time",
              "e1 Dep", "e1 States", "st/min", "e2 Dep", "e2 States", "st/min");
  bench::Rule(96);

  for (const char* system : systems) {
    // Experiment #1: exhaust the small space.
    const Spec small = SystemSpec(system, 1);
    BfsOptions o1;
    o1.time_budget_s = bench::BudgetSeconds(20) * 6;  // safety valve
    if (state_cap > 0) {
      o1.max_distinct_states = state_cap;
    }
    obs::ExplorationProfile prof1;
    o1.analytics = &prof1;
    const BfsResult r1 = BfsCheck(small, o1);

    // Experiment #2: doubled constraints, fixed budget.
    const Spec big = SystemSpec(system, 2);
    BfsOptions o2;
    o2.time_budget_s = exp2_budget;
    if (state_cap > 0) {
      o2.max_distinct_states = state_cap;
    }
    obs::ExplorationProfile prof2;
    o2.analytics = &prof2;
    const BfsResult r2 = BfsCheck(big, o2);

    JsonObject row;
    row["system"] = Json(std::string(system));
    row["e1"] = r1.ToJson(/*include_trace=*/false);
    row["e2"] = r2.ToJson(/*include_trace=*/false);
    JsonObject analytics;
    analytics["e1"] = prof1.SummaryJson(/*top_n=*/3);
    analytics["e2"] = prof2.SummaryJson(/*top_n=*/3);
    row["analytics"] = Json(std::move(analytics));
    row["peak_rss_kb"] = Json(obs::PeakRssKb());
    json.Result(std::move(row));

    std::printf("%-11s | %9s %7llu %10s %10s | %7llu %10s %10s%s\n", system,
                bench::HumanTime(r1.seconds).c_str(),
                static_cast<unsigned long long>(r1.depth_reached),
                bench::HumanCount(r1.distinct_states).c_str(),
                bench::HumanCount(static_cast<unsigned long long>(
                                      r1.distinct_states / std::max(r1.seconds, 1e-9) * 60))
                    .c_str(),
                static_cast<unsigned long long>(r2.depth_reached),
                bench::HumanCount(r2.distinct_states).c_str(),
                bench::HumanCount(static_cast<unsigned long long>(
                                      r2.distinct_states / std::max(r2.seconds, 1e-9) * 60))
                    .c_str(),
                r1.exhausted ? "" : "  [e1 not exhausted!]");
    std::fflush(stdout);
  }
  bench::Rule(96);
  std::printf("paper: e1 full coverage in 23min-2.9h; e2 up to 2.1e9 states/day;\n");
  std::printf("       739k-2324k distinct states per minute on a 20-hyperthread server\n\n");

  // Ablation: symmetry reduction on/off (same budget, same spec).
  std::printf("ablation — symmetry reduction (pysyncobj, experiment #1 constraints):\n");
  const Spec spec = SystemSpec("pysyncobj", 1);
  for (const bool sym : {true, false}) {
    BfsOptions o;
    o.use_symmetry = sym;
    o.time_budget_s = bench::BudgetSeconds(20) * 6;
    if (state_cap > 0) {
      o.max_distinct_states = state_cap;
    }
    const BfsResult r = BfsCheck(spec, o);
    std::printf("  symmetry %-3s: %10s distinct states in %s (%s states/min)\n",
                sym ? "on" : "off", bench::HumanCount(r.distinct_states).c_str(),
                bench::HumanTime(r.seconds).c_str(),
                bench::HumanCount(static_cast<unsigned long long>(
                                      r.distinct_states / std::max(r.seconds, 1e-9) * 60))
                    .c_str());
    JsonObject row;
    row["system"] = Json(std::string("pysyncobj"));
    row["ablation"] = Json(std::string(sym ? "symmetry_on" : "symmetry_off"));
    row["result"] = r.ToJson(/*include_trace=*/false);
    row["peak_rss_kb"] = Json(obs::PeakRssKb());
    json.Result(std::move(row));
  }
  // Ablation: analytics profiling on/off (same budget, same spec) — the
  // measured overhead DESIGN.md's "State-space analytics" section cites.
  std::printf(
      "\nablation — exploration analytics (pysyncobj, experiment #1 "
      "constraints):\n");
  for (const bool analytics : {true, false}) {
    BfsOptions o;
    o.time_budget_s = bench::BudgetSeconds(20) * 6;
    if (state_cap > 0) {
      o.max_distinct_states = state_cap;
    }
    obs::ExplorationProfile prof;
    if (analytics) {
      o.analytics = &prof;
    }
    const BfsResult r = BfsCheck(spec, o);
    std::printf("  analytics %-3s: %10s distinct states in %s (%s states/min)\n",
                analytics ? "on" : "off",
                bench::HumanCount(r.distinct_states).c_str(),
                bench::HumanTime(r.seconds).c_str(),
                bench::HumanCount(static_cast<unsigned long long>(
                                      r.distinct_states / std::max(r.seconds, 1e-9) * 60))
                    .c_str());
    JsonObject row;
    row["system"] = Json(std::string("pysyncobj"));
    row["ablation"] = Json(std::string(analytics ? "analytics_on" : "analytics_off"));
    row["result"] = r.ToJson(/*include_trace=*/false);
    if (analytics) {
      row["analytics"] = prof.SummaryJson(/*top_n=*/3);
    }
    row["peak_rss_kb"] = Json(obs::PeakRssKb());
    json.Result(std::move(row));
  }
  std::printf("peak RSS: %llu KiB\n",
              static_cast<unsigned long long>(obs::PeakRssKb()));
  return 0;
}
