// Table 4 reproduction: specification-level vs implementation-level
// exploration speed (§5.3).
//
// Setup mirrors the paper: explore the specification in random-walk mode
// (one worker), then deterministically replay a sample of the traces at the
// implementation level, and compare per-trace times.
//
// The paper's implementation-level numbers are dominated by cluster
// initialization and synchronization sleeps of the real deployments (LXD
// containers, JVM startup, driver sleeps). This reproduction runs the
// implementations in-process, so we report BOTH:
//   - raw: the actual wall-clock of in-process replay (no sleeps), and
//   - modeled: raw plus a per-system execution-delay model with the paper's
//     measured per-trace init and per-event sleep costs (accounted, not
//     slept), which is what reproduces Table 4's shape.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/conformance/raft_harness.h"
#include "src/conformance/zab_harness.h"
#include "src/par/parallel_bfs.h"
#include "src/trace/replay.h"
#include "src/mc/random_walk.h"

using namespace sandtable;               // NOLINT(build/namespaces): bench brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

namespace {

using Clock = std::chrono::steady_clock;

// Per-system execution-delay models matching the paper's §5.3 discussion:
// PySyncObj/WRaft/RedisRaft/DaosRaft drivers have no sleeps (cost = cluster
// init); RaftOS sleeps on asynchronous actions; Xraft and ZooKeeper sleep for
// both initialization and synchronization.
engine::DelayModel DelayFor(const std::string& system) {
  engine::DelayModel d;
  if (system == "pysyncobj") {
    d.init_us = 1750000;
    d.per_event_us = 1000;
  } else if (system == "wraft") {
    d.init_us = 2400000;
    d.per_event_us = 2000;
  } else if (system == "redisraft") {
    d.init_us = 1750000;
    d.per_event_us = 1000;
  } else if (system == "daosraft") {
    d.init_us = 2050000;
    d.per_event_us = 1400;
  } else if (system == "raftos") {
    d.init_us = 2000000;
    d.per_event_us = 90000;
  } else if (system == "xraft") {
    d.init_us = 5000000;
    d.per_event_us = 500000;
  } else if (system == "xraftkv") {
    d.init_us = 7000000;
    d.per_event_us = 480000;
  } else {  // zookeeper
    d.init_us = 6000000;
    d.per_event_us = 487000;
  }
  return d;
}

struct Row {
  std::string system;
  uint64_t min_depth = UINT64_MAX;
  uint64_t max_depth = 0;
  double avg_depth = 0;
  double spec_ms = 0;
  double impl_raw_ms = 0;
  double impl_modeled_ms = 0;
  double paper_spec_ms = 0;
  double paper_impl_ms = 0;
};

struct PaperRef {
  const char* system;
  double spec_ms;
  double impl_ms;
};
constexpr PaperRef kPaper[] = {
    {"pysyncobj", 14.18, 1798.53}, {"wraft", 20.70, 2496.53},
    {"redisraft", 15.87, 1802.40}, {"daosraft", 11.96, 2115.82},
    {"raftos", 5.83, 4813.74},     {"xraft", 8.14, 24338.57},
    {"xraftkv", 8.64, 24032.17},   {"zookeeper", 17.14, 28441.65},
};

Row Measure(const std::string& system, int spec_traces, int impl_traces) {
  Row row;
  row.system = system;

  Spec spec;
  EngineFactory factory;
  std::unique_ptr<ClusterObserver> observer;
  if (system == "zookeeper") {
    ZabHarness h = MakeZabHarness(/*with_bugs=*/false);
    h.profile.budget.max_timeouts = 4;
    h.profile.budget.max_client_requests = 2;
    h.profile.budget.max_crashes = 1;
    h.profile.budget.max_restarts = 1;
    h.profile.budget.max_partitions = 1;
    h.delay = DelayFor(system);
    spec = MakeHarnessSpec(h);
    factory = MakeZabEngineFactory(h);
    observer = std::make_unique<ZabObserver>(MakeZabObserver(h));
  } else {
    RaftHarness h = MakeRaftHarness(system, /*with_bugs=*/false);
    h.impl_bugs = systems::RaftImplBugs{};
    h.profile.budget.max_timeouts = 4;
    h.profile.budget.max_client_requests = 2;
    h.profile.budget.max_crashes = 1;
    h.profile.budget.max_restarts = 1;
    h.delay = DelayFor(system);
    spec = MakeHarnessSpec(h);
    factory = MakeRaftEngineFactory(h);
    observer = std::make_unique<RaftObserver>(MakeRaftObserver(h));
  }

  // ---- Specification-level random walks (one worker) ----------------------
  Rng rng(97);
  WalkOptions wopts;
  wopts.max_depth = 60;
  uint64_t total_depth = 0;
  const auto spec_start = Clock::now();
  for (int i = 0; i < spec_traces; ++i) {
    const WalkResult w = RandomWalk(spec, wopts, rng);
    total_depth += w.depth;
    row.min_depth = std::min(row.min_depth, w.depth);
    row.max_depth = std::max(row.max_depth, w.depth);
  }
  const double spec_s = std::chrono::duration<double>(Clock::now() - spec_start).count();
  row.spec_ms = spec_s * 1000 / spec_traces;
  row.avg_depth = static_cast<double>(total_depth) / spec_traces;

  // ---- Implementation-level replay of sampled traces ----------------------
  Rng replay_rng(97);  // same seed: the sample is a prefix of the same walks
  wopts.collect_trace = true;
  double raw_s = 0;
  double modeled_s = 0;
  int replayed = 0;
  for (int i = 0; i < impl_traces; ++i) {
    const WalkResult w = RandomWalk(spec, wopts, replay_rng);
    const auto t0 = Clock::now();
    std::unique_ptr<engine::Engine> eng = factory();
    (void)eng->StartAll();
    for (size_t s = 1; s < w.trace.size(); ++s) {
      auto cmd = trace::CommandFromStep(w.trace[s]);
      if (!cmd.ok()) {
        break;
      }
      Json resp;
      if (!trace::ExecuteCommand(*eng, cmd.value(), &resp)) {
        break;
      }
    }
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    raw_s += wall;
    modeled_s += wall + static_cast<double>(eng->stats().simulated_delay_us) / 1e6;
    ++replayed;
  }
  row.impl_raw_ms = raw_s * 1000 / replayed;
  row.impl_modeled_ms = modeled_s * 1000 / replayed;

  for (const PaperRef& ref : kPaper) {
    if (system == ref.system) {
      row.paper_spec_ms = ref.spec_ms;
      row.paper_impl_ms = ref.impl_ms;
    }
  }
  return row;
}

}  // namespace

int main() {
  bench::JsonBenchWriter json("table4_speedup");
  const int spec_traces = std::max(1, static_cast<int>(bench::BudgetSeconds(20)) * 50);
  const int impl_traces = bench::SmokeMode() ? 5 : 50;
  std::printf("Table 4 — specification-level vs implementation-level exploration speed\n");
  std::printf("(%d spec random walks, %d replayed at the implementation level per system;\n",
              spec_traces, impl_traces);
  std::printf(" 'modeled' adds the paper-measured init/sync sleep costs of the real\n");
  std::printf(" deployments, accounted rather than slept)\n\n");
  std::printf("%-11s %7s %6s | %9s | %8s %11s %8s | %11s %9s\n", "System", "Depth",
              "AvgD", "Spec(ms)", "Raw(ms)", "Modeled(ms)", "Speedup", "paperSpec",
              "paperImpl");
  bench::Rule(108);

  for (const PaperRef& ref : kPaper) {
    const Row row = Measure(ref.system, spec_traces, impl_traces);
    char depth_range[24];
    std::snprintf(depth_range, sizeof(depth_range), "%llu-%llu",
                  static_cast<unsigned long long>(row.min_depth),
                  static_cast<unsigned long long>(row.max_depth));
    std::printf("%-11s %7s %6.0f | %9.2f | %8.2f %11.1f %7.0fx | %9.2fms %8.0fms\n",
                row.system.c_str(), depth_range, row.avg_depth, row.spec_ms,
                row.impl_raw_ms, row.impl_modeled_ms, row.impl_modeled_ms / row.spec_ms,
                row.paper_spec_ms, row.paper_impl_ms);
    std::fflush(stdout);
    JsonObject o;
    o["system"] = Json(row.system);
    o["min_depth"] = Json(row.min_depth);
    o["max_depth"] = Json(row.max_depth);
    o["avg_depth"] = Json(row.avg_depth);
    o["spec_ms"] = Json(row.spec_ms);
    o["impl_raw_ms"] = Json(row.impl_raw_ms);
    o["impl_modeled_ms"] = Json(row.impl_modeled_ms);
    o["speedup"] = Json(row.impl_modeled_ms / row.spec_ms);
    o["paper_spec_ms"] = Json(row.paper_spec_ms);
    o["paper_impl_ms"] = Json(row.paper_impl_ms);
    json.Result(std::move(o));
  }
  bench::Rule(108);
  std::printf("paper speedups: 114x-2989x; the shape to check: Xraft/Xraft-KV/ZooKeeper\n");
  std::printf("are slowest at the implementation level (init+sync sleeps), RaftOS next\n");
  std::printf("(async-action sleeps), the driver-based C/Python systems fastest\n");

  // ---- Threads dimension: the paper explores on 20 hyperthreads ------------
  // Spec-level BFS exploration rate vs worker threads (src/par/ engine); see
  // bench_parallel_scaling for the full scaling curve.
  std::printf("\nspec-level BFS rate vs worker threads (pysyncobj, %u hw threads):\n",
              std::thread::hardware_concurrency());
  const RaftHarness h = MakeRaftHarness("pysyncobj", /*with_bugs=*/false);
  const Spec bfs_spec = MakeHarnessSpec(h);
  for (const int workers : {1, 4}) {
    ParBfsOptions popts;
    popts.base.time_budget_s = bench::BudgetSeconds(20) / 2;
    if (bench::StateBudget() > 0) {
      popts.base.max_distinct_states = bench::StateBudget();
    }
    popts.workers = workers;
    const BfsResult r = ParallelBfsCheck(bfs_spec, popts);
    std::printf("  %d worker%s: %10s distinct states in %s (%s states/min)\n", workers,
                workers == 1 ? " " : "s", bench::HumanCount(r.distinct_states).c_str(),
                bench::HumanTime(r.seconds).c_str(),
                bench::HumanCount(static_cast<unsigned long long>(
                                      r.distinct_states / std::max(r.seconds, 1e-9) * 60))
                    .c_str());
    JsonObject o;
    o["system"] = Json(std::string("pysyncobj"));
    o["bfs_workers"] = Json(static_cast<int64_t>(workers));
    o["result"] = r.ToJson(/*include_trace=*/false);
    json.Result(std::move(o));
  }
  return 0;
}
