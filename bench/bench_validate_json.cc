// Validates a bench JSON output file (the bench-smoke CTest gate).
//
//   bench_validate_json FILE            # JSONL written by bench_json.h
//   bench_validate_json FILE --gbench   # google-benchmark --benchmark_format=json
//   bench_validate_json FILE --serve    # sandtable_serve client frame capture
//   bench_validate_json FILE --trace [--expect-span NAME]... [--expect-lanes N]
//                                       # Chrome trace from --trace-out
//   bench_validate_json FILE --analytics  # profile from --analytics-out
//
// JSONL mode checks the writer's contract: every line parses, the first
// record is {"type":"meta", "schema_version":1}, at least one "result" row
// follows, and the last record is {"type":"summary"} whose "results" count
// matches. A bench that crashed mid-run flushes rows but never writes the
// summary, so the file fails validation even if every line parses. Rows may
// optionally carry scheduler-comparison fields ("scheduler", "steal"
// counters, "steal_speedup" — bench_parallel_scaling --baseline) and
// hash-compaction fields ("collision_probability", "hash_compact" —
// bench_ooc); when present they are type- and range-checked.
//
// Serve mode checks a captured sandtable_serve connection stream: every line
// parses, the first frame is the hello, at least one ack and one result frame
// are present, every streamed job frame (started/progress/result) carries an
// integer job id, and every result status is done|cancelled|failed.
//
// Analytics mode checks an obs::ExplorationProfile document written by
// `--analytics-out`: type=analytics, schema_version 1, a run_id, a non-empty
// per-action table with the counter fields, invariant cost entries, a depth
// histogram, and a collision probability inside [0,1].
//
// Trace mode checks a Chrome trace-event file (obs::Tracer output): a single
// JSON object with a non-empty traceEvents array, metadata.run_id present,
// every event carrying ph/name/ts/pid/tid, and at least one complete ("X")
// span. `--expect-span NAME` (repeatable) requires a complete span with that
// exact name; `--expect-lanes N` requires complete spans on >= N distinct
// thread lanes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/json.h"

using sandtable::Json;

namespace {

int Fail(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), why.c_str());
  return 1;
}

int ValidateGbench(const std::string& path, const std::string& content) {
  auto doc = Json::Parse(content);
  if (!doc.ok()) {
    return Fail(path, "not valid JSON: " + doc.error());
  }
  const Json& benchmarks = doc.value()["benchmarks"];
  if (benchmarks.type() != Json::Type::kArray) {
    return Fail(path, "no \"benchmarks\" array");
  }
  if (benchmarks.size() == 0) {
    return Fail(path, "\"benchmarks\" array is empty");
  }
  for (size_t i = 0; i < benchmarks.size(); ++i) {
    if (benchmarks[i]["name"].type() != Json::Type::kString) {
      return Fail(path, "benchmark entry without a name");
    }
  }
  std::printf("%s: ok (%zu google-benchmark entries)\n", path.c_str(), benchmarks.size());
  return 0;
}

bool IsNumber(const Json& v) {
  return v.type() == Json::Type::kInt || v.type() == Json::Type::kDouble;
}

// An obs::ExplorationProfile::SummaryJson object, the "analytics" field bench
// rows and progress lines carry. Table-3 rows nest one summary per
// experiment, so a non-summary object is accepted when every value is one.
bool ValidAnalyticsSummary(const Json& a, std::string* why) {
  if (!a.is_object()) {
    *why = "\"analytics\" is not an object";
    return false;
  }
  if (!a.contains("top_actions")) {
    for (const auto& [key, nested] : a.as_object()) {
      if (!ValidAnalyticsSummary(nested, why)) {
        *why = "analytics[" + key + "]: " + *why;
        return false;
      }
    }
    return true;
  }
  if (a["top_actions"].type() != Json::Type::kArray) {
    *why = "analytics \"top_actions\" is not an array";
    return false;
  }
  if (!IsNumber(a["duplicate_rate"]) || a["duplicate_rate"].as_double() < 0 ||
      a["duplicate_rate"].as_double() > 1) {
    *why = "analytics \"duplicate_rate\" is not a number in [0,1]";
    return false;
  }
  if (!IsNumber(a["collision_probability"]) ||
      a["collision_probability"].as_double() < 0 ||
      a["collision_probability"].as_double() > 1) {
    *why = "analytics \"collision_probability\" is not a number in [0,1]";
    return false;
  }
  return true;
}

int ValidateJsonl(const std::string& path, const std::string& content) {
  std::vector<Json> records;
  std::istringstream in(content);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    auto rec = Json::Parse(line);
    if (!rec.ok()) {
      return Fail(path, "line " + std::to_string(lineno) + " does not parse: " + rec.error());
    }
    records.push_back(std::move(rec.value()));
  }
  if (records.empty()) {
    return Fail(path, "empty file");
  }
  const Json& meta = records.front();
  if (meta["type"].as_string() != "meta") {
    return Fail(path, "first record is not type=meta");
  }
  if (meta["schema_version"].as_int() != 1) {
    return Fail(path, "unsupported schema_version");
  }
  const std::string bench = meta["bench"].as_string();
  if (bench.empty()) {
    return Fail(path, "meta record has no bench name");
  }
  const Json& summary = records.back();
  if (summary["type"].as_string() != "summary") {
    return Fail(path, "last record is not type=summary (bench crashed mid-run?)");
  }
  uint64_t results = 0;
  for (size_t i = 1; i + 1 < records.size(); ++i) {
    const std::string type = records[i]["type"].as_string();
    if (type == "result") {
      if (records[i]["bench"].as_string() != bench) {
        return Fail(path, "result record with mismatched bench name");
      }
      if (!records[i]["analytics"].is_null()) {
        std::string why;
        if (!ValidAnalyticsSummary(records[i]["analytics"], &why)) {
          return Fail(path, "result record " + std::to_string(i) + ": " + why);
        }
      }
      const std::string where = "result record " + std::to_string(i);
      // Scheduler-comparison fields (bench_parallel_scaling --baseline).
      const Json& sched = records[i]["scheduler"];
      if (!sched.is_null()) {
        if (sched.type() != Json::Type::kString ||
            (sched.as_string() != "serial" && sched.as_string() != "level-sync" &&
             sched.as_string() != "steal")) {
          return Fail(path, where + ": \"scheduler\" is not serial|level-sync|steal");
        }
      }
      const Json& steal = records[i]["steal"];
      if (!steal.is_null()) {
        if (!steal.is_object()) {
          return Fail(path, where + ": \"steal\" is not an object");
        }
        for (const char* key : {"chunks", "misses", "idle_ns"}) {
          if (steal[key].type() != Json::Type::kInt || steal[key].as_int() < 0) {
            return Fail(path, where + ": steal \"" + key +
                                  "\" is not a non-negative integer");
          }
        }
      }
      const Json& ssp = records[i]["steal_speedup"];
      if (!ssp.is_null() && (!IsNumber(ssp) || ssp.as_double() <= 0)) {
        return Fail(path, where + ": \"steal_speedup\" is not a positive number");
      }
      // Hash-compaction fields (bench_ooc compacted pass).
      const Json& cp = records[i]["collision_probability"];
      if (!cp.is_null() &&
          (!IsNumber(cp) || cp.as_double() < 0 || cp.as_double() > 1)) {
        return Fail(path, where + ": \"collision_probability\" is not in [0,1]");
      }
      if (!records[i]["hash_compact"].is_null() &&
          !records[i]["hash_compact"].is_object()) {
        return Fail(path, where + ": \"hash_compact\" is not a result object");
      }
      ++results;
    } else if (type != "progress" && type != "report") {
      return Fail(path, "unexpected record type: " + type);
    }
  }
  if (results == 0) {
    return Fail(path, "no result records");
  }
  if (static_cast<uint64_t>(summary["results"].as_int()) != results) {
    return Fail(path, "summary result count does not match rows");
  }
  std::printf("%s: ok (%llu results, bench %s)\n", path.c_str(),
              static_cast<unsigned long long>(results), bench.c_str());
  return 0;
}

// A captured sandtable_serve frame stream (see src/serve/wire.h). The serve
// smoke test pipes a client connection's frames to a file and gates on this.
int ValidateServe(const std::string& path, const std::string& content) {
  std::istringstream in(content);
  std::string line;
  size_t lineno = 0;
  size_t acks = 0;
  size_t results = 0;
  size_t progress = 0;
  bool first = true;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    auto rec = Json::Parse(line);
    if (!rec.ok()) {
      return Fail(path, "line " + std::to_string(lineno) + " does not parse: " + rec.error());
    }
    const Json& frame = rec.value();
    if (frame["type"].type() != Json::Type::kString) {
      return Fail(path, "line " + std::to_string(lineno) + " has no \"type\"");
    }
    const std::string type = frame["type"].as_string();
    if (first) {
      if (type != "hello") {
        return Fail(path, "first frame is not the hello (got " + type + ")");
      }
      first = false;
      continue;
    }
    if (type == "ack") {
      ++acks;
    } else if (type == "started" || type == "progress" || type == "result" ||
               type == "log") {
      if (frame["job"].type() != Json::Type::kInt) {
        return Fail(path, "line " + std::to_string(lineno) + ": " + type +
                              " frame without an integer \"job\"");
      }
      if (type == "progress") {
        ++progress;
      }
      if (type == "result") {
        const std::string status = frame["status"].type() == Json::Type::kString
                                       ? frame["status"].as_string()
                                       : "";
        if (status != "done" && status != "cancelled" && status != "failed") {
          return Fail(path, "line " + std::to_string(lineno) +
                                ": result status \"" + status + "\"");
        }
        ++results;
      }
    } else if (type != "error" && type != "pong" && type != "stats" &&
               type != "status") {
      return Fail(path, "unexpected frame type: " + type);
    }
  }
  if (first) {
    return Fail(path, "empty capture");
  }
  if (acks == 0) {
    return Fail(path, "no ack frames");
  }
  if (results == 0) {
    return Fail(path, "no result frames");
  }
  std::printf("%s: ok (%zu acks, %zu results, %zu progress frames)\n",
              path.c_str(), acks, results, progress);
  return 0;
}

// A Chrome trace-event file written by obs::Tracer::WriteChromeTrace.
int ValidateTrace(const std::string& path, const std::string& content,
                  const std::vector<std::string>& expect_spans,
                  size_t expect_lanes) {
  auto doc = Json::Parse(content);
  if (!doc.ok()) {
    return Fail(path, "not valid JSON: " + doc.error());
  }
  const Json& events = doc.value()["traceEvents"];
  if (events.type() != Json::Type::kArray) {
    return Fail(path, "no \"traceEvents\" array");
  }
  if (events.size() == 0) {
    return Fail(path, "\"traceEvents\" array is empty");
  }
  if (doc.value()["metadata"]["run_id"].type() != Json::Type::kString ||
      doc.value()["metadata"]["run_id"].as_string().empty()) {
    return Fail(path, "metadata.run_id missing");
  }
  size_t complete = 0;
  std::set<std::string> span_names;
  std::set<int64_t> lanes;  // tids carrying at least one complete span
  for (size_t i = 0; i < events.size(); ++i) {
    const Json& e = events[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (e["ph"].type() != Json::Type::kString) {
      return Fail(path, where + " has no \"ph\"");
    }
    if (e["name"].type() != Json::Type::kString) {
      return Fail(path, where + " has no \"name\"");
    }
    if (!IsNumber(e["ts"]) || !IsNumber(e["pid"]) || !IsNumber(e["tid"])) {
      return Fail(path, where + " is missing ts/pid/tid");
    }
    if (e["ph"].as_string() == "X") {
      if (!IsNumber(e["dur"])) {
        return Fail(path, where + " is a complete span without \"dur\"");
      }
      ++complete;
      span_names.insert(e["name"].as_string());
      lanes.insert(e["tid"].as_int());
    }
  }
  if (complete == 0) {
    return Fail(path, "no complete (\"X\") spans");
  }
  for (const std::string& name : expect_spans) {
    if (span_names.count(name) == 0) {
      return Fail(path, "expected span \"" + name + "\" not present");
    }
  }
  if (lanes.size() < expect_lanes) {
    return Fail(path, "expected spans on >= " + std::to_string(expect_lanes) +
                          " thread lanes, saw " + std::to_string(lanes.size()));
  }
  std::printf("%s: ok (%zu events, %zu complete spans, %zu span names, %zu lanes)\n",
              path.c_str(), events.size(), complete, span_names.size(),
              lanes.size());
  return 0;
}

// An exploration-profile document written by `--analytics-out`
// (obs::ExplorationProfile::ToJson plus the type/run_id/engine/spec stamp).
int ValidateAnalytics(const std::string& path, const std::string& content) {
  auto doc = Json::Parse(content);
  if (!doc.ok()) {
    return Fail(path, "not valid JSON: " + doc.error());
  }
  const Json& a = doc.value();
  if (!a.is_object()) {
    return Fail(path, "not a JSON object");
  }
  if (a["type"].type() != Json::Type::kString ||
      a["type"].as_string() != "analytics") {
    return Fail(path, "type is not \"analytics\"");
  }
  if (a["schema_version"].as_int() != 1) {
    return Fail(path, "unsupported schema_version");
  }
  if (a["run_id"].type() != Json::Type::kString || a["run_id"].as_string().empty()) {
    return Fail(path, "run_id missing");
  }
  const Json& actions = a["actions"];
  if (actions.type() != Json::Type::kArray || actions.size() == 0) {
    return Fail(path, "no \"actions\" array");
  }
  for (size_t i = 0; i < actions.size(); ++i) {
    const Json& act = actions[i];
    const std::string where = "actions[" + std::to_string(i) + "]";
    if (act["action"].type() != Json::Type::kString ||
        act["action"].as_string().empty()) {
      return Fail(path, where + " has no \"action\" name");
    }
    for (const char* key :
         {"enabled", "fired", "fanout_max", "duplicates", "expand_ns"}) {
      if (act[key].type() != Json::Type::kInt || act[key].as_int() < 0) {
        return Fail(path, where + " \"" + key +
                              "\" is not a non-negative integer");
      }
    }
  }
  if (a["invariants"].type() != Json::Type::kArray) {
    return Fail(path, "no \"invariants\" array");
  }
  if (a["depth_histogram"].type() != Json::Type::kArray) {
    return Fail(path, "no \"depth_histogram\" array");
  }
  if (!IsNumber(a["collision_probability"]) ||
      a["collision_probability"].as_double() < 0 ||
      a["collision_probability"].as_double() > 1) {
    return Fail(path, "\"collision_probability\" is not a number in [0,1]");
  }
  if (a["distinct_states"].type() != Json::Type::kInt ||
      a["distinct_states"].as_int() < 0) {
    return Fail(path, "\"distinct_states\" is not a non-negative integer");
  }
  std::printf("%s: ok (%zu actions, %zu invariants, %zu depth buckets)\n",
              path.c_str(), actions.size(), a["invariants"].size(),
              a["depth_histogram"].size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s FILE [--gbench | --serve | --analytics | --trace"
                 " [--expect-span NAME]... [--expect-lanes N]]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  bool gbench = false;
  bool serve = false;
  bool trace = false;
  bool analytics = false;
  std::vector<std::string> expect_spans;
  size_t expect_lanes = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gbench") == 0) {
      gbench = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--analytics") == 0) {
      analytics = true;
    } else if (std::strcmp(argv[i], "--expect-span") == 0 && i + 1 < argc) {
      expect_spans.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--expect-lanes") == 0 && i + 1 < argc) {
      expect_lanes = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  std::ifstream f(path);
  if (!f) {
    return Fail(path, "cannot open");
  }
  std::stringstream ss;
  ss << f.rdbuf();
  if (gbench) {
    return ValidateGbench(path, ss.str());
  }
  if (serve) {
    return ValidateServe(path, ss.str());
  }
  if (trace) {
    return ValidateTrace(path, ss.str(), expect_spans, expect_lanes);
  }
  if (analytics) {
    return ValidateAnalytics(path, ss.str());
  }
  return ValidateJsonl(path, ss.str());
}
