file(REMOVE_RECURSE
  "CMakeFiles/bench_alg1_ranking.dir/bench_alg1_ranking.cc.o"
  "CMakeFiles/bench_alg1_ranking.dir/bench_alg1_ranking.cc.o.d"
  "bench_alg1_ranking"
  "bench_alg1_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg1_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
