
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_pysyncobj4.cc" "bench/CMakeFiles/bench_fig6_pysyncobj4.dir/bench_fig6_pysyncobj4.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_pysyncobj4.dir/bench_fig6_pysyncobj4.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/conformance/CMakeFiles/st_conformance.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/st_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/st_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/st_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/st_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/raftspec/CMakeFiles/st_raftspec.dir/DependInfo.cmake"
  "/root/repo/build/src/zabspec/CMakeFiles/st_zabspec.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/st_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/st_net.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/st_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/st_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
