file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pysyncobj4.dir/bench_fig6_pysyncobj4.cc.o"
  "CMakeFiles/bench_fig6_pysyncobj4.dir/bench_fig6_pysyncobj4.cc.o.d"
  "bench_fig6_pysyncobj4"
  "bench_fig6_pysyncobj4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pysyncobj4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
