# Empty compiler generated dependencies file for bench_fig6_pysyncobj4.
# This may be replaced when dependencies are built.
