file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_wraft12.dir/bench_fig7_wraft12.cc.o"
  "CMakeFiles/bench_fig7_wraft12.dir/bench_fig7_wraft12.cc.o.d"
  "bench_fig7_wraft12"
  "bench_fig7_wraft12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_wraft12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
