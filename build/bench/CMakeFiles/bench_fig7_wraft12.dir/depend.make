# Empty dependencies file for bench_fig7_wraft12.
# This may be replaced when dependencies are built.
