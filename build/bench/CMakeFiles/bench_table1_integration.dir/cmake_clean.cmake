file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_integration.dir/bench_table1_integration.cc.o"
  "CMakeFiles/bench_table1_integration.dir/bench_table1_integration.cc.o.d"
  "bench_table1_integration"
  "bench_table1_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
