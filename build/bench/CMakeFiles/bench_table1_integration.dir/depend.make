# Empty dependencies file for bench_table1_integration.
# This may be replaced when dependencies are built.
