# Empty dependencies file for bench_table2_bugs.
# This may be replaced when dependencies are built.
