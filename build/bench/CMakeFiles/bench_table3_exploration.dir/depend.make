# Empty dependencies file for bench_table3_exploration.
# This may be replaced when dependencies are built.
