file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_speedup.dir/bench_table4_speedup.cc.o"
  "CMakeFiles/bench_table4_speedup.dir/bench_table4_speedup.cc.o.d"
  "bench_table4_speedup"
  "bench_table4_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
