file(REMOVE_RECURSE
  "CMakeFiles/conformance_workflow.dir/conformance_workflow.cpp.o"
  "CMakeFiles/conformance_workflow.dir/conformance_workflow.cpp.o.d"
  "conformance_workflow"
  "conformance_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformance_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
