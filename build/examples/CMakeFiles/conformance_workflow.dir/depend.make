# Empty dependencies file for conformance_workflow.
# This may be replaced when dependencies are built.
