file(REMOVE_RECURSE
  "CMakeFiles/intercept_demo.dir/intercept_demo.cpp.o"
  "CMakeFiles/intercept_demo.dir/intercept_demo.cpp.o.d"
  "intercept_demo"
  "intercept_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intercept_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
