# Empty compiler generated dependencies file for intercept_demo.
# This may be replaced when dependencies are built.
