file(REMOVE_RECURSE
  "CMakeFiles/linearizability_check.dir/linearizability_check.cpp.o"
  "CMakeFiles/linearizability_check.dir/linearizability_check.cpp.o.d"
  "linearizability_check"
  "linearizability_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearizability_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
