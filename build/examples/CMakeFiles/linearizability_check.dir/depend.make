# Empty dependencies file for linearizability_check.
# This may be replaced when dependencies are built.
