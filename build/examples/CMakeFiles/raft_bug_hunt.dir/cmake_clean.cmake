file(REMOVE_RECURSE
  "CMakeFiles/raft_bug_hunt.dir/raft_bug_hunt.cpp.o"
  "CMakeFiles/raft_bug_hunt.dir/raft_bug_hunt.cpp.o.d"
  "raft_bug_hunt"
  "raft_bug_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_bug_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
