# Empty dependencies file for raft_bug_hunt.
# This may be replaced when dependencies are built.
