file(REMOVE_RECURSE
  "CMakeFiles/sandtable_cli.dir/sandtable_cli.cpp.o"
  "CMakeFiles/sandtable_cli.dir/sandtable_cli.cpp.o.d"
  "sandtable_cli"
  "sandtable_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandtable_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
