# Empty dependencies file for sandtable_cli.
# This may be replaced when dependencies are built.
