file(REMOVE_RECURSE
  "CMakeFiles/zab_election.dir/zab_election.cpp.o"
  "CMakeFiles/zab_election.dir/zab_election.cpp.o.d"
  "zab_election"
  "zab_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zab_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
