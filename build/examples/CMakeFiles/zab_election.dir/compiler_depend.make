# Empty compiler generated dependencies file for zab_election.
# This may be replaced when dependencies are built.
