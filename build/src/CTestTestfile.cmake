# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("value")
subdirs("spec")
subdirs("mc")
subdirs("net")
subdirs("raftspec")
subdirs("zabspec")
subdirs("sim")
subdirs("engine")
subdirs("systems")
subdirs("trace")
subdirs("conformance")
subdirs("lin")
subdirs("interceptor")
