file(REMOVE_RECURSE
  "CMakeFiles/st_conformance.dir/bug_catalog.cc.o"
  "CMakeFiles/st_conformance.dir/bug_catalog.cc.o.d"
  "CMakeFiles/st_conformance.dir/checker.cc.o"
  "CMakeFiles/st_conformance.dir/checker.cc.o.d"
  "CMakeFiles/st_conformance.dir/observer.cc.o"
  "CMakeFiles/st_conformance.dir/observer.cc.o.d"
  "CMakeFiles/st_conformance.dir/raft_harness.cc.o"
  "CMakeFiles/st_conformance.dir/raft_harness.cc.o.d"
  "CMakeFiles/st_conformance.dir/zab_harness.cc.o"
  "CMakeFiles/st_conformance.dir/zab_harness.cc.o.d"
  "libst_conformance.a"
  "libst_conformance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
