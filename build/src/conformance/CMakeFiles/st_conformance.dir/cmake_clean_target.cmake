file(REMOVE_RECURSE
  "libst_conformance.a"
)
