# Empty dependencies file for st_conformance.
# This may be replaced when dependencies are built.
