file(REMOVE_RECURSE
  "CMakeFiles/st_engine.dir/engine.cc.o"
  "CMakeFiles/st_engine.dir/engine.cc.o.d"
  "CMakeFiles/st_engine.dir/proxy.cc.o"
  "CMakeFiles/st_engine.dir/proxy.cc.o.d"
  "libst_engine.a"
  "libst_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
