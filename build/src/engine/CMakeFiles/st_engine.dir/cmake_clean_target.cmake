file(REMOVE_RECURSE
  "libst_engine.a"
)
