# Empty compiler generated dependencies file for st_engine.
# This may be replaced when dependencies are built.
