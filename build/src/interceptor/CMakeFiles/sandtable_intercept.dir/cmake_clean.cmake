file(REMOVE_RECURSE
  "CMakeFiles/sandtable_intercept.dir/intercept.cc.o"
  "CMakeFiles/sandtable_intercept.dir/intercept.cc.o.d"
  "libsandtable_intercept.pdb"
  "libsandtable_intercept.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandtable_intercept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
