# Empty dependencies file for sandtable_intercept.
# This may be replaced when dependencies are built.
