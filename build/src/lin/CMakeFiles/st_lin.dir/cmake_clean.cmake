file(REMOVE_RECURSE
  "CMakeFiles/st_lin.dir/linearizability.cc.o"
  "CMakeFiles/st_lin.dir/linearizability.cc.o.d"
  "libst_lin.a"
  "libst_lin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_lin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
