file(REMOVE_RECURSE
  "libst_lin.a"
)
