# Empty dependencies file for st_lin.
# This may be replaced when dependencies are built.
