
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/bfs.cc" "src/mc/CMakeFiles/st_mc.dir/bfs.cc.o" "gcc" "src/mc/CMakeFiles/st_mc.dir/bfs.cc.o.d"
  "/root/repo/src/mc/expand.cc" "src/mc/CMakeFiles/st_mc.dir/expand.cc.o" "gcc" "src/mc/CMakeFiles/st_mc.dir/expand.cc.o.d"
  "/root/repo/src/mc/random_walk.cc" "src/mc/CMakeFiles/st_mc.dir/random_walk.cc.o" "gcc" "src/mc/CMakeFiles/st_mc.dir/random_walk.cc.o.d"
  "/root/repo/src/mc/ranking.cc" "src/mc/CMakeFiles/st_mc.dir/ranking.cc.o" "gcc" "src/mc/CMakeFiles/st_mc.dir/ranking.cc.o.d"
  "/root/repo/src/mc/stateless.cc" "src/mc/CMakeFiles/st_mc.dir/stateless.cc.o" "gcc" "src/mc/CMakeFiles/st_mc.dir/stateless.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/st_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/st_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/st_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
