file(REMOVE_RECURSE
  "CMakeFiles/st_mc.dir/bfs.cc.o"
  "CMakeFiles/st_mc.dir/bfs.cc.o.d"
  "CMakeFiles/st_mc.dir/expand.cc.o"
  "CMakeFiles/st_mc.dir/expand.cc.o.d"
  "CMakeFiles/st_mc.dir/random_walk.cc.o"
  "CMakeFiles/st_mc.dir/random_walk.cc.o.d"
  "CMakeFiles/st_mc.dir/ranking.cc.o"
  "CMakeFiles/st_mc.dir/ranking.cc.o.d"
  "CMakeFiles/st_mc.dir/stateless.cc.o"
  "CMakeFiles/st_mc.dir/stateless.cc.o.d"
  "libst_mc.a"
  "libst_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
