file(REMOVE_RECURSE
  "libst_mc.a"
)
