# Empty compiler generated dependencies file for st_mc.
# This may be replaced when dependencies are built.
