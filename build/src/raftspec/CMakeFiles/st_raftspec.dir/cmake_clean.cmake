file(REMOVE_RECURSE
  "CMakeFiles/st_raftspec.dir/raft_common.cc.o"
  "CMakeFiles/st_raftspec.dir/raft_common.cc.o.d"
  "CMakeFiles/st_raftspec.dir/raft_invariants.cc.o"
  "CMakeFiles/st_raftspec.dir/raft_invariants.cc.o.d"
  "CMakeFiles/st_raftspec.dir/raft_params.cc.o"
  "CMakeFiles/st_raftspec.dir/raft_params.cc.o.d"
  "CMakeFiles/st_raftspec.dir/raft_spec.cc.o"
  "CMakeFiles/st_raftspec.dir/raft_spec.cc.o.d"
  "libst_raftspec.a"
  "libst_raftspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_raftspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
