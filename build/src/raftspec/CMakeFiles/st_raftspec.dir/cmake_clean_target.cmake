file(REMOVE_RECURSE
  "libst_raftspec.a"
)
