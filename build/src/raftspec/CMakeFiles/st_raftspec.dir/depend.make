# Empty dependencies file for st_raftspec.
# This may be replaced when dependencies are built.
