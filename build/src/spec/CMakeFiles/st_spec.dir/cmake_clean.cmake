file(REMOVE_RECURSE
  "CMakeFiles/st_spec.dir/spec.cc.o"
  "CMakeFiles/st_spec.dir/spec.cc.o.d"
  "libst_spec.a"
  "libst_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
