file(REMOVE_RECURSE
  "libst_spec.a"
)
