# Empty dependencies file for st_spec.
# This may be replaced when dependencies are built.
