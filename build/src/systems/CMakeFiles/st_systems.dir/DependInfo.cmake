
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/raft_node.cc" "src/systems/CMakeFiles/st_systems.dir/raft_node.cc.o" "gcc" "src/systems/CMakeFiles/st_systems.dir/raft_node.cc.o.d"
  "/root/repo/src/systems/zab_node.cc" "src/systems/CMakeFiles/st_systems.dir/zab_node.cc.o" "gcc" "src/systems/CMakeFiles/st_systems.dir/zab_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/raftspec/CMakeFiles/st_raftspec.dir/DependInfo.cmake"
  "/root/repo/build/src/zabspec/CMakeFiles/st_zabspec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/st_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/st_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/st_net.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/st_value.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
