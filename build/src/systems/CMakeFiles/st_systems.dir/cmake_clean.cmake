file(REMOVE_RECURSE
  "CMakeFiles/st_systems.dir/raft_node.cc.o"
  "CMakeFiles/st_systems.dir/raft_node.cc.o.d"
  "CMakeFiles/st_systems.dir/zab_node.cc.o"
  "CMakeFiles/st_systems.dir/zab_node.cc.o.d"
  "libst_systems.a"
  "libst_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
