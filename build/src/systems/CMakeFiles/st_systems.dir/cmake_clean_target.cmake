file(REMOVE_RECURSE
  "libst_systems.a"
)
