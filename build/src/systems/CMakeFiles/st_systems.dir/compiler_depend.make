# Empty compiler generated dependencies file for st_systems.
# This may be replaced when dependencies are built.
