file(REMOVE_RECURSE
  "CMakeFiles/st_trace.dir/replay.cc.o"
  "CMakeFiles/st_trace.dir/replay.cc.o.d"
  "libst_trace.a"
  "libst_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
