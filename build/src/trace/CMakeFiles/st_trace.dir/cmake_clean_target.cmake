file(REMOVE_RECURSE
  "libst_trace.a"
)
