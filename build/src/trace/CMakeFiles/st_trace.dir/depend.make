# Empty dependencies file for st_trace.
# This may be replaced when dependencies are built.
