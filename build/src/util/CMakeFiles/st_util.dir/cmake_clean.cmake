file(REMOVE_RECURSE
  "CMakeFiles/st_util.dir/json.cc.o"
  "CMakeFiles/st_util.dir/json.cc.o.d"
  "CMakeFiles/st_util.dir/logging.cc.o"
  "CMakeFiles/st_util.dir/logging.cc.o.d"
  "CMakeFiles/st_util.dir/strings.cc.o"
  "CMakeFiles/st_util.dir/strings.cc.o.d"
  "libst_util.a"
  "libst_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
