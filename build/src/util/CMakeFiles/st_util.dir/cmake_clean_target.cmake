file(REMOVE_RECURSE
  "libst_util.a"
)
