# Empty compiler generated dependencies file for st_util.
# This may be replaced when dependencies are built.
