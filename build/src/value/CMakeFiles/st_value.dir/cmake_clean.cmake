file(REMOVE_RECURSE
  "CMakeFiles/st_value.dir/value.cc.o"
  "CMakeFiles/st_value.dir/value.cc.o.d"
  "libst_value.a"
  "libst_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
