file(REMOVE_RECURSE
  "libst_value.a"
)
