# Empty compiler generated dependencies file for st_value.
# This may be replaced when dependencies are built.
