file(REMOVE_RECURSE
  "CMakeFiles/st_zabspec.dir/zab_common.cc.o"
  "CMakeFiles/st_zabspec.dir/zab_common.cc.o.d"
  "CMakeFiles/st_zabspec.dir/zab_invariants.cc.o"
  "CMakeFiles/st_zabspec.dir/zab_invariants.cc.o.d"
  "CMakeFiles/st_zabspec.dir/zab_spec.cc.o"
  "CMakeFiles/st_zabspec.dir/zab_spec.cc.o.d"
  "libst_zabspec.a"
  "libst_zabspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_zabspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
