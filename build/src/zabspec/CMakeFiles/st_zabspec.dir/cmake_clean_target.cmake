file(REMOVE_RECURSE
  "libst_zabspec.a"
)
