# Empty dependencies file for st_zabspec.
# This may be replaced when dependencies are built.
