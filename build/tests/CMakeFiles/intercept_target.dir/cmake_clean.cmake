file(REMOVE_RECURSE
  "CMakeFiles/intercept_target.dir/intercept_target.cc.o"
  "CMakeFiles/intercept_target.dir/intercept_target.cc.o.d"
  "intercept_target"
  "intercept_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intercept_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
