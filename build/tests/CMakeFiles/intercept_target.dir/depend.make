# Empty dependencies file for intercept_target.
# This may be replaced when dependencies are built.
