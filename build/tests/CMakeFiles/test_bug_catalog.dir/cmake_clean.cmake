file(REMOVE_RECURSE
  "CMakeFiles/test_bug_catalog.dir/test_bug_catalog.cc.o"
  "CMakeFiles/test_bug_catalog.dir/test_bug_catalog.cc.o.d"
  "test_bug_catalog"
  "test_bug_catalog.pdb"
  "test_bug_catalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bug_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
