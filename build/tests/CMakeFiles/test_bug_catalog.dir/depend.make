# Empty dependencies file for test_bug_catalog.
# This may be replaced when dependencies are built.
