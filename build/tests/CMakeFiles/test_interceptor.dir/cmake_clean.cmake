file(REMOVE_RECURSE
  "CMakeFiles/test_interceptor.dir/test_interceptor.cc.o"
  "CMakeFiles/test_interceptor.dir/test_interceptor.cc.o.d"
  "test_interceptor"
  "test_interceptor.pdb"
  "test_interceptor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interceptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
