# Empty dependencies file for test_interceptor.
# This may be replaced when dependencies are built.
