file(REMOVE_RECURSE
  "CMakeFiles/test_lin.dir/test_lin.cc.o"
  "CMakeFiles/test_lin.dir/test_lin.cc.o.d"
  "test_lin"
  "test_lin.pdb"
  "test_lin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
