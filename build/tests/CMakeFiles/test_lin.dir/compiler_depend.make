# Empty compiler generated dependencies file for test_lin.
# This may be replaced when dependencies are built.
