file(REMOVE_RECURSE
  "CMakeFiles/test_raft_bugs.dir/test_raft_bugs.cc.o"
  "CMakeFiles/test_raft_bugs.dir/test_raft_bugs.cc.o.d"
  "test_raft_bugs"
  "test_raft_bugs.pdb"
  "test_raft_bugs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raft_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
