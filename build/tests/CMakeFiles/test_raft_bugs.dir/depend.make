# Empty dependencies file for test_raft_bugs.
# This may be replaced when dependencies are built.
