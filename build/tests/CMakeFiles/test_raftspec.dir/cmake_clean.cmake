file(REMOVE_RECURSE
  "CMakeFiles/test_raftspec.dir/test_raftspec.cc.o"
  "CMakeFiles/test_raftspec.dir/test_raftspec.cc.o.d"
  "test_raftspec"
  "test_raftspec.pdb"
  "test_raftspec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raftspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
