# Empty dependencies file for test_raftspec.
# This may be replaced when dependencies are built.
