file(REMOVE_RECURSE
  "CMakeFiles/test_ranking.dir/test_ranking.cc.o"
  "CMakeFiles/test_ranking.dir/test_ranking.cc.o.d"
  "test_ranking"
  "test_ranking.pdb"
  "test_ranking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
