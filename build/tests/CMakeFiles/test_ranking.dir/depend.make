# Empty dependencies file for test_ranking.
# This may be replaced when dependencies are built.
