
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_specnet.cc" "tests/CMakeFiles/test_specnet.dir/test_specnet.cc.o" "gcc" "tests/CMakeFiles/test_specnet.dir/test_specnet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/st_net.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/st_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/st_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
