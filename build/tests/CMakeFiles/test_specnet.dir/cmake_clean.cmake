file(REMOVE_RECURSE
  "CMakeFiles/test_specnet.dir/test_specnet.cc.o"
  "CMakeFiles/test_specnet.dir/test_specnet.cc.o.d"
  "test_specnet"
  "test_specnet.pdb"
  "test_specnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_specnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
