# Empty dependencies file for test_specnet.
# This may be replaced when dependencies are built.
