file(REMOVE_RECURSE
  "CMakeFiles/test_value_properties.dir/test_value_properties.cc.o"
  "CMakeFiles/test_value_properties.dir/test_value_properties.cc.o.d"
  "test_value_properties"
  "test_value_properties.pdb"
  "test_value_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
