file(REMOVE_RECURSE
  "CMakeFiles/test_zab_conformance.dir/test_zab_conformance.cc.o"
  "CMakeFiles/test_zab_conformance.dir/test_zab_conformance.cc.o.d"
  "test_zab_conformance"
  "test_zab_conformance.pdb"
  "test_zab_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zab_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
