# Empty dependencies file for test_zab_conformance.
# This may be replaced when dependencies are built.
