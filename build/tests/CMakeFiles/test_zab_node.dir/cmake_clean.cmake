file(REMOVE_RECURSE
  "CMakeFiles/test_zab_node.dir/test_zab_node.cc.o"
  "CMakeFiles/test_zab_node.dir/test_zab_node.cc.o.d"
  "test_zab_node"
  "test_zab_node.pdb"
  "test_zab_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zab_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
