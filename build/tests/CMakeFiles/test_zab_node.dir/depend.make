# Empty dependencies file for test_zab_node.
# This may be replaced when dependencies are built.
