file(REMOVE_RECURSE
  "CMakeFiles/test_zabspec.dir/test_zabspec.cc.o"
  "CMakeFiles/test_zabspec.dir/test_zabspec.cc.o.d"
  "test_zabspec"
  "test_zabspec.pdb"
  "test_zabspec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zabspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
