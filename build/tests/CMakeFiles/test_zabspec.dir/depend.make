# Empty dependencies file for test_zabspec.
# This may be replaced when dependencies are built.
