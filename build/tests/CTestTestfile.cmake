# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_value[1]_include.cmake")
include("/root/repo/build/tests/test_specnet[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_mc[1]_include.cmake")
include("/root/repo/build/tests/test_ranking[1]_include.cmake")
include("/root/repo/build/tests/test_raftspec[1]_include.cmake")
include("/root/repo/build/tests/test_raft_bugs[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_conformance[1]_include.cmake")
include("/root/repo/build/tests/test_zabspec[1]_include.cmake")
include("/root/repo/build/tests/test_lin[1]_include.cmake")
include("/root/repo/build/tests/test_zab_conformance[1]_include.cmake")
include("/root/repo/build/tests/test_interceptor[1]_include.cmake")
include("/root/repo/build/tests/test_bug_catalog[1]_include.cmake")
include("/root/repo/build/tests/test_zab_node[1]_include.cmake")
include("/root/repo/build/tests/test_value_properties[1]_include.cmake")
