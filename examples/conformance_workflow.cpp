// Conformance checking in isolation (§3.2, Figure 4): the specification is
// deliberately out of sync with the implementation — the implementation
// carries PySyncObj#4's wrong success hint while the spec models the fixed
// behaviour. SandTable's conformance checker finds the discrepancy, reports
// the divergent variable and the exact event sequence leading to it, and
// after "fixing" the specification (aligning the switches) the check passes.
#include <cstdio>

#include "src/conformance/raft_harness.h"

using namespace sandtable;               // NOLINT(build/namespaces): example brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

namespace {

RaftHarness BaseHarness() {
  RaftHarness h = MakeRaftHarness("pysyncobj", /*with_bugs=*/false);
  h.impl_bugs = systems::RaftImplBugs{};
  h.profile.budget.max_timeouts = 4;
  h.profile.budget.max_client_requests = 2;
  h.profile.budget.max_crashes = 0;
  h.profile.budget.max_restarts = 0;
  h.profile.budget.max_partitions = 0;
  h.profile.budget.max_term = 2;
  return h;
}

}  // namespace

int main() {
  // The implementation has the bug; the first draft of the spec does not.
  RaftHarness impl_side = BaseHarness();
  impl_side.profile.bugs.pso4_match_regress = true;

  RaftHarness spec_draft = BaseHarness();  // out of sync with the implementation

  ConformanceOptions opts;
  opts.max_traces = 500;
  opts.max_trace_depth = 30;
  opts.time_budget_s = 120;

  std::printf("round 1: checking the first-draft specification...\n");
  const Spec draft = MakeHarnessSpec(spec_draft);
  const ConformanceReport r1 = CheckConformance(draft, MakeRaftEngineFactory(impl_side),
                                                MakeRaftObserver(spec_draft), opts);
  if (r1.conforms) {
    std::printf("unexpectedly conformed — nothing to fix\n");
    return 1;
  }
  std::printf("discrepancy after %d traces (%llu events replayed):\n%s\n\n",
              r1.traces_replayed, static_cast<unsigned long long>(r1.events_replayed),
              r1.discrepancy->ToString().c_str());
  std::printf("event sequence that exposed it:\n");
  for (size_t i = 1; i < r1.failing_trace.size() && i <= r1.discrepancy->step; ++i) {
    std::printf("  %2zu: %s\n", i, r1.failing_trace[i].label.ToString().c_str());
  }

  // The developer inspects the diff, finds the implementation computes the
  // success hint as prev+len for non-empty batches, and revises the spec to
  // describe the actual behaviour (Figure 4's red/green lines).
  std::printf("\nrevising the specification to match the implementation...\n");
  RaftHarness spec_fixed = impl_side;  // switches now aligned

  std::printf("round 2: re-running conformance checking...\n");
  const Spec revised = MakeHarnessSpec(spec_fixed);
  const ConformanceReport r2 = CheckConformance(revised, MakeRaftEngineFactory(impl_side),
                                                MakeRaftObserver(spec_fixed), opts);
  if (!r2.conforms) {
    std::printf("still diverging:\n%s\n", r2.discrepancy->ToString().c_str());
    return 1;
  }
  std::printf("no discrepancy in %d traces (%llu events) — specification accepted\n",
              r2.traces_replayed, static_cast<unsigned long long>(r2.events_replayed));
  return 0;
}
