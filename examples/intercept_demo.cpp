// LD_PRELOAD interception demo (Appendix A.1): run an unmodified target
// binary under the SandTable interceptor and drive its clock from outside,
// the way the engine fires timeout events without waiting for the wall clock.
//
// Paths to the interceptor library and the target binary are baked in at
// build time (see examples/CMakeLists.txt).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#ifndef SANDTABLE_INTERCEPT_SO
#define SANDTABLE_INTERCEPT_SO "libsandtable_intercept.so"
#endif
#ifndef SANDTABLE_INTERCEPT_TARGET
#define SANDTABLE_INTERCEPT_TARGET "./intercept_target"
#endif

namespace {

int Run(const std::string& env_prefix) {
  const std::string cmd = env_prefix + " LD_PRELOAD=" + SANDTABLE_INTERCEPT_SO + " " +
                          SANDTABLE_INTERCEPT_TARGET;
  std::printf("$ %s\n", cmd.c_str());
  const int rc = std::system(cmd.c_str());
  std::printf("\n");
  return rc;
}

}  // namespace

int main() {
  std::printf("--- passthrough (interception disabled): real clock, real 100ms sleep ---\n");
  Run("SANDTABLE_VCLOCK=0");

  std::printf("--- virtual clock from t=0: the sleep advances time instantly ---\n");
  Run("SANDTABLE_VCLOCK=1 SANDTABLE_VCLOCK_START=0");

  std::printf("--- engine command channel: jump the clock to t=42s via the control file ---\n");
  const char* control = "/tmp/sandtable_demo_vclock";
  {
    std::ofstream f(control);
    f << 42000000000LL;
  }
  Run(std::string("SANDTABLE_VCLOCK=1 SANDTABLE_VCLOCK_FILE=") + control);
  std::remove(control);
  return 0;
}
