// Xraft-KV#1 (read linearizability) end to end: model check the KV profile,
// extract the violating history from the counterexample, and double-check it
// with the standalone Wing–Gong linearizability checker.
#include <cstdio>

#include "src/conformance/raft_harness.h"
#include "src/raftspec/raft_common.h"
#include "src/lin/linearizability.h"
#include "src/mc/bfs.h"

using namespace sandtable;               // NOLINT(build/namespaces): example brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

int main() {
  RaftHarness h = MakeRaftHarness("xraftkv", /*with_bugs=*/true);
  h.profile.budget.max_timeouts = 4;
  h.profile.budget.max_client_requests = 2;
  h.profile.budget.max_crashes = 0;
  h.profile.budget.max_restarts = 0;
  h.profile.budget.max_partitions = 1;
  h.profile.budget.max_term = 3;
  h.profile.budget.max_log_len = 3;

  std::printf("hunting the stale-read bug in the KV store...\n");
  const Spec spec = MakeHarnessSpec(h);
  BfsOptions opts;
  opts.max_distinct_states = 5000000;
  opts.time_budget_s = 300;
  const BfsResult r = BfsCheck(spec, opts);
  if (!r.violation.has_value()) {
    std::printf("no violation found\n");
    return 1;
  }
  std::printf("violated %s at depth %llu (%llu states)\n\n", r.violation->invariant.c_str(),
              static_cast<unsigned long long>(r.violation->depth),
              static_cast<unsigned long long>(r.violation->states_explored));

  // Rebuild the client-visible history from the trace: every committed put
  // and the offending read, in trace order. Puts linearize at commit time;
  // the spec's atomic actions give them instantaneous intervals.
  std::vector<lin::Operation> history;
  int64_t t = 0;
  int64_t committed_so_far = 0;
  for (size_t i = 1; i < r.violation->trace.size(); ++i) {
    const TraceStep& step = r.violation->trace[i];
    t += 2;
    // Track puts as they become globally committed.
    int64_t max_commit = 0;
    for (int node = 0; node < h.profile.config.num_servers; ++node) {
      max_commit =
          std::max(max_commit, raftspec::CommitIndex(step.state, raftspec::NodeV(node)));
    }
    while (committed_so_far < max_commit) {
      ++committed_so_far;
      // Find the committed entry's value on the node with the longest commit.
      for (int node = 0; node < h.profile.config.num_servers; ++node) {
        if (raftspec::CommitIndex(step.state, raftspec::NodeV(node)) >= committed_so_far) {
          const Value& entry =
              raftspec::EntryAt(step.state, raftspec::NodeV(node), committed_so_far);
          lin::Operation put;
          put.type = lin::Operation::Type::kPut;
          put.value = entry.field("val").int_v();
          put.invoke = t - 1;
          put.response = t;
          history.push_back(put);
          break;
        }
      }
    }
    if (step.label.action == "ClientRead") {
      lin::Operation get;
      get.type = lin::Operation::Type::kGet;
      get.value = step.label.params["val"].as_int();
      get.invoke = t + 1;
      get.response = t + 2;
      t += 2;
      history.push_back(get);
      std::printf("  read at node n%lld returned %lld\n",
                  step.label.params["node"].as_int() + 1,
                  step.label.params["val"].as_int());
    }
  }

  std::printf("\nclient-visible history (%zu operations):\n", history.size());
  for (const lin::Operation& op : history) {
    std::printf("  [%3lld,%3lld] %s %lld\n", op.invoke, op.response,
                op.type == lin::Operation::Type::kPut ? "put" : "get", op.value);
  }

  const lin::LinearizationResult lr = lin::CheckLinearizable(history);
  std::printf("\nWing-Gong checker verdict: %s (%llu configurations searched)\n",
              lr.linearizable ? "LINEARIZABLE (unexpected!)" : "NOT linearizable",
              static_cast<unsigned long long>(lr.states_explored));

  // The fixed store produces only linearizable histories.
  std::printf("\nre-checking with the ReadIndex fix applied...\n");
  h.profile.bugs.xkv1_stale_read = false;
  const BfsResult fixed = BfsCheck(MakeHarnessSpec(h), opts);
  std::printf("fixed store: %s in %llu states\n",
              fixed.violation.has_value() ? "VIOLATION" : "no violation",
              static_cast<unsigned long long>(fixed.distinct_states));
  return lr.linearizable || fixed.violation.has_value() ? 1 : 0;
}
