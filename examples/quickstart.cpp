// Quickstart: write a tiny specification, model check it, and read the
// counterexample — the specification-level half of the SandTable workflow.
//
// The spec is the classic Die Hard water-jug puzzle: a 3-gallon and a
// 5-gallon jug, and the "safety property" that the big jug never holds
// exactly 4 gallons. BFS finds the minimal 6-step trace that violates it.
#include <cstdio>

#include "src/mc/bfs.h"
#include "src/spec/spec.h"

using namespace sandtable;  // NOLINT(build/namespaces): example brevity

namespace {

Spec MakeJugSpec() {
  Spec spec;
  spec.name = "diehard";

  // The state: two variables, one per jug.
  spec.init_states.push_back(
      Value::Record({{"small", Value::Int(0)}, {"big", Value::Int(0)}}));

  auto set = [](int64_t small, int64_t big) {
    return Value::Record({{"small", Value::Int(small)}, {"big", Value::Int(big)}});
  };
  auto small = [](const State& s) { return s.field("small").int_v(); };
  auto big = [](const State& s) { return s.field("big").int_v(); };

  // Actions: fill, empty, or pour between the jugs.
  spec.actions.push_back({"FillSmall", EventKind::kInternal,
                          [=](const State& s, ActionContext& ctx) {
                            if (small(s) < 3) {
                              ctx.Emit(set(3, big(s)));
                            }
                          }});
  spec.actions.push_back({"FillBig", EventKind::kInternal,
                          [=](const State& s, ActionContext& ctx) {
                            if (big(s) < 5) {
                              ctx.Emit(set(small(s), 5));
                            }
                          }});
  spec.actions.push_back({"EmptySmall", EventKind::kInternal,
                          [=](const State& s, ActionContext& ctx) {
                            if (small(s) > 0) {
                              ctx.Emit(set(0, big(s)));
                            }
                          }});
  spec.actions.push_back({"EmptyBig", EventKind::kInternal,
                          [=](const State& s, ActionContext& ctx) {
                            if (big(s) > 0) {
                              ctx.Emit(set(small(s), 0));
                            }
                          }});
  spec.actions.push_back({"SmallToBig", EventKind::kInternal,
                          [=](const State& s, ActionContext& ctx) {
                            const int64_t amount = std::min(small(s), 5 - big(s));
                            if (amount > 0) {
                              ctx.Emit(set(small(s) - amount, big(s) + amount));
                            }
                          }});
  spec.actions.push_back({"BigToSmall", EventKind::kInternal,
                          [=](const State& s, ActionContext& ctx) {
                            const int64_t amount = std::min(big(s), 3 - small(s));
                            if (amount > 0) {
                              ctx.Emit(set(small(s) + amount, big(s) - amount));
                            }
                          }});

  // The safety property (deliberately falsifiable).
  spec.invariants.push_back({"BigJugNeverFour", [=](const State& s) { return big(s) != 4; }});
  return spec;
}

}  // namespace

int main() {
  const Spec spec = MakeJugSpec();
  std::printf("Model checking '%s' with stateful BFS...\n\n", spec.name.c_str());

  const BfsResult result = BfsCheck(spec);

  std::printf("distinct states explored: %llu\n",
              static_cast<unsigned long long>(result.distinct_states));
  if (!result.violation.has_value()) {
    std::printf("no violation found (state space %s)\n",
                result.exhausted ? "exhausted" : "bounded");
    return 0;
  }

  const Violation& v = *result.violation;
  std::printf("violated invariant: %s (depth %llu — minimal, thanks to BFS)\n\n",
              v.invariant.c_str(), static_cast<unsigned long long>(v.depth));
  std::printf("counterexample:\n%s\n", TraceToString(v.trace).c_str());
  return 0;
}
