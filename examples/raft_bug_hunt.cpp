// The full SandTable workflow (Figure 1) on the PySyncObj profile:
//
//   1. conformance-check the specification against the implementation (§3.2)
//   2. model check the specification and hit a safety violation (§3.3)
//   3. confirm the bug at the implementation level by deterministic replay (§3.4)
//   4. fix the bug on both sides and validate the fix
#include <cstdio>
#include <thread>

#include "src/conformance/raft_harness.h"
#include "src/mc/bfs.h"
#include "src/par/parallel_bfs.h"

using namespace sandtable;               // NOLINT(build/namespaces): example brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

namespace {

RaftHarness HuntHarness(bool with_bug) {
  RaftHarness h = MakeRaftHarness("pysyncobj", /*with_bugs=*/false);
  h.impl_bugs = systems::RaftImplBugs{};  // focus on the semantic bug
  // Seed PySyncObj#2 on both sides: the spec describes the *actual* (buggy)
  // implementation, which is what makes replay confirmation possible.
  h.profile.bugs.pso2_commit_regress = with_bug;
  // A bounded hunt budget (§3.3): ranked constraints would pick these.
  h.profile.budget.max_timeouts = 4;
  h.profile.budget.max_client_requests = 2;
  h.profile.budget.max_crashes = 0;
  h.profile.budget.max_restarts = 0;
  h.profile.budget.max_partitions = 0;
  h.profile.budget.max_term = 2;
  h.profile.budget.max_log_len = 2;
  return h;
}

}  // namespace

int main() {
  const RaftHarness buggy = HuntHarness(/*with_bug=*/true);
  const Spec spec = MakeHarnessSpec(buggy);
  const RaftObserver observer = MakeRaftObserver(buggy);
  const EngineFactory factory = MakeRaftEngineFactory(buggy);

  // ---- Step 1: conformance checking -------------------------------------------
  std::printf("[1/4] conformance checking spec vs implementation...\n");
  ConformanceOptions copts;
  copts.max_traces = 50;
  copts.max_trace_depth = 25;
  const ConformanceReport conf = CheckConformance(spec, factory, observer, copts);
  if (!conf.conforms) {
    std::printf("      discrepancy found — fix the spec first:\n%s\n",
                conf.discrepancy->ToString().c_str());
    return 1;
  }
  std::printf("      %d random traces (%llu events) replayed, no discrepancy\n",
              conf.traces_replayed, static_cast<unsigned long long>(conf.events_replayed));

  // ---- Step 2: model checking -------------------------------------------------------
  // Parallel BFS (src/par/): level-synchronized, so the counterexample depth
  // is minimal and identical to serial BFS regardless of worker count.
  ParBfsOptions bopts;
  bopts.base.max_distinct_states = 5000000;
  bopts.base.time_budget_s = 300;
  bopts.workers = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("[2/4] model checking the bounded state space (parallel BFS, %d workers)...\n",
              bopts.workers > 0 ? bopts.workers : 1);
  const BfsResult mc = ParallelBfsCheck(spec, bopts);
  if (!mc.violation.has_value()) {
    std::printf("      no violation in %llu states\n",
                static_cast<unsigned long long>(mc.distinct_states));
    return 1;
  }
  std::printf("      violated %s\n", ViolationSummary(*mc.violation).c_str());
  std::printf("      counterexample events:\n");
  std::fputs(FormatTraceEvents(mc.violation->trace, "        ").c_str(), stdout);

  // ---- Step 3: implementation-level confirmation -----------------------------------
  std::printf("[3/4] replaying the counterexample on the implementation...\n");
  const ConfirmationResult confirm = ConfirmBug(factory, observer, mc.violation->trace);
  if (!confirm.confirmed) {
    std::printf("      replay diverged — false alarm:\n%s\n",
                confirm.replay.discrepancy->ToString().c_str());
    return 1;
  }
  std::printf("      bug CONFIRMED: the implementation followed all %zu events and its\n"
              "      commit index regressed exactly as the specification predicted\n",
              confirm.replay.steps_executed);

  // ---- Step 4: fix validation --------------------------------------------------------
  std::printf("[4/4] applying the fix on both sides and re-verifying...\n");
  const RaftHarness fixed = HuntHarness(/*with_bug=*/false);
  const Spec fixed_spec = MakeHarnessSpec(fixed);
  const RaftObserver fixed_observer = MakeRaftObserver(fixed);
  const ConformanceReport reconf =
      CheckConformance(fixed_spec, MakeRaftEngineFactory(fixed), fixed_observer, copts);
  const BfsResult recheck = ParallelBfsCheck(fixed_spec, bopts);
  std::printf("      conformance: %s; model checking: %s (%llu states)\n",
              reconf.conforms ? "clean" : "DISCREPANCY",
              recheck.violation.has_value() ? "VIOLATION" : "clean",
              static_cast<unsigned long long>(recheck.distinct_states));
  return reconf.conforms && !recheck.violation.has_value() ? 0 : 1;
}
