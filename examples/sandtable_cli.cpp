// The SandTable command-line driver: the reproduction's equivalent of the
// paper artifact's run scripts. Drives the full workflow from the shell:
//
//   sandtable_cli list-systems
//   sandtable_cli list-bugs
//   sandtable_cli check --system pysyncobj --bug PySyncObj#2 [--budget 60]
//                       [--workers 4] [--cex-out /tmp/bug.jsonl] [--minimize]
//   sandtable_cli conformance --system wraft [--traces 100] [--channel log]
//   sandtable_cli simulate --system raftos --traces 1000 [--seed 1] [--minimize]
//   sandtable_cli replay --system pysyncobj --bug PySyncObj#2 --trace /tmp/bug.jsonl
//   sandtable_cli minimize --bug PySyncObj#2 [--trace /tmp/bug.jsonl]
//                          [--cex-out /tmp/min.jsonl] [--corpus-out golden.trace.json]
//   sandtable_cli rank --system pysyncobj
//   sandtable_cli ckpt-info --ckpt /tmp/run.ckpt
//
// Out-of-core exploration (src/store): `--mem-budget-mb N` bounds the resident
// fingerprint + frontier memory and spills the rest to `--spill-dir` (default:
// a temp dir removed at exit); `--ckpt DIR --checkpoint-every N` writes a
// crash-safe checkpoint every N distinct states; `--resume DIR` continues a
// checkpointed run where it stopped.
//
// Telemetry (src/obs): `--metrics-out FILE` streams progress JSONL plus a
// final report record; `--progress-every N` emits a progress line every N
// units of work (states / replayed events); `--report json|text` prints the
// end-of-run report to stdout; `--trace-out FILE` records a Chrome trace of
// the run (open in chrome://tracing or ui.perfetto.dev); `--run-id ID` sets
// the correlation id stamped on progress lines, reports and trace metadata
// (minted randomly when absent). A crash-safe flight recorder is installed by
// default (disable with SANDTABLE_FLIGHT=0; dump path via
// SANDTABLE_FLIGHT_DUMP): on SIGSEGV/SIGABRT/SIGBUS/SIGQUIT it dumps the most
// recent spans/events to stderr and a JSON file before re-raising.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include <unistd.h>

#include "src/conformance/bug_catalog.h"
#include "src/conformance/raft_harness.h"
#include "src/conformance/zab_harness.h"
#include "src/mc/bfs.h"
#include "src/mc/random_walk.h"
#include "src/mc/ranking.h"
#include "src/minimize/corpus.h"
#include "src/minimize/minimize.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/phase_timer.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/par/parallel_bfs.h"
#include "src/store/compact_store.h"
#include "src/store/ooc.h"
#include "src/trace/spec_replay.h"
#include "src/util/run_id.h"
#include "src/util/stop_token.h"

using namespace sandtable;               // NOLINT(build/namespaces): CLI brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

namespace {

// Graceful interruption: SIGINT/SIGTERM raise this token, the engines stop at
// their next poll, and the command still writes its final --metrics-out
// report (and, for `check --ckpt`, a resumable checkpoint of the unexpanded
// frontier) before exiting with code 130.
StopToken g_stop;

void OnSignal(int) { g_stop.RequestStop(); }

void InstallSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

constexpr int kInterruptedExit = 130;  // 128 + SIGINT, shell convention

struct Args {
  std::string command;
  std::string system = "pysyncobj";
  std::string bug;
  std::string trace_path;
  std::string trace_out;  // Chrome trace of the run itself (spans/counters)
  std::string cex_out;    // counterexample / minimized trace JSONL
  std::string run_id;     // correlation id override (--run-id)
  std::string channel = "api";
  std::string metrics_out;  // JSONL sink for progress + final report
  std::string report_mode;  // "", "json" or "text": end-of-run report on stdout
  std::string analytics_out;  // per-action exploration profile JSON sink
  double budget_s = 60;
  uint64_t time_budget_ms = 0;    // overrides --budget when set (finer grain)
  uint64_t max_states = 0;        // 0 = unlimited distinct-state budget
  uint64_t progress_every = 0;    // 0 = no periodic progress lines
  int traces = 100;
  int workers = 1;  // >1 switches `check` to the parallel engine (src/par/)
  bool steal = false;  // parallel engine: work-stealing scheduler (src/par/steal.h)
  bool with_bugs = false;
  uint64_t seed = 1;          // base RNG seed (simulate derives one per walk)
  bool minimize = false;      // shrink the counterexample before reporting it
  bool minimize_any = false;  // accept any violation while shrinking
  std::string corpus_out;     // golden-trace JSON sink (minimize subcommand)
  // Out-of-core exploration (src/store).
  uint64_t mem_budget_mb = 0;      // 0 = pure in-memory exploration
  std::string spill_dir;           // default: temp dir, removed at exit
  std::string ckpt_dir;            // checkpoint directory (--ckpt)
  uint64_t checkpoint_every = 0;   // distinct-state cadence; 0 with --ckpt = 100k
  std::string resume_dir;          // checkpoint to resume from
  // Visited set keeps only 64-bit fingerprints (store/compact_store.h):
  // ~4x less memory per state, no parent pointers (counterexamples rebuilt by
  // re-search), and a reported fingerprint-collision probability.
  bool hash_compact = false;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  if (argc < 2) {
    return false;
  }
  out->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](std::string* dst) {
      if (i + 1 >= argc) {
        return false;
      }
      *dst = argv[++i];
      return true;
    };
    std::string v;
    if (flag == "--system" && next(&v)) {
      out->system = v;
    } else if (flag == "--bug" && next(&v)) {
      out->bug = v;
    } else if (flag == "--trace" && next(&v)) {
      out->trace_path = v;
    } else if (flag == "--trace-out" && next(&v)) {
      out->trace_out = v;
    } else if (flag == "--cex-out" && next(&v)) {
      out->cex_out = v;
    } else if (flag == "--run-id" && next(&v)) {
      out->run_id = v;
    } else if (flag == "--budget" && next(&v)) {
      out->budget_s = std::atof(v.c_str());
    } else if (flag == "--time-budget-ms" && next(&v)) {
      out->time_budget_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--traces" && next(&v)) {
      out->traces = std::atoi(v.c_str());
    } else if (flag == "--workers" && next(&v)) {
      // atoi yields 0 on junk; anything below 1 means "serial".
      out->workers = std::max(1, std::atoi(v.c_str()));
    } else if (flag == "--channel" && next(&v)) {
      out->channel = v;
    } else if (flag == "--metrics-out" && next(&v)) {
      out->metrics_out = v;
    } else if (flag == "--analytics-out" && next(&v)) {
      out->analytics_out = v;
    } else if (flag == "--report" && next(&v)) {
      if (v != "json" && v != "text") {
        std::fprintf(stderr, "--report wants json or text, got %s\n", v.c_str());
        return false;
      }
      out->report_mode = v;
    } else if (flag == "--states" && next(&v)) {
      out->max_states = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--progress-every" && next(&v)) {
      out->progress_every = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--with-bugs") {
      out->with_bugs = true;
    } else if (flag == "--steal") {
      out->steal = true;
    } else if (flag == "--hash-compact") {
      out->hash_compact = true;
    } else if (flag == "--seed" && next(&v)) {
      out->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--minimize") {
      out->minimize = true;
    } else if (flag == "--minimize-any") {
      out->minimize = true;
      out->minimize_any = true;
    } else if (flag == "--corpus-out" && next(&v)) {
      out->corpus_out = v;
    } else if (flag == "--mem-budget-mb" && next(&v)) {
      out->mem_budget_mb = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--spill-dir" && next(&v)) {
      out->spill_dir = v;
    } else if (flag == "--ckpt" && next(&v)) {
      out->ckpt_dir = v;
    } else if (flag == "--checkpoint-every" && next(&v)) {
      out->checkpoint_every = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--resume" && next(&v)) {
      out->resume_dir = v;
    } else if (out->command == "ckpt-info" && !flag.empty() && flag[0] != '-' &&
               out->ckpt_dir.empty()) {
      // `ckpt-info <dir>` positional form, equivalent to --ckpt <dir>.
      out->ckpt_dir = flag;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

// Everything the subcommands need for one target system.
struct Target {
  Spec spec;
  EngineFactory factory;
  std::unique_ptr<ClusterObserver> observer;
};

Target MakeTarget(const Args& args) {
  Target t;
  if (args.system == "zookeeper") {
    ZabHarness h = MakeZabHarness(args.with_bugs || !args.bug.empty());
    if (!args.bug.empty()) {
      h.profile.budget.max_timeouts = 5;
      h.profile.budget.max_client_requests = 1;
      h.profile.budget.max_crashes = 1;
      h.profile.budget.max_restarts = 1;
      h.profile.budget.max_history = 1;
      h.profile.budget.max_msg_buffer = 3;
    }
    h.channel = args.channel == "log" ? ObservationChannel::kLogParser
                                      : ObservationChannel::kApi;
    t.spec = MakeHarnessSpec(h);
    t.factory = MakeZabEngineFactory(h);
    t.observer = std::make_unique<ZabObserver>(MakeZabObserver(h));
    return t;
  }
  RaftHarness h = MakeRaftHarness(args.system, args.with_bugs);
  if (!args.bug.empty()) {
    h.profile = MakeBugProfile(FindBug(args.bug));
    h.impl_bugs = systems::RaftImplBugs{};
    const BugInfo& bug = FindBug(args.bug);
    if (bug.enable_impl != nullptr) {
      bug.enable_impl(h.impl_bugs);
    }
  }
  h.channel = args.channel == "log" ? ObservationChannel::kLogParser
                                    : ObservationChannel::kApi;
  t.spec = MakeHarnessSpec(h);
  t.factory = MakeRaftEngineFactory(h);
  t.observer = std::make_unique<RaftObserver>(MakeRaftObserver(h));
  return t;
}

// The telemetry wiring shared by check/conformance/simulate: one metrics
// registry for the run, periodic progress JSONL (to --metrics-out or stderr),
// and an end-of-run report (appended to --metrics-out; optionally printed to
// stdout as JSON or a human table via --report).
struct Telemetry {
  obs::MetricsRegistry registry;
  std::ofstream file;
  std::unique_ptr<obs::ProgressReporter> progress;
  std::unique_ptr<obs::Tracer> tracer;
  std::string trace_out;
  std::string report_mode;

  explicit Telemetry(const Args& args)
      : trace_out(args.trace_out), report_mode(args.report_mode) {
    // SANDTABLE_PHASE_TIMERS=0 keeps counters but skips the per-phase clock
    // reads — the knob behind the overhead numbers in DESIGN.md.
    if (const char* env = std::getenv("SANDTABLE_PHASE_TIMERS")) {
      obs::SetPhaseTimersEnabled(env[0] != '0');
    }
    std::ostream* sink = nullptr;
    if (!args.metrics_out.empty()) {
      file.open(args.metrics_out);
      if (!file) {
        std::fprintf(stderr, "cannot open %s for writing\n", args.metrics_out.c_str());
      } else {
        sink = &file;
      }
    }
    if (args.progress_every > 0) {
      obs::ProgressOptions popts;
      popts.every_states = args.progress_every;
      progress =
          std::make_unique<obs::ProgressReporter>(sink != nullptr ? sink : &std::cerr, popts);
    }
    if (!trace_out.empty()) {
      tracer = std::make_unique<obs::Tracer>();
      tracer->Install();
    }
  }

  // The Chrome trace is written on destruction so every exit path of a
  // subcommand (violation found, budget spent, error) still produces it.
  ~Telemetry() {
    if (tracer == nullptr) {
      return;
    }
    tracer->Uninstall();
    const Status st = tracer->WriteChromeTrace(trace_out);
    if (st.ok()) {
      std::printf("chrome trace written to %s (open in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace write failed: %s\n", st.error().c_str());
    }
  }

  // Build the final report around the engine result, append it to the JSONL
  // sink, and print it as requested. Returns the report for further use.
  Json Finish(const std::string& engine, Json result_json) {
    Json report = obs::MakeReport(engine, std::move(result_json), &registry);
    if (file.is_open()) {
      file << report.Dump() << '\n';
    }
    if (report_mode == "json") {
      std::printf("%s\n", report.Dump().c_str());
    } else if (report_mode == "text") {
      std::fputs(obs::ReportToText(report).c_str(), stdout);
    }
    return report;
  }
};

// Write the standalone --analytics-out document: the exploration profile plus
// enough identity (run_id, engine, spec) for scripts/analytics_summary.py to
// label its output.
void WriteAnalyticsOut(const Args& args, const obs::ExplorationProfile& profile,
                       const std::string& engine, const std::string& spec_name) {
  if (args.analytics_out.empty()) {
    return;
  }
  Json doc = profile.ToJson();
  doc["type"] = Json("analytics");
  doc["run_id"] = Json(RunId());
  doc["engine"] = Json(engine);
  doc["spec"] = Json(spec_name);
  std::ofstream f(args.analytics_out);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", args.analytics_out.c_str());
    return;
  }
  f << doc.Dump() << '\n';
  std::printf("analytics written to %s\n", args.analytics_out.c_str());
}

// Shrink a violation, print the before/after summary and the shrunk event
// list. Returns the result so callers can embed m.ToJson() in their report
// and reuse m.trace for trace-out / implementation-level replay.
minimize::MinimizeResult RunMinimize(const Spec& spec, const Violation& v,
                                     const Args& args, Telemetry& telemetry) {
  minimize::MinimizeOptions mopts;
  mopts.match_any = args.minimize_any;
  mopts.metrics = &telemetry.registry;
  const minimize::MinimizeResult m = minimize::MinimizeCounterexample(spec, v, mopts);
  if (!m.input_reproduced) {
    std::printf("minimize: input trace did not reproduce under guided replay\n");
    return m;
  }
  std::printf("minimized %llu -> %llu events (%.0f%% shrink, %llu replays, %.2fs)\n",
              static_cast<unsigned long long>(m.events_before),
              static_cast<unsigned long long>(m.events_after), m.ShrinkRatio() * 100,
              static_cast<unsigned long long>(m.replays), m.seconds);
  std::fputs(FormatTraceEvents(m.trace, "  ").c_str(), stdout);
  return m;
}

// Save a minimized counterexample as a golden corpus file (tests/corpus/).
bool WriteCorpus(const Spec& spec, const BugInfo& bug,
                 const minimize::MinimizeResult& m, const std::string& path) {
  minimize::GoldenTrace g;
  g.bug = bug.id;
  g.invariant = m.violation.invariant;
  g.is_transition_invariant = m.violation.is_transition_invariant;
  for (size_t i = 0; i < spec.init_states.size(); ++i) {
    if (spec.init_states[i] == m.trace[0].state) {
      g.init_index = i;
      break;
    }
  }
  for (size_t i = 1; i < m.trace.size(); ++i) {
    g.events.push_back(m.trace[i].label);
  }
  // Only deterministic fields belong in the golden file: wall-clock times
  // would make every scripts/update_corpus.sh diff noisy.
  JsonObject meta;
  meta["events_before"] = Json(m.events_before);
  meta["replays"] = Json(m.replays);
  meta["generator"] = Json("sandtable_cli minimize");
  g.meta = Json(std::move(meta));
  const Status st = minimize::SaveGoldenTrace(g, path);
  if (!st.ok()) {
    std::fprintf(stderr, "corpus write failed: %s\n", st.error().c_str());
    return false;
  }
  std::printf("golden trace written to %s\n", path.c_str());
  return true;
}

int CmdListSystems() {
  for (const std::string& s : RaftSystemNames()) {
    std::printf("%s\n", s.c_str());
  }
  std::printf("zookeeper\n");
  return 0;
}

int CmdListBugs() {
  std::printf("%-13s %-11s %-13s %-4s %s\n", "ID", "System", "Stage", "New", "Consequence");
  for (const BugInfo& bug : BugCatalog()) {
    std::printf("%-13s %-11s %-13s %-4s %s\n", bug.id.c_str(), bug.system.c_str(),
                BugStageName(bug.stage), bug.is_new ? "yes" : "no",
                bug.consequence.c_str());
  }
  return 0;
}

// Owns the out-of-core machinery for one `check` run: the spilling store, the
// frontier spool config, the checkpointer and (on --resume) the opened
// checkpoint. Wire() fills opts.ooc; the default-constructed runtime leaves
// the engine fully in-memory.
struct OocRuntime {
  std::unique_ptr<store::StateStore> state_store;
  // Concrete views of state_store; exactly one is set when enabled.
  store::SpillingStateStore* spilling = nullptr;
  store::CompactStateStore* compact = nullptr;
  store::SpoolConfig spool_cfg;
  std::unique_ptr<store::Checkpointer> checkpointer;
  std::optional<store::ResumedRun> resumed;
  std::string owned_spill_dir;  // temp dir we created; removed on destruction
  bool enabled = false;

  ~OocRuntime() {
    state_store.reset();  // unmap spill runs before deleting their directory
    if (!owned_spill_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(owned_spill_dir, ec);
    }
  }

  // Returns false (after printing the reason) when the flags are unusable.
  bool Wire(const Args& args, const Spec& spec, obs::MetricsRegistry* metrics,
            BfsOptions& opts) {
    enabled = args.mem_budget_mb > 0 || !args.spill_dir.empty() ||
              !args.ckpt_dir.empty() || !args.resume_dir.empty() ||
              args.hash_compact;
    if (!enabled) {
      return true;
    }
    std::string spill = args.spill_dir;
    if (spill.empty()) {
      spill = (std::filesystem::temp_directory_path() /
               ("sandtable-spill-" + std::to_string(::getpid())))
                  .string();
      owned_spill_dir = spill;
    }
    const store::MemBudget budget =
        store::SplitMemBudget(args.mem_budget_mb > 0 ? args.mem_budget_mb : 1024);

    if (args.hash_compact) {
      // Fingerprint-only visited set. Size it off the same budget: at ~8
      // bytes per slot the compacted table holds ~6x the fingerprints the
      // spilling store's memory tier would (~48 bytes per map node).
      store::CompactStateStore::Config ccfg;
      ccfg.reserve = budget.max_resident_fingerprints * 6;
      auto cs = std::make_unique<store::CompactStateStore>(ccfg);
      compact = cs.get();
      state_store = std::move(cs);
    } else {
      store::StoreConfig scfg;
      scfg.spill_dir = spill + "/fps";
      scfg.max_resident = budget.max_resident_fingerprints;
      scfg.metrics = metrics;
      auto ss = std::make_unique<store::SpillingStateStore>(scfg);
      spilling = ss.get();
      state_store = std::move(ss);
    }

    spool_cfg.dir = spill + "/frontier";
    spool_cfg.max_resident = budget.max_resident_frontier;
    spool_cfg.metrics = metrics;

    opts.ooc.state_store = state_store.get();
    opts.ooc.frontier_spool = &spool_cfg;

    if (!args.resume_dir.empty()) {
      auto opened = store::OpenCheckpoint(args.resume_dir, spec);
      if (!opened.ok()) {
        std::fprintf(stderr, "cannot resume: %s\n", opened.error().c_str());
        return false;
      }
      resumed = std::move(opened).value();
      if (resumed->meta.hash_compact != args.hash_compact) {
        // Friendlier than the engines' CHECK on the same mismatch: compacted
        // runs carry no parent pointers, so the modes cannot mix.
        std::fprintf(stderr,
                     "cannot resume: checkpoint %s written with --hash-compact "
                     "but this run %s it\n",
                     resumed->meta.hash_compact ? "was" : "was not",
                     args.hash_compact ? "sets" : "does not set");
        return false;
      }
      const Status st = compact != nullptr
                            ? compact->LoadRuns(resumed->run_paths)
                            : spilling->LoadRuns(resumed->run_paths);
      if (!st.ok()) {
        std::fprintf(stderr, "cannot resume: %s\n", st.error().c_str());
        return false;
      }
      opts.ooc.resume = &*resumed;
      std::printf("resuming from %s: %llu states, depth %llu, frontier %llu\n",
                  args.resume_dir.c_str(),
                  static_cast<unsigned long long>(resumed->meta.distinct_states),
                  static_cast<unsigned long long>(resumed->meta.depth_reached),
                  static_cast<unsigned long long>(resumed->meta.frontier_size));
    }
    if (!args.ckpt_dir.empty()) {
      store::Checkpointer::Config ccfg;
      ccfg.dir = args.ckpt_dir;
      ccfg.every_states =
          args.checkpoint_every > 0 ? args.checkpoint_every : 100000;
      ccfg.metrics = metrics;
      checkpointer = std::make_unique<store::Checkpointer>(ccfg, &spec);
      opts.ooc.checkpointer = checkpointer.get();
    } else if (args.checkpoint_every > 0) {
      std::fprintf(stderr, "--checkpoint-every needs --ckpt DIR\n");
      return false;
    }
    return true;
  }
};

int CmdCheck(const Args& args) {
  Target t = MakeTarget(args);
  Telemetry telemetry(args);
  std::printf("model checking %s (budget %.0fs, %d worker%s)...\n", t.spec.name.c_str(),
              args.budget_s, args.workers, args.workers == 1 ? "" : "s");
  BfsOptions opts;
  opts.time_budget_s = args.time_budget_ms > 0
                           ? static_cast<double>(args.time_budget_ms) / 1000.0
                           : args.budget_s;
  if (args.max_states > 0) {
    opts.max_distinct_states = args.max_states;
  }
  opts.progress = telemetry.progress.get();
  opts.metrics = &telemetry.registry;
  opts.stop = &g_stop;
  obs::ExplorationProfile profile;
  if (!args.analytics_out.empty()) {
    opts.analytics = &profile;
  }
  OocRuntime ooc;
  if (!ooc.Wire(args, t.spec, &telemetry.registry, opts)) {
    return 1;
  }
  BfsResult r;
  // --steal forces the parallel engine even at one worker, so the scheduler
  // can be exercised (and compared) without changing the worker count.
  const bool parallel = args.workers > 1 || args.steal;
  const char* engine =
      args.steal ? "parallel_bfs_steal" : (parallel ? "parallel_bfs" : "bfs");
  if (parallel) {
    ParBfsOptions popts;
    popts.base = opts;
    popts.workers = args.workers;
    popts.steal = args.steal;
    r = ParallelBfsCheck(t.spec, popts);
  } else {
    r = BfsCheck(t.spec, opts);
  }
  std::printf("distinct states: %llu (depth %llu, %.1fs, %s)\n",
              static_cast<unsigned long long>(r.distinct_states),
              static_cast<unsigned long long>(r.depth_reached), r.seconds,
              r.cancelled ? "interrupted" : (r.exhausted ? "exhausted" : "bounded"));
  if (ooc.enabled && ooc.spilling != nullptr) {
    std::printf("out-of-core: %llu fingerprints spilled across %zu runs",
                static_cast<unsigned long long>(ooc.spilling->SpilledSize()),
                ooc.spilling->RunCount());
    if (ooc.checkpointer != nullptr) {
      std::printf(", %llu checkpoints to %s",
                  static_cast<unsigned long long>(ooc.checkpointer->writes()),
                  args.ckpt_dir.c_str());
    }
    std::printf("\n");
  }
  if (ooc.compact != nullptr) {
    std::printf(
        "hash compaction: P(any state missed to a fingerprint collision) "
        "<= %.3g%s\n",
        r.collision_probability,
        ooc.checkpointer != nullptr ? ", checkpoints carry the mode" : "");
  }
  // Attach the profile to the result (so --report text renders the hot-action
  // table and the JSONL report carries it) and write the standalone document.
  auto attach_analytics = [&](Json result_json) {
    if (opts.analytics != nullptr) {
      result_json["analytics"] = profile.ToJson();
      WriteAnalyticsOut(args, profile, engine, t.spec.name);
    }
    return result_json;
  };
  if (!r.violation.has_value()) {
    telemetry.Finish(engine, attach_analytics(r.ToJson()));
    if (r.cancelled) {
      std::printf("interrupted%s\n",
                  ooc.checkpointer != nullptr ? "; checkpoint written, resume with --resume"
                                              : "");
      return kInterruptedExit;
    }
    std::printf("no safety violation found\n");
    return 0;
  }
  std::printf("VIOLATED %s\n", ViolationSummary(*r.violation).c_str());
  if (!r.violation->trace_error.empty()) {
    // Hash-compacted re-search missed the target (suspected fingerprint
    // collision): the violation is genuine but there is no replayable trace,
    // so skip minimization / counterexample output / replay confirmation.
    std::printf("  no counterexample trace: %s\n",
                r.violation->trace_error.c_str());
    telemetry.Finish(engine, attach_analytics(r.ToJson()));
    return 2;
  }
  std::fputs(FormatTraceEvents(r.violation->trace, "  ").c_str(), stdout);
  Json result_json = r.ToJson();
  std::vector<TraceStep> trace = r.violation->trace;
  if (args.minimize) {
    const minimize::MinimizeResult m = RunMinimize(t.spec, *r.violation, args, telemetry);
    if (m.input_reproduced) {
      trace = m.trace;
    }
    result_json.as_object()["minimize"] = m.ToJson();
  }
  telemetry.Finish(engine, attach_analytics(std::move(result_json)));
  if (!args.cex_out.empty()) {
    std::ofstream f(args.cex_out);
    f << TraceToJsonl(trace);
    std::printf("counterexample written to %s\n", args.cex_out.c_str());
  }
  // Confirm immediately (§3.4).
  const ConfirmationResult confirm = ConfirmBug(t.factory, *t.observer, trace);
  std::printf("implementation-level replay: %s\n",
              confirm.confirmed ? "CONFIRMED" : "diverged (false alarm?)");
  return 2;
}

int CmdConformance(const Args& args) {
  Target t = MakeTarget(args);
  Telemetry telemetry(args);
  ConformanceOptions opts;
  opts.max_traces = args.traces;
  opts.time_budget_s = args.budget_s;
  opts.progress = telemetry.progress.get();
  opts.metrics = &telemetry.registry;
  std::printf("conformance checking %s over %d random traces (channel: %s)...\n",
              t.spec.name.c_str(), args.traces, args.channel.c_str());
  const ConformanceReport report =
      CheckConformance(t.spec, t.factory, *t.observer, opts);
  telemetry.Finish("conformance", report.ToJson());
  if (report.conforms) {
    std::printf("no discrepancy: %d traces, %llu events, %.1fs\n", report.traces_replayed,
                static_cast<unsigned long long>(report.events_replayed), report.seconds);
    return 0;
  }
  std::printf("DISCREPANCY after %d traces:\n%s\n", report.traces_replayed,
              report.discrepancy->ToString().c_str());
  std::printf("failing event sequence:\n");
  for (size_t i = 1; i < report.failing_trace.size() && i <= report.discrepancy->step; ++i) {
    std::printf("  %2zu: %s\n", i, report.failing_trace[i].label.ToString().c_str());
  }
  return 2;
}

int CmdSimulate(const Args& args) {
  Target t = MakeTarget(args);
  Telemetry telemetry(args);
  WalkOptions opts;
  opts.max_depth = 60;
  opts.metrics = &telemetry.registry;
  opts.stop = &g_stop;
  // One shared profile across all walks: counts aggregate, and the depth
  // histogram buckets walk end-depths.
  obs::ExplorationProfile profile;
  if (!args.analytics_out.empty()) {
    opts.analytics = &profile;
  }
  if (args.minimize) {
    // Hunt mode: check invariants along each walk and shrink the first
    // violating trace found.
    opts.collect_trace = true;
    opts.check_invariants = true;
    opts.check_transition_invariants = true;
  }
  // --time-budget-ms bounds the whole simulate run: each walk gets whatever
  // wall-clock remains, so a walk in progress when the budget expires is cut
  // off rather than overshooting.
  const double total_budget_s =
      args.time_budget_ms > 0 ? static_cast<double>(args.time_budget_ms) / 1000.0
                              : std::numeric_limits<double>::infinity();
  CoverageStats coverage;
  uint64_t total_depth = 0;
  uint64_t max_depth = 0;
  uint64_t deadlocked = 0;
  uint64_t depth_capped = 0;
  uint64_t time_capped = 0;
  bool cancelled = false;
  std::optional<Violation> violation;
  int walks_done = 0;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };
  for (int i = 0; i < args.traces; ++i) {
    if (g_stop.stop_requested()) {
      cancelled = true;
      break;
    }
    if (std::isfinite(total_budget_s)) {
      const double remaining = total_budget_s - elapsed_s();
      if (remaining <= 0) {
        ++time_capped;
        break;
      }
      opts.time_budget_s = remaining;
    }
    // One independent RNG per walk, derived from --seed: walk i is
    // reproducible on its own, regardless of how many walks ran before it.
    Rng rng(args.seed + static_cast<uint64_t>(i));
    const WalkResult w = RandomWalk(t.spec, opts, rng);
    walks_done = i + 1;
    coverage.Merge(w.coverage);
    total_depth += w.depth;
    max_depth = std::max(max_depth, w.depth);
    deadlocked += w.deadlocked ? 1 : 0;
    depth_capped += w.hit_depth_limit ? 1 : 0;
    time_capped += w.hit_time_limit ? 1 : 0;
    if (w.cancelled) {
      cancelled = true;
    }
    // Progress units for simulate are completed walks.
    const uint64_t done = static_cast<uint64_t>(i) + 1;
    if (telemetry.progress != nullptr && telemetry.progress->Due(done)) {
      obs::ProgressSample s;
      s.engine = "random_walk";
      s.elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      s.distinct_states = done;
      s.depth = max_depth;
      s.transitions = coverage.transitions;
      s.deadlocks = deadlocked;
      s.event_kinds = coverage.DistinctEventKinds();
      s.branches = coverage.branches.size();
      if (opts.analytics != nullptr) {
        s.analytics = profile.SummaryJson(3);
      }
      telemetry.progress->Emit(s);
    }
    if (w.violation.has_value()) {
      violation = w.violation;
      break;
    }
    if (cancelled || w.hit_time_limit) {
      break;
    }
  }
  JsonObject summary;
  summary["walks"] = Json(static_cast<int64_t>(walks_done));
  summary["avg_depth"] =
      Json(walks_done > 0 ? static_cast<double>(total_depth) / walks_done : 0.0);
  summary["max_depth"] = Json(max_depth);
  summary["deadlocked"] = Json(deadlocked);
  summary["hit_depth_limit"] = Json(depth_capped);
  summary["hit_time_limit"] = Json(time_capped);
  summary["cancelled"] = Json(cancelled);
  summary["coverage"] = coverage.ToJson();
  if (opts.analytics != nullptr) {
    summary["analytics"] = profile.ToJson();
    WriteAnalyticsOut(args, profile, "random_walk", t.spec.name);
  }
  if (violation.has_value()) {
    std::printf("walk %d VIOLATED %s\n", walks_done, ViolationSummary(*violation).c_str());
    const minimize::MinimizeResult m = RunMinimize(t.spec, *violation, args, telemetry);
    summary["minimize"] = m.ToJson();
    if (!args.cex_out.empty() && m.input_reproduced) {
      std::ofstream f(args.cex_out);
      f << TraceToJsonl(m.trace);
      std::printf("counterexample written to %s\n", args.cex_out.c_str());
    }
  }
  telemetry.Finish("random_walk", Json(std::move(summary)));
  std::printf("%d random walks over %s:\n", walks_done, t.spec.name.c_str());
  std::printf("  avg depth %.1f, max depth %llu (%llu deadlocked, %llu depth-capped)\n",
              walks_done > 0 ? static_cast<double>(total_depth) / walks_done : 0.0,
              static_cast<unsigned long long>(max_depth),
              static_cast<unsigned long long>(deadlocked),
              static_cast<unsigned long long>(depth_capped));
  std::printf("  distinct branches: %zu, event kinds: %d, transitions: %llu\n",
              coverage.branches.size(), coverage.DistinctEventKinds(),
              static_cast<unsigned long long>(coverage.transitions));
  if (cancelled) {
    std::printf("interrupted\n");
    return kInterruptedExit;
  }
  return 0;
}

int CmdReplay(const Args& args) {
  if (args.trace_path.empty()) {
    std::fprintf(stderr, "replay needs --trace <file.jsonl>\n");
    return 1;
  }
  std::ifstream f(args.trace_path);
  std::stringstream ss;
  ss << f.rdbuf();
  auto trace = TraceFromJsonl(ss.str());
  if (!trace.ok()) {
    std::fprintf(stderr, "cannot parse trace: %s\n", trace.error().c_str());
    return 1;
  }
  Target t = MakeTarget(args);
  std::printf("replaying %zu events on %s...\n", trace.value().size() - 1,
              args.system.c_str());
  const ReplayResult r = ReplayTrace(t.factory, *t.observer, trace.value());
  if (r.conforms) {
    std::printf("replay completed: implementation matched the specification at every "
                "step (%zu events)\n",
                r.steps_executed);
    return 0;
  }
  std::printf("replay diverged:\n%s\n", r.discrepancy->ToString().c_str());
  return 2;
}

// Minimize a counterexample for a catalog bug: either shrink a trace file
// recorded by `check --cex-out`, or hunt one with BFS first. Writes the
// shrunk trace (--cex-out, JSONL with states) and/or the golden corpus file
// (--corpus-out, labels only) used by the corpus_replay regression driver.
int CmdMinimize(const Args& args) {
  if (args.bug.empty()) {
    std::fprintf(stderr, "minimize needs --bug <ID> (see list-bugs)\n");
    return 1;
  }
  const BugInfo& bug = FindBug(args.bug);
  if (bug.invariant.empty()) {
    std::fprintf(stderr, "%s has no spec-level invariant (stage: %s); only "
                 "verification-stage bugs have counterexample traces\n",
                 bug.id.c_str(), BugStageName(bug.stage));
    return 1;
  }
  Telemetry telemetry(args);
  const Spec spec = MakeBugSpec(bug);

  Violation input;
  if (!args.trace_path.empty()) {
    std::ifstream f(args.trace_path);
    std::stringstream ss;
    ss << f.rdbuf();
    auto parsed = TraceFromJsonl(ss.str());
    if (!parsed.ok() || parsed.value().empty()) {
      std::fprintf(stderr, "cannot parse trace: %s\n",
                   parsed.ok() ? "empty trace" : parsed.error().c_str());
      return 1;
    }
    // Establish the violation identity by replaying the labels once with both
    // invariant classes on; the minimizer then holds that identity fixed.
    std::vector<ActionLabel> labels;
    for (size_t i = 1; i < parsed.value().size(); ++i) {
      labels.push_back(parsed.value()[i].label);
    }
    const trace::SpecReplayResult rr =
        trace::ReplayLabels(spec, parsed.value()[0].state, labels);
    if (rr.outcome != trace::SpecReplayOutcome::kViolation) {
      std::fprintf(stderr, "trace does not violate under %s: %s%s\n", spec.name.c_str(),
                   trace::SpecReplayOutcomeName(rr.outcome),
                   rr.stuck_reason.empty() ? "" : (" (" + rr.stuck_reason + ")").c_str());
      return 2;
    }
    input.invariant = rr.invariant;
    input.is_transition_invariant = rr.is_transition_invariant;
    input.trace = rr.trace;
    input.depth = rr.trace.size() - 1;
  } else {
    BfsOptions opts;
    opts.time_budget_s =
        std::max(args.time_budget_ms > 0
                     ? static_cast<double>(args.time_budget_ms) / 1000.0
                     : args.budget_s,
                 bug.min_hunt_s);
    if (args.max_states > 0) {
      opts.max_distinct_states = args.max_states;
    }
    opts.progress = telemetry.progress.get();
    opts.metrics = &telemetry.registry;
    opts.stop = &g_stop;
    std::printf("hunting %s on %s (budget %.0fs)...\n", bug.id.c_str(),
                spec.name.c_str(), opts.time_budget_s);
    const BfsResult r = BfsCheck(spec, opts);
    if (!r.violation.has_value()) {
      telemetry.Finish("minimize", r.ToJson(/*include_trace=*/false));
      if (r.cancelled) {
        std::printf("interrupted\n");
        return kInterruptedExit;
      }
      std::printf("no violation found within budget\n");
      return 2;
    }
    std::printf("found %s\n", ViolationSummary(*r.violation).c_str());
    input = *r.violation;
  }

  const minimize::MinimizeResult m = RunMinimize(spec, input, args, telemetry);
  telemetry.Finish("minimize", m.ToJson());
  if (!m.input_reproduced) {
    return 2;
  }
  if (!args.minimize_any && m.violation.invariant != bug.invariant) {
    std::fprintf(stderr, "warning: violated %s but catalog expects %s\n",
                 m.violation.invariant.c_str(), bug.invariant.c_str());
  }
  if (!args.cex_out.empty()) {
    std::ofstream f(args.cex_out);
    f << TraceToJsonl(m.trace);
    std::printf("minimized trace written to %s\n", args.cex_out.c_str());
  }
  if (!args.corpus_out.empty() && !WriteCorpus(spec, bug, m, args.corpus_out)) {
    return 1;
  }
  return 0;
}

// Print a checkpoint manifest without needing (or validating against) a spec.
int CmdCkptInfo(const Args& args) {
  const std::string dir = !args.ckpt_dir.empty() ? args.ckpt_dir : args.resume_dir;
  if (dir.empty()) {
    std::fprintf(stderr, "ckpt-info needs --ckpt <dir>\n");
    return 1;
  }
  auto meta_or = store::ReadCheckpointMeta(dir);
  if (!meta_or.ok()) {
    std::fprintf(stderr, "%s\n", meta_or.error().c_str());
    return 1;
  }
  const store::CheckpointMeta& meta = meta_or.value();
  std::printf("checkpoint %s\n", dir.c_str());
  std::printf("  %-18s v%d\n", "format", meta.format_version);
  std::printf("  %-18s %s\n", "spec", meta.spec_name.c_str());
  std::printf("  %-18s %016llx\n", "spec hash",
              static_cast<unsigned long long>(meta.spec_hash));
  std::printf("  %-18s %llu\n", "distinct states",
              static_cast<unsigned long long>(meta.distinct_states));
  std::printf("  %-18s %llu\n", "depth reached",
              static_cast<unsigned long long>(meta.depth_reached));
  std::printf("  %-18s %llu\n", "frontier size",
              static_cast<unsigned long long>(meta.frontier_size));
  std::printf("  %-18s %llu\n", "deadlock states",
              static_cast<unsigned long long>(meta.deadlock_states));
  std::printf("  %-18s %.1fs\n", "explored for", meta.seconds);
  std::printf("  %-18s %s\n", "symmetry", meta.use_symmetry ? "yes" : "no");
  std::printf("  %-18s %s\n", "hash compaction", meta.hash_compact ? "yes" : "no");
  std::printf("  %-18s %zu file%s\n", "visited runs", meta.visited_runs.size(),
              meta.visited_runs.size() == 1 ? "" : "s");
  for (const std::string& name : meta.visited_runs) {
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(
        std::filesystem::path(dir) / name, ec);
    std::printf("    %-16s %llu bytes\n", name.c_str(),
                ec ? 0ull : static_cast<unsigned long long>(bytes));
  }
  std::printf("  %-18s %s\n", "frontier segment", meta.frontier_segment.c_str());
  if (meta.coverage.is_object()) {
    const Json& tr = meta.coverage["transitions"];
    std::printf("  %-18s %lld transitions, %zu branches\n", "coverage",
                tr.is_int() ? static_cast<long long>(tr.as_int()) : 0ll,
                meta.coverage["branches"].is_array() ? meta.coverage["branches"].size()
                                                     : 0);
  }
  return 0;
}

int CmdRank(const Args& args) {
  // Rank a small grid of budget constraints for the chosen system.
  SpecFactory factory = [&args](const NamedParams& config, const NamedParams& constraint) {
    RaftProfile p = GetRaftProfile(args.system, /*with_bugs=*/false);
    p.config.num_servers = static_cast<int>(config.Get("nodes", 3));
    p.budget.max_timeouts = static_cast<int>(constraint.Get("timeouts", 3));
    p.budget.max_client_requests = static_cast<int>(constraint.Get("requests", 2));
    p.budget.max_crashes = static_cast<int>(constraint.Get("crashes", 0));
    p.budget.max_msg_buffer = static_cast<int>(constraint.Get("buffer", 4));
    p.budget.max_term = p.budget.max_timeouts;
    return MakeRaftSpec(p);
  };
  const std::vector<NamedParams> configs = {{"3 nodes", {{"nodes", 3}}}};
  const std::vector<NamedParams> constraints = {
      {"t3 r2 b4", {{"timeouts", 3}, {"requests", 2}, {"buffer", 4}}},
      {"t4 r3 b6", {{"timeouts", 4}, {"requests", 3}, {"buffer", 6}}},
      {"t3 r2 c1 b4", {{"timeouts", 3}, {"requests", 2}, {"crashes", 1}, {"buffer", 4}}},
      {"t2 r1 b3", {{"timeouts", 2}, {"requests", 1}, {"buffer", 3}}},
  };
  RankingOptions opts;
  opts.walks_per_pair = 32;
  for (const ConfigRanking& ranking :
       RankConstraints(factory, configs, constraints, opts)) {
    std::printf("%s — ranked constraints (best first):\n", ranking.config_name.c_str());
    for (const ConstraintScore& s : ranking.ranked) {
      std::printf("  %-14s branches=%.1f kinds=%.1f depth=%.1f\n",
                  s.constraint_name.c_str(), s.avg_branches, s.avg_event_kinds,
                  s.avg_depth);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  InstallSignalHandlers();
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s <list-systems|list-bugs|check|conformance|simulate|replay|"
                 "minimize|rank|ckpt-info>"
                 " [--system S] [--bug ID] [--budget SECONDS] [--time-budget-ms N]"
                 " [--states N] [--traces N]"
                 " [--workers N] [--trace FILE] [--cex-out FILE] [--channel api|log]"
                 " [--with-bugs] [--metrics-out FILE] [--analytics-out FILE]"
                 " [--progress-every N]"
                 " [--report json|text] [--trace-out FILE] [--run-id ID]"
                 " [--seed N] [--minimize] [--minimize-any]"
                 " [--corpus-out FILE] [--mem-budget-mb N] [--spill-dir DIR]"
                 " [--ckpt DIR] [--checkpoint-every N] [--resume DIR]"
                 " [--steal] [--hash-compact]\n",
                 argv[0]);
    return 1;
  }
  if (!args.run_id.empty()) {
    SetRunId(args.run_id);
  }
  // Flight recorder: static so the dump-on-crash handler can run at any point
  // after Install, including during static destruction of command locals.
  static obs::FlightRecorder flight_recorder;
  const char* flight_env = std::getenv("SANDTABLE_FLIGHT");
  if (flight_env == nullptr || flight_env[0] != '0') {
    flight_recorder.Install();
  }
  if (args.command == "list-systems") {
    return CmdListSystems();
  }
  if (args.command == "list-bugs") {
    return CmdListBugs();
  }
  if (args.command == "check") {
    return CmdCheck(args);
  }
  if (args.command == "conformance") {
    return CmdConformance(args);
  }
  if (args.command == "simulate") {
    return CmdSimulate(args);
  }
  if (args.command == "replay") {
    return CmdReplay(args);
  }
  if (args.command == "minimize") {
    return CmdMinimize(args);
  }
  if (args.command == "rank") {
    return CmdRank(args);
  }
  if (args.command == "ckpt-info") {
    return CmdCkptInfo(args);
  }
  std::fprintf(stderr, "unknown command: %s\n", args.command.c_str());
  return 1;
}
