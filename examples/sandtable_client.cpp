// Command-line client for sandtable_serve. Submits jobs and streams the
// daemon's frames (ack, started, progress, result) to stdout as JSONL;
// exit code 0 = job done, 2 = job cancelled/failed, 1 = usage or protocol
// error.
//
//   sandtable_client --socket /tmp/sandtable.sock
//       submit check --params '{"system":"pysyncobj","max_states":20000}'
//   sandtable_client --socket S submit simulate --params '{"traces":500}' --detach
//   sandtable_client --socket S cancel 3
//   sandtable_client --socket S status 3
//   sandtable_client --socket S stats | ping | shutdown
//   sandtable_client --metrics-socket /tmp/sandtable-metrics.sock metrics
//
// --host/--port select TCP instead of --socket; --tenant names the admission
// queue (default: a per-connection tenant). `submit` without --detach waits
// for the job's result frame; --detach returns right after the ack.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/serve/client.h"
#include "src/serve/wire.h"

using sandtable::Json;
using sandtable::JsonObject;
using sandtable::Result;
using sandtable::serve::Client;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH | --host H --port P] [--tenant T] [--timeout S]\n"
      "          submit KIND [--params JSON] [--detach]\n"
      "        | cancel JOB | status JOB | stats | ping | shutdown\n"
      "        %s [--metrics-socket PATH | --host H --metrics-port P] metrics\n"
      "KIND is check | simulate | minimize | ckpt-info.\n",
      argv0, argv0);
  return 1;
}

void PrintFrame(const Json& frame) {
  std::printf("%s\n", frame.Dump().c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string metrics_socket;
  std::string host = "127.0.0.1";
  int port = -1;
  int metrics_port = -1;
  std::string tenant;
  double timeout_s = 600;
  std::string command;
  std::string kind;
  std::string params_text;
  uint64_t job = 0;
  bool detach = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* dst) {
      if (i + 1 >= argc) {
        return false;
      }
      *dst = argv[++i];
      return true;
    };
    std::string v;
    if (arg == "--socket" && next(&v)) {
      socket_path = v;
    } else if (arg == "--metrics-socket" && next(&v)) {
      metrics_socket = v;
    } else if (arg == "--host" && next(&v)) {
      host = v;
    } else if (arg == "--port" && next(&v)) {
      port = std::atoi(v.c_str());
    } else if (arg == "--metrics-port" && next(&v)) {
      metrics_port = std::atoi(v.c_str());
    } else if (arg == "--tenant" && next(&v)) {
      tenant = v;
    } else if (arg == "--timeout" && next(&v)) {
      timeout_s = std::atof(v.c_str());
    } else if (arg == "--params" && next(&v)) {
      params_text = v;
    } else if (arg == "--detach") {
      detach = true;
    } else if (command.empty() && !arg.empty() && arg[0] != '-') {
      command = arg;
    } else if (command == "submit" && kind.empty() && !arg.empty() && arg[0] != '-') {
      kind = arg;
    } else if ((command == "cancel" || command == "status") && !arg.empty() &&
               arg[0] != '-') {
      job = std::strtoull(arg.c_str(), nullptr, 10);
    } else {
      return Usage(argv[0]);
    }
  }
  if (command.empty()) {
    return Usage(argv[0]);
  }

  if (command == "metrics") {
    Result<std::string> body =
        !metrics_socket.empty()
            ? Client::HttpGetUnix(metrics_socket, "/metrics", timeout_s)
            : (metrics_port >= 0
                   ? Client::HttpGetTcp(host, metrics_port, "/metrics", timeout_s)
                   : Result<std::string>::Error(
                         "metrics needs --metrics-socket or --metrics-port"));
    if (!body.ok()) {
      std::fprintf(stderr, "%s\n", body.error().c_str());
      return 1;
    }
    std::fputs(body.value().c_str(), stdout);
    return 0;
  }

  Result<Client> connected =
      !socket_path.empty()
          ? Client::ConnectUnix(socket_path)
          : (port >= 0 ? Client::ConnectTcp(host, port)
                       : Result<Client>::Error("need --socket or --port"));
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.error().c_str());
    return 1;
  }
  Client client = std::move(connected).value();

  // The hello frame arrives first on every connection.
  Result<Json> hello = client.NextFrame(timeout_s);
  if (!hello.ok()) {
    std::fprintf(stderr, "no hello from server: %s\n", hello.error().c_str());
    return 1;
  }

  if (command == "submit") {
    if (kind.empty()) {
      return Usage(argv[0]);
    }
    // Echo the hello too, so the captured stream is the connection verbatim
    // (bench_validate_json --serve checks it leads the capture).
    PrintFrame(hello.value());
    Json params;
    if (!params_text.empty()) {
      Result<Json> parsed = Json::Parse(params_text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--params is not valid JSON: %s\n",
                     parsed.error().c_str());
        return 1;
      }
      params = std::move(parsed).value();
    }
    JsonObject req;
    req["op"] = Json("submit");
    req["kind"] = Json(kind);
    req["req"] = Json(static_cast<int64_t>(1));
    if (!tenant.empty()) {
      req["tenant"] = Json(tenant);
    }
    if (!params.is_null()) {
      req["params"] = std::move(params);
    }
    const sandtable::Status sent = client.Send(Json(std::move(req)));
    if (!sent.ok()) {
      std::fprintf(stderr, "%s\n", sent.error().c_str());
      return 1;
    }
    // Stream every frame; stop at our ack error or (unless detached) at the
    // submitted job's result frame.
    uint64_t submitted = 0;
    bool have_ack = false;
    for (;;) {
      Result<Json> frame = client.NextFrame(timeout_s);
      if (!frame.ok()) {
        std::fprintf(stderr, "%s\n", frame.error().c_str());
        return 1;
      }
      const Json& f = frame.value();
      PrintFrame(f);
      const std::string type = f["type"].is_string() ? f["type"].as_string() : "";
      if (!have_ack && f["req"].is_int() && f["req"].as_int() == 1) {
        if (type == "error") {
          return 1;
        }
        have_ack = true;
        submitted = static_cast<uint64_t>(f["job"].as_int());
        if (detach) {
          return 0;
        }
      }
      if (have_ack && type == "result" && f["job"].is_int() &&
          static_cast<uint64_t>(f["job"].as_int()) == submitted) {
        return f["status"].as_string() == "done" ? 0 : 2;
      }
    }
  }

  JsonObject req;
  req["req"] = Json(static_cast<int64_t>(1));
  if (command == "cancel" || command == "status") {
    req["op"] = Json(command);
    req["job"] = Json(job);
  } else if (command == "stats" || command == "ping" || command == "shutdown") {
    req["op"] = Json(command);
  } else {
    return Usage(argv[0]);
  }
  const sandtable::Status sent = client.Send(Json(std::move(req)));
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.error().c_str());
    return 1;
  }
  for (;;) {
    Result<Json> frame = client.NextFrame(timeout_s);
    if (!frame.ok()) {
      std::fprintf(stderr, "%s\n", frame.error().c_str());
      return 1;
    }
    const Json& f = frame.value();
    if (!(f["req"].is_int() && f["req"].as_int() == 1)) {
      continue;  // frames of other jobs on this connection
    }
    PrintFrame(f);
    return f["type"].is_string() && f["type"].as_string() == "error" ? 2 : 0;
  }
}
