// Model checking as a service: a long-lived daemon accepting check /
// simulate / minimize / ckpt-info jobs as newline-delimited JSON over a
// Unix-domain socket or loopback TCP, running them on a bounded worker pool
// and streaming per-job progress back on the submitting connection. See
// DESIGN.md "Model checking as a service" for the wire protocol.
//
//   sandtable_serve --socket /tmp/sandtable.sock [--workers 4]
//                   [--metrics-socket /tmp/sandtable-metrics.sock]
//   sandtable_serve --port 7424 --metrics-port 9424 [--allow-shutdown]
//                   [--trace-out /tmp/serve.trace.json]
//
// Observability: `--trace-out FILE` records a Chrome trace of the daemon's
// lifetime (job queued/run/result spans per worker lane), written at
// shutdown. A crash-safe flight recorder is installed by default (disable
// with SANDTABLE_FLIGHT=0): recent events are dumped on fatal signals and
// attached to error result frames.
//
// On startup the daemon prints one "serving" JSON line with the bound
// addresses (ports are resolved, so --port 0 works for tests). SIGINT or
// SIGTERM drains: queued jobs are cancelled, running jobs stop at the next
// engine poll, every client gets its result frames, then the process exits.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/server.h"
#include "src/util/run_id.h"

using sandtable::Json;
using sandtable::JsonObject;

namespace {

sandtable::serve::Server* g_server = nullptr;

void OnSignal(int) {
  if (g_server != nullptr) {
    g_server->RequestStop();  // async-signal-safe: flag + pipe write
  }
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] [--port P] [--metrics-socket PATH]\n"
      "          [--metrics-port P] [--workers N] [--max-queued N]\n"
      "          [--max-queued-per-tenant N] [--default-time-budget-ms N]\n"
      "          [--max-time-budget-ms N] [--max-states N] [--max-depth N]\n"
      "          [--max-job-workers N] [--allow-shutdown] [--trace-out FILE]\n"
      "Job listener: --socket and/or --port (0 = ephemeral). Metrics listener\n"
      "(GET /metrics | /jobs | /healthz): --metrics-socket and/or --metrics-port.\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  sandtable::serve::ServerOptions opts;
  opts.scheduler.workers = 2;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](std::string* dst) {
      if (i + 1 >= argc) {
        return false;
      }
      *dst = argv[++i];
      return true;
    };
    std::string v;
    if (flag == "--socket" && next(&v)) {
      opts.unix_path = v;
    } else if (flag == "--port" && next(&v)) {
      opts.tcp_port = std::atoi(v.c_str());
    } else if (flag == "--metrics-socket" && next(&v)) {
      opts.metrics_unix_path = v;
    } else if (flag == "--metrics-port" && next(&v)) {
      opts.metrics_tcp_port = std::atoi(v.c_str());
    } else if (flag == "--workers" && next(&v)) {
      opts.scheduler.workers = std::max(1, std::atoi(v.c_str()));
    } else if (flag == "--max-queued" && next(&v)) {
      opts.scheduler.max_queued = std::max(0, std::atoi(v.c_str()));
    } else if (flag == "--max-queued-per-tenant" && next(&v)) {
      opts.scheduler.max_queued_per_tenant = std::max(0, std::atoi(v.c_str()));
    } else if (flag == "--default-time-budget-ms" && next(&v)) {
      opts.default_time_budget_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--max-time-budget-ms" && next(&v)) {
      opts.max_time_budget_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--max-states" && next(&v)) {
      opts.max_states_cap = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--max-depth" && next(&v)) {
      opts.max_depth_cap = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--max-job-workers" && next(&v)) {
      opts.max_workers_cap = std::max(0, std::atoi(v.c_str()));
    } else if (flag == "--allow-shutdown") {
      opts.allow_shutdown = true;
    } else if (flag == "--trace-out" && next(&v)) {
      trace_out = v;
    } else {
      Usage(argv[0]);
      return 1;
    }
  }
  if (opts.unix_path.empty() && opts.tcp_port < 0) {
    Usage(argv[0]);
    return 1;
  }

  // Flight recorder before any worker thread exists; static so the signal
  // handler can dump it at any later point in the process lifetime.
  static sandtable::obs::FlightRecorder flight_recorder;
  const char* flight_env = std::getenv("SANDTABLE_FLIGHT");
  if (flight_env == nullptr || flight_env[0] != '0') {
    flight_recorder.Install();
  }
  sandtable::obs::Tracer tracer;
  if (!trace_out.empty()) {
    tracer.Install();
  }

  sandtable::obs::MetricsRegistry registry;
  opts.metrics = &registry;
  sandtable::serve::Server server(opts);
  const sandtable::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "sandtable_serve: %s\n", started.error().c_str());
    return 1;
  }

  g_server = &server;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // worker writes handle EPIPE themselves

  // One machine-readable line announcing where we listen; tests and wrapper
  // scripts parse this instead of racing the bind.
  JsonObject serving;
  serving["type"] = Json("serving");
  if (!opts.unix_path.empty()) {
    serving["socket"] = Json(opts.unix_path);
  }
  if (opts.tcp_port >= 0) {
    serving["port"] = Json(static_cast<int64_t>(server.tcp_port()));
  }
  if (!opts.metrics_unix_path.empty()) {
    serving["metrics_socket"] = Json(opts.metrics_unix_path);
  }
  if (opts.metrics_tcp_port >= 0) {
    serving["metrics_port"] = Json(static_cast<int64_t>(server.metrics_tcp_port()));
  }
  serving["workers"] = Json(static_cast<int64_t>(opts.scheduler.workers));
  serving["run_id"] = Json(sandtable::RunId());
  serving["version"] = Json(sandtable::BuildVersion());
  std::printf("%s\n", Json(std::move(serving)).Dump().c_str());
  std::fflush(stdout);

  server.WaitShutdown();
  g_server = nullptr;
  if (tracer.installed()) {
    tracer.Uninstall();
    const sandtable::Status st = tracer.WriteChromeTrace(trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "sandtable_serve: trace write failed: %s\n",
                   st.error().c_str());
    }
  }
  std::fprintf(stderr, "sandtable_serve: drained, exiting\n");
  return 0;
}
