// ZooKeeper / Zab walkthrough: drive one full reign on the implementation
// (election → discovery → synchronization → broadcast), then reproduce
// ZooKeeper#1 (the vote total-order bug, ZOOKEEPER-1419) at the spec level
// and confirm it on the implementation by deterministic replay.
#include <cstdio>
#include <thread>

#include "src/conformance/zab_harness.h"
#include "src/mc/bfs.h"
#include "src/par/parallel_bfs.h"

using namespace sandtable;               // NOLINT(build/namespaces): example brevity
using namespace sandtable::conformance;  // NOLINT(build/namespaces)

int main() {
  // ---- Part 1: one reign, step by step -------------------------------------------
  std::printf("part 1: driving one Zab reign on the implementation\n");
  ZabHarness fixed = MakeZabHarness(/*with_bugs=*/false);
  auto eng = MakeZabEngineFactory(fixed)();
  if (!eng->StartAll()) {
    return 1;
  }
  // All servers start LOOKING; fire n1's election timer, deliver the election
  // messages until someone establishes.
  (void)eng->FireTimeout(0, "election");
  for (int round = 0; round < 40; ++round) {
    bool delivered = false;
    for (const auto& m : eng->proxy().Pending()) {
      if (!m.deliverable) {
        continue;
      }
      if (eng->DeliverMessage(m.src, m.dst, m.bytes)) {
        delivered = true;
        break;
      }
    }
    if (!delivered) {
      break;
    }
  }
  for (int node = 0; node < eng->num_nodes(); ++node) {
    auto s = eng->QueryNodeState(node);
    if (s.ok()) {
      std::printf("  n%d: role=%-9s epoch=%lld established=%s\n", node + 1,
                  s.value()["role"].as_string().c_str(),
                  static_cast<long long>(s.value()["acceptedEpoch"].as_int()),
                  s.value()["established"].as_bool() ? "yes" : "no");
    }
  }

  // ---- Part 2: ZooKeeper#1 --------------------------------------------------------
  std::printf("\npart 2: hunting ZooKeeper#1 (votes not totally ordered, v3.4.3)\n");
  ZabHarness buggy = MakeZabHarness(/*with_bugs=*/true);
  buggy.profile.budget.max_timeouts = 5;
  buggy.profile.budget.max_client_requests = 1;
  buggy.profile.budget.max_crashes = 1;
  buggy.profile.budget.max_restarts = 1;
  buggy.profile.budget.max_rounds = 2;
  buggy.profile.budget.max_epoch = 2;
  buggy.profile.budget.max_history = 1;
  buggy.profile.budget.max_msg_buffer = 3;
  const Spec spec = MakeHarnessSpec(buggy);
  // Parallel BFS (src/par/): same minimal-depth counterexample as serial,
  // found faster on multi-core machines.
  ParBfsOptions opts;
  opts.base.max_distinct_states = 60000000;
  opts.base.time_budget_s = 900;
  opts.workers = static_cast<int>(std::thread::hardware_concurrency());
  const BfsResult r = ParallelBfsCheck(spec, opts);
  if (!r.violation.has_value()) {
    std::printf("  not found within the budget\n");
    return 1;
  }
  std::printf("  violated %s\n", ViolationSummary(*r.violation).c_str());
  std::printf("  the optimal trace exercises election, discovery, synchronization and\n"
              "  broadcast — the same observation the paper makes for this bug:\n");
  std::fputs(FormatTraceEvents(r.violation->trace, "    ").c_str(), stdout);

  std::printf("\npart 3: confirming on the implementation by deterministic replay\n");
  const ConfirmationResult confirm =
      ConfirmBug(MakeZabEngineFactory(buggy), MakeZabObserver(buggy), r.violation->trace);
  std::printf("  %s\n", confirm.confirmed
                            ? "bug CONFIRMED: the implementation followed every event"
                            : ("replay diverged: " +
                               confirm.replay.discrepancy->ToString())
                                  .c_str());
  return confirm.confirmed ? 0 : 1;
}
