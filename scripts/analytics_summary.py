#!/usr/bin/env python3
"""Summarize a SandTable exploration profile (the --analytics-out output).

Usage: analytics_summary.py [--json] [--top N] PROFILE.json

Reads the per-action exploration profile written by `sandtable_cli check
--analytics-out FILE` (or a serve result frame's "analytics" object) and
prints:

  - hot actions: a ranked table by cumulative expansion time, with
    enabled/fired counts, fanout, duplicate rate and per-branch hits;
  - invariant cost: checks, total and mean time per (transition) invariant;
  - the wave-width histogram, duplicate/revisit rates, fingerprint-collision
    probability and the commuting-delivery POR opportunity;
  - coverage gaps: actions that never fired and declared branches never hit.

Exits 0 on a valid profile, 1 on malformed input; coverage gaps are flagged
in the output but do not change the exit status (gating on gaps is the
model checker's ReportToText WARNING lines, not this renderer).

--json emits the same summary as one JSON object for dashboards.
"""
import json
import sys


def ns(v):
    v = float(v)
    if v >= 1e9:
        return "%.2fs" % (v / 1e9)
    if v >= 1e6:
        return "%.2fms" % (v / 1e6)
    if v >= 1e3:
        return "%.2fus" % (v / 1e3)
    return "%.0fns" % v


def summarize(doc, top_n):
    actions = sorted(doc.get("actions", []),
                     key=lambda a: (-int(a.get("expand_ns", 0)), a.get("action", "")))
    out = {
        "run_id": doc.get("run_id", ""),
        "engine": doc.get("engine", ""),
        "spec": doc.get("spec", ""),
        "states_expanded": doc.get("states_expanded", 0),
        "distinct_states": doc.get("distinct_states", 0),
        "successors": doc.get("successors", 0),
        "duplicate_rate": doc.get("duplicate_rate", 0.0),
        "revisit_rate": doc.get("revisit_rate", 0.0),
        "collision_probability": doc.get("collision_probability", 0.0),
        "delivery_pairs": doc.get("delivery_pairs", 0),
        "commuting_delivery_pairs": doc.get("commuting_delivery_pairs", 0),
        "depth_histogram": doc.get("depth_histogram", []),
        "hot_actions": actions[:top_n],
        "more_actions": max(0, len(actions) - top_n),
        "invariants": doc.get("invariants", []),
        "transition_invariants": doc.get("transition_invariants", []),
        "coverage_gaps": {
            "zero_hit_actions": doc.get("zero_hit_actions", []),
            "zero_hit_branches": doc.get("zero_hit_branches", []),
        },
    }
    return out


def render_text(s):
    lines = []
    head = "exploration analytics — run %s" % (s["run_id"] or "?")
    if s["engine"] or s["spec"]:
        head += " (%s%s)" % (s["engine"], ", " + s["spec"] if s["spec"] else "")
    lines.append(head)
    lines.append("  %d states expanded, %d distinct, %d successors"
                 % (s["states_expanded"], s["distinct_states"], s["successors"]))
    lines.append("")
    lines.append("hot actions (by cumulative expand time):")
    lines.append("  %-26s %-9s %9s %9s %8s %8s %10s"
                 % ("action", "kind", "enabled", "fired", "fan.avg", "dup%", "time"))
    for a in s["hot_actions"]:
        lines.append("  %-26s %-9s %9d %9d %8.2f %7.1f%% %10s"
                     % (a.get("action", "?"), a.get("kind", "?"),
                        a.get("enabled", 0), a.get("fired", 0),
                        a.get("fanout_avg", 0.0),
                        100.0 * a.get("duplicate_rate", 0.0),
                        ns(a.get("expand_ns", 0))))
        for b in a.get("branches", []):
            lines.append("      branch %-22s %d hits" % (b.get("id", "?"), b.get("hits", 0)))
    if s["more_actions"]:
        lines.append("  ... %d more actions (rerun with --top N)" % s["more_actions"])
    for key in ("invariants", "transition_invariants"):
        if not s[key]:
            continue
        lines.append("")
        lines.append("%s:" % key.replace("_", " "))
        for inv in s[key]:
            checks = inv.get("checks", 0)
            total = inv.get("ns", 0)
            lines.append("  %-26s checks %-12d total %-10s mean %s"
                         % (inv.get("name", "?"), checks, ns(total),
                            ns(total / checks if checks else 0)))
    lines.append("")
    hist = s["depth_histogram"]
    if hist:
        shown = " ".join("%d:%d" % (d, w) for d, w in enumerate(hist[:16]))
        if len(hist) > 16:
            shown += " ..."
        lines.append("wave widths (depth:states): %s  (%d levels)" % (shown, len(hist)))
    lines.append("duplicate successor rate:   %.1f%%" % (100.0 * s["duplicate_rate"]))
    lines.append("revisit rate:               %.1f%%" % (100.0 * s["revisit_rate"]))
    lines.append("collision probability:      %.3g" % s["collision_probability"])
    if s["delivery_pairs"]:
        lines.append("commuting deliveries:       %d of %d pairs (%.1f%%) — POR opportunity"
                     % (s["commuting_delivery_pairs"], s["delivery_pairs"],
                        100.0 * s["commuting_delivery_pairs"] / s["delivery_pairs"]))
    gaps = s["coverage_gaps"]
    if gaps["zero_hit_actions"] or gaps["zero_hit_branches"]:
        lines.append("")
        lines.append("coverage gaps:")
        for name in gaps["zero_hit_actions"]:
            lines.append("  action %s never fired" % name)
        for name in gaps["zero_hit_branches"]:
            lines.append("  branch %s declared but never hit" % name)
    else:
        lines.append("coverage gaps:              none")
    return "\n".join(lines)


def main(argv):
    as_json = False
    top_n = 12
    path = None
    args = argv[1:]
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--json":
            as_json = True
        elif a == "--top" and i + 1 < len(args):
            i += 1
            top_n = int(args[i])
        elif a.startswith("-"):
            sys.stderr.write(__doc__)
            return 2
        else:
            path = a
        i += 1
    if path is None:
        sys.stderr.write(__doc__)
        return 2
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.stderr.write("%s: %s\n" % (path, err))
        return 1
    if not isinstance(doc, dict) or not doc.get("actions"):
        sys.stderr.write("%s: not an exploration profile (no actions)\n" % path)
        return 1
    s = summarize(doc, top_n)
    if as_json:
        json.dump(s, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(render_text(s))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
