#!/usr/bin/env bash
# One-command verification sweep: the tier-1 build + full test suite, the
# ThreadSanitizer build running the concurrency-labeled tests (the work
# stealing deque, compacted store, scheduler and serve stress tests), and the
# randomized differential-equivalence harness (diff-smoke).
#
# Usage: scripts/check_all.sh [--skip-tsan]
#   --skip-tsan   tier-1 + diff-smoke only (e.g. when a TSan toolchain is
#                 unavailable); prints a loud notice so a green run is never
#                 mistaken for a sanitized one.
#
# Build dirs: ./build (tier-1) and ./build-tsan (ThreadSanitizer), created
# next to this script's repo root. Exit status is non-zero if any stage fails.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "usage: $0 [--skip-tsan]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> [1/3] tier-1: configure + build + full ctest (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [2/3] diff-smoke: randomized differential-equivalence harness"
ctest --test-dir build -L diff-smoke --output-on-failure

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "==> [3/3] SKIPPED: ThreadSanitizer suite (--skip-tsan given)"
  echo "    NOT a fully verified run — rerun without --skip-tsan before merging."
else
  echo "==> [3/3] ThreadSanitizer: par-labeled concurrency tests (build-tsan/)"
  cmake -B build-tsan -S . -DSANDTABLE_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan -L par --output-on-failure -j "$JOBS"
fi

echo "==> all checks passed"
