#!/usr/bin/env python3
"""Summarize a SandTable Chrome trace (the --trace-out output).

Usage: trace_summary.py [--json] TRACE.json

Reads the trace-event JSON written by obs::Tracer::WriteChromeTrace and
prints, per run:

  - top phases: complete spans grouped by name, by total (inclusive) duration;
  - worker lanes: per-thread busy time (worker.wave spans), barrier idle time
    (barrier.wait spans) and utilization over the lane's active window;
  - spill/checkpoint stalls: total time in store.spill, store.compact and
    ckpt.write spans — exploration time lost to the out-of-core machinery.

--json emits the same summary as one JSON object for dashboards.
"""
import collections
import json
import sys

BUSY_SPANS = ("worker.wave",)
IDLE_SPANS = ("barrier.wait", "barrier.join")
STALL_SPANS = ("store.spill", "store.compact", "ckpt.write")


def us(v):
    return "%.1fms" % (v / 1000.0)


def summarize(doc):
    events = doc.get("traceEvents", [])
    meta = doc.get("metadata", {})
    names = {}  # tid -> thread name
    complete = []
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            names[e.get("tid")] = e.get("args", {}).get("name", "")
        elif e.get("ph") == "X":
            complete.append(e)

    phases = collections.defaultdict(lambda: {"count": 0, "total_us": 0.0, "max_us": 0.0})
    lanes = collections.defaultdict(
        lambda: {"events": 0, "busy_us": 0.0, "idle_us": 0.0, "t0": None, "t1": None})
    stalls = collections.defaultdict(lambda: {"count": 0, "total_us": 0.0})

    for e in complete:
        name, dur, ts, tid = e["name"], float(e.get("dur", 0)), float(e["ts"]), e["tid"]
        p = phases[name]
        p["count"] += 1
        p["total_us"] += dur
        p["max_us"] = max(p["max_us"], dur)
        lane = lanes[tid]
        lane["events"] += 1
        lane["t0"] = ts if lane["t0"] is None else min(lane["t0"], ts)
        lane["t1"] = ts + dur if lane["t1"] is None else max(lane["t1"], ts + dur)
        if name in BUSY_SPANS:
            lane["busy_us"] += dur
        if name in IDLE_SPANS:
            lane["idle_us"] += dur
        if name in STALL_SPANS:
            s = stalls[name]
            s["count"] += 1
            s["total_us"] += dur

    out = {
        "run_id": meta.get("run_id", ""),
        "version": meta.get("version", ""),
        "dropped_events": meta.get("dropped_events", 0),
        "events": len(events),
        "complete_spans": len(complete),
        "top_phases": [],
        "workers": [],
        "stalls": [],
    }
    for name, p in sorted(phases.items(), key=lambda kv: -kv[1]["total_us"]):
        out["top_phases"].append({"name": name, **p})
    for tid, lane in sorted(lanes.items()):
        window = (lane["t1"] - lane["t0"]) if lane["events"] else 0.0
        out["workers"].append({
            "tid": tid,
            "name": names.get(tid, ""),
            "events": lane["events"],
            "busy_us": lane["busy_us"],
            "barrier_idle_us": lane["idle_us"],
            "window_us": window,
            "utilization": (lane["busy_us"] / window) if window > 0 else 0.0,
            "barrier_idle_frac": (lane["idle_us"] / window) if window > 0 else 0.0,
        })
    for name, s in sorted(stalls.items(), key=lambda kv: -kv[1]["total_us"]):
        out["stalls"].append({"name": name, **s})
    return out


def render_text(s):
    lines = []
    lines.append("trace summary — run %s (version %s, %d events, %d spans, %d dropped)"
                 % (s["run_id"], s["version"], s["events"], s["complete_spans"],
                    s["dropped_events"]))
    lines.append("")
    lines.append("top phases (by total inclusive duration):")
    lines.append("  %-24s %8s %12s %12s %12s" % ("phase", "count", "total", "mean", "max"))
    for p in s["top_phases"][:12]:
        mean = p["total_us"] / p["count"] if p["count"] else 0.0
        lines.append("  %-24s %8d %12s %12s %12s"
                     % (p["name"], p["count"], us(p["total_us"]), us(mean), us(p["max_us"])))
    lines.append("")
    lines.append("worker lanes (busy = worker.wave, idle = barrier.wait):")
    lines.append("  %-16s %8s %12s %12s %8s %8s"
                 % ("lane", "events", "busy", "barrier", "util%", "idle%"))
    for w in s["workers"]:
        label = w["name"] or ("tid-%d" % w["tid"])
        lines.append("  %-16s %8d %12s %12s %7.1f%% %7.1f%%"
                     % (label, w["events"], us(w["busy_us"]), us(w["barrier_idle_us"]),
                        100.0 * w["utilization"], 100.0 * w["barrier_idle_frac"]))
    lines.append("")
    if s["stalls"]:
        lines.append("spill/checkpoint stalls:")
        for st in s["stalls"]:
            lines.append("  %-24s %8d %12s" % (st["name"], st["count"], us(st["total_us"])))
    else:
        lines.append("spill/checkpoint stalls: none recorded")
    return "\n".join(lines)


def main(argv):
    as_json = False
    path = None
    for a in argv[1:]:
        if a == "--json":
            as_json = True
        elif a.startswith("-"):
            sys.stderr.write(__doc__)
            return 2
        else:
            path = a
    if path is None:
        sys.stderr.write(__doc__)
        return 2
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.stderr.write("%s: %s\n" % (path, err))
        return 1
    if not doc.get("traceEvents"):
        sys.stderr.write("%s: no traceEvents\n" % path)
        return 1
    s = summarize(doc)
    if as_json:
        json.dump(s, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(render_text(s))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
