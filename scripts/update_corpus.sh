#!/usr/bin/env bash
# Re-minimize every verification-stage catalog bug and diff the result against
# the checked-in golden traces in tests/corpus/. Corpus drift (a spec or
# minimizer change that alters a minimized counterexample) becomes an explicit
# review event instead of a silent test failure.
#
# usage: scripts/update_corpus.sh [--write] [--cli PATH] [BUG_ID...]
#   --write     overwrite tests/corpus/ with the re-minimized traces
#   --cli PATH  sandtable_cli binary (default: build/examples/sandtable_cli)
#   BUG_ID...   restrict to specific bugs (default: all verification bugs)
#
# Exit status: 0 = corpus up to date (or updated with --write), 1 = drift
# found (without --write), 2 = a hunt or the CLI failed.
set -u -o pipefail

cd "$(dirname "$0")/.."

write=0
cli=build/examples/sandtable_cli
bugs=()
while [ $# -gt 0 ]; do
  case "$1" in
    --write) write=1 ;;
    --cli) cli="$2"; shift ;;
    -h|--help) sed -n '2,13p' "$0"; exit 0 ;;
    *) bugs+=("$1") ;;
  esac
  shift
done

if [ ! -x "$cli" ]; then
  echo "error: $cli not found or not executable (build first: cmake --build build)" >&2
  exit 2
fi

if [ ${#bugs[@]} -eq 0 ]; then
  # All verification-stage bugs. WRaft#2 shares its seed and property with
  # WRaft#1 (Figure 7), so WRaft#1's golden trace covers both.
  while read -r id; do
    [ "$id" = "WRaft#2" ] && continue
    bugs+=("$id")
  done < <("$cli" list-bugs | awk '$3 == "Verification" { print $1 }')
fi

slug() {
  echo "$1" | tr '[:upper:]' '[:lower:]' | sed 's/[^a-z0-9]\{1,\}/_/g; s/_$//'
}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

drift=0
failed=0
for bug in "${bugs[@]}"; do
  s=$(slug "$bug")
  golden="tests/corpus/${s}.trace.json"
  fresh="$tmpdir/${s}.trace.json"
  if ! "$cli" minimize --bug "$bug" --corpus-out "$fresh" >"$tmpdir/${s}.log" 2>&1; then
    echo "FAIL   $bug: minimize failed (see below)" >&2
    tail -5 "$tmpdir/${s}.log" >&2
    failed=1
    continue
  fi
  if [ ! -f "$golden" ]; then
    echo "NEW    $bug: no golden trace at $golden"
    drift=1
  elif ! diff -q "$golden" "$fresh" >/dev/null; then
    echo "DRIFT  $bug: re-minimized trace differs from $golden"
    diff -u "$golden" "$fresh" | head -40
    drift=1
  else
    echo "OK     $bug"
    continue
  fi
  if [ "$write" = 1 ]; then
    mkdir -p tests/corpus
    cp "$fresh" "$golden"
    echo "WROTE  $golden"
  fi
done

[ "$failed" = 1 ] && exit 2
if [ "$drift" = 1 ] && [ "$write" = 0 ]; then
  echo ""
  echo "corpus drift found; re-run with --write to update tests/corpus/" >&2
  exit 1
fi
exit 0
