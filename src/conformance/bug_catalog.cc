#include "src/conformance/bug_catalog.h"

#include "src/raftspec/raft_spec.h"
#include "src/util/check.h"
#include "src/zabspec/zab_spec.h"

namespace sandtable {
namespace conformance {

const char* BugStageName(BugStage stage) {
  switch (stage) {
    case BugStage::kVerification:
      return "Verification";
    case BugStage::kConformance:
      return "Conformance";
    case BugStage::kModeling:
      return "Modeling";
  }
  return "?";
}

namespace {

// Default hunting budget shared by the verification-stage Raft bugs; per-bug
// tuners adjust it (the paper's Algorithm 1 would rank these constraints).
void BaseBudget(RaftBudget& b) {
  b.max_timeouts = 4;
  b.max_client_requests = 2;
  b.max_crashes = 0;
  b.max_restarts = 0;
  b.max_partitions = 0;
  b.max_drops = 0;
  b.max_dups = 0;
  b.max_term = 3;
  b.max_msg_buffer = 4;
  b.max_log_len = 3;
  b.max_snapshots = 1;
}

std::vector<BugInfo> BuildCatalog() {
  std::vector<BugInfo> bugs;

  auto add = [&bugs](BugInfo info) { bugs.push_back(std::move(info)); };

  add({.id = "PySyncObj#1",
       .system = "pysyncobj",
       .stage = BugStage::kConformance,
       .is_new = true,
       .consequence = "Unhandled exception during disconnection",
       .enable_impl = [](systems::RaftImplBugs& b) { b.pso1_crash_on_disconnect = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_partitions = 1; }});
  add({.id = "PySyncObj#2",
       .system = "pysyncobj",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Commit index is not monotonic",
       .invariant = "CommitIndexMonotonic",
       .enable_spec = [](RaftBugs& b) { b.pso2_commit_regress = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_client_requests = 1;
                                          b.max_log_len = 1; b.max_msg_buffer = 3; },
       .paper_time_s = 6,
       .paper_depth = 13,
       .paper_states = 93713});
  add({.id = "PySyncObj#3",
       .system = "pysyncobj",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Next index <= match index",
       .invariant = "NextIndexSound",
       .enable_spec = [](RaftBugs& b) { b.pso3_next_le_match = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_partitions = 1;
                                          b.max_client_requests = 2; b.max_log_len = 2;
                                          b.max_term = 2; b.max_msg_buffer = 3; },
       .num_values = 1,
       .min_hunt_s = 200,
       .paper_time_s = 7,
       .paper_depth = 18,
       .paper_states = 189725});
  add({.id = "PySyncObj#4",
       .system = "pysyncobj",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Match index is not monotonic",
       .invariant = "MatchIndexMonotonic",
       .enable_spec = [](RaftBugs& b) { b.pso4_match_regress = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_partitions = 1;
                                          b.max_client_requests = 2; b.max_log_len = 2;
                                          b.max_term = 2; b.max_msg_buffer = 3; },
       .num_values = 1,
       .min_hunt_s = 400,
       .paper_time_s = 35,
       .paper_depth = 25,
       .paper_states = 1512679});
  add({.id = "PySyncObj#5",
       .system = "pysyncobj",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Leader commits log entries of older terms",
       .invariant = "LeaderCommitsCurrentTerm",
       .enable_spec = [](RaftBugs& b) { b.pso5_commit_old_term = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 3;
                                          b.max_client_requests = 1; b.max_log_len = 1;
                                          b.max_term = 2; b.max_msg_buffer = 3; },
       .paper_time_s = 120,
       .paper_depth = 14,
       .paper_states = 2364779});
  add({.id = "WRaft#1",
       .system = "wraft",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Incorrectly appending log entries",
       .invariant = "CommittedLogsConsistent",
       .enable_spec =
           [](RaftBugs& b) {
             // Triggering #1 requires #2's wrong message (Figure 7).
             b.wr1_commit_own_last = true;
             b.wr2_ae_instead_of_snapshot = true;
           },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 4;
                                          b.max_client_requests = 2; b.max_log_len = 1;
                                          b.max_term = 2; b.max_msg_buffer = 3; },
       .num_values = 1,
       .min_hunt_s = 600,
       .paper_time_s = 540,
       .paper_depth = 22,
       .paper_states = 5954049});
  add({.id = "WRaft#2",
       .system = "wraft",
       .stage = BugStage::kVerification,
       .is_new = false,
       .consequence = "Inconsistent committed log",
       .invariant = "CommittedLogsConsistent",
       .enable_spec =
           [](RaftBugs& b) {
             b.wr1_commit_own_last = true;
             b.wr2_ae_instead_of_snapshot = true;
           },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 4;
                                          b.max_client_requests = 2; b.max_log_len = 1;
                                          b.max_term = 2; b.max_msg_buffer = 3; },
       .num_values = 1,
       .min_hunt_s = 600,
       .paper_time_s = 1320,
       .paper_depth = 20,
       .paper_states = 20955790});
  add({.id = "WRaft#3",
       .system = "wraft",
       .stage = BugStage::kConformance,
       .is_new = true,
       .consequence = "Follower lagging behind until next snapshot",
       .enable_impl = [](systems::RaftImplBugs& b) { b.wr3_reject_snapshot = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 5;
                                          b.max_snapshots = 1; }});
  add({.id = "WRaft#4",
       .system = "wraft",
       .stage = BugStage::kVerification,
       .is_new = false,
       .consequence = "Current term is not monotonic",
       .invariant = "CurrentTermMonotonic",
       .enable_spec = [](RaftBugs& b) { b.wr4_term_regress = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 2;
                                          b.max_client_requests = 0; b.max_term = 2;
                                          b.max_msg_buffer = 3; },
       .paper_time_s = 2340,
       .paper_depth = 23,
       .paper_states = 48338241});
  add({.id = "WRaft#5",
       .system = "wraft",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Retry messages include empty logs",
       .invariant = "NonEmptyRetry",
       .enable_spec = [](RaftBugs& b) { b.wr5_empty_retry = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 3;
                                          b.max_client_requests = 2; b.max_log_len = 2;
                                          b.max_term = 2; b.max_msg_buffer = 3; },
       .num_values = 1,
       .paper_time_s = 660,
       .paper_depth = 24,
       .paper_states = 10576917});
  add({.id = "WRaft#6",
       .system = "wraft",
       .stage = BugStage::kConformance,
       .is_new = false,
       .consequence = "Memory leak",
       .enable_impl = [](systems::RaftImplBugs& b) { b.wr6_leak = true; },
       .tune_budget = BaseBudget});
  add({.id = "WRaft#7",
       .system = "wraft",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Next index <= match index",
       .invariant = "NextIndexSound",
       .enable_spec = [](RaftBugs& b) { b.wr7_next_eq_match = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 2;
                                          b.max_client_requests = 1; b.max_log_len = 1;
                                          b.max_term = 1; b.max_msg_buffer = 3; },
       .paper_time_s = 480,
       .paper_depth = 23,
       .paper_states = 7401586});
  add({.id = "WRaft#8",
       .system = "wraft",
       .stage = BugStage::kConformance,
       .is_new = true,
       .consequence = "Prematurely stopping sending heartbeats",
       .enable_impl = [](systems::RaftImplBugs& b) { b.wr8_stop_heartbeats = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_crashes = 1; }});
  add({.id = "WRaft#9",
       .system = "wraft",
       .stage = BugStage::kModeling,
       .is_new = false,
       .consequence = "Cannot elect leaders due to incorrectly getting term",
       .tune_budget = BaseBudget});
  add({.id = "DaosRaft#1",
       .system = "daosraft",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Leader votes for others",
       .invariant = "LeaderVotedSelf",
       .enable_spec = [](RaftBugs& b) { b.daos1_leader_votes = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 2;
                                          b.max_client_requests = 0; b.max_term = 2;
                                          b.max_msg_buffer = 3; },
       .paper_time_s = 5,
       .paper_depth = 8,
       .paper_states = 476});
  add({.id = "RaftOS#1",
       .system = "raftos",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Match index is not monotonic",
       .invariant = "MatchIndexMonotonic",
       .enable_spec = [](RaftBugs& b) { b.ros1_match_regress = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 2;
                                          b.max_client_requests = 1; b.max_log_len = 1;
                                          b.max_dups = 1; b.max_term = 1;
                                          b.max_msg_buffer = 3; },
       .paper_time_s = 5,
       .paper_depth = 10,
       .paper_states = 60101});
  add({.id = "RaftOS#2",
       .system = "raftos",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Incorrectly erasing log entries",
       .invariant = "LogDurability",
       .enable_spec = [](RaftBugs& b) { b.ros2_erase_matched = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_dups = 1;
                                          b.max_log_len = 2; b.max_term = 1;
                                          b.max_msg_buffer = 3; },
       .num_values = 1,
       .paper_time_s = 4,
       .paper_depth = 9,
       .paper_states = 19455});
  add({.id = "RaftOS#3",
       .system = "raftos",
       .stage = BugStage::kConformance,
       .is_new = true,
       .consequence = "Unhandled exception during receiving messages",
       .enable_impl = [](systems::RaftImplBugs& b) { b.ros3_crash_unknown_peer = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_dups = 1; }});
  add({.id = "RaftOS#4",
       .system = "raftos",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Prematurely stopping checking commitment",
       .invariant = "CommitAdvanceComplete",
       .enable_spec = [](RaftBugs& b) { b.ros4_commit_break = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_log_len = 2;
                                          b.max_term = 2; b.max_msg_buffer = 3; },
       .min_hunt_s = 400,
       .paper_time_s = 240,
       .paper_depth = 14,
       .paper_states = 16938773});
  add({.id = "Xraft#1",
       .system = "xraft",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "More than one valid leader in the same term",
       .invariant = "AtMostOneLeaderPerTerm",
       .enable_spec = [](RaftBugs& b) { b.xr1_stale_vote = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 3;
                                          b.max_client_requests = 0; b.max_term = 2;
                                          b.max_msg_buffer = 3; },
       .paper_time_s = 3,
       .paper_depth = 8,
       .paper_states = 3534});
  add({.id = "Xraft#2",
       .system = "xraft",
       .stage = BugStage::kConformance,
       .is_new = true,
       .consequence = "Unhandled concurrent modification exception",
       .enable_impl = [](systems::RaftImplBugs& b) { b.xr2_concurrent_modification = true; },
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 5; }});
  add({.id = "Xraft-KV#1",
       .system = "xraftkv",
       .stage = BugStage::kVerification,
       .is_new = true,
       .consequence = "Read operations do not satisfy linearizability",
       .invariant = "ReadLinearizability",
       .enable_spec = [](RaftBugs& b) { b.xkv1_stale_read = true; },
       // The minimal trigger needs no write on the deposed side at all: the
       // stale leader answers 0 while the majority side has committed one put.
       .tune_budget = [](RaftBudget& b) { BaseBudget(b); b.max_timeouts = 3;
                                          b.max_client_requests = 1; b.max_partitions = 1;
                                          b.max_log_len = 1; b.max_term = 2;
                                          b.max_msg_buffer = 3; },
       .num_values = 1,
       .paper_time_s = 15,
       .paper_depth = 10,
       .paper_states = 124409});
  add({.id = "ZooKeeper#1",
       .system = "zookeeper",
       .stage = BugStage::kVerification,
       .is_new = false,
       .consequence = "Votes are not total ordered",
       .invariant = "VotesTotallyOrdered",
       .zab_bug = true,
       .min_hunt_s = 600,
       .paper_time_s = 240,
       .paper_depth = 41,
       .paper_states = 7625160});

  return bugs;
}

}  // namespace

const std::vector<BugInfo>& BugCatalog() {
  static const std::vector<BugInfo> kCatalog = BuildCatalog();
  return kCatalog;
}

const BugInfo& FindBug(const std::string& id) {
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.id == id) {
      return bug;
    }
  }
  CHECK(false) << "unknown bug id: " << id;
  __builtin_unreachable();
}

RaftProfile MakeBugProfile(const BugInfo& bug) {
  CHECK(!bug.zab_bug) << bug.id << " uses the Zab profile";
  RaftProfile p = GetRaftProfile(bug.system, /*with_bugs=*/false);
  p.bugs = RaftBugs{};
  if (bug.enable_spec != nullptr) {
    bug.enable_spec(p.bugs);
  }
  if (bug.tune_budget != nullptr) {
    bug.tune_budget(p.budget);
  }
  if (bug.num_values > 0) {
    p.config.num_values = bug.num_values;
  }
  return p;
}

Spec MakeBugSpec(const BugInfo& bug) {
  if (bug.zab_bug) {
    // ZooKeeper#1's tuned hunting budget (the same one test_zabspec and the
    // zab bench use): crashes and restarts on, everything else tight.
    ZabProfile p = GetZabProfile(/*with_bugs=*/true);
    p.budget.max_timeouts = 5;
    p.budget.max_client_requests = 1;
    p.budget.max_crashes = 1;
    p.budget.max_restarts = 1;
    p.budget.max_rounds = 2;
    p.budget.max_epoch = 2;
    p.budget.max_history = 1;
    p.budget.max_msg_buffer = 3;
    return MakeZabSpec(p);
  }
  CHECK(bug.enable_spec != nullptr)
      << bug.id << " has no spec-level switch (not a verification-stage bug)";
  return MakeRaftSpec(MakeBugProfile(bug));
}

}  // namespace conformance
}  // namespace sandtable
