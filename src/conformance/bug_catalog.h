// The Table 2 bug catalog: every bug SandTable found in the paper, with the
// profile switches that seed it in this reproduction, the tuned hunting
// budget, the safety property expected to fire, and the paper's reported
// metrics (for EXPERIMENTS.md side-by-side comparison).
#ifndef SANDTABLE_SRC_CONFORMANCE_BUG_CATALOG_H_
#define SANDTABLE_SRC_CONFORMANCE_BUG_CATALOG_H_

#include <string>
#include <vector>

#include "src/raftspec/raft_params.h"
#include "src/spec/spec.h"
#include "src/systems/raft_node.h"

namespace sandtable {
namespace conformance {

enum class BugStage {
  kVerification,  // found by model checking (has Time/#Depth/#States metrics)
  kConformance,   // found by conformance checking
  kModeling,      // found while writing the specification
};

const char* BugStageName(BugStage stage);

struct BugInfo {
  std::string id;          // e.g. "PySyncObj#4"
  std::string system;      // profile name ("pysyncobj", ..., "zookeeper")
  BugStage stage = BugStage::kVerification;
  bool is_new = false;     // "New" vs "Old" in Table 2
  std::string consequence; // Table 2's "Bug Consequence" column
  std::string invariant;   // property expected to fire (verification bugs)

  // Switch the bug on in the spec/impl-shared profile and/or the impl-only set.
  void (*enable_spec)(RaftBugs&) = nullptr;
  void (*enable_impl)(systems::RaftImplBugs&) = nullptr;
  bool zab_bug = false;    // ZooKeeper#1 uses the Zab profile instead

  // Tuned §3.3-style budget for the hunt (applied over the base profile).
  void (*tune_budget)(RaftBudget&) = nullptr;
  // Workload values for the hunt configuration (0 = profile default). Bugs
  // whose trigger does not depend on the written values hunt faster with 1.
  int num_values = 0;
  // Minimum model-checking wall-clock this bug needs on a laptop core; bench
  // budgets take the max of this and the global budget.
  double min_hunt_s = 0;

  // Paper-reported metrics (0 / empty when not applicable).
  double paper_time_s = 0;
  int paper_depth = 0;
  long long paper_states = 0;
};

// All 23 bugs of Table 2, in paper order.
const std::vector<BugInfo>& BugCatalog();

// The catalog entry for `id`; CHECK-fails when unknown.
const BugInfo& FindBug(const std::string& id);

// Build the buggy Raft profile for a catalog entry (verification-stage Raft
// bugs): base system profile with only this bug's switches and the tuned
// hunting budget.
RaftProfile MakeBugProfile(const BugInfo& bug);

// Build the specification a verification-stage bug is hunted — and its golden
// corpus trace replayed — against: MakeRaftSpec over the buggy profile, or
// for the zab_bug entry the tuned ZooKeeper#1 hunting profile (the budget
// test_zabspec and the bench hunt with). CHECK-fails for bugs without a spec
// switch (conformance/modeling-stage entries).
Spec MakeBugSpec(const BugInfo& bug);

}  // namespace conformance
}  // namespace sandtable

#endif  // SANDTABLE_SRC_CONFORMANCE_BUG_CATALOG_H_
