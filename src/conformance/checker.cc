#include "src/conformance/checker.h"

#include <chrono>

#include "src/mc/random_walk.h"
#include "src/obs/phase_timer.h"
#include "src/trace/replay.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace sandtable {
namespace conformance {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

std::string Discrepancy::ToString() const {
  std::string out = StrFormat("discrepancy at step %zu (%s -> %s): %s", step, action.c_str(),
                              command.c_str(), kind.c_str());
  if (!detail.empty()) {
    out += "\n  " + detail;
  }
  for (const ValueDiffEntry& d : diffs) {
    out += StrFormat("\n  %s: spec=%s impl=%s", d.path.c_str(), d.lhs.c_str(), d.rhs.c_str());
  }
  return out;
}

ReplayResult ReplayTrace(const EngineFactory& factory, const ClusterObserver& observer,
                         const std::vector<TraceStep>& trace, const ReplayOptions& options) {
  ReplayResult result;
  std::unique_ptr<engine::Engine> eng = factory();
  Status started = eng->StartAll();
  if (!started) {
    Discrepancy d;
    d.kind = "command";
    d.detail = "cluster start failed: " + started.error();
    result.discrepancy = std::move(d);
    return result;
  }

  for (size_t i = 1; i < trace.size(); ++i) {
    const TraceStep& step = trace[i];
    auto cmd = trace::CommandFromStep(step);
    if (!cmd.ok()) {
      Discrepancy d;
      d.step = i;
      d.action = step.label.ToString();
      d.kind = "command";
      d.detail = cmd.error();
      result.discrepancy = std::move(d);
      return result;
    }
    result.commands.push_back(cmd.value().ToString());

    Json response;
    Status status = trace::ExecuteCommand(*eng, cmd.value(), &response);
    if (!status) {
      Discrepancy d;
      d.step = i;
      d.action = step.label.ToString();
      d.command = cmd.value().ToString();
      // Distinguish an unexpected node crash (an implementation bug surfaced)
      // from a command that could not be applied (replay divergence).
      bool crashed = false;
      for (int node = 0; node < eng->num_nodes(); ++node) {
        crashed = crashed || !eng->NodeFault(node).empty();
      }
      d.kind = crashed ? "crash" : "command";
      d.detail = status.error();
      result.discrepancy = std::move(d);
      return result;
    }
    result.steps_executed = i;

    // Reads carry an expected result chosen by the specification.
    if (cmd.value().type == trace::CommandType::kClientRead) {
      const Json& expected = cmd.value().expected_response;
      if (!(response["val"] == expected["val"])) {
        Discrepancy d;
        d.step = i;
        d.action = step.label.ToString();
        d.command = cmd.value().ToString();
        d.kind = "response";
        d.detail = StrFormat("read returned %s, specification expected %s",
                             response.Dump().c_str(), expected["val"].Dump().c_str());
        result.discrepancy = std::move(d);
        return result;
      }
    }

    if (options.compare_states) {
      auto observed = observer.ObserveCluster(*eng);
      if (!observed.ok()) {
        Discrepancy d;
        d.step = i;
        d.action = step.label.ToString();
        d.command = cmd.value().ToString();
        d.kind = "state";
        d.detail = "observation failed: " + observed.error();
        result.discrepancy = std::move(d);
        return result;
      }
      const State expected = observer.ProjectSpecState(step.state);
      std::vector<ValueDiffEntry> diffs = ValueDiff(expected, observed.value());
      if (!diffs.empty()) {
        Discrepancy d;
        d.step = i;
        d.action = step.label.ToString();
        d.command = cmd.value().ToString();
        d.kind = "state";
        d.diffs = std::move(diffs);
        result.discrepancy = std::move(d);
        return result;
      }
    }
  }
  result.conforms = true;
  return result;
}

Json Discrepancy::ToJson() const {
  JsonObject o;
  o["step"] = Json(static_cast<uint64_t>(step));
  o["action"] = Json(action);
  o["command"] = Json(command);
  o["kind"] = Json(kind);
  if (!detail.empty()) {
    o["detail"] = Json(detail);
  }
  if (!diffs.empty()) {
    JsonArray arr;
    for (const ValueDiffEntry& d : diffs) {
      JsonObject e;
      e["path"] = Json(d.path);
      e["spec"] = Json(d.lhs);
      e["impl"] = Json(d.rhs);
      arr.push_back(Json(std::move(e)));
    }
    o["diffs"] = Json(std::move(arr));
  }
  return Json(std::move(o));
}

Json ConformanceReport::ToJson() const {
  JsonObject o;
  o["conforms"] = Json(conforms);
  o["traces_replayed"] = Json(static_cast<int64_t>(traces_replayed));
  o["events_replayed"] = Json(events_replayed);
  o["seconds"] = Json(seconds);
  o["budget_exhausted"] = Json(budget_exhausted);
  o["outcome"] = Json(conforms ? "conforms" : "discrepancy");
  if (discrepancy.has_value()) {
    o["discrepancy"] = discrepancy->ToJson();
  }
  return Json(std::move(o));
}

ConformanceReport CheckConformance(const Spec& spec, const EngineFactory& factory,
                                   const ClusterObserver& observer,
                                   const ConformanceOptions& options) {
  const auto start = Clock::now();
  ConformanceReport report;
  Rng rng(options.seed);
  WalkOptions walk_opts;
  walk_opts.max_depth = options.max_trace_depth;
  walk_opts.collect_trace = true;
  walk_opts.metrics = options.metrics;

  obs::Counter* traces_counter = nullptr;
  obs::Counter* events_counter = nullptr;
  obs::Histogram* replay_hist = nullptr;
  if (options.metrics != nullptr) {
    traces_counter = &options.metrics->GetCounter("conformance.traces");
    events_counter = &options.metrics->GetCounter("conformance.events_replayed");
    replay_hist = &options.metrics->GetHistogram("phase.replay");
  }

  auto emit_progress = [&]() {
    obs::ProgressSample s;
    s.engine = "conformance";
    s.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
    s.distinct_states = report.events_replayed;  // unit of work: replayed events
    s.depth = static_cast<uint64_t>(report.traces_replayed);
    s.transitions = report.events_replayed;
    options.progress->Emit(s);
  };

  for (int t = 0; t < options.max_traces; ++t) {
    const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed > options.time_budget_s) {
      report.budget_exhausted = true;
      break;
    }
    WalkResult walk = RandomWalk(spec, walk_opts, rng);
    ReplayResult replay;
    {
      obs::PhaseTimer timer(replay_hist, "conformance.replay");
      replay = ReplayTrace(factory, observer, walk.trace, options.replay);
    }
    ++report.traces_replayed;
    report.events_replayed += replay.steps_executed;
    obs::Add(traces_counter);
    obs::Add(events_counter, replay.steps_executed);
    if (options.progress != nullptr && options.progress->Due(report.events_replayed)) {
      emit_progress();
    }
    if (!replay.conforms) {
      report.discrepancy = replay.discrepancy;
      report.failing_trace = std::move(walk.trace);
      report.seconds = std::chrono::duration<double>(Clock::now() - start).count();
      return report;
    }
  }
  report.conforms = true;
  report.budget_exhausted = true;  // trace or time budget spent, no discrepancy
  report.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return report;
}

ConfirmationResult ConfirmBug(const EngineFactory& factory, const ClusterObserver& observer,
                              const std::vector<TraceStep>& counterexample) {
  ConfirmationResult result;
  ReplayOptions opts;
  opts.compare_states = true;
  result.replay = ReplayTrace(factory, observer, counterexample, opts);
  result.confirmed = result.replay.conforms;
  return result;
}

}  // namespace conformance
}  // namespace sandtable
