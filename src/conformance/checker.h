// Conformance checking (§3.2) and implementation-level bug confirmation (§3.4).
//
// Conformance checking randomly explores the specification state space to
// generate traces, replays each trace on the implementation by enforcing the
// same event interleaving, and compares the specification state with the
// observed implementation state after every event. A mismatch — a variable
// diff, a failed replay command, or an unexpected node crash — is reported as
// a discrepancy with the event sequence that leads to it.
//
// Bug confirmation replays a model-checking counterexample the same way; if
// the implementation follows the trace without discrepancies, the bug is
// confirmed at the implementation level (no false alarm).
#ifndef SANDTABLE_SRC_CONFORMANCE_CHECKER_H_
#define SANDTABLE_SRC_CONFORMANCE_CHECKER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/conformance/observer.h"
#include "src/engine/engine.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/spec/spec.h"

namespace sandtable {
namespace conformance {

using EngineFactory = std::function<std::unique_ptr<engine::Engine>()>;

struct Discrepancy {
  size_t step = 0;            // 1-based index into the trace
  std::string action;         // the spec event executed at this step
  std::string command;        // the engine command it converted to
  std::string kind;           // "state" | "command" | "crash" | "response"
  std::string detail;         // command error / crash fault / response diff
  std::vector<ValueDiffEntry> diffs;  // variable-level differences (state kind)

  std::string ToString() const;
  Json ToJson() const;
};

struct ReplayResult {
  bool conforms = false;
  size_t steps_executed = 0;
  std::optional<Discrepancy> discrepancy;
  // The replayed event sequence in engine-command form (the bug report).
  std::vector<std::string> commands;
};

struct ReplayOptions {
  // Compare spec and impl state after every step (conformance mode). When
  // false only command failures and crashes are detected (fast replay).
  bool compare_states = true;
};

// Replay `trace` (step 0 = initial state) on a fresh engine.
ReplayResult ReplayTrace(const EngineFactory& factory, const ClusterObserver& observer,
                         const std::vector<TraceStep>& trace, const ReplayOptions& options = {});

struct ConformanceOptions {
  int max_traces = 200;
  uint64_t max_trace_depth = 40;
  uint64_t seed = 1;
  double time_budget_s = 60;
  ReplayOptions replay;
  // Structured periodic progress / metrics (src/obs). Borrowed, may be null.
  obs::ProgressReporter* progress = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct ConformanceReport {
  bool conforms = false;
  int traces_replayed = 0;
  uint64_t events_replayed = 0;
  double seconds = 0;
  // The time/trace budget ran out without a discrepancy (as opposed to
  // stopping early at one) — `conforms` is a claim only up to this budget.
  bool budget_exhausted = false;
  std::optional<Discrepancy> discrepancy;
  std::vector<TraceStep> failing_trace;  // empty when conforming

  // Canonical serialization: scalars plus the discrepancy (trace omitted).
  Json ToJson() const;
};

// Iterative conformance checking: random walks over `spec`, each replayed on
// a fresh engine. Stops at the first discrepancy or when the budget is spent
// (the paper's stopping condition: no discrepancy for a chosen period).
ConformanceReport CheckConformance(const Spec& spec, const EngineFactory& factory,
                                   const ClusterObserver& observer,
                                   const ConformanceOptions& options = {});

struct ConfirmationResult {
  bool confirmed = false;  // the implementation followed the buggy trace
  ReplayResult replay;
};

// §3.4: confirm a model-checking counterexample at the implementation level.
ConfirmationResult ConfirmBug(const EngineFactory& factory, const ClusterObserver& observer,
                              const std::vector<TraceStep>& counterexample);

}  // namespace conformance
}  // namespace sandtable

#endif  // SANDTABLE_SRC_CONFORMANCE_CHECKER_H_
