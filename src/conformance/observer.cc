#include "src/conformance/observer.h"

#include <regex>

#include "src/raftspec/raft_common.h"
#include "src/zabspec/zab_common.h"
#include "src/trace/replay.h"
#include "src/util/strings.h"

namespace sandtable {
namespace conformance {

namespace rs = raftspec;

RaftObserver::RaftObserver(int num_servers, bool kv_feature, bool compaction_feature,
                           ObservationChannel channel)
    : n_(num_servers), kv_(kv_feature), compaction_(compaction_feature), channel_(channel) {
  if (channel_ == ObservationChannel::kApi) {
    compared_vars_ = {rs::kVarRole,        rs::kVarCurrentTerm, rs::kVarVotedFor,
                      rs::kVarLog,         rs::kVarCommitIndex, rs::kVarNet};
    if (compaction_) {
      compared_vars_.push_back(rs::kVarSnapshotIndex);
      compared_vars_.push_back(rs::kVarSnapshotTerm);
    }
  } else {
    // The log parser extracts only the critical scalar variables ("it is often
    // sufficient for critical variables of interest", Appendix A.1).
    compared_vars_ = {rs::kVarRole, rs::kVarCurrentTerm, rs::kVarVotedFor,
                      rs::kVarCommitIndex, rs::kVarNet};
  }
}

Result<Json> RaftObserver::NodeStateFromApi(engine::Engine& eng, int node) const {
  return eng.QueryNodeState(node);
}

Result<Json> RaftObserver::NodeStateFromLogs(engine::Engine& eng, int node) const {
  // Scan backwards for the most recent STATE line emitted by the node.
  static const std::regex kStateRe(
      R"(STATE event=\S+ role=(\w+) term=(-?\d+) votedFor=(-?\d+) commit=(-?\d+))");
  const std::vector<std::string>& lines = eng.NodeLogLines(node);
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
    std::smatch m;
    if (std::regex_search(*it, m, kStateRe)) {
      JsonObject o;
      o["role"] = Json(m[1].str());
      o["currentTerm"] = Json(static_cast<int64_t>(std::stoll(m[2].str())));
      o["votedFor"] = Json(static_cast<int64_t>(std::stoll(m[3].str())));
      o["commitIndex"] = Json(static_cast<int64_t>(std::stoll(m[4].str())));
      return Json(std::move(o));
    }
  }
  return Result<Json>::Error(StrFormat("node %d: no STATE log line found", node));
}

Result<Json> RaftObserver::NodeStateFromDisk(engine::Engine& eng, int node) const {
  // A crashed node is observed through its persistent storage: durable
  // variables survive, volatile ones are gone (the spec's crash model).
  const sim::Storage& disk = eng.Disk(node);
  JsonObject o;
  o["role"] = Json(std::string(rs::kRoleCrashed));
  if (disk.Has("hard")) {
    const Json& hard = disk.Get("hard");
    o["currentTerm"] = hard["currentTerm"];
    o["votedFor"] = hard["votedFor"];
    o["log"] = hard["log"];
    o["snapshotIndex"] = hard["snapshotIndex"];
    o["snapshotTerm"] = hard["snapshotTerm"];
    o["commitIndex"] = hard["snapshotIndex"];
  } else {
    o["currentTerm"] = Json(0);
    o["votedFor"] = Json(-1);
    o["log"] = Json(JsonArray{});
    o["snapshotIndex"] = Json(0);
    o["snapshotTerm"] = Json(0);
    o["commitIndex"] = Json(0);
  }
  return Json(std::move(o));
}

namespace {

Value EntryToValue(const Json& e, bool kv) {
  std::vector<Value::Field> fields = {{"term", Value::Int(e["term"].as_int())},
                                      {"val", Value::Int(e["val"].as_int())}};
  if (kv) {
    fields.emplace_back("key", Value::Str(e.contains("key") ? e["key"].as_string() : ""));
  }
  return Value::Record(std::move(fields));
}

}  // namespace

Result<State> RaftObserver::ObserveCluster(engine::Engine& eng) const {
  std::vector<Value::Field> state_fields;
  // Per-node variables.
  std::vector<std::pair<std::string, std::vector<Value::Pair>>> funs;
  for (const std::string& var : compared_vars_) {
    if (var != rs::kVarNet) {
      funs.emplace_back(var, std::vector<Value::Pair>());
    }
  }

  for (int node = 0; node < n_; ++node) {
    Result<Json> state = eng.NodeAlive(node)
                             ? (channel_ == ObservationChannel::kApi
                                    ? NodeStateFromApi(eng, node)
                                    : NodeStateFromLogs(eng, node))
                             : NodeStateFromDisk(eng, node);
    if (!state.ok()) {
      return Result<State>::Error(state.error());
    }
    const Json& j = state.value();
    const Value node_v = rs::NodeV(node);
    for (auto& [var, pairs] : funs) {
      Value v;
      if (var == rs::kVarRole) {
        v = Value::Str(j["role"].as_string());
      } else if (var == rs::kVarCurrentTerm) {
        v = Value::Int(j["currentTerm"].as_int());
      } else if (var == rs::kVarVotedFor) {
        const int64_t voted = j["votedFor"].as_int();
        v = voted < 0 ? rs::NoneValue() : rs::NodeV(static_cast<int>(voted));
      } else if (var == rs::kVarLog) {
        std::vector<Value> entries;
        for (const Json& e : j["log"].as_array()) {
          entries.push_back(EntryToValue(e, kv_));
        }
        v = Value::Seq(std::move(entries));
      } else if (var == rs::kVarCommitIndex) {
        v = Value::Int(j["commitIndex"].as_int());
      } else if (var == rs::kVarSnapshotIndex) {
        v = Value::Int(j["snapshotIndex"].as_int());
      } else if (var == rs::kVarSnapshotTerm) {
        v = Value::Int(j["snapshotTerm"].as_int());
      } else {
        return Result<State>::Error("observer: unsupported variable " + var);
      }
      pairs.emplace_back(node_v, std::move(v));
    }
  }

  for (auto& [var, pairs] : funs) {
    state_fields.emplace_back(var, Value::Fun(std::move(pairs)));
  }

  auto net = ProxyToNetValue(eng.proxy());
  if (!net.ok()) {
    return Result<State>::Error(net.error());
  }
  state_fields.emplace_back(rs::kVarNet, std::move(net).value());
  return Value::Record(std::move(state_fields));
}

State RaftObserver::ProjectSpecState(const State& spec_state) const {
  std::vector<Value::Field> fields;
  for (const std::string& var : compared_vars_) {
    fields.emplace_back(var, spec_state.field(var));
  }
  return Value::Record(std::move(fields));
}

Result<Value> ProxyToNetValue(const engine::Proxy& proxy) {
  const bool udp = proxy.udp();
  // chan: Fun([src,dst] -> Seq | Fun(msg -> count)); delayed: the TCP
  // old-connection buffers (always empty under UDP).
  std::map<std::pair<int, int>, std::vector<std::pair<Value, int>>> grouped;
  std::map<std::pair<int, int>, std::vector<Value>> grouped_delayed;
  for (const engine::Proxy::PendingMessage& m : proxy.Pending()) {
    auto msg = trace::WireToSpecMsg(m.bytes, rs::kServerClass);
    if (!msg.ok()) {
      return Result<Value>::Error("proxy holds undecodable message: " + msg.error());
    }
    if (m.delayed) {
      grouped_delayed[{m.src, m.dst}].push_back(std::move(msg).value());
    } else {
      grouped[{m.src, m.dst}].emplace_back(std::move(msg).value(), m.copies);
    }
  }
  auto key_value = [](const std::pair<int, int>& key) {
    return Value::Record({{"src", rs::NodeV(key.first)}, {"dst", rs::NodeV(key.second)}});
  };
  std::vector<Value::Pair> chan;
  for (auto& [key, msgs] : grouped) {
    if (udp) {
      std::vector<Value::Pair> bag;
      for (auto& [msg, copies] : msgs) {
        bag.emplace_back(std::move(msg), Value::Int(copies));
      }
      chan.emplace_back(key_value(key), Value::Fun(std::move(bag)));
    } else {
      std::vector<Value> fifo;
      for (auto& [msg, copies] : msgs) {
        fifo.push_back(std::move(msg));
      }
      chan.emplace_back(key_value(key), Value::Seq(std::move(fifo)));
    }
  }
  std::vector<Value::Pair> delayed;
  for (auto& [key, msgs] : grouped_delayed) {
    delayed.emplace_back(key_value(key), Value::Seq(std::move(msgs)));
  }
  std::vector<Value> cut;
  for (int node : proxy.CutSide()) {
    cut.push_back(rs::NodeV(node));
  }
  return Value::Record({{"kind", Value::Str(udp ? "udp" : "tcp")},
                        {"chan", Value::Fun(std::move(chan))},
                        {"delayed", Value::Fun(std::move(delayed))},
                        {"cut", Value::Set(std::move(cut))}});
}

namespace {

namespace zb = zabspec;

Value ZxidJsonToValue(const Json& j) {
  return Value::Record({{"epoch", Value::Int(j["epoch"].as_int())},
                        {"counter", Value::Int(j["counter"].as_int())}});
}

Value ZabHistoryToValue(const Json& history) {
  std::vector<Value> txns;
  for (const Json& t : history.as_array()) {
    txns.push_back(Value::Record(
        {{"zxid", ZxidJsonToValue(t["zxid"])}, {"val", Value::Int(t["val"].as_int())}}));
  }
  return Value::Seq(std::move(txns));
}

}  // namespace

ZabObserver::ZabObserver(int num_servers, ObservationChannel channel)
    : n_(num_servers), channel_(channel) {
  if (channel_ == ObservationChannel::kApi) {
    compared_vars_ = {zb::kVarRole,          zb::kVarRound,        zb::kVarVote,
                      zb::kVarAcceptedEpoch, zb::kVarHistory,      zb::kVarLastCommitted,
                      zb::kVarNet};
  } else {
    compared_vars_ = {zb::kVarRole, zb::kVarRound, zb::kVarAcceptedEpoch,
                      zb::kVarLastCommitted, zb::kVarNet};
  }
}

Result<Json> ZabObserver::NodeStateFromDisk(engine::Engine& eng, int node) const {
  const sim::Storage& disk = eng.Disk(node);
  JsonObject o;
  o["role"] = Json(std::string(zb::kRoleCrashed));
  o["round"] = Json(0);
  if (disk.Has("hard")) {
    const Json& hard = disk.Get("hard");
    o["acceptedEpoch"] = hard["acceptedEpoch"];
    o["history"] = hard["history"];
    o["lastCommitted"] = hard["lastCommitted"];
  } else {
    o["acceptedEpoch"] = Json(0);
    o["history"] = Json(JsonArray{});
    o["lastCommitted"] = Json(0);
  }
  // The crash model resets the vote to (self, lastZxid).
  const Json& history = o["history"];
  JsonObject vote;
  vote["leader"] = Json(static_cast<int64_t>(node));
  if (history.size() > 0) {
    vote["zxid"] = history[history.size() - 1]["zxid"];
  } else {
    JsonObject zero;
    zero["epoch"] = Json(0);
    zero["counter"] = Json(0);
    vote["zxid"] = Json(std::move(zero));
  }
  o["vote"] = Json(std::move(vote));
  return Json(std::move(o));
}

Result<State> ZabObserver::ObserveCluster(engine::Engine& eng) const {
  static const std::regex kStateRe(
      R"(STATE event=\S+ role=(\w+) round=(-?\d+) epoch=(-?\d+) committed=(-?\d+))");
  std::vector<std::pair<std::string, std::vector<Value::Pair>>> funs;
  for (const std::string& var : compared_vars_) {
    if (var != zb::kVarNet) {
      funs.emplace_back(var, std::vector<Value::Pair>());
    }
  }
  for (int node = 0; node < n_; ++node) {
    Json j;
    if (!eng.NodeAlive(node)) {
      auto disk = NodeStateFromDisk(eng, node);
      if (!disk.ok()) {
        return Result<State>::Error(disk.error());
      }
      j = std::move(disk).value();
    } else if (channel_ == ObservationChannel::kApi) {
      auto api = eng.QueryNodeState(node);
      if (!api.ok()) {
        return Result<State>::Error(api.error());
      }
      j = std::move(api).value();
    } else {
      // Parse the latest STATE log line.
      const auto& lines = eng.NodeLogLines(node);
      bool found = false;
      for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
        std::smatch m;
        if (std::regex_search(*it, m, kStateRe)) {
          JsonObject o;
          o["role"] = Json(m[1].str());
          o["round"] = Json(static_cast<int64_t>(std::stoll(m[2].str())));
          o["acceptedEpoch"] = Json(static_cast<int64_t>(std::stoll(m[3].str())));
          o["lastCommitted"] = Json(static_cast<int64_t>(std::stoll(m[4].str())));
          j = Json(std::move(o));
          found = true;
          break;
        }
      }
      if (!found) {
        return Result<State>::Error(StrFormat("node %d: no STATE log line found", node));
      }
    }
    const Value node_v = zb::NodeV(node);
    for (auto& [var, pairs] : funs) {
      Value v;
      if (var == zb::kVarRole) {
        v = Value::Str(j["role"].as_string());
      } else if (var == zb::kVarRound) {
        v = Value::Int(j["round"].as_int());
      } else if (var == zb::kVarVote) {
        v = Value::Record({{"leader", zb::NodeV(static_cast<int>(
                                          j["vote"]["leader"].as_int()))},
                           {"zxid", ZxidJsonToValue(j["vote"]["zxid"])}});
      } else if (var == zb::kVarAcceptedEpoch) {
        v = Value::Int(j["acceptedEpoch"].as_int());
      } else if (var == zb::kVarHistory) {
        v = ZabHistoryToValue(j["history"]);
      } else if (var == zb::kVarLastCommitted) {
        v = Value::Int(j["lastCommitted"].as_int());
      } else {
        return Result<State>::Error("zab observer: unsupported variable " + var);
      }
      pairs.emplace_back(node_v, std::move(v));
    }
  }
  std::vector<Value::Field> state_fields;
  for (auto& [var, pairs] : funs) {
    state_fields.emplace_back(var, Value::Fun(std::move(pairs)));
  }
  auto net = ProxyToNetValue(eng.proxy());
  if (!net.ok()) {
    return Result<State>::Error(net.error());
  }
  state_fields.emplace_back(zb::kVarNet, std::move(net).value());
  return Value::Record(std::move(state_fields));
}

State ZabObserver::ProjectSpecState(const State& spec_state) const {
  std::vector<Value::Field> fields;
  for (const std::string& var : compared_vars_) {
    fields.emplace_back(var, spec_state.field(var));
  }
  return Value::Record(std::move(fields));
}

}  // namespace conformance
}  // namespace sandtable
