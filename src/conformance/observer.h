// State observation (Appendix A.4): converting implementation execution state
// into specification-shaped values for comparison.
//
// Two channels are implemented, as in the paper: (1) the target system's
// debug API, and (2) regex parsing of captured debug-level log lines. The
// network and node environment (message buffers, node status) are managed by
// the engine and observed directly from the proxy.
#ifndef SANDTABLE_SRC_CONFORMANCE_OBSERVER_H_
#define SANDTABLE_SRC_CONFORMANCE_OBSERVER_H_

#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/spec/spec.h"
#include "src/value/value.h"

namespace sandtable {
namespace conformance {

enum class ObservationChannel {
  kApi,        // Process::QueryState() (debug API)
  kLogParser,  // regex over captured log lines (critical scalar variables only)
};

// Converts a running cluster into a spec-shaped state record so the
// conformance checker can diff implementation state against specification
// state variable by variable.
class ClusterObserver {
 public:
  virtual ~ClusterObserver() = default;

  // Build the comparable state record: one Fun over nodes per node-local
  // variable, plus the `net` variable rebuilt from the proxy buffers.
  virtual Result<State> ObserveCluster(engine::Engine& eng) const = 0;

  // Project a specification state onto the same variable set, so the two
  // sides diff cleanly.
  virtual State ProjectSpecState(const State& spec_state) const = 0;

  // The variables this observer compares (depends on the channel: the log
  // parser only extracts the critical scalar variables).
  virtual const std::vector<std::string>& compared_vars() const = 0;
};

// Observer for the Raft-family systems. Crashed nodes are observed from their
// persistent storage (role Crashed, volatile variables reset), matching the
// spec's crash model.
class RaftObserver : public ClusterObserver {
 public:
  RaftObserver(int num_servers, bool kv_feature, bool compaction_feature,
               ObservationChannel channel);

  Result<State> ObserveCluster(engine::Engine& eng) const override;
  State ProjectSpecState(const State& spec_state) const override;
  const std::vector<std::string>& compared_vars() const override { return compared_vars_; }

 private:
  Result<Value> ObserveNode(engine::Engine& eng, int node, const char* var) const;
  Result<Json> NodeStateFromApi(engine::Engine& eng, int node) const;
  Result<Json> NodeStateFromLogs(engine::Engine& eng, int node) const;
  Result<Json> NodeStateFromDisk(engine::Engine& eng, int node) const;

  int n_;
  bool kv_;
  bool compaction_;
  ObservationChannel channel_;
  std::vector<std::string> compared_vars_;
};

// Rebuild the spec `net` variable from the proxy buffers (wire bytes are
// parsed back into spec message values).
Result<Value> ProxyToNetValue(const engine::Proxy& proxy);

// Observer for the Zab / ZooKeeper system.
class ZabObserver : public ClusterObserver {
 public:
  ZabObserver(int num_servers, ObservationChannel channel);

  Result<State> ObserveCluster(engine::Engine& eng) const override;
  State ProjectSpecState(const State& spec_state) const override;
  const std::vector<std::string>& compared_vars() const override { return compared_vars_; }

 private:
  Result<Json> NodeStateFromDisk(engine::Engine& eng, int node) const;

  int n_;
  ObservationChannel channel_;
  std::vector<std::string> compared_vars_;
};

}  // namespace conformance
}  // namespace sandtable

#endif  // SANDTABLE_SRC_CONFORMANCE_OBSERVER_H_
