#include "src/conformance/raft_harness.h"

namespace sandtable {
namespace conformance {

RaftHarness MakeRaftHarness(const std::string& system_name, bool with_bugs) {
  RaftHarness h;
  h.profile = GetRaftProfile(system_name, with_bugs);
  h.impl_bugs = systems::GetRaftImplBugs(system_name, with_bugs);
  return h;
}

EngineFactory MakeRaftEngineFactory(const RaftHarness& harness) {
  return [harness]() {
    engine::EngineOptions opts;
    opts.num_nodes = harness.profile.config.num_servers;
    opts.udp = harness.profile.features.udp;
    opts.delay = harness.delay;
    systems::RaftNodeConfig node_cfg;
    node_cfg.profile = harness.profile;
    node_cfg.impl_bugs = harness.impl_bugs;
    opts.factory = systems::MakeRaftFactory(node_cfg);
    return std::make_unique<engine::Engine>(std::move(opts));
  };
}

RaftObserver MakeRaftObserver(const RaftHarness& harness) {
  return RaftObserver(harness.profile.config.num_servers, harness.profile.features.kv,
                      harness.profile.features.compaction, harness.channel);
}

Spec MakeHarnessSpec(const RaftHarness& harness) { return MakeRaftSpec(harness.profile); }

}  // namespace conformance
}  // namespace sandtable
