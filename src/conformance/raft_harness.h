// Integration glue for the Raft family (§4.2): builds the matched triple of
// specification, engine factory and observer for one system profile, so the
// full SandTable workflow — conformance checking, model checking, bug replay,
// fix validation — can run end to end.
#ifndef SANDTABLE_SRC_CONFORMANCE_RAFT_HARNESS_H_
#define SANDTABLE_SRC_CONFORMANCE_RAFT_HARNESS_H_

#include <string>

#include "src/conformance/checker.h"
#include "src/conformance/observer.h"
#include "src/engine/engine.h"
#include "src/raftspec/raft_params.h"
#include "src/raftspec/raft_spec.h"
#include "src/systems/raft_node.h"

namespace sandtable {
namespace conformance {

struct RaftHarness {
  RaftProfile profile;                 // features + spec/impl-shared bug switches
  systems::RaftImplBugs impl_bugs;     // implementation-only defects
  engine::DelayModel delay;            // Table 4 execution-cost model
  ObservationChannel channel = ObservationChannel::kApi;
};

// The harness for a named system: spec-level and impl-level bug switches both
// on (with_bugs) or both off (fixed).
RaftHarness MakeRaftHarness(const std::string& system_name, bool with_bugs);

// Engine factory running the RaftNode implementation for the harness profile.
EngineFactory MakeRaftEngineFactory(const RaftHarness& harness);

RaftObserver MakeRaftObserver(const RaftHarness& harness);

// The specification side (delegates to MakeRaftSpec).
Spec MakeHarnessSpec(const RaftHarness& harness);

}  // namespace conformance
}  // namespace sandtable

#endif  // SANDTABLE_SRC_CONFORMANCE_RAFT_HARNESS_H_
