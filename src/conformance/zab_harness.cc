#include "src/conformance/zab_harness.h"

namespace sandtable {
namespace conformance {

ZabHarness MakeZabHarness(bool with_bugs) {
  ZabHarness h;
  h.profile = GetZabProfile(with_bugs);
  return h;
}

EngineFactory MakeZabEngineFactory(const ZabHarness& harness) {
  return [harness]() {
    engine::EngineOptions opts;
    opts.num_nodes = harness.profile.num_servers;
    opts.udp = false;  // ZooKeeper uses TCP semantics
    opts.delay = harness.delay;
    systems::ZabNodeConfig node_cfg;
    node_cfg.profile = harness.profile;
    opts.factory = systems::MakeZabFactory(node_cfg);
    return std::make_unique<engine::Engine>(std::move(opts));
  };
}

ZabObserver MakeZabObserver(const ZabHarness& harness) {
  return ZabObserver(harness.profile.num_servers, harness.channel);
}

Spec MakeHarnessSpec(const ZabHarness& harness) { return MakeZabSpec(harness.profile); }

}  // namespace conformance
}  // namespace sandtable
