// Integration glue for ZooKeeper/Zab (§4.2): the matched triple of
// specification, engine factory and observer, like raft_harness.h for the
// Raft family.
#ifndef SANDTABLE_SRC_CONFORMANCE_ZAB_HARNESS_H_
#define SANDTABLE_SRC_CONFORMANCE_ZAB_HARNESS_H_

#include "src/conformance/checker.h"
#include "src/conformance/observer.h"
#include "src/systems/zab_node.h"
#include "src/zabspec/zab_spec.h"

namespace sandtable {
namespace conformance {

struct ZabHarness {
  ZabProfile profile;
  engine::DelayModel delay;
  ObservationChannel channel = ObservationChannel::kApi;
};

ZabHarness MakeZabHarness(bool with_bugs);

EngineFactory MakeZabEngineFactory(const ZabHarness& harness);

ZabObserver MakeZabObserver(const ZabHarness& harness);

Spec MakeHarnessSpec(const ZabHarness& harness);

}  // namespace conformance
}  // namespace sandtable

#endif  // SANDTABLE_SRC_CONFORMANCE_ZAB_HARNESS_H_
