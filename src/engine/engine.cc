#include "src/engine/engine.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace sandtable {
namespace engine {

// The per-node environment adapter: what the interceptor exposes to the
// target process (virtual clock, proxied sockets, captured log fd, disk).
class Engine::NodeEnv : public sim::Env {
 public:
  NodeEnv(Engine* engine, int node_id)
      : engine_(engine), node_id_(node_id), clock_(/*start_ns=*/0, /*auto_increment_ns=*/1) {}

  int node_id() const override { return node_id_; }
  int cluster_size() const override { return engine_->options_.num_nodes; }
  int64_t NowNs() override { return clock_.NowNs(); }

  bool SendTo(int dst, const std::string& bytes) override {
    return engine_->proxy_->Send(node_id_, dst, bytes);
  }

  void WriteLog(const std::string& line) override {
    if (engine_->options_.capture_logs) {
      engine_->logs_[static_cast<size_t>(node_id_)].push_back(line);
    }
  }

  sim::Storage& Disk() override { return disk_; }

  sim::VirtualClock& clock() { return clock_; }

 private:
  Engine* engine_;
  int node_id_;
  sim::VirtualClock clock_;
  sim::Storage disk_;
};

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  CHECK_GT(options_.num_nodes, 0);
  CHECK(options_.factory) << "engine needs a process factory";
  proxy_ = std::make_unique<Proxy>(options_.num_nodes, options_.udp);
  for (int i = 0; i < options_.num_nodes; ++i) {
    envs_.push_back(std::make_unique<NodeEnv>(this, i));
    processes_.push_back(nullptr);
    faults_.emplace_back();
    logs_.emplace_back();
  }
}

Engine::~Engine() = default;

Status Engine::CheckNode(int node, bool must_be_alive) const {
  if (node < 0 || node >= options_.num_nodes) {
    return Status::Error(StrFormat("node %d out of range", node));
  }
  if (must_be_alive && processes_[static_cast<size_t>(node)] == nullptr) {
    return Status::Error(StrFormat("node %d is down%s%s", node,
                                   faults_[static_cast<size_t>(node)].empty() ? "" : ": ",
                                   faults_[static_cast<size_t>(node)].c_str()));
  }
  return Status();
}

void Engine::RecordFault(int node, const std::string& what) {
  faults_[static_cast<size_t>(node)] = what;
  processes_[static_cast<size_t>(node)].reset();
  proxy_->OnCrash(node);
}

void Engine::AccountEvent() {
  ++stats_.commands_executed;
  stats_.simulated_delay_us += options_.delay.per_event_us;
}

Status Engine::StartAll() {
  stats_.simulated_delay_us += options_.delay.init_us;
  for (int i = 0; i < options_.num_nodes; ++i) {
    auto& slot = processes_[static_cast<size_t>(i)];
    if (slot != nullptr) {
      continue;
    }
    slot = options_.factory(*envs_[static_cast<size_t>(i)]);
    slot->OnStart();
  }
  return Status();
}

bool Engine::NodeAlive(int node) const {
  return node >= 0 && node < options_.num_nodes &&
         processes_[static_cast<size_t>(node)] != nullptr;
}

const std::string& Engine::NodeFault(int node) const {
  return faults_[static_cast<size_t>(node)];
}

Status Engine::Crash(int node) {
  Status ok = CheckNode(node, /*must_be_alive=*/true);
  if (!ok) {
    return ok;
  }
  AccountEvent();
  // SIGQUIT aborts without cleanup: the process object (volatile state) is
  // destroyed; the Storage inside the NodeEnv (the disk) survives.
  processes_[static_cast<size_t>(node)].reset();
  faults_[static_cast<size_t>(node)].clear();
  proxy_->OnCrash(node);
  return Status();
}

Status Engine::Restart(int node) {
  Status ok = CheckNode(node, /*must_be_alive=*/false);
  if (!ok) {
    return ok;
  }
  if (processes_[static_cast<size_t>(node)] != nullptr) {
    return Status::Error(StrFormat("restart: node %d is already running", node));
  }
  AccountEvent();
  stats_.simulated_delay_us += options_.delay.init_us;
  faults_[static_cast<size_t>(node)].clear();
  proxy_->OnRestart(node);
  auto& slot = processes_[static_cast<size_t>(node)];
  slot = options_.factory(*envs_[static_cast<size_t>(node)]);
  slot->OnStart();
  return Status();
}

Status Engine::DeliverMessage(int src, int dst, const std::string& wire,
                              bool from_delayed) {
  Status ok = CheckNode(dst, /*must_be_alive=*/true);
  if (!ok) {
    return ok;
  }
  Result<std::string> bytes = proxy_->Deliver(src, dst, wire, from_delayed);
  if (!bytes.ok()) {
    return Status::Error(bytes.error());
  }
  AccountEvent();
  ++stats_.messages_delivered;
  if (!processes_[static_cast<size_t>(dst)]->OnMessage(src, bytes.value())) {
    RecordFault(dst, StrFormat("unhandled fault in message handler (from %d)", src));
    return Status::Error(StrFormat("node %d crashed handling message from %d", dst, src));
  }
  return Status();
}

Status Engine::PartitionStart(const std::set<int>& side) {
  if (proxy_->HasPartition()) {
    return Status::Error("partition already active");
  }
  AccountEvent();
  proxy_->Partition(side);
  if (!options_.udp) {
    // Broken connections surface as disconnect events at both endpoints.
    for (int a = 0; a < options_.num_nodes; ++a) {
      for (int b = 0; b < options_.num_nodes; ++b) {
        if (a == b || proxy_->Connected(a, b)) {
          continue;
        }
        if (processes_[static_cast<size_t>(a)] != nullptr &&
            !processes_[static_cast<size_t>(a)]->OnDisconnect(b)) {
          RecordFault(a, StrFormat("unhandled fault in disconnect handler (peer %d)", b));
          return Status::Error(StrFormat("node %d crashed handling disconnection", a));
        }
      }
    }
  }
  return Status();
}

Status Engine::PartitionHeal() {
  if (!proxy_->HasPartition()) {
    return Status::Error("no partition to heal");
  }
  AccountEvent();
  proxy_->Heal();
  return Status();
}

Status Engine::DropMessage(int src, int dst, const std::string& wire) {
  AccountEvent();
  return proxy_->Drop(src, dst, wire);
}

Status Engine::DuplicateMessage(int src, int dst, const std::string& wire) {
  AccountEvent();
  return proxy_->Duplicate(src, dst, wire);
}

Status Engine::FireTimeout(int node, const std::string& timer_kind) {
  Status ok = CheckNode(node, /*must_be_alive=*/true);
  if (!ok) {
    return ok;
  }
  sim::Process& p = *processes_[static_cast<size_t>(node)];
  const int64_t deadline = p.NextDeadlineNs(timer_kind);
  if (deadline < 0) {
    return Status::Error(
        StrFormat("node %d has no pending %s timer", node, timer_kind.c_str()));
  }
  AccountEvent();
  ++stats_.timeouts_fired;
  envs_[static_cast<size_t>(node)]->clock().AdvanceToNs(deadline + 1);
  if (!p.OnTick()) {
    RecordFault(node, "unhandled fault in timer handler");
    return Status::Error(StrFormat("node %d crashed in timer handler", node));
  }
  return Status();
}

Status Engine::ClientRequest(int node, const Json& request, Json* response) {
  Status ok = CheckNode(node, /*must_be_alive=*/true);
  if (!ok) {
    return ok;
  }
  AccountEvent();
  Json ignored;
  if (!processes_[static_cast<size_t>(node)]->OnClientRequest(
          request, response != nullptr ? response : &ignored)) {
    RecordFault(node, "unhandled fault in client request handler");
    return Status::Error(StrFormat("node %d crashed handling client request", node));
  }
  return Status();
}

Result<Json> Engine::QueryNodeState(int node) {
  Status ok = CheckNode(node, /*must_be_alive=*/true);
  if (!ok) {
    return Result<Json>::Error(ok.error());
  }
  return processes_[static_cast<size_t>(node)]->QueryState();
}

const std::vector<std::string>& Engine::NodeLogLines(int node) const {
  CHECK_GE(node, 0);
  CHECK_LT(node, options_.num_nodes);
  return logs_[static_cast<size_t>(node)];
}

sim::Storage& Engine::Disk(int node) {
  CHECK_GE(node, 0);
  CHECK_LT(node, options_.num_nodes);
  return envs_[static_cast<size_t>(node)]->Disk();
}

sim::VirtualClock& Engine::Clock(int node) {
  CHECK_GE(node, 0);
  CHECK_LT(node, options_.num_nodes);
  return envs_[static_cast<size_t>(node)]->clock();
}

}  // namespace engine
}  // namespace sandtable
