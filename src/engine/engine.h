// The implementation-level deterministic execution engine (§4.1, Figure 5).
//
// The engine has control and observation over the target system: node status
// (start, crash, restart), network tasks (message delivery, failures) and
// nondeterminism (virtual time). It executes three kinds of commands —
// network commands, node commands and state commands (Appendix A.5) — which
// is exactly the interface the trace replayer drives to reproduce a
// specification trace at the implementation level.
#ifndef SANDTABLE_SRC_ENGINE_ENGINE_H_
#define SANDTABLE_SRC_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/engine/proxy.h"
#include "src/sim/clock.h"
#include "src/sim/process.h"
#include "src/util/json.h"
#include "src/util/result.h"

namespace sandtable {
namespace engine {

// A synthetic per-event delay model reproducing the execution-cost profile of
// a real deployment (§5.3): cluster initialization sleeps, synchronization
// waits between actions, and per-event execution time. Values are accumulated
// into a simulated-delay counter instead of real sleeps so benchmarks finish;
// Table 4 reports both raw wall-clock and modelled times.
struct DelayModel {
  int64_t init_us = 0;       // once per cluster start / restart
  int64_t per_event_us = 0;  // per executed command (model-checker wait time)
};

struct EngineOptions {
  int num_nodes = 3;
  bool udp = false;
  sim::ProcessFactory factory;
  DelayModel delay;
  // Keep per-node log lines for the log-parsing observation channel.
  bool capture_logs = true;
};

struct EngineStats {
  uint64_t commands_executed = 0;
  uint64_t messages_delivered = 0;
  uint64_t timeouts_fired = 0;
  int64_t simulated_delay_us = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();

  // Node commands -------------------------------------------------------------
  Status StartAll();
  Status Crash(int node);    // SIGQUIT-style abort: no cleanup, volatile state lost
  Status Restart(int node);  // rejoin with persistent storage
  bool NodeAlive(int node) const;
  // Nonempty when the node died from an unhandled fault (not an engine crash
  // command) — how conformance checking catches crash bugs.
  const std::string& NodeFault(int node) const;

  // Network commands ------------------------------------------------------------
  // Deliver the message matching `wire` (serialized JSON) on (src, dst); with
  // an empty `wire`, deliver the TCP head / any UDP datagram. `from_delayed`
  // selects the old-connection buffer of a healed partition (TCP).
  Status DeliverMessage(int src, int dst, const std::string& wire,
                        bool from_delayed = false);
  Status PartitionStart(const std::set<int>& side);
  Status PartitionHeal();
  Status DropMessage(int src, int dst, const std::string& wire);
  Status DuplicateMessage(int src, int dst, const std::string& wire);

  // Nondeterminism commands --------------------------------------------------------
  // Advance `node`'s virtual clock just past its pending `timer_kind` deadline
  // and run its tick handler (Appendix A.1: time advancement command).
  Status FireTimeout(int node, const std::string& timer_kind);
  Status ClientRequest(int node, const Json& request, Json* response);

  // State commands (conformance observation) ------------------------------------------
  // Channel 1: the target system's debug API.
  Result<Json> QueryNodeState(int node);
  // Channel 2: captured log lines (parsed with regexes by the conformance layer).
  const std::vector<std::string>& NodeLogLines(int node) const;

  Proxy& proxy() { return *proxy_; }
  const Proxy& proxy() const { return *proxy_; }
  sim::Storage& Disk(int node);
  sim::VirtualClock& Clock(int node);
  const EngineStats& stats() const { return stats_; }
  int num_nodes() const { return options_.num_nodes; }

 private:
  class NodeEnv;

  Status CheckNode(int node, bool must_be_alive) const;
  void RecordFault(int node, const std::string& what);
  void AccountEvent();

  EngineOptions options_;
  std::unique_ptr<Proxy> proxy_;
  std::vector<std::unique_ptr<NodeEnv>> envs_;
  std::vector<std::unique_ptr<sim::Process>> processes_;
  std::vector<std::string> faults_;
  std::vector<std::vector<std::string>> logs_;
  EngineStats stats_;
};

}  // namespace engine
}  // namespace sandtable

#endif  // SANDTABLE_SRC_ENGINE_ENGINE_H_
