#include "src/engine/proxy.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace sandtable {
namespace engine {

Proxy::Proxy(int num_nodes, bool udp) : num_nodes_(num_nodes), udp_(udp) {
  CHECK_GT(num_nodes, 0);
}

int64_t Proxy::Channel::load() const {
  int64_t n = static_cast<int64_t>(fifo.size() + delayed.size());
  for (const auto& [bytes, copies] : bag) {
    n += copies;
  }
  return n;
}

Proxy::Channel* Proxy::Find(int src, int dst) {
  auto it = channels_.find({src, dst});
  return it == channels_.end() ? nullptr : &it->second;
}

const Proxy::Channel* Proxy::Find(int src, int dst) const {
  auto it = channels_.find({src, dst});
  return it == channels_.end() ? nullptr : &it->second;
}

Proxy::Channel& Proxy::GetOrCreate(int src, int dst) { return channels_[{src, dst}]; }

void Proxy::EraseIfEmpty(int src, int dst) {
  auto it = channels_.find({src, dst});
  if (it != channels_.end() && it->second.empty()) {
    channels_.erase(it);
  }
}

bool Proxy::Connected(int a, int b) const {
  if (cut_.empty()) {
    return true;
  }
  return (cut_.count(a) > 0) == (cut_.count(b) > 0);
}

bool Proxy::Send(int src, int dst, std::string bytes) {
  CHECK_GE(src, 0);
  CHECK_LT(src, num_nodes_);
  CHECK_GE(dst, 0);
  CHECK_LT(dst, num_nodes_);
  if (crashed_.count(dst) > 0) {
    return false;  // no listener
  }
  if (!udp_ && !Connected(src, dst)) {
    return false;  // connection broken by a partition
  }
  bytes_proxied_ += bytes.size();
  Channel& ch = GetOrCreate(src, dst);
  if (udp_) {
    ++ch.bag[bytes];
  } else {
    ch.fifo.push_back(std::move(bytes));
  }
  return true;
}

std::vector<Proxy::PendingMessage> Proxy::Pending() const {
  std::vector<PendingMessage> out;
  for (const auto& [key, ch] : channels_) {
    const bool link_up = crashed_.count(key.second) == 0 &&
                         (udp_ || Connected(key.first, key.second));
    if (udp_) {
      for (const auto& [bytes, copies] : ch.bag) {
        PendingMessage m;
        m.src = key.first;
        m.dst = key.second;
        m.bytes = bytes;
        m.copies = copies;
        m.deliverable = link_up;
        out.push_back(std::move(m));
      }
    } else {
      bool head = true;
      for (const std::string& bytes : ch.delayed) {
        PendingMessage m;
        m.src = key.first;
        m.dst = key.second;
        m.bytes = bytes;
        m.deliverable = link_up && head;
        m.delayed = true;
        head = false;
        out.push_back(std::move(m));
      }
      head = true;
      for (const std::string& bytes : ch.fifo) {
        PendingMessage m;
        m.src = key.first;
        m.dst = key.second;
        m.bytes = bytes;
        m.deliverable = link_up && head;
        head = false;
        out.push_back(std::move(m));
      }
    }
  }
  return out;
}

Result<std::string> Proxy::Deliver(int src, int dst, const std::string& expect_bytes,
                                   bool from_delayed) {
  Channel* ch = Find(src, dst);
  if (ch == nullptr || ch->empty()) {
    return Result<std::string>::Error(
        StrFormat("deliver %d->%d: channel empty", src, dst));
  }
  if (crashed_.count(dst) > 0) {
    return Result<std::string>::Error(StrFormat("deliver %d->%d: receiver crashed", src, dst));
  }
  if (!udp_ && !Connected(src, dst)) {
    return Result<std::string>::Error(StrFormat("deliver %d->%d: partitioned", src, dst));
  }
  std::string bytes;
  if (udp_) {
    auto it = expect_bytes.empty() ? ch->bag.begin() : ch->bag.find(expect_bytes);
    if (it == ch->bag.end()) {
      return Result<std::string>::Error(
          StrFormat("deliver %d->%d: no matching datagram (divergence?)", src, dst));
    }
    bytes = it->first;
    if (--it->second == 0) {
      ch->bag.erase(it);
    }
  } else {
    // Two independently FIFO streams may have deliverable heads: the delayed
    // (old-connection) buffer and the live one. The replayed trace records
    // which buffer the specification drained; honour it (identical bytes can
    // head both streams).
    if (from_delayed) {
      if (ch->delayed.empty() ||
          (!expect_bytes.empty() && ch->delayed.front() != expect_bytes)) {
        return Result<std::string>::Error(StrFormat(
            "deliver %d->%d: delayed head mismatch (divergence?)", src, dst));
      }
      bytes = ch->delayed.front();
      ch->delayed.pop_front();
    } else if (!ch->fifo.empty() &&
               (expect_bytes.empty() || ch->fifo.front() == expect_bytes)) {
      bytes = ch->fifo.front();
      ch->fifo.pop_front();
    } else if (expect_bytes.empty() && !ch->delayed.empty()) {
      // Untracked interactive delivery: fall back to the delayed stream.
      bytes = ch->delayed.front();
      ch->delayed.pop_front();
    } else {
      return Result<std::string>::Error(
          StrFormat("deliver %d->%d: no stream head matches (divergence?): want %s", src,
                    dst, expect_bytes.c_str()));
    }
  }
  EraseIfEmpty(src, dst);
  return bytes;
}

Status Proxy::Drop(int src, int dst, const std::string& bytes) {
  if (!udp_) {
    return Status::Error("drop: only supported under UDP semantics");
  }
  Channel* ch = Find(src, dst);
  if (ch == nullptr) {
    return Status::Error(StrFormat("drop %d->%d: channel empty", src, dst));
  }
  auto it = bytes.empty() ? ch->bag.begin() : ch->bag.find(bytes);
  if (it == ch->bag.end()) {
    return Status::Error(StrFormat("drop %d->%d: no matching datagram", src, dst));
  }
  if (--it->second == 0) {
    ch->bag.erase(it);
  }
  EraseIfEmpty(src, dst);
  return Status();
}

Status Proxy::Duplicate(int src, int dst, const std::string& bytes) {
  if (!udp_) {
    return Status::Error("duplicate: only supported under UDP semantics");
  }
  Channel* ch = Find(src, dst);
  if (ch == nullptr) {
    return Status::Error(StrFormat("duplicate %d->%d: channel empty", src, dst));
  }
  auto it = bytes.empty() ? ch->bag.begin() : ch->bag.find(bytes);
  if (it == ch->bag.end()) {
    return Status::Error(StrFormat("duplicate %d->%d: no matching datagram", src, dst));
  }
  ++it->second;
  return Status();
}

void Proxy::Partition(const std::set<int>& side) {
  cut_ = side;
  if (udp_) {
    return;  // the UDP failure model uses drop/dup instead
  }
  // Crossing connections break: their in-flight traffic moves to the
  // old-connection buffer and surfaces after healing.
  for (auto& [key, ch] : channels_) {
    if (Connected(key.first, key.second)) {
      continue;
    }
    while (!ch.fifo.empty()) {
      ch.delayed.push_back(std::move(ch.fifo.front()));
      ch.fifo.pop_front();
    }
  }
}

void Proxy::Heal() { cut_.clear(); }

void Proxy::OnCrash(int node) {
  crashed_.insert(node);
  for (auto it = channels_.begin(); it != channels_.end();) {
    if (it->first.first == node || it->first.second == node) {
      it = channels_.erase(it);
    } else {
      ++it;
    }
  }
}

void Proxy::OnRestart(int node) { crashed_.erase(node); }

int64_t Proxy::TotalInFlight() const {
  int64_t total = 0;
  for (const auto& [key, ch] : channels_) {
    total += ch.load();
  }
  return total;
}

int64_t Proxy::MaxChannelLoad() const {
  int64_t max_load = 0;
  for (const auto& [key, ch] : channels_) {
    max_load = std::max(max_load, ch.load());
  }
  return max_load;
}

}  // namespace engine
}  // namespace sandtable
