// The engine-side transparent network proxy (Appendix A.2).
//
// All target-system traffic flows through this proxy: sends are buffered, and
// messages move only when the engine executes a delivery command. TCP
// semantics keep a FIFO queue per (src, dst) connection whose only failure is
// a network partition; UDP semantics keep a message bag supporting selective
// drop, duplication and out-of-order delivery (Appendix A.3). This mirrors
// the spec-level network modules in src/net byte-for-byte, which is what lets
// the conformance checker compare the proxy state against the spec `net`
// variable directly.
#ifndef SANDTABLE_SRC_ENGINE_PROXY_H_
#define SANDTABLE_SRC_ENGINE_PROXY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace sandtable {
namespace engine {

class Proxy {
 public:
  Proxy(int num_nodes, bool udp);

  bool udp() const { return udp_; }

  // Interceptor path: node `src` writes `bytes` towards `dst`. Returns false
  // when the proxy refuses the message (partition cut or crashed receiver) —
  // visible to the sender like a failed send() call.
  bool Send(int src, int dst, std::string bytes);

  // One buffered message.
  struct PendingMessage {
    int src = 0;
    int dst = 0;
    std::string bytes;
    int copies = 1;            // > 1 only under UDP duplication
    bool deliverable = false;  // TCP: head of its queue and link up; UDP: link up
    // TCP only: the message sits in the old-connection buffer of a broken
    // link (it was in flight when a partition started) and will surface after
    // healing — the reconnect semantics behind Figure 6's delayed AER.
    bool delayed = false;
  };

  // Snapshot of everything in flight (deterministic order).
  std::vector<PendingMessage> Pending() const;

  // Deliver one message on (src, dst). If `expect_bytes` is non-empty the
  // message content must match (TCP: must equal a stream head; UDP: any
  // buffered copy) — a mismatch is a replay divergence, reported as an error.
  // `from_delayed` pins the TCP old-connection buffer (needed when both
  // stream heads hold identical bytes).
  Result<std::string> Deliver(int src, int dst, const std::string& expect_bytes,
                              bool from_delayed = false);

  // UDP failure injection.
  Status Drop(int src, int dst, const std::string& bytes);
  Status Duplicate(int src, int dst, const std::string& bytes);

  // TCP partition management: `side` vs the rest. Crossing connections break
  // (sends fail); their in-flight traffic moves to per-channel delayed
  // buffers that drain after Heal(), interleaving with new-connection traffic
  // (each stream stays FIFO internally).
  void Partition(const std::set<int>& side);
  void Heal();
  bool HasPartition() const { return !cut_.empty(); }
  const std::set<int>& CutSide() const { return cut_; }
  bool Connected(int a, int b) const;

  // Node lifecycle: a crash clears all channels touching the node.
  void OnCrash(int node);
  void OnRestart(int node);
  bool IsCrashed(int node) const { return crashed_.count(node) > 0; }

  int64_t TotalInFlight() const;
  int64_t MaxChannelLoad() const;
  uint64_t bytes_proxied() const { return bytes_proxied_; }

 private:
  struct Channel {
    std::deque<std::string> fifo;     // TCP (current connection)
    std::deque<std::string> delayed;  // TCP (broken connections' in-flight data)
    std::map<std::string, int> bag;   // UDP: bytes -> copies
    bool empty() const { return fifo.empty() && delayed.empty() && bag.empty(); }
    int64_t load() const;
  };

  Channel* Find(int src, int dst);
  const Channel* Find(int src, int dst) const;
  Channel& GetOrCreate(int src, int dst);
  void EraseIfEmpty(int src, int dst);

  int num_nodes_;
  bool udp_;
  std::map<std::pair<int, int>, Channel> channels_;
  std::set<int> cut_;
  std::set<int> crashed_;
  uint64_t bytes_proxied_ = 0;
};

}  // namespace engine
}  // namespace sandtable

#endif  // SANDTABLE_SRC_ENGINE_PROXY_H_
