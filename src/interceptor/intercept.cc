// The LD_PRELOAD interceptor (Appendix A.1).
//
// Built as a shared library and injected into an *unmodified* target process
// via LD_PRELOAD, it overrides the libc time functions — the primary source
// of timeout nondeterminism. Programs typically read the current time, add a
// timeout, and poll against the deadline; controlling the clock therefore
// controls when timeouts fire, without waiting for the wall clock.
//
// The virtual clock is controlled through the environment:
//   SANDTABLE_VCLOCK=1            enable interception (otherwise passthrough)
//   SANDTABLE_VCLOCK_START=<ns>   initial virtual time (default 0)
//   SANDTABLE_VCLOCK_STEP=<ns>    per-query increment for monotonicity (default 1)
//   SANDTABLE_VCLOCK_FILE=<path>  engine command channel: the file holds the
//                                 target virtual time in ns; each query reads
//                                 it and the clock jumps forward to it (the
//                                 paper's "advance time" engine command)
//
// Sleeps (nanosleep/usleep/sleep) advance the virtual clock by the requested
// duration and return immediately: the engine never waits on real time.
//
// The original functions are resolved with dlsym(RTLD_NEXT) (dlfcn(3)), as
// described in the paper.
#include <dlfcn.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

namespace {

using ClockGettimeFn = int (*)(clockid_t, struct timespec*);
using GettimeofdayFn = int (*)(struct timeval*, void*);
using TimeFn = time_t (*)(time_t*);
using NanosleepFn = int (*)(const struct timespec*, struct timespec*);

struct InterceptState {
  bool enabled = false;
  std::atomic<long long> now_ns{0};
  long long step_ns = 1;
  const char* clock_file = nullptr;

  ClockGettimeFn real_clock_gettime = nullptr;
  GettimeofdayFn real_gettimeofday = nullptr;
  TimeFn real_time = nullptr;
  NanosleepFn real_nanosleep = nullptr;
};

InterceptState& GetState() {
  static InterceptState state;
  static std::once_flag once;
  std::call_once(once, [] {
    InterceptState& s = state;
    s.real_clock_gettime =
        reinterpret_cast<ClockGettimeFn>(dlsym(RTLD_NEXT, "clock_gettime"));
    s.real_gettimeofday = reinterpret_cast<GettimeofdayFn>(dlsym(RTLD_NEXT, "gettimeofday"));
    s.real_time = reinterpret_cast<TimeFn>(dlsym(RTLD_NEXT, "time"));
    s.real_nanosleep = reinterpret_cast<NanosleepFn>(dlsym(RTLD_NEXT, "nanosleep"));
    const char* enabled = getenv("SANDTABLE_VCLOCK");
    s.enabled = enabled != nullptr && strcmp(enabled, "0") != 0;
    if (const char* start = getenv("SANDTABLE_VCLOCK_START")) {
      s.now_ns.store(atoll(start));
    }
    if (const char* step = getenv("SANDTABLE_VCLOCK_STEP")) {
      s.step_ns = atoll(step);
    }
    s.clock_file = getenv("SANDTABLE_VCLOCK_FILE");
  });
  return state;
}

// Engine command channel: jump the clock forward to the value in the control
// file (time never moves backwards).
void SyncFromControlFile(InterceptState& s) {
  if (s.clock_file == nullptr) {
    return;
  }
  FILE* f = fopen(s.clock_file, "re");
  if (f == nullptr) {
    return;
  }
  long long target = 0;
  if (fscanf(f, "%lld", &target) == 1) {
    long long cur = s.now_ns.load();
    while (target > cur && !s.now_ns.compare_exchange_weak(cur, target)) {
    }
  }
  fclose(f);
}

// The virtual now: monotonic, advancing by step_ns per query so repeated
// reads observe strictly increasing time (Appendix A.1).
long long VirtualNowNs() {
  InterceptState& s = GetState();
  SyncFromControlFile(s);
  return s.now_ns.fetch_add(s.step_ns) ;
}

}  // namespace

extern "C" {

int clock_gettime(clockid_t clockid, struct timespec* tp) {
  InterceptState& s = GetState();
  if (!s.enabled) {
    return s.real_clock_gettime != nullptr ? s.real_clock_gettime(clockid, tp) : -1;
  }
  const long long now = VirtualNowNs();
  tp->tv_sec = static_cast<time_t>(now / 1000000000LL);
  tp->tv_nsec = static_cast<long>(now % 1000000000LL);
  return 0;
}

int gettimeofday(struct timeval* tv, void* tz) {
  InterceptState& s = GetState();
  if (!s.enabled) {
    return s.real_gettimeofday != nullptr ? s.real_gettimeofday(tv, tz) : -1;
  }
  const long long now = VirtualNowNs();
  tv->tv_sec = static_cast<time_t>(now / 1000000000LL);
  tv->tv_usec = static_cast<suseconds_t>((now % 1000000000LL) / 1000);
  return 0;
}

time_t time(time_t* tloc) {
  InterceptState& s = GetState();
  if (!s.enabled) {
    return s.real_time != nullptr ? s.real_time(tloc) : static_cast<time_t>(-1);
  }
  const time_t now = static_cast<time_t>(VirtualNowNs() / 1000000000LL);
  if (tloc != nullptr) {
    *tloc = now;
  }
  return now;
}

int nanosleep(const struct timespec* req, struct timespec* rem) {
  InterceptState& s = GetState();
  if (!s.enabled) {
    return s.real_nanosleep != nullptr ? s.real_nanosleep(req, rem) : -1;
  }
  // Advance virtual time by the requested duration and return immediately.
  const long long delta = req->tv_sec * 1000000000LL + req->tv_nsec;
  s.now_ns.fetch_add(delta);
  if (rem != nullptr) {
    rem->tv_sec = 0;
    rem->tv_nsec = 0;
  }
  return 0;
}

int usleep(useconds_t usec) {
  InterceptState& s = GetState();
  if (!s.enabled) {
    struct timespec req;
    req.tv_sec = usec / 1000000;
    req.tv_nsec = static_cast<long>(usec % 1000000) * 1000;
    return s.real_nanosleep != nullptr ? s.real_nanosleep(&req, nullptr) : -1;
  }
  s.now_ns.fetch_add(static_cast<long long>(usec) * 1000);
  return 0;
}

unsigned int sleep(unsigned int seconds) {
  InterceptState& s = GetState();
  if (!s.enabled) {
    struct timespec req;
    req.tv_sec = seconds;
    req.tv_nsec = 0;
    if (s.real_nanosleep != nullptr) {
      s.real_nanosleep(&req, nullptr);
    }
    return 0;
  }
  s.now_ns.fetch_add(static_cast<long long>(seconds) * 1000000000LL);
  return 0;
}

}  // extern "C"
