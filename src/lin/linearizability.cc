#include "src/lin/linearizability.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"
#include "src/util/hash.h"

namespace sandtable {
namespace lin {

namespace {

// DFS over (set of linearized operations, register value) configurations.
class Checker {
 public:
  Checker(const std::vector<Operation>& history, int64_t initial_value)
      : history_(history), initial_(initial_value) {
    CHECK_LE(history.size(), 63u) << "history too long for bitmask search";
  }

  LinearizationResult Run() {
    LinearizationResult result;
    std::vector<size_t> witness;
    if (Search(0, initial_, witness)) {
      result.linearizable = true;
      result.witness = std::move(witness);
    }
    result.states_explored = explored_;
    return result;
  }

 private:
  bool Search(uint64_t done_mask, int64_t value, std::vector<size_t>& witness) {
    ++explored_;
    if (done_mask == (uint64_t{1} << history_.size()) - 1) {
      return true;
    }
    const uint64_t key = HashCombine(done_mask, HashInt(static_cast<uint64_t>(value)));
    if (failed_.count(key) > 0) {
      return false;
    }

    // An operation may be linearized next only if no *other* pending
    // operation responded before it was invoked (real-time order).
    int64_t min_response = INT64_MAX;
    for (size_t i = 0; i < history_.size(); ++i) {
      if ((done_mask >> i) & 1) {
        continue;
      }
      min_response = std::min(min_response, history_[i].response);
    }
    for (size_t i = 0; i < history_.size(); ++i) {
      if ((done_mask >> i) & 1) {
        continue;
      }
      const Operation& op = history_[i];
      if (op.invoke > min_response) {
        continue;  // some pending operation strictly precedes this one
      }
      int64_t next_value = value;
      if (op.type == Operation::Type::kPut) {
        next_value = op.value;
      } else if (op.value != value) {
        continue;  // the read result does not match the register
      }
      witness.push_back(i);
      if (Search(done_mask | (uint64_t{1} << i), next_value, witness)) {
        return true;
      }
      witness.pop_back();
    }
    failed_.insert(key);
    return false;
  }

  const std::vector<Operation>& history_;
  int64_t initial_;
  uint64_t explored_ = 0;
  std::unordered_set<uint64_t> failed_;
};

}  // namespace

LinearizationResult CheckLinearizable(const std::vector<Operation>& history,
                                      int64_t initial_value) {
  if (history.empty()) {
    LinearizationResult r;
    r.linearizable = true;
    return r;
  }
  return Checker(history, initial_value).Run();
}

}  // namespace lin
}  // namespace sandtable
