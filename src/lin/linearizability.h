// Linearizability checking for key-value histories (used by the Xraft-KV
// integration, §4.2: "linearizability for Xraft-KV").
//
// Implements the Wing & Gong algorithm with memoization: search for a total
// order of operations that (a) respects real-time precedence (an operation
// invoked after another's response must be linearized after it) and (b) is a
// legal single-copy register history.
#ifndef SANDTABLE_SRC_LIN_LINEARIZABILITY_H_
#define SANDTABLE_SRC_LIN_LINEARIZABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sandtable {
namespace lin {

struct Operation {
  enum class Type { kPut, kGet };

  Type type = Type::kGet;
  std::string key = "x";
  int64_t value = 0;  // put: the value written; get: the value returned
  // Real-time interval: invocation and response instants.
  int64_t invoke = 0;
  int64_t response = 0;
  int client = 0;  // informational, for reports
};

struct LinearizationResult {
  bool linearizable = false;
  // A witness order (indices into the history) when linearizable.
  std::vector<size_t> witness;
  uint64_t states_explored = 0;
};

// Check a single-key register history. Values are integers; the register
// starts at `initial_value`. Histories must be complete (every operation has
// a response). Practical for histories of up to ~25 operations.
LinearizationResult CheckLinearizable(const std::vector<Operation>& history,
                                      int64_t initial_value = 0);

}  // namespace lin
}  // namespace sandtable

#endif  // SANDTABLE_SRC_LIN_LINEARIZABILITY_H_
