#include "src/mc/bfs.h"

#include <chrono>
#include <unordered_map>

#include "src/mc/expand.h"
#include "src/mc/reconstruct.h"
#include "src/util/check.h"

namespace sandtable {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Visited map: fingerprint -> parent fingerprint. An entry whose parent equals
// its own fingerprint marks an initial state (see mc/reconstruct.h).
using VisitedMap = std::unordered_map<uint64_t, uint64_t>;

// A frontier entry carries the fingerprint computed at insertion time so each
// distinct state is fingerprinted exactly once (not re-hashed at expansion).
struct FrontierEntry {
  uint64_t fp;
  State state;
};

}  // namespace

BfsResult BfsCheck(const Spec& spec, const BfsOptions& options) {
  const auto start = Clock::now();
  BfsResult result;
  const bool use_symmetry = options.use_symmetry && spec.symmetry.has_value();

  VisitedMap visited;
  visited.reserve(1 << 16);
  std::vector<FrontierEntry> frontier;
  std::vector<FrontierEntry> next_frontier;

  const ParentLookup parent_of = [&visited](uint64_t fp) -> std::optional<uint64_t> {
    auto it = visited.find(fp);
    if (it == visited.end()) {
      return std::nullopt;
    }
    return it->second;
  };

  auto record_violation = [&](const std::string& invariant, bool is_transition,
                              std::vector<TraceStep> trace) {
    if (result.violation.has_value()) {
      return;  // keep the first (minimal-depth) violation
    }
    Violation v;
    v.invariant = invariant;
    v.is_transition_invariant = is_transition;
    v.depth = trace.empty() ? 0 : trace.size() - 1;
    v.trace = std::move(trace);
    v.states_explored = result.distinct_states;
    v.seconds = SecondsSince(start);
    result.violation = std::move(v);
  };

  // Single exit point: every return path reports depth/time consistently.
  // `exhausted` means the bounded space was fully explored, which is false
  // whenever a limit fired or the search stopped early at a violation.
  auto finalize = [&](uint64_t depth, bool frontier_drained) -> BfsResult& {
    result.depth_reached = depth;
    result.exhausted = frontier_drained && !result.hit_state_limit &&
                       !result.hit_time_limit &&
                       !(result.violation.has_value() && options.stop_at_first_violation);
    result.seconds = SecondsSince(start);
    return result;
  };

  // Seed with initial states.
  for (const State& init : spec.init_states) {
    const uint64_t fp = Fingerprint(spec, init, use_symmetry);
    if (visited.count(fp) > 0) {
      continue;
    }
    visited.emplace(fp, fp);
    ++result.distinct_states;
    const std::string bad = CheckInvariants(spec, init);
    if (!bad.empty()) {
      record_violation(bad, false, {TraceStep{ActionLabel{}, init}});
      if (options.stop_at_first_violation) {
        return finalize(0, false);
      }
    }
    if (spec.WithinConstraint(init)) {
      frontier.push_back(FrontierEntry{fp, init});
    }
  }

  uint64_t depth = 0;
  uint64_t expansions_since_time_check = 0;
  uint64_t next_progress = options.progress_every;

  while (!frontier.empty()) {
    if (depth >= options.max_depth) {
      return finalize(depth, false);
    }
    next_frontier.clear();
    for (const FrontierEntry& entry : frontier) {
      // Periodic limit checks.
      if (++expansions_since_time_check >= 256) {
        expansions_since_time_check = 0;
        if (SecondsSince(start) > options.time_budget_s) {
          result.hit_time_limit = true;
          return finalize(depth, false);
        }
      }

      std::vector<Successor> succs = ExpandAll(spec, entry.state, &result.coverage);
      if (succs.empty()) {
        ++result.deadlock_states;
        continue;
      }
      for (Successor& s : succs) {
        result.coverage.RecordEvent(s.label.kind);

        // Transition invariants hold on every edge, including edges back to
        // already-visited states.
        const std::string bad_edge =
            CheckTransitionInvariants(spec, entry.state, s.label, s.state);
        if (!bad_edge.empty()) {
          std::vector<TraceStep> trace =
              ReconstructTrace(spec, parent_of, entry.fp, use_symmetry);
          trace.push_back(TraceStep{s.label, s.state});
          record_violation(bad_edge, true, std::move(trace));
          if (options.stop_at_first_violation) {
            return finalize(depth, false);
          }
        }

        const uint64_t fp = Fingerprint(spec, s.state, use_symmetry);
        if (visited.count(fp) > 0) {
          continue;
        }
        visited.emplace(fp, entry.fp);
        ++result.distinct_states;

        const std::string bad = CheckInvariants(spec, s.state);
        if (!bad.empty()) {
          record_violation(bad, false, ReconstructTrace(spec, parent_of, fp, use_symmetry));
          if (options.stop_at_first_violation) {
            return finalize(depth, false);
          }
        }

        if (options.progress && result.distinct_states >= next_progress &&
            options.progress_every > 0) {
          next_progress += options.progress_every;
          options.progress(result.distinct_states, depth + 1, SecondsSince(start));
        }

        if (result.distinct_states >= options.max_distinct_states) {
          result.hit_state_limit = true;
          return finalize(depth, false);
        }

        if (spec.WithinConstraint(s.state)) {
          next_frontier.push_back(FrontierEntry{fp, std::move(s.state)});
        }
      }
    }
    frontier.swap(next_frontier);
    if (!frontier.empty()) {
      ++depth;
    }
  }

  return finalize(depth, /*frontier_drained=*/true);
}

}  // namespace sandtable
