#include "src/mc/bfs.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "src/mc/expand.h"
#include "src/mc/reconstruct.h"
#include "src/obs/phase_timer.h"
#include "src/obs/trace.h"
#include "src/store/checkpoint.h"
#include "src/store/frontier.h"
#include "src/store/state_store.h"
#include "src/util/check.h"

namespace sandtable {

namespace {

using Clock = std::chrono::steady_clock;
using obs::Phase;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Visited map: fingerprint -> parent fingerprint. An entry whose parent equals
// its own fingerprint marks an initial state (see mc/reconstruct.h).
using VisitedMap = std::unordered_map<uint64_t, uint64_t>;

// A frontier entry carries the fingerprint computed at insertion time so each
// distinct state is fingerprinted exactly once (not re-hashed at expansion).
struct FrontierEntry {
  uint64_t fp;
  State state;
};

}  // namespace

BfsResult BfsCheck(const Spec& spec, const BfsOptions& options) {
  const auto start = Clock::now();
  BfsResult result;
  const bool use_symmetry = options.use_symmetry && spec.symmetry.has_value();
  const obs::ExplorationMetrics m = obs::ExplorationMetrics::Bind(options.metrics);
  obs::ProgressReporter* progress = options.progress;
  obs::ExplorationProfile* profile = options.analytics;
  if (profile != nullptr && !profile->initialized()) {
    InitProfileFromSpec(profile, spec);
  }
  // Sync branch names interned by the profile into coverage (the profile
  // replaces coverage's per-hit set inserts; see mc/expand.cc).
  auto drain_branches = [&]() {
    if (profile == nullptr) {
      return;
    }
    std::vector<std::string> names;
    profile->DrainNewBranches(&names);
    for (std::string& n : names) {
      result.coverage.branches.insert(std::move(n));
    }
  };

  // Out-of-core wiring: with no OocConfig every branch below picks the
  // original in-memory structure, keeping the default path bit-identical.
  store::StateStore* sstore = options.ooc.state_store;
  const store::SpoolConfig* spool_cfg = options.ooc.frontier_spool;
  store::Checkpointer* ckpt = options.ooc.checkpointer;
  const store::ResumedRun* resume = options.ooc.resume;
  if (ckpt != nullptr || resume != nullptr) {
    CHECK(sstore != nullptr && spool_cfg != nullptr)
        << "checkpoint/resume requires ooc.state_store and ooc.frontier_spool";
  }
  const bool use_spool = spool_cfg != nullptr;

  VisitedMap visited;
  if (sstore == nullptr) {
    visited.reserve(1 << 16);
  }

  auto insert_visited = [&](uint64_t fp, uint64_t parent_fp) {
    return sstore != nullptr ? sstore->InsertIfAbsent(fp, parent_fp)
                             : visited.emplace(fp, parent_fp).second;
  };

  const ParentLookup parent_of = [&](uint64_t fp) -> std::optional<uint64_t> {
    if (sstore != nullptr) {
      return sstore->Parent(fp);
    }
    auto it = visited.find(fp);
    if (it == visited.end()) {
      return std::nullopt;
    }
    return it->second;
  };

  // Frontier: plain vectors in-memory, spools when configured to overflow to
  // disk. Spool segment names rotate per level; a destroyed spool removes its
  // segment file.
  std::vector<FrontierEntry> frontier;
  std::vector<FrontierEntry> next_frontier;
  std::unique_ptr<store::FrontierSpool> cur_spool;
  std::unique_ptr<store::FrontierSpool> next_spool;
  uint64_t spool_seq = 0;
  auto new_spool = [&]() {
    char name[48];
    std::snprintf(name, sizeof(name), "bfs-frontier-%06llu.seg",
                  static_cast<unsigned long long>(spool_seq++));
    return std::make_unique<store::FrontierSpool>(spool_cfg, name);
  };
  if (use_spool) {
    cur_spool = new_spool();
    next_spool = new_spool();
  }
  auto frontier_size = [&]() -> uint64_t {
    return use_spool ? cur_spool->size() : frontier.size();
  };
  auto push_cur = [&](uint64_t fp, State state) {
    if (use_spool) {
      const Status st = cur_spool->Push(fp, std::move(state));
      CHECK(st.ok()) << "frontier spill failed: " << st.error();
    } else {
      frontier.push_back(FrontierEntry{fp, std::move(state)});
    }
  };
  auto push_next = [&](uint64_t fp, State state) {
    if (use_spool) {
      const Status st = next_spool->Push(fp, std::move(state));
      CHECK(st.ok()) << "frontier spill failed: " << st.error();
    } else {
      next_frontier.push_back(FrontierEntry{fp, std::move(state)});
    }
  };

  auto fingerprint_of = [&](const State& state) {
    obs::PhaseTimer t(m, Phase::kCanonicalize);
    return Fingerprint(spec, state, use_symmetry);
  };

  // Hash-compacted stores keep no ancestry, so the parent-chain walk is
  // replaced by a bounded re-search from the initial states.
  const bool parents_available = sstore == nullptr || sstore->RetainsParents();
  result.hash_compact = !parents_available;

  uint64_t depth = 0;

  // Set by `reconstruct` when the hash-compacted re-search misses its target
  // (fingerprint collision); record_violation copies it onto the violation so
  // the run degrades to a trace-less report instead of aborting.
  std::string reconstruct_error;
  auto reconstruct = [&](uint64_t fp) {
    obs::PhaseTimer t(m, Phase::kReconstruct);
    obs::Add(m.reconstructions);
    reconstruct_error.clear();
    return parents_available
               ? ReconstructTrace(spec, parent_of, fp, use_symmetry)
               : ReconstructTraceResearch(spec, fp, depth + 2, use_symmetry,
                                          &reconstruct_error);
  };

  auto record_violation = [&](const std::string& invariant, bool is_transition,
                              std::vector<TraceStep> trace) {
    obs::Add(m.violations);
    if (result.violation.has_value()) {
      return;  // keep the first (minimal-depth) violation
    }
    Violation v;
    v.invariant = invariant;
    v.is_transition_invariant = is_transition;
    v.trace_error = reconstruct_error;
    v.depth = trace.empty() ? 0 : trace.size() - 1;
    v.trace = std::move(trace);
    v.states_explored = result.distinct_states;
    v.seconds = SecondsSince(start);
    result.violation = std::move(v);
  };

  auto emit_progress = [&](uint64_t progress_depth) {
    drain_branches();
    obs::ProgressSample s;
    s.engine = "bfs";
    s.elapsed_s = SecondsSince(start);
    s.distinct_states = result.distinct_states;
    s.frontier = frontier_size();
    s.depth = progress_depth;
    s.transitions = result.coverage.transitions;
    s.deadlocks = result.deadlock_states;
    s.event_kinds = result.coverage.DistinctEventKinds();
    s.branches = result.coverage.branches.size();
    if (profile != nullptr) {
      s.analytics = profile->SummaryJson(3);
    }
    progress->Emit(s);
  };

  // Single exit point: every return path reports depth/time consistently.
  // `exhausted` means the bounded space was fully explored, which is false
  // whenever a limit fired or the search stopped early at a violation.
  auto finalize = [&](uint64_t final_depth, bool frontier_drained) -> BfsResult& {
    drain_branches();
    if (profile != nullptr) {
      profile->SetDistinctStates(result.distinct_states);
    }
    result.depth_reached = final_depth;
    result.exhausted = frontier_drained && !result.hit_state_limit &&
                       !result.hit_time_limit && !result.cancelled &&
                       !(result.violation.has_value() && options.stop_at_first_violation);
    result.seconds = SecondsSince(start);
    if (result.hash_compact) {
      result.collision_probability =
          obs::ExplorationProfile::CollisionProbability(result.distinct_states);
    }
    obs::Set(m.frontier, static_cast<int64_t>(frontier_size()));
    return result;
  };

  double base_seconds = 0;  // wall time carried over from a resumed checkpoint

  if (resume != nullptr) {
    CHECK(resume->meta.hash_compact == result.hash_compact)
        << "resume mode mismatch: checkpoint "
        << (resume->meta.hash_compact ? "was" : "was not")
        << " written with a hash-compacted store, this run "
        << (result.hash_compact ? "is" : "is not") << " using one";
    // Seed from the checkpoint: counters, coverage and the saved frontier.
    // The caller already loaded the visited runs into the state store.
    const store::CheckpointMeta& meta = resume->meta;
    result.distinct_states = meta.distinct_states;
    result.deadlock_states = meta.deadlock_states;
    depth = meta.depth_reached;
    base_seconds = meta.seconds;
    if (!meta.coverage.is_null()) {
      auto cov = CoverageStats::FromFullJson(meta.coverage);
      CHECK(cov.ok()) << "resume: " << cov.error();
      result.coverage = std::move(cov).value();
    }
    if (profile != nullptr && !meta.analytics.is_null()) {
      auto prior = obs::ExplorationProfile::FromJson(meta.analytics);
      CHECK(prior.ok()) << "resume: " << prior.error();
      profile->MergeCounts(prior.value());
      // The merged branch names are already in the restored coverage set.
      std::vector<std::string> drained;
      profile->DrainNewBranches(&drained);
    }
    const Status st = store::ForEachSegmentEntry(
        resume->frontier_path, [&](uint64_t fp, State&& state) -> Status {
          push_cur(fp, std::move(state));
          return Status();
        });
    CHECK(st.ok()) << "resume: " << st.error();
    if (ckpt != nullptr) {
      ckpt->SeedCadence(meta.distinct_states);
    }
  } else {
    // Seed with initial states.
    for (const State& init : spec.init_states) {
      const uint64_t fp = fingerprint_of(init);
      if (!insert_visited(fp, fp)) {
        continue;
      }
      ++result.distinct_states;
      obs::Add(m.distinct_states);
      std::string bad;
      {
        obs::PhaseTimer t(m, Phase::kInvariants);
        obs::Add(m.invariant_checks);
        bad = CheckInvariants(spec, init, profile);
      }
      if (!bad.empty()) {
        record_violation(bad, false, {TraceStep{ActionLabel{}, init}});
        if (options.stop_at_first_violation) {
          return finalize(0, false);
        }
      }
      if (spec.WithinConstraint(init)) {
        push_cur(fp, init);
      }
    }
  }

  uint64_t expansions_since_time_check = 0;
  bool stop_search = false;

  // One frontier entry: expand, check invariants, insert successors. Sets
  // `stop_search` on the paths where the original loop returned early; the
  // level loop then falls through to finalize(depth, false).
  auto process_entry = [&](uint64_t entry_fp, const State& entry_state) {
    // Cancellation is one relaxed load, so it is polled on every expansion;
    // the (costlier) clock read keeps its 256-expansion cadence.
    if (StopRequested(options.stop)) {
      result.cancelled = true;
      stop_search = true;
      return;
    }
    if (++expansions_since_time_check >= 256) {
      expansions_since_time_check = 0;
      if (SecondsSince(start) > options.time_budget_s) {
        result.hit_time_limit = true;
        stop_search = true;
        return;
      }
    }

    std::vector<Successor> succs;
    {
      obs::PhaseTimer t(m, Phase::kExpand);
      obs::Add(m.expand_calls);
      succs = ExpandAll(spec, entry_state, &result.coverage, profile);
    }
    if (succs.empty()) {
      ++result.deadlock_states;
      obs::Add(m.deadlocks);
      return;
    }
    obs::Add(m.generated, succs.size());
    for (Successor& s : succs) {
      result.coverage.RecordEvent(s.label.kind);

      // Transition invariants hold on every edge, including edges back to
      // already-visited states.
      std::string bad_edge;
      {
        obs::PhaseTimer t(m, Phase::kInvariants);
        obs::Add(m.transition_checks);
        bad_edge = CheckTransitionInvariants(spec, entry_state, s.label, s.state,
                                             profile);
      }
      if (!bad_edge.empty()) {
        std::vector<TraceStep> trace = reconstruct(entry_fp);
        if (!trace.empty()) {  // degraded re-search keeps the trace empty
          trace.push_back(TraceStep{s.label, s.state});
        }
        record_violation(bad_edge, true, std::move(trace));
        if (options.stop_at_first_violation) {
          stop_search = true;
          return;
        }
      }

      const uint64_t fp = fingerprint_of(s.state);
      bool duplicate;
      {
        obs::PhaseTimer t(m, Phase::kFingerprint);
        duplicate = !insert_visited(fp, entry_fp);
      }
      if (duplicate) {
        obs::Add(m.duplicates);
        if (profile != nullptr) {
          profile->RecordDuplicate(s.action_index);
        }
        continue;
      }
      ++result.distinct_states;
      obs::Add(m.distinct_states);

      std::string bad;
      {
        obs::PhaseTimer t(m, Phase::kInvariants);
        obs::Add(m.invariant_checks);
        bad = CheckInvariants(spec, s.state, profile);
      }
      if (!bad.empty()) {
        record_violation(bad, false, reconstruct(fp));
        if (options.stop_at_first_violation) {
          stop_search = true;
          return;
        }
      }

      if (progress != nullptr && progress->Due(result.distinct_states)) {
        emit_progress(depth + 1);
      }

      if (result.distinct_states >= options.max_distinct_states) {
        result.hit_state_limit = true;
        stop_search = true;
        return;
      }

      if (spec.WithinConstraint(s.state)) {
        push_next(fp, std::move(s.state));
      }
    }
  };

  auto write_checkpoint = [&]() {
    drain_branches();
    store::CheckpointMeta meta;
    meta.distinct_states = result.distinct_states;
    meta.depth_reached = depth;
    meta.frontier_size = cur_spool->size();
    meta.deadlock_states = result.deadlock_states;
    meta.seconds = base_seconds + SecondsSince(start);
    meta.use_symmetry = use_symmetry;
    meta.hash_compact = result.hash_compact;
    meta.coverage = result.coverage.ToFullJson();
    if (options.metrics != nullptr) {
      meta.metrics = options.metrics->Snapshot().ToJson();
    }
    if (profile != nullptr) {
      profile->SetDistinctStates(result.distinct_states);
      meta.analytics = profile->ToJson();
    }
    const Status st = ckpt->Write(*sstore, *cur_spool, std::move(meta));
    if (!st.ok()) {
      std::fprintf(stderr, "sandtable: checkpoint write failed: %s\n",
                   st.error().c_str());
    }
  };

  while (frontier_size() > 0) {
    if (depth >= options.max_depth) {
      return finalize(depth, false);
    }
    obs::TraceSpan level_span("bfs.level", "level",
                              static_cast<int64_t>(depth), "frontier",
                              static_cast<int64_t>(frontier_size()));
    obs::SetMax(m.frontier_peak, static_cast<int64_t>(frontier_size()));
    if (profile != nullptr) {
      profile->RecordLevel(depth, frontier_size());
    }
    if (use_spool) {
      store::FrontierSpool::Reader reader = cur_spool->Read();
      uint64_t fp;
      State state;
      while (!stop_search && reader.Next(&fp, &state)) {
        process_entry(fp, state);
      }
      CHECK(reader.status().ok()) << "frontier read failed: " << reader.status().error();
      if (result.cancelled && ckpt != nullptr &&
          !(result.violation.has_value() && options.stop_at_first_violation)) {
        // Final checkpoint for a cancellation stop only: carry the unexpanded
        // remainder of this level over into the next spool so the
        // checkpointed frontier is exactly the set of states not yet
        // expanded. The resumed frontier then mixes two adjacent levels, so
        // depth_reached reads as "at least" after such a resume. Budget stops
        // (state/time limits) deliberately keep the last level-boundary
        // checkpoint: resuming from it replays the level deterministically,
        // which is what makes a resumed run reproduce an uninterrupted one.
        while (reader.Next(&fp, &state)) {
          push_next(fp, std::move(state));
        }
        CHECK(reader.status().ok())
            << "frontier read failed: " << reader.status().error();
        cur_spool = std::move(next_spool);
        next_spool = new_spool();
        write_checkpoint();
      }
    } else {
      next_frontier.clear();
      for (const FrontierEntry& entry : frontier) {
        process_entry(entry.fp, entry.state);
        if (stop_search) {
          break;
        }
      }
    }
    if (stop_search) {
      return finalize(depth, false);
    }

    // ---- Level barrier -----------------------------------------------------
    if (use_spool) {
      cur_spool = std::move(next_spool);
      next_spool = new_spool();
    } else {
      frontier.swap(next_frontier);
    }
    obs::Add(m.levels);
    obs::Set(m.frontier, static_cast<int64_t>(frontier_size()));
    obs::TraceCounter("distinct_states",
                      static_cast<int64_t>(result.distinct_states));
    obs::TraceCounter("frontier", static_cast<int64_t>(frontier_size()));
    if (frontier_size() > 0) {
      ++depth;
    }
    if (ckpt != nullptr && ckpt->Due(result.distinct_states)) {
      write_checkpoint();
    }
  }

  return finalize(depth, /*frontier_drained=*/true);
}

}  // namespace sandtable
