#include "src/mc/bfs.h"

#include <chrono>
#include <unordered_map>

#include "src/mc/expand.h"
#include "src/mc/reconstruct.h"
#include "src/obs/phase_timer.h"
#include "src/util/check.h"

namespace sandtable {

namespace {

using Clock = std::chrono::steady_clock;
using obs::Phase;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Visited map: fingerprint -> parent fingerprint. An entry whose parent equals
// its own fingerprint marks an initial state (see mc/reconstruct.h).
using VisitedMap = std::unordered_map<uint64_t, uint64_t>;

// A frontier entry carries the fingerprint computed at insertion time so each
// distinct state is fingerprinted exactly once (not re-hashed at expansion).
struct FrontierEntry {
  uint64_t fp;
  State state;
};

}  // namespace

BfsResult BfsCheck(const Spec& spec, const BfsOptions& options) {
  const auto start = Clock::now();
  BfsResult result;
  const bool use_symmetry = options.use_symmetry && spec.symmetry.has_value();
  const obs::ExplorationMetrics m = obs::ExplorationMetrics::Bind(options.metrics);
  obs::ProgressReporter* progress = options.progress;

  VisitedMap visited;
  visited.reserve(1 << 16);
  std::vector<FrontierEntry> frontier;
  std::vector<FrontierEntry> next_frontier;

  const ParentLookup parent_of = [&visited](uint64_t fp) -> std::optional<uint64_t> {
    auto it = visited.find(fp);
    if (it == visited.end()) {
      return std::nullopt;
    }
    return it->second;
  };

  auto fingerprint_of = [&](const State& state) {
    obs::PhaseTimer t(m.phase(Phase::kCanonicalize));
    return Fingerprint(spec, state, use_symmetry);
  };

  auto reconstruct = [&](uint64_t fp) {
    obs::PhaseTimer t(m.phase(Phase::kReconstruct));
    obs::Add(m.reconstructions);
    return ReconstructTrace(spec, parent_of, fp, use_symmetry);
  };

  auto record_violation = [&](const std::string& invariant, bool is_transition,
                              std::vector<TraceStep> trace) {
    obs::Add(m.violations);
    if (result.violation.has_value()) {
      return;  // keep the first (minimal-depth) violation
    }
    Violation v;
    v.invariant = invariant;
    v.is_transition_invariant = is_transition;
    v.depth = trace.empty() ? 0 : trace.size() - 1;
    v.trace = std::move(trace);
    v.states_explored = result.distinct_states;
    v.seconds = SecondsSince(start);
    result.violation = std::move(v);
  };

  auto emit_progress = [&](uint64_t depth) {
    obs::ProgressSample s;
    s.engine = "bfs";
    s.elapsed_s = SecondsSince(start);
    s.distinct_states = result.distinct_states;
    s.frontier = frontier.size();
    s.depth = depth;
    s.transitions = result.coverage.transitions;
    s.deadlocks = result.deadlock_states;
    s.event_kinds = result.coverage.DistinctEventKinds();
    s.branches = result.coverage.branches.size();
    progress->Emit(s);
  };

  // Single exit point: every return path reports depth/time consistently.
  // `exhausted` means the bounded space was fully explored, which is false
  // whenever a limit fired or the search stopped early at a violation.
  auto finalize = [&](uint64_t depth, bool frontier_drained) -> BfsResult& {
    result.depth_reached = depth;
    result.exhausted = frontier_drained && !result.hit_state_limit &&
                       !result.hit_time_limit &&
                       !(result.violation.has_value() && options.stop_at_first_violation);
    result.seconds = SecondsSince(start);
    obs::Set(m.frontier, static_cast<int64_t>(frontier.size()));
    return result;
  };

  // Seed with initial states.
  for (const State& init : spec.init_states) {
    const uint64_t fp = fingerprint_of(init);
    if (visited.count(fp) > 0) {
      continue;
    }
    visited.emplace(fp, fp);
    ++result.distinct_states;
    obs::Add(m.distinct_states);
    std::string bad;
    {
      obs::PhaseTimer t(m.phase(Phase::kInvariants));
      obs::Add(m.invariant_checks);
      bad = CheckInvariants(spec, init);
    }
    if (!bad.empty()) {
      record_violation(bad, false, {TraceStep{ActionLabel{}, init}});
      if (options.stop_at_first_violation) {
        return finalize(0, false);
      }
    }
    if (spec.WithinConstraint(init)) {
      frontier.push_back(FrontierEntry{fp, init});
    }
  }

  uint64_t depth = 0;
  uint64_t expansions_since_time_check = 0;

  while (!frontier.empty()) {
    if (depth >= options.max_depth) {
      return finalize(depth, false);
    }
    obs::SetMax(m.frontier_peak, static_cast<int64_t>(frontier.size()));
    next_frontier.clear();
    for (const FrontierEntry& entry : frontier) {
      // Periodic limit checks.
      if (++expansions_since_time_check >= 256) {
        expansions_since_time_check = 0;
        if (SecondsSince(start) > options.time_budget_s) {
          result.hit_time_limit = true;
          return finalize(depth, false);
        }
      }

      std::vector<Successor> succs;
      {
        obs::PhaseTimer t(m.phase(Phase::kExpand));
        obs::Add(m.expand_calls);
        succs = ExpandAll(spec, entry.state, &result.coverage);
      }
      if (succs.empty()) {
        ++result.deadlock_states;
        obs::Add(m.deadlocks);
        continue;
      }
      obs::Add(m.generated, succs.size());
      for (Successor& s : succs) {
        result.coverage.RecordEvent(s.label.kind);

        // Transition invariants hold on every edge, including edges back to
        // already-visited states.
        std::string bad_edge;
        {
          obs::PhaseTimer t(m.phase(Phase::kInvariants));
          obs::Add(m.transition_checks);
          bad_edge = CheckTransitionInvariants(spec, entry.state, s.label, s.state);
        }
        if (!bad_edge.empty()) {
          std::vector<TraceStep> trace = reconstruct(entry.fp);
          trace.push_back(TraceStep{s.label, s.state});
          record_violation(bad_edge, true, std::move(trace));
          if (options.stop_at_first_violation) {
            return finalize(depth, false);
          }
        }

        const uint64_t fp = fingerprint_of(s.state);
        bool duplicate;
        {
          obs::PhaseTimer t(m.phase(Phase::kFingerprint));
          duplicate = !visited.emplace(fp, entry.fp).second;
        }
        if (duplicate) {
          obs::Add(m.duplicates);
          continue;
        }
        ++result.distinct_states;
        obs::Add(m.distinct_states);

        std::string bad;
        {
          obs::PhaseTimer t(m.phase(Phase::kInvariants));
          obs::Add(m.invariant_checks);
          bad = CheckInvariants(spec, s.state);
        }
        if (!bad.empty()) {
          record_violation(bad, false, reconstruct(fp));
          if (options.stop_at_first_violation) {
            return finalize(depth, false);
          }
        }

        if (progress != nullptr && progress->Due(result.distinct_states)) {
          emit_progress(depth + 1);
        }

        if (result.distinct_states >= options.max_distinct_states) {
          result.hit_state_limit = true;
          return finalize(depth, false);
        }

        if (spec.WithinConstraint(s.state)) {
          next_frontier.push_back(FrontierEntry{fp, std::move(s.state)});
        }
      }
    }
    frontier.swap(next_frontier);
    obs::Add(m.levels);
    obs::Set(m.frontier, static_cast<int64_t>(frontier.size()));
    if (!frontier.empty()) {
      ++depth;
    }
  }

  return finalize(depth, /*frontier_drained=*/true);
}

}  // namespace sandtable
