#include "src/mc/bfs.h"

#include <chrono>
#include <unordered_map>

#include "src/mc/expand.h"
#include "src/util/check.h"

namespace sandtable {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Visited map: fingerprint -> parent fingerprint. An entry whose parent equals
// its own fingerprint marks an initial state. This is the TLC-style compact
// representation that lets us reconstruct minimal-depth traces by forward
// replay without storing full states for the whole graph.
using VisitedMap = std::unordered_map<uint64_t, uint64_t>;

// Rebuild the state trace leading to fingerprint `target` by walking parent
// pointers back to an initial state and then replaying forward, at each level
// picking the successor whose (canonical) fingerprint matches the chain.
std::vector<TraceStep> ReconstructTrace(const Spec& spec, const VisitedMap& visited,
                                        uint64_t target, bool use_symmetry) {
  std::vector<uint64_t> chain;
  uint64_t cur = target;
  for (;;) {
    chain.push_back(cur);
    auto it = visited.find(cur);
    CHECK(it != visited.end()) << "trace reconstruction: fingerprint not in visited set";
    if (it->second == cur) {
      break;  // initial state
    }
    cur = it->second;
  }
  std::reverse(chain.begin(), chain.end());

  // Locate the initial state.
  State state;
  bool found_init = false;
  for (const State& init : spec.init_states) {
    if (Fingerprint(spec, init, use_symmetry) == chain[0]) {
      state = init;
      found_init = true;
      break;
    }
  }
  CHECK(found_init) << "trace reconstruction: no initial state matches chain head";

  std::vector<TraceStep> trace;
  trace.push_back(TraceStep{ActionLabel{}, state});
  for (size_t i = 1; i < chain.size(); ++i) {
    std::vector<Successor> succs = ExpandAll(spec, state, nullptr);
    bool matched = false;
    for (Successor& s : succs) {
      if (Fingerprint(spec, s.state, use_symmetry) == chain[i]) {
        state = s.state;
        trace.push_back(TraceStep{std::move(s.label), std::move(s.state)});
        matched = true;
        break;
      }
    }
    CHECK(matched) << "trace reconstruction: no successor matches chain fingerprint at step "
                   << i;
  }
  return trace;
}

}  // namespace

BfsResult BfsCheck(const Spec& spec, const BfsOptions& options) {
  const auto start = Clock::now();
  BfsResult result;
  const bool use_symmetry = options.use_symmetry && spec.symmetry.has_value();

  VisitedMap visited;
  visited.reserve(1 << 16);
  std::vector<State> frontier;
  std::vector<State> next_frontier;

  auto record_violation = [&](const std::string& invariant, bool is_transition,
                              std::vector<TraceStep> trace) {
    if (result.violation.has_value()) {
      return;  // keep the first (minimal-depth) violation
    }
    Violation v;
    v.invariant = invariant;
    v.is_transition_invariant = is_transition;
    v.depth = trace.empty() ? 0 : trace.size() - 1;
    v.trace = std::move(trace);
    v.states_explored = result.distinct_states;
    v.seconds = SecondsSince(start);
    result.violation = std::move(v);
  };

  // Seed with initial states.
  for (const State& init : spec.init_states) {
    const uint64_t fp = Fingerprint(spec, init, use_symmetry);
    if (visited.count(fp) > 0) {
      continue;
    }
    visited.emplace(fp, fp);
    ++result.distinct_states;
    const std::string bad = CheckInvariants(spec, init);
    if (!bad.empty()) {
      record_violation(bad, false, {TraceStep{ActionLabel{}, init}});
      if (options.stop_at_first_violation) {
        result.seconds = SecondsSince(start);
        return result;
      }
    }
    if (spec.WithinConstraint(init)) {
      frontier.push_back(init);
    }
  }

  uint64_t depth = 0;
  uint64_t expansions_since_time_check = 0;
  uint64_t next_progress = options.progress_every;

  while (!frontier.empty()) {
    if (depth >= options.max_depth) {
      break;
    }
    next_frontier.clear();
    for (const State& state : frontier) {
      // Periodic limit checks.
      if (++expansions_since_time_check >= 256) {
        expansions_since_time_check = 0;
        if (SecondsSince(start) > options.time_budget_s) {
          result.hit_time_limit = true;
          result.seconds = SecondsSince(start);
          result.depth_reached = depth;
          return result;
        }
      }

      std::vector<Successor> succs = ExpandAll(spec, state, &result.coverage);
      if (succs.empty()) {
        ++result.deadlock_states;
        continue;
      }
      const uint64_t state_fp = Fingerprint(spec, state, use_symmetry);
      for (Successor& s : succs) {
        result.coverage.RecordEvent(s.label.kind);

        // Transition invariants hold on every edge, including edges back to
        // already-visited states.
        const std::string bad_edge = CheckTransitionInvariants(spec, state, s.label, s.state);
        if (!bad_edge.empty()) {
          std::vector<TraceStep> trace =
              ReconstructTrace(spec, visited, state_fp, use_symmetry);
          trace.push_back(TraceStep{s.label, s.state});
          record_violation(bad_edge, true, std::move(trace));
          if (options.stop_at_first_violation) {
            result.seconds = SecondsSince(start);
            result.depth_reached = depth;
            return result;
          }
        }

        const uint64_t fp = Fingerprint(spec, s.state, use_symmetry);
        if (visited.count(fp) > 0) {
          continue;
        }
        visited.emplace(fp, state_fp);
        ++result.distinct_states;

        const std::string bad = CheckInvariants(spec, s.state);
        if (!bad.empty()) {
          record_violation(bad, false, ReconstructTrace(spec, visited, fp, use_symmetry));
          if (options.stop_at_first_violation) {
            result.seconds = SecondsSince(start);
            result.depth_reached = depth;
            return result;
          }
        }

        if (options.progress && result.distinct_states >= next_progress &&
            options.progress_every > 0) {
          next_progress += options.progress_every;
          options.progress(result.distinct_states, depth + 1, SecondsSince(start));
        }

        if (result.distinct_states >= options.max_distinct_states) {
          result.hit_state_limit = true;
          result.seconds = SecondsSince(start);
          result.depth_reached = depth;
          return result;
        }

        if (spec.WithinConstraint(s.state)) {
          next_frontier.push_back(std::move(s.state));
        }
      }
    }
    frontier.swap(next_frontier);
    if (!frontier.empty()) {
      ++depth;
    }
  }

  result.depth_reached = depth;
  result.exhausted = depth < options.max_depth;
  result.seconds = SecondsSince(start);
  return result;
}

}  // namespace sandtable
