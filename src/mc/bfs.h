// Stateful breadth-first model checking (the paper's §3.3 exploration mode).
//
// BFS keeps a fingerprint set of visited states (so each distinct state is
// explored once — "stateful exploration"), checks invariants on every state
// and transition invariants on every edge, and reconstructs minimal-depth
// counterexample traces from parent fingerprints by forward replay.
//
// Symmetry reduction (§3.3) canonicalizes states under permutations of a
// declared model-value class before fingerprinting.
#ifndef SANDTABLE_SRC_MC_BFS_H_
#define SANDTABLE_SRC_MC_BFS_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "src/mc/coverage.h"
#include "src/obs/analytics.h"
#include "src/obs/progress.h"
#include "src/obs/metrics.h"
#include "src/spec/spec.h"
#include "src/store/ooc.h"
#include "src/util/stop_token.h"

namespace sandtable {

struct Violation {
  std::string invariant;
  bool is_transition_invariant = false;
  // Full counterexample: step 0 is the initial state. Empty iff trace
  // reconstruction failed (see trace_error) — the violation itself is still
  // sound: the invariant was evaluated on a real reachable state.
  std::vector<TraceStep> trace;
  // Why `trace` is empty when it is: under --hash-compact the visited set
  // keeps no ancestry and the bounded re-search can miss the target if a
  // 64-bit fingerprint collision merged two states. Empty on the normal path.
  std::string trace_error;
  uint64_t depth = 0;              // events to hit the bug (= trace.size() - 1)
  uint64_t states_explored = 0;    // distinct states at detection time
  double seconds = 0;              // wall-clock time to hit

  // Canonical serialization (src/util/json.h); `include_trace` adds the full
  // counterexample as [{action, kind, params}, ...] (step 0 omitted).
  Json ToJson(bool include_trace = true) const;
};

struct BfsOptions {
  uint64_t max_distinct_states = std::numeric_limits<uint64_t>::max();
  uint64_t max_depth = std::numeric_limits<uint64_t>::max();
  double time_budget_s = std::numeric_limits<double>::infinity();
  // Apply the spec's symmetry declaration when fingerprinting.
  bool use_symmetry = true;
  bool stop_at_first_violation = true;
  // Structured periodic progress (src/obs/progress.h); the reporter owns the
  // cadence. Borrowed, may be null.
  obs::ProgressReporter* progress = nullptr;
  // Record counters and per-phase timers here (src/obs/metrics.h). Borrowed,
  // may be null — a null registry costs nothing in the hot loop.
  obs::MetricsRegistry* metrics = nullptr;
  // Per-action exploration analytics (src/obs/analytics.h). Borrowed, may be
  // null — a null profile keeps the hot loop exactly as before. The engine
  // initializes an uninitialized profile from the spec, merges checkpointed
  // counts on resume, and leaves the final counts (including distinct-state
  // count) in the profile when it returns.
  obs::ExplorationProfile* analytics = nullptr;
  // Cooperative cancellation (src/util/stop_token.h): polled at the same
  // cadence as the time budget. A raised token stops the search with
  // `cancelled` set; with checkpointing configured, a final checkpoint
  // capturing the unexpanded frontier is written before returning. Borrowed,
  // may be null.
  const StopToken* stop = nullptr;
  // Out-of-core exploration (src/store/ooc.h): pluggable visited store,
  // disk-spilling frontier, checkpoints and resume. Default (all null) keeps
  // the pure in-memory paths bit-identical to previous behaviour.
  // checkpointer/resume require state_store AND frontier_spool.
  store::OocConfig ooc;
};

struct BfsResult {
  uint64_t distinct_states = 0;
  uint64_t depth_reached = 0;  // deepest BFS level from which states were expanded
  // The bounded state space was fully explored: the frontier drained without
  // hitting the depth/state/time limits and without stopping early at a
  // violation. Always false when hit_state_limit or hit_time_limit is set.
  bool exhausted = false;
  bool hit_state_limit = false;
  bool hit_time_limit = false;
  // The run was stopped early through BfsOptions::stop. Mutually exclusive
  // with the limit flags above: whichever condition was observed first wins.
  bool cancelled = false;
  double seconds = 0;
  uint64_t deadlock_states = 0;  // in-constraint states with no successors
  std::optional<Violation> violation;
  CoverageStats coverage;
  // The visited set was hash-compacted (fingerprints only, no parents); set
  // whenever ooc.state_store->RetainsParents() is false. States colliding in
  // the 64-bit fingerprint space are merged, so states can be missed — never
  // falsely reported; `collision_probability` is the TLC birthday-bound
  // estimate 1 - exp(-n²/2·2⁶⁴) for the final distinct-state count, reported
  // so the omission risk is always visible next to the result.
  bool hash_compact = false;
  double collision_probability = 0;

  // Canonical serialization, embedding violation.ToJson() and the coverage
  // summary. "outcome" is one of exhausted|violation|cancelled|state_limit|
  // time_limit|depth_limit (bounded, no limit flag set).
  Json ToJson(bool include_trace = true) const;
};

// Shared human formatting, so the CLI, the examples and the benches print
// violations identically (and stay in sync with ToJson()).
std::string ViolationSummary(const Violation& v);
// The counterexample's event lines ("  1: Action{...}"), step 0 omitted.
std::string FormatTraceEvents(const std::vector<TraceStep>& trace, const char* indent);

BfsResult BfsCheck(const Spec& spec, const BfsOptions& options = {});

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_BFS_H_
