// Coverage statistics collected during exploration, feeding Algorithm 1's
// constraint-ranking heuristics (branch coverage, event diversity, depth).
#ifndef SANDTABLE_SRC_MC_COVERAGE_H_
#define SANDTABLE_SRC_MC_COVERAGE_H_

#include <array>
#include <cstdint>
#include <set>
#include <string>

#include "src/spec/spec.h"

namespace sandtable {

struct CoverageStats {
  // Distinct spec branches exercised, keyed "Action/branch".
  std::set<std::string> branches;
  // Transitions taken, per event kind.
  std::array<uint64_t, kNumEventKinds> event_counts{};
  uint64_t transitions = 0;

  int DistinctEventKinds() const {
    int n = 0;
    for (uint64_t c : event_counts) {
      n += (c > 0) ? 1 : 0;
    }
    return n;
  }

  void RecordEvent(EventKind kind) {
    ++event_counts[static_cast<size_t>(kind)];
    ++transitions;
  }

  void Merge(const CoverageStats& other) {
    branches.insert(other.branches.begin(), other.branches.end());
    for (size_t i = 0; i < event_counts.size(); ++i) {
      event_counts[i] += other.event_counts[i];
    }
    transitions += other.transitions;
  }

  // {"transitions":N,"branches":N,"event_kinds":N,"events":{"Message":N,...}}
  // (zero-count kinds omitted; branch names are summarized, not listed).
  Json ToJson() const {
    JsonObject events;
    for (size_t i = 0; i < event_counts.size(); ++i) {
      if (event_counts[i] > 0) {
        events[EventKindName(static_cast<EventKind>(i))] = Json(event_counts[i]);
      }
    }
    JsonObject o;
    o["transitions"] = Json(transitions);
    o["branches"] = Json(static_cast<uint64_t>(branches.size()));
    o["event_kinds"] = Json(static_cast<int64_t>(DistinctEventKinds()));
    o["events"] = Json(std::move(events));
    return Json(std::move(o));
  }

  // Lossless serialization (branch names listed, event counts by kind index),
  // used by checkpoint manifests so a resumed run continues the exact stats.
  Json ToFullJson() const {
    JsonArray names;
    for (const std::string& b : branches) {
      names.emplace_back(b);
    }
    JsonArray counts;
    for (uint64_t c : event_counts) {
      counts.emplace_back(c);
    }
    JsonObject o;
    o["transitions"] = Json(transitions);
    o["branches"] = Json(std::move(names));
    o["event_counts"] = Json(std::move(counts));
    return Json(std::move(o));
  }

  static Result<CoverageStats> FromFullJson(const Json& j) {
    using R = Result<CoverageStats>;
    if (!j.is_object() || !j["transitions"].is_int() || !j["branches"].is_array() ||
        !j["event_counts"].is_array() ||
        j["event_counts"].size() != static_cast<size_t>(kNumEventKinds)) {
      return R::Error("malformed coverage stats");
    }
    CoverageStats c;
    c.transitions = static_cast<uint64_t>(j["transitions"].as_int());
    for (const Json& b : j["branches"].as_array()) {
      if (!b.is_string()) {
        return R::Error("malformed coverage branch name");
      }
      c.branches.insert(b.as_string());
    }
    for (size_t i = 0; i < c.event_counts.size(); ++i) {
      if (!j["event_counts"][i].is_int()) {
        return R::Error("malformed coverage event count");
      }
      c.event_counts[i] = static_cast<uint64_t>(j["event_counts"][i].as_int());
    }
    return c;
  }
};

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_COVERAGE_H_
