// Coverage statistics collected during exploration, feeding Algorithm 1's
// constraint-ranking heuristics (branch coverage, event diversity, depth).
#ifndef SANDTABLE_SRC_MC_COVERAGE_H_
#define SANDTABLE_SRC_MC_COVERAGE_H_

#include <array>
#include <cstdint>
#include <set>
#include <string>

#include "src/spec/spec.h"

namespace sandtable {

struct CoverageStats {
  // Distinct spec branches exercised, keyed "Action/branch".
  std::set<std::string> branches;
  // Transitions taken, per event kind.
  std::array<uint64_t, kNumEventKinds> event_counts{};
  uint64_t transitions = 0;

  int DistinctEventKinds() const {
    int n = 0;
    for (uint64_t c : event_counts) {
      n += (c > 0) ? 1 : 0;
    }
    return n;
  }

  void RecordEvent(EventKind kind) {
    ++event_counts[static_cast<size_t>(kind)];
    ++transitions;
  }

  void Merge(const CoverageStats& other) {
    branches.insert(other.branches.begin(), other.branches.end());
    for (size_t i = 0; i < event_counts.size(); ++i) {
      event_counts[i] += other.event_counts[i];
    }
    transitions += other.transitions;
  }

  // {"transitions":N,"branches":N,"event_kinds":N,"events":{"Message":N,...}}
  // (zero-count kinds omitted; branch names are summarized, not listed).
  Json ToJson() const {
    JsonObject events;
    for (size_t i = 0; i < event_counts.size(); ++i) {
      if (event_counts[i] > 0) {
        events[EventKindName(static_cast<EventKind>(i))] = Json(event_counts[i]);
      }
    }
    JsonObject o;
    o["transitions"] = Json(transitions);
    o["branches"] = Json(static_cast<uint64_t>(branches.size()));
    o["event_kinds"] = Json(static_cast<int64_t>(DistinctEventKinds()));
    o["events"] = Json(std::move(events));
    return Json(std::move(o));
  }
};

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_COVERAGE_H_
