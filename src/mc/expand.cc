#include "src/mc/expand.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <utility>

#include "src/util/check.h"

namespace sandtable {

namespace {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class CollectingContext : public ActionContext {
 public:
  CollectingContext(const Action& action, uint32_t action_index,
                    std::vector<Successor>& out, CoverageStats* coverage,
                    obs::ExplorationProfile* profile)
      : action_(action),
        action_index_(action_index),
        out_(out),
        coverage_(coverage),
        profile_(profile) {}

  void Emit(State next, Json params) override {
    Successor s;
    s.state = std::move(next);
    s.label.action = action_.name;
    s.label.kind = action_.kind;
    s.label.params = std::move(params);
    s.action_index = action_index_;
    out_.push_back(std::move(s));
  }

  void Branch(std::string_view id) override {
    // With a profile the hit is interned (allocation-free on repeats) and
    // drained into coverage once per level; without one, fall back to the
    // original per-hit set insert.
    if (profile_ != nullptr) {
      profile_->RecordBranch(action_index_, id);
    } else if (coverage_ != nullptr) {
      coverage_->branches.insert(action_.name + "/" + std::string(id));
    }
  }

 private:
  const Action& action_;
  const uint32_t action_index_;
  std::vector<Successor>& out_;
  CoverageStats* coverage_;
  obs::ExplorationProfile* profile_;
};

// C(n, 2) without overflow for the pair counts seen here.
inline uint64_t Choose2(uint64_t n) { return n * (n - 1) / 2; }

// Of the message successors enabled at one state, count the delivery pairs
// that commute (target different destinations) — a direct measure of the
// partial-order-reduction opportunity. Destinations are grouped by the
// serialized "dst" param; successors without one are treated as one group.
void RecordCommutingPairs(const std::vector<Successor>& successors,
                          obs::ExplorationProfile* profile) {
  uint64_t messages = 0;
  // (dst key, count); message actions target a handful of nodes, so a linear
  // scan over a small vector beats a map.
  std::vector<std::pair<std::string, uint64_t>> by_dst;
  for (const Successor& s : successors) {
    if (s.label.kind != EventKind::kMessage) {
      continue;
    }
    ++messages;
    std::string key = s.label.params["dst"].Dump();
    bool found = false;
    for (auto& [dst, count] : by_dst) {
      if (dst == key) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) {
      by_dst.emplace_back(std::move(key), 1);
    }
  }
  if (messages < 2) {
    return;
  }
  uint64_t same_dst_pairs = 0;
  for (const auto& [dst, count] : by_dst) {
    same_dst_pairs += Choose2(count);
  }
  const uint64_t total = Choose2(messages);
  profile->RecordDeliveryPairs(total - same_dst_pairs, total);
}

}  // namespace

std::vector<Successor> ExpandAll(const Spec& spec, const State& state,
                                 CoverageStats* coverage,
                                 obs::ExplorationProfile* profile) {
  std::vector<Successor> out;
  if (profile == nullptr) {
    for (size_t i = 0; i < spec.actions.size(); ++i) {
      CollectingContext ctx(spec.actions[i], static_cast<uint32_t>(i), out,
                            coverage, nullptr);
      spec.actions[i].expand(state, ctx);
    }
    return out;
  }
  // Chained clock reads: one before the loop plus one per action (N+1 total)
  // time every action without doubling the clock cost.
  profile->RecordState();
  uint64_t t0 = NowNs();
  for (size_t i = 0; i < spec.actions.size(); ++i) {
    const size_t before = out.size();
    CollectingContext ctx(spec.actions[i], static_cast<uint32_t>(i), out,
                          coverage, profile);
    spec.actions[i].expand(state, ctx);
    const uint64_t t1 = NowNs();
    profile->RecordExpand(static_cast<uint32_t>(i), out.size() - before, t1 - t0);
    t0 = t1;
  }
  RecordCommutingPairs(out, profile);
  return out;
}

State Canonicalize(const Spec& spec, const State& state) {
  if (!spec.symmetry.has_value() || spec.symmetry->count <= 1) {
    return state;
  }
  const std::string& cls = spec.symmetry->cls;
  const int n = spec.symmetry->count;
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);

  State best = state;
  bool have_best = false;
  do {
    // Skip the identity permutation: it yields `state` itself.
    bool identity = true;
    for (int i = 0; i < n; ++i) {
      if (perm[static_cast<size_t>(i)] != i) {
        identity = false;
        break;
      }
    }
    State candidate = identity ? state : state.PermuteModel(cls, perm);
    if (!have_best || Compare(candidate, best) < 0) {
      best = std::move(candidate);
      have_best = true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

uint64_t Fingerprint(const Spec& spec, const State& state, bool use_symmetry) {
  if (!use_symmetry || !spec.symmetry.has_value() || spec.symmetry->count <= 1) {
    return state.hash();
  }
  // Symmetry-invariant fingerprint: minimum permutation-aware hash over all
  // permutations of the symmetry class. HashPermuted makes one traversal per
  // permutation with no value materialization, which keeps symmetric BFS
  // within ~2x of the asymmetric rate (vs ~6x for canonical-state building).
  const std::string& cls = spec.symmetry->cls;
  const int n = spec.symmetry->count;
  // Permutation tables are tiny and reused across calls.
  static thread_local int cached_n = 0;
  static thread_local std::vector<std::vector<int>> perms;
  if (cached_n != n) {
    perms.clear();
    std::vector<int> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    do {
      perms.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    cached_n = n;
  }
  return state.SymmetricMinHash(cls, perms);
}

std::string CheckInvariants(const Spec& spec, const State& state,
                            obs::ExplorationProfile* profile) {
  if (profile == nullptr) {
    for (const Invariant& inv : spec.invariants) {
      if (!inv.check(state)) {
        return inv.name;
      }
    }
    return "";
  }
  uint64_t t0 = NowNs();
  for (size_t i = 0; i < spec.invariants.size(); ++i) {
    const bool ok = spec.invariants[i].check(state);
    const uint64_t t1 = NowNs();
    profile->RecordInvariant(static_cast<uint32_t>(i), t1 - t0);
    t0 = t1;
    if (!ok) {
      return spec.invariants[i].name;
    }
  }
  return "";
}

std::string CheckTransitionInvariants(const Spec& spec, const State& prev,
                                      const ActionLabel& label, const State& next,
                                      obs::ExplorationProfile* profile) {
  if (profile == nullptr) {
    for (const TransitionInvariant& inv : spec.transition_invariants) {
      if (!inv.check(prev, label, next)) {
        return inv.name;
      }
    }
    return "";
  }
  uint64_t t0 = NowNs();
  for (size_t i = 0; i < spec.transition_invariants.size(); ++i) {
    const bool ok = spec.transition_invariants[i].check(prev, label, next);
    const uint64_t t1 = NowNs();
    profile->RecordTransitionInvariant(static_cast<uint32_t>(i), t1 - t0);
    t0 = t1;
    if (!ok) {
      return spec.transition_invariants[i].name;
    }
  }
  return "";
}

void InitProfileFromSpec(obs::ExplorationProfile* profile, const Spec& spec) {
  if (profile == nullptr) {
    return;
  }
  std::vector<obs::ActionInfo> actions;
  actions.reserve(spec.actions.size());
  for (const Action& a : spec.actions) {
    obs::ActionInfo info;
    info.name = a.name;
    info.kind = EventKindName(a.kind);
    info.declared_branches = a.declared_branches;
    actions.push_back(std::move(info));
  }
  std::vector<std::string> invariants;
  for (const Invariant& inv : spec.invariants) {
    invariants.push_back(inv.name);
  }
  std::vector<std::string> transition_invariants;
  for (const TransitionInvariant& inv : spec.transition_invariants) {
    transition_invariants.push_back(inv.name);
  }
  profile->Init(std::move(actions), std::move(invariants),
                std::move(transition_invariants));
}

}  // namespace sandtable
