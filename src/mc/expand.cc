#include "src/mc/expand.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/util/check.h"

namespace sandtable {

namespace {

class CollectingContext : public ActionContext {
 public:
  CollectingContext(const Action& action, std::vector<Successor>& out, CoverageStats* coverage)
      : action_(action), out_(out), coverage_(coverage) {}

  void Emit(State next, Json params) override {
    Successor s;
    s.state = std::move(next);
    s.label.action = action_.name;
    s.label.kind = action_.kind;
    s.label.params = std::move(params);
    out_.push_back(std::move(s));
  }

  void Branch(std::string_view id) override {
    if (coverage_ != nullptr) {
      coverage_->branches.insert(action_.name + "/" + std::string(id));
    }
  }

 private:
  const Action& action_;
  std::vector<Successor>& out_;
  CoverageStats* coverage_;
};

}  // namespace

std::vector<Successor> ExpandAll(const Spec& spec, const State& state, CoverageStats* coverage) {
  std::vector<Successor> out;
  for (const Action& action : spec.actions) {
    CollectingContext ctx(action, out, coverage);
    action.expand(state, ctx);
  }
  return out;
}

State Canonicalize(const Spec& spec, const State& state) {
  if (!spec.symmetry.has_value() || spec.symmetry->count <= 1) {
    return state;
  }
  const std::string& cls = spec.symmetry->cls;
  const int n = spec.symmetry->count;
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);

  State best = state;
  bool have_best = false;
  do {
    // Skip the identity permutation: it yields `state` itself.
    bool identity = true;
    for (int i = 0; i < n; ++i) {
      if (perm[static_cast<size_t>(i)] != i) {
        identity = false;
        break;
      }
    }
    State candidate = identity ? state : state.PermuteModel(cls, perm);
    if (!have_best || Compare(candidate, best) < 0) {
      best = std::move(candidate);
      have_best = true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

uint64_t Fingerprint(const Spec& spec, const State& state, bool use_symmetry) {
  if (!use_symmetry || !spec.symmetry.has_value() || spec.symmetry->count <= 1) {
    return state.hash();
  }
  // Symmetry-invariant fingerprint: minimum permutation-aware hash over all
  // permutations of the symmetry class. HashPermuted makes one traversal per
  // permutation with no value materialization, which keeps symmetric BFS
  // within ~2x of the asymmetric rate (vs ~6x for canonical-state building).
  const std::string& cls = spec.symmetry->cls;
  const int n = spec.symmetry->count;
  // Permutation tables are tiny and reused across calls.
  static thread_local int cached_n = 0;
  static thread_local std::vector<std::vector<int>> perms;
  if (cached_n != n) {
    perms.clear();
    std::vector<int> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    do {
      perms.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    cached_n = n;
  }
  return state.SymmetricMinHash(cls, perms);
}

std::string CheckInvariants(const Spec& spec, const State& state) {
  for (const Invariant& inv : spec.invariants) {
    if (!inv.check(state)) {
      return inv.name;
    }
  }
  return "";
}

std::string CheckTransitionInvariants(const Spec& spec, const State& prev,
                                      const ActionLabel& label, const State& next) {
  for (const TransitionInvariant& inv : spec.transition_invariants) {
    if (!inv.check(prev, label, next)) {
      return inv.name;
    }
  }
  return "";
}

}  // namespace sandtable
