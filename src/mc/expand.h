// Shared successor-enumeration helpers used by BFS, DFS and random walk.
#ifndef SANDTABLE_SRC_MC_EXPAND_H_
#define SANDTABLE_SRC_MC_EXPAND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mc/coverage.h"
#include "src/obs/analytics.h"
#include "src/spec/spec.h"

namespace sandtable {

struct Successor {
  State state;
  ActionLabel label;
  // Index into spec.actions of the action that produced this successor
  // (profiler attribution without a name lookup).
  uint32_t action_index = 0;
};

// Enumerate all successors of `state` under every action of `spec`.
// Branch hits are recorded into `coverage` (if non-null). With a non-null
// `profile`, per-action enabled/fired/fanout/time stats and branch hits are
// recorded there instead of into coverage->branches (the engine drains the
// profile's branch names into coverage once per level), and the
// commuting-delivery-pair count of this state's message successors is
// accumulated.
std::vector<Successor> ExpandAll(const Spec& spec, const State& state,
                                 CoverageStats* coverage,
                                 obs::ExplorationProfile* profile = nullptr);

// Canonicalize `state` under the spec's symmetry declaration (identity if
// none): the minimum state under the value order across all permutations of
// the symmetry class.
State Canonicalize(const Spec& spec, const State& state);

// Fingerprint of the (optionally canonicalized) state.
uint64_t Fingerprint(const Spec& spec, const State& state, bool use_symmetry);

// Find the first violated state invariant; empty string if none. With a
// profile, per-invariant check counts and nanos are recorded.
std::string CheckInvariants(const Spec& spec, const State& state,
                            obs::ExplorationProfile* profile = nullptr);

// Find the first violated transition invariant on edge (prev -> next).
std::string CheckTransitionInvariants(const Spec& spec, const State& prev,
                                      const ActionLabel& label, const State& next,
                                      obs::ExplorationProfile* profile = nullptr);

// Initialize `profile` with the spec's action/invariant identity (names,
// event kinds, declared branches). Engines call this once before exploring;
// it is a no-op if profile is null.
void InitProfileFromSpec(obs::ExplorationProfile* profile, const Spec& spec);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_EXPAND_H_
