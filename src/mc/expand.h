// Shared successor-enumeration helpers used by BFS, DFS and random walk.
#ifndef SANDTABLE_SRC_MC_EXPAND_H_
#define SANDTABLE_SRC_MC_EXPAND_H_

#include <string>
#include <vector>

#include "src/mc/coverage.h"
#include "src/spec/spec.h"

namespace sandtable {

struct Successor {
  State state;
  ActionLabel label;
};

// Enumerate all successors of `state` under every action of `spec`.
// Branch hits are recorded into `coverage` (if non-null).
std::vector<Successor> ExpandAll(const Spec& spec, const State& state, CoverageStats* coverage);

// Canonicalize `state` under the spec's symmetry declaration (identity if
// none): the minimum state under the value order across all permutations of
// the symmetry class.
State Canonicalize(const Spec& spec, const State& state);

// Fingerprint of the (optionally canonicalized) state.
uint64_t Fingerprint(const Spec& spec, const State& state, bool use_symmetry);

// Find the first violated state invariant; empty string if none.
std::string CheckInvariants(const Spec& spec, const State& state);

// Find the first violated transition invariant on edge (prev -> next).
std::string CheckTransitionInvariants(const Spec& spec, const State& prev,
                                      const ActionLabel& label, const State& next);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_EXPAND_H_
