#include "src/mc/random_walk.h"

#include <chrono>
#include <cmath>

#include "src/mc/expand.h"
#include "src/obs/phase_timer.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace sandtable {

using obs::Phase;

WalkResult RandomWalk(const Spec& spec, const WalkOptions& options, Rng& rng) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const bool budgeted = std::isfinite(options.time_budget_s);
  auto elapsed_s = [&]() {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  WalkResult result;
  CHECK(!spec.init_states.empty()) << "spec has no initial states";
  const obs::ExplorationMetrics m = obs::ExplorationMetrics::Bind(options.metrics);
  obs::ExplorationProfile* profile = options.analytics;
  if (profile != nullptr && !profile->initialized()) {
    InitProfileFromSpec(profile, spec);
  }
  // Every exit path: bucket this walk's end depth into the histogram and sync
  // newly interned branch names into the walk's coverage set.
  auto finish = [&]() -> WalkResult& {
    if (profile != nullptr) {
      profile->RecordLevel(result.depth, 1);
      std::vector<std::string> names;
      profile->DrainNewBranches(&names);
      for (std::string& n : names) {
        result.coverage.branches.insert(std::move(n));
      }
    }
    result.seconds = elapsed_s();
    return result;
  };
  obs::Add(m.walks);
  obs::TraceSpan walk_span("walk.run", "max_depth",
                           static_cast<int64_t>(options.max_depth));

  State state = spec.init_states[rng.Below(spec.init_states.size())];
  if (options.collect_trace) {
    result.trace.push_back(TraceStep{ActionLabel{}, state});
  }
  if (options.check_invariants) {
    obs::PhaseTimer t(m, Phase::kInvariants);
    obs::Add(m.invariant_checks);
    const std::string bad = CheckInvariants(spec, state, profile);
    if (!bad.empty()) {
      Violation v;
      v.invariant = bad;
      v.depth = 0;
      if (options.collect_trace) {
        v.trace = result.trace;
      }
      result.violation = std::move(v);
      obs::Add(m.violations);
      return finish();
    }
  }

  while (true) {
    if (StopRequested(options.stop)) {
      result.cancelled = true;
      break;
    }
    if (budgeted && elapsed_s() > options.time_budget_s) {
      // Cut off by the wall-clock budget — distinct from deadlock and the
      // depth cap, mirroring BfsResult::hit_time_limit.
      result.hit_time_limit = true;
      break;
    }
    if (result.depth >= options.max_depth) {
      // Cut off by the depth budget — a capped walk, not a deadlock and not a
      // completed exploration.
      result.hit_depth_limit = true;
      break;
    }
    std::vector<Successor> succs;
    {
      obs::PhaseTimer t(m, Phase::kExpand);
      obs::Add(m.expand_calls);
      succs = ExpandAll(spec, state, &result.coverage, profile);
    }
    // Honour the state constraint: successors outside the budget are not taken.
    std::erase_if(succs, [&](const Successor& s) { return !spec.WithinConstraint(s.state); });
    if (succs.empty()) {
      result.deadlocked = true;
      obs::Add(m.deadlocks);
      break;
    }
    Successor& chosen = succs[rng.Below(succs.size())];
    result.coverage.RecordEvent(chosen.label.kind);
    obs::Add(m.walk_steps);

    if (options.check_transition_invariants) {
      obs::PhaseTimer t(m, Phase::kInvariants);
      obs::Add(m.transition_checks);
      const std::string bad = CheckTransitionInvariants(spec, state, chosen.label,
                                                        chosen.state, profile);
      if (!bad.empty()) {
        Violation v;
        v.invariant = bad;
        v.is_transition_invariant = true;
        v.depth = result.depth + 1;
        if (options.collect_trace) {
          v.trace = result.trace;
          v.trace.push_back(TraceStep{chosen.label, chosen.state});
        }
        result.violation = std::move(v);
        obs::Add(m.violations);
        obs::TraceInstant("walk.violation", "depth",
                          static_cast<int64_t>(result.depth + 1));
        return finish();
      }
    }

    state = std::move(chosen.state);
    ++result.depth;
    if (options.collect_trace) {
      result.trace.push_back(TraceStep{std::move(chosen.label), state});
    }

    if (options.check_invariants) {
      obs::PhaseTimer t(m, Phase::kInvariants);
      obs::Add(m.invariant_checks);
      const std::string bad = CheckInvariants(spec, state, profile);
      if (!bad.empty()) {
        Violation v;
        v.invariant = bad;
        v.depth = result.depth;
        if (options.collect_trace) {
          v.trace = result.trace;
        }
        result.violation = std::move(v);
        obs::Add(m.violations);
        obs::TraceInstant("walk.violation", "depth",
                          static_cast<int64_t>(result.depth));
        return finish();
      }
    }
  }
  return finish();
}

}  // namespace sandtable
