#include "src/mc/random_walk.h"

#include "src/mc/expand.h"
#include "src/util/check.h"

namespace sandtable {

WalkResult RandomWalk(const Spec& spec, const WalkOptions& options, Rng& rng) {
  WalkResult result;
  CHECK(!spec.init_states.empty()) << "spec has no initial states";

  State state = spec.init_states[rng.Below(spec.init_states.size())];
  if (options.collect_trace) {
    result.trace.push_back(TraceStep{ActionLabel{}, state});
  }
  if (options.check_invariants) {
    const std::string bad = CheckInvariants(spec, state);
    if (!bad.empty()) {
      Violation v;
      v.invariant = bad;
      v.depth = 0;
      if (options.collect_trace) {
        v.trace = result.trace;
      }
      result.violation = std::move(v);
      return result;
    }
  }

  while (result.depth < options.max_depth) {
    std::vector<Successor> succs = ExpandAll(spec, state, &result.coverage);
    // Honour the state constraint: successors outside the budget are not taken.
    std::erase_if(succs, [&](const Successor& s) { return !spec.WithinConstraint(s.state); });
    if (succs.empty()) {
      result.deadlocked = true;
      break;
    }
    Successor& chosen = succs[rng.Below(succs.size())];
    result.coverage.RecordEvent(chosen.label.kind);

    if (options.check_transition_invariants) {
      const std::string bad =
          CheckTransitionInvariants(spec, state, chosen.label, chosen.state);
      if (!bad.empty()) {
        Violation v;
        v.invariant = bad;
        v.is_transition_invariant = true;
        v.depth = result.depth + 1;
        if (options.collect_trace) {
          v.trace = result.trace;
          v.trace.push_back(TraceStep{chosen.label, chosen.state});
        }
        result.violation = std::move(v);
        return result;
      }
    }

    state = std::move(chosen.state);
    ++result.depth;
    if (options.collect_trace) {
      result.trace.push_back(TraceStep{std::move(chosen.label), state});
    }

    if (options.check_invariants) {
      const std::string bad = CheckInvariants(spec, state);
      if (!bad.empty()) {
        Violation v;
        v.invariant = bad;
        v.depth = result.depth;
        if (options.collect_trace) {
          v.trace = result.trace;
        }
        result.violation = std::move(v);
        return result;
      }
    }
  }
  return result;
}

}  // namespace sandtable
