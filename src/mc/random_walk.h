// Random-walk simulation mode (TLC "simulate"), used for conformance checking
// trace generation (§3.2), Algorithm 1 data collection (§3.3), and the
// spec-vs-impl speed comparison (§5.3).
#ifndef SANDTABLE_SRC_MC_RANDOM_WALK_H_
#define SANDTABLE_SRC_MC_RANDOM_WALK_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "src/mc/bfs.h"
#include "src/mc/coverage.h"
#include "src/spec/spec.h"
#include "src/util/rng.h"

namespace sandtable {

struct WalkOptions {
  uint64_t max_depth = std::numeric_limits<uint64_t>::max();
  // Keep the full state trace (needed for conformance replay); otherwise only
  // statistics are retained.
  bool collect_trace = false;
  bool check_invariants = false;
  bool check_transition_invariants = false;
  // Record counters and per-phase timers here (src/obs/metrics.h). Borrowed,
  // may be null — a null registry costs nothing in the hot loop.
  obs::MetricsRegistry* metrics = nullptr;
};

struct WalkResult {
  uint64_t depth = 0;       // events taken
  bool deadlocked = false;  // stopped because no in-constraint successor existed
  // The walk was cut off by max_depth. A capped walk is not a deadlock and not
  // a completed exploration — mirrors BfsResult's limit flags.
  bool hit_depth_limit = false;
  std::optional<Violation> violation;
  CoverageStats coverage;
  std::vector<TraceStep> trace;  // populated iff collect_trace

  // Canonical serialization; "terminated" is violation|deadlock|depth_limit.
  Json ToJson(bool include_trace = true) const;
};

// One random walk from a random initial state: at each step enumerate all
// enabled successors, drop those outside the state constraint, and pick one
// uniformly at random.
WalkResult RandomWalk(const Spec& spec, const WalkOptions& options, Rng& rng);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_RANDOM_WALK_H_
