// Random-walk simulation mode (TLC "simulate"), used for conformance checking
// trace generation (§3.2), Algorithm 1 data collection (§3.3), and the
// spec-vs-impl speed comparison (§5.3).
#ifndef SANDTABLE_SRC_MC_RANDOM_WALK_H_
#define SANDTABLE_SRC_MC_RANDOM_WALK_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "src/mc/bfs.h"
#include "src/mc/coverage.h"
#include "src/spec/spec.h"
#include "src/util/rng.h"
#include "src/util/stop_token.h"

namespace sandtable {

struct WalkOptions {
  uint64_t max_depth = std::numeric_limits<uint64_t>::max();
  // Wall-clock budget for one walk; checked once per step. Infinite by
  // default, so unbudgeted walks never read the clock.
  double time_budget_s = std::numeric_limits<double>::infinity();
  // Keep the full state trace (needed for conformance replay); otherwise only
  // statistics are retained.
  bool collect_trace = false;
  bool check_invariants = false;
  bool check_transition_invariants = false;
  // Record counters and per-phase timers here (src/obs/metrics.h). Borrowed,
  // may be null — a null registry costs nothing in the hot loop.
  obs::MetricsRegistry* metrics = nullptr;
  // Per-action exploration analytics (src/obs/analytics.h). Borrowed, may be
  // null. Share one profile across a batch of walks to aggregate: counts
  // accumulate, and the depth histogram buckets walk end-depths.
  obs::ExplorationProfile* analytics = nullptr;
  // Cooperative cancellation (src/util/stop_token.h), polled once per step.
  // Borrowed, may be null.
  const StopToken* stop = nullptr;
};

struct WalkResult {
  uint64_t depth = 0;       // events taken
  bool deadlocked = false;  // stopped because no in-constraint successor existed
  // The walk was cut off by max_depth. A capped walk is not a deadlock and not
  // a completed exploration — mirrors BfsResult's limit flags.
  bool hit_depth_limit = false;
  // The walk was cut off by the wall-clock budget (WalkOptions::time_budget_s).
  bool hit_time_limit = false;
  // The walk was stopped early through WalkOptions::stop.
  bool cancelled = false;
  double seconds = 0;  // wall-clock time for this walk
  std::optional<Violation> violation;
  CoverageStats coverage;
  std::vector<TraceStep> trace;  // populated iff collect_trace

  // Canonical serialization; "terminated" is one of
  // violation|cancelled|time_limit|depth_limit|deadlock.
  Json ToJson(bool include_trace = true) const;
};

// One random walk from a random initial state: at each step enumerate all
// enabled successors, drop those outside the state constraint, and pick one
// uniformly at random.
WalkResult RandomWalk(const Spec& spec, const WalkOptions& options, Rng& rng);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_RANDOM_WALK_H_
