#include "src/mc/ranking.h"

#include <algorithm>

#include "src/mc/random_walk.h"

namespace sandtable {

bool DefaultConstraintOrder(const ConstraintScore& a, const ConstraintScore& b) {
  if (a.avg_branches != b.avg_branches) {
    return a.avg_branches > b.avg_branches;  // more branch coverage first
  }
  if (a.avg_event_kinds != b.avg_event_kinds) {
    return a.avg_event_kinds > b.avg_event_kinds;  // more diverse events first
  }
  if (a.avg_depth != b.avg_depth) {
    return a.avg_depth < b.avg_depth;  // smaller estimated space first
  }
  return a.constraint_name < b.constraint_name;
}

std::vector<ConfigRanking> RankConstraints(const SpecFactory& factory,
                                           const std::vector<NamedParams>& configs,
                                           const std::vector<NamedParams>& constraints,
                                           const RankingOptions& options) {
  std::vector<ConfigRanking> out;
  Rng rng(options.seed);
  auto sorter = options.sorter ? options.sorter : DefaultConstraintOrder;

  for (const NamedParams& config : configs) {
    ConfigRanking ranking;
    ranking.config_name = config.name;
    for (const NamedParams& constraint : constraints) {
      Spec spec = factory(config, constraint);
      ConstraintScore score;
      score.constraint_name = constraint.name;
      double sum_branches = 0;
      double sum_kinds = 0;
      double sum_depth = 0;
      WalkOptions wopts;
      wopts.max_depth = options.max_walk_depth;
      for (int w = 0; w < options.walks_per_pair; ++w) {
        WalkResult walk = RandomWalk(spec, wopts, rng);
        sum_branches += static_cast<double>(walk.coverage.branches.size());
        sum_kinds += walk.coverage.DistinctEventKinds();
        sum_depth += static_cast<double>(walk.depth);
        ++score.walks;
      }
      if (score.walks > 0) {
        score.avg_branches = sum_branches / static_cast<double>(score.walks);
        score.avg_event_kinds = sum_kinds / static_cast<double>(score.walks);
        score.avg_depth = sum_depth / static_cast<double>(score.walks);
      }
      ranking.ranked.push_back(std::move(score));
    }
    std::stable_sort(ranking.ranked.begin(), ranking.ranked.end(), sorter);
    out.push_back(std::move(ranking));
  }
  return out;
}

}  // namespace sandtable
