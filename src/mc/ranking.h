// Algorithm 1: ranking budget constraints for each configuration.
//
// For every (configuration, constraint) pair SandTable performs random walks,
// collects branch coverage, event diversity and exploration depth, and ranks
// the constraints: branch coverage descending, event diversity descending,
// then depth ascending (a smaller estimated state space lets bounded BFS
// explore it exhaustively). Callers can install a custom sorting function.
#ifndef SANDTABLE_SRC_MC_RANKING_H_
#define SANDTABLE_SRC_MC_RANKING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/spec/spec.h"
#include "src/util/rng.h"

namespace sandtable {

// A named bag of integer parameters. Configurations carry the number of nodes
// and workload values; constraints carry event budgets (timeouts, crashes,
// client requests, message-buffer sizes, ...).
struct NamedParams {
  std::string name;
  std::map<std::string, int64_t> values;

  int64_t Get(const std::string& key, int64_t def = 0) const {
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
  }
};

// Instantiates a bounded spec from a configuration and a budget constraint.
using SpecFactory = std::function<Spec(const NamedParams& config, const NamedParams& constraint)>;

struct ConstraintScore {
  std::string constraint_name;
  double avg_branches = 0;     // mean distinct branches per walk
  double avg_event_kinds = 0;  // mean distinct event kinds per walk
  double avg_depth = 0;        // mean walk depth
  uint64_t walks = 0;
};

struct RankingOptions {
  int walks_per_pair = 64;
  uint64_t max_walk_depth = 256;
  uint64_t seed = 1;
  // Default: branch coverage desc, event diversity desc, depth asc (§3.3).
  std::function<bool(const ConstraintScore&, const ConstraintScore&)> sorter;
};

// Default Algorithm-1 ordering.
bool DefaultConstraintOrder(const ConstraintScore& a, const ConstraintScore& b);

struct ConfigRanking {
  std::string config_name;
  std::vector<ConstraintScore> ranked;  // best first
};

std::vector<ConfigRanking> RankConstraints(const SpecFactory& factory,
                                           const std::vector<NamedParams>& configs,
                                           const std::vector<NamedParams>& constraints,
                                           const RankingOptions& options = {});

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_RANKING_H_
