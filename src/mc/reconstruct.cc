#include "src/mc/reconstruct.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "src/mc/expand.h"
#include "src/util/check.h"

namespace sandtable {

std::vector<TraceStep> ReconstructTrace(const Spec& spec, const ParentLookup& parent_of,
                                        uint64_t target, bool use_symmetry) {
  std::vector<uint64_t> chain;
  uint64_t cur = target;
  for (;;) {
    chain.push_back(cur);
    const std::optional<uint64_t> parent = parent_of(cur);
    CHECK(parent.has_value()) << "trace reconstruction: fingerprint not in visited set";
    if (*parent == cur) {
      break;  // initial state
    }
    cur = *parent;
  }
  std::reverse(chain.begin(), chain.end());

  // Locate the initial state.
  State state;
  bool found_init = false;
  for (const State& init : spec.init_states) {
    if (Fingerprint(spec, init, use_symmetry) == chain[0]) {
      state = init;
      found_init = true;
      break;
    }
  }
  CHECK(found_init) << "trace reconstruction: no initial state matches chain head";

  std::vector<TraceStep> trace;
  trace.push_back(TraceStep{ActionLabel{}, state});
  for (size_t i = 1; i < chain.size(); ++i) {
    std::vector<Successor> succs = ExpandAll(spec, state, nullptr);
    bool matched = false;
    for (Successor& s : succs) {
      if (Fingerprint(spec, s.state, use_symmetry) == chain[i]) {
        state = s.state;
        trace.push_back(TraceStep{std::move(s.label), std::move(s.state)});
        matched = true;
        break;
      }
    }
    CHECK(matched) << "trace reconstruction: no successor matches chain fingerprint at step "
                   << i;
  }
  return trace;
}

std::vector<TraceStep> ReconstructTraceResearch(const Spec& spec, uint64_t target,
                                                uint64_t max_depth, bool use_symmetry,
                                                std::string* error) {
  // Level-by-level BFS mirroring the engines' visit discipline (fingerprint
  // at generation, state constraint gates expansion) with a private parent
  // map. The map holds fp->parent for everything generated so far, so once
  // `target` appears ReconstructTrace can walk it directly.
  std::unordered_map<uint64_t, uint64_t> parents;
  const ParentLookup parent_of = [&](uint64_t fp) -> std::optional<uint64_t> {
    const auto it = parents.find(fp);
    if (it == parents.end()) {
      return std::nullopt;
    }
    return it->second;
  };

  std::vector<State> frontier;
  std::vector<uint64_t> frontier_fps;
  for (const State& init : spec.init_states) {
    const uint64_t fp = Fingerprint(spec, init, use_symmetry);
    if (!parents.emplace(fp, fp).second) {
      continue;
    }
    if (fp == target) {
      return ReconstructTrace(spec, parent_of, target, use_symmetry);
    }
    if (spec.WithinConstraint(init)) {
      frontier.push_back(init);
      frontier_fps.push_back(fp);
    }
  }

  for (uint64_t depth = 0; depth < max_depth && !frontier.empty(); ++depth) {
    std::vector<State> next;
    std::vector<uint64_t> next_fps;
    for (size_t i = 0; i < frontier.size(); ++i) {
      std::vector<Successor> succs = ExpandAll(spec, frontier[i], nullptr);
      for (Successor& s : succs) {
        const uint64_t fp = Fingerprint(spec, s.state, use_symmetry);
        if (!parents.emplace(fp, frontier_fps[i]).second) {
          continue;
        }
        if (fp == target) {
          return ReconstructTrace(spec, parent_of, target, use_symmetry);
        }
        if (spec.WithinConstraint(s.state)) {
          next.push_back(std::move(s.state));
          next_fps.push_back(fp);
        }
      }
    }
    frontier = std::move(next);
    frontier_fps = std::move(next_fps);
  }
  // Not regenerated within the bound: under hash compaction this is the
  // accepted fingerprint-collision mode, not an internal invariant — report
  // it to the caller instead of aborting the process (a serve daemon hosts
  // many tenants' jobs; one job's collision must not take the others down).
  if (error != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "re-search reconstruction: target fingerprint %016llx "
                  "unreachable within %llu levels (fingerprint collision?)",
                  static_cast<unsigned long long>(target),
                  static_cast<unsigned long long>(max_depth));
    *error = buf;
  }
  return {};
}

}  // namespace sandtable
