#include "src/mc/reconstruct.h"

#include <algorithm>

#include "src/mc/expand.h"
#include "src/util/check.h"

namespace sandtable {

std::vector<TraceStep> ReconstructTrace(const Spec& spec, const ParentLookup& parent_of,
                                        uint64_t target, bool use_symmetry) {
  std::vector<uint64_t> chain;
  uint64_t cur = target;
  for (;;) {
    chain.push_back(cur);
    const std::optional<uint64_t> parent = parent_of(cur);
    CHECK(parent.has_value()) << "trace reconstruction: fingerprint not in visited set";
    if (*parent == cur) {
      break;  // initial state
    }
    cur = *parent;
  }
  std::reverse(chain.begin(), chain.end());

  // Locate the initial state.
  State state;
  bool found_init = false;
  for (const State& init : spec.init_states) {
    if (Fingerprint(spec, init, use_symmetry) == chain[0]) {
      state = init;
      found_init = true;
      break;
    }
  }
  CHECK(found_init) << "trace reconstruction: no initial state matches chain head";

  std::vector<TraceStep> trace;
  trace.push_back(TraceStep{ActionLabel{}, state});
  for (size_t i = 1; i < chain.size(); ++i) {
    std::vector<Successor> succs = ExpandAll(spec, state, nullptr);
    bool matched = false;
    for (Successor& s : succs) {
      if (Fingerprint(spec, s.state, use_symmetry) == chain[i]) {
        state = s.state;
        trace.push_back(TraceStep{std::move(s.label), std::move(s.state)});
        matched = true;
        break;
      }
    }
    CHECK(matched) << "trace reconstruction: no successor matches chain fingerprint at step "
                   << i;
  }
  return trace;
}

}  // namespace sandtable
