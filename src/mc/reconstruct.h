// Counterexample reconstruction shared by the serial (mc/bfs.cc) and
// parallel (par/parallel_bfs.cc) breadth-first checkers.
//
// Both checkers store only `fingerprint -> parent fingerprint` for visited
// states (TLC's compact representation); a trace is rebuilt by walking parent
// pointers back to an initial state and replaying forward, at each step
// picking the successor whose (canonical) fingerprint matches the chain.
#ifndef SANDTABLE_SRC_MC_RECONSTRUCT_H_
#define SANDTABLE_SRC_MC_RECONSTRUCT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/spec/spec.h"

namespace sandtable {

// Resolves a visited fingerprint to its parent fingerprint; an entry whose
// parent equals its own fingerprint marks an initial state. Returns nullopt
// for fingerprints that were never visited (a reconstruction bug).
using ParentLookup = std::function<std::optional<uint64_t>(uint64_t fp)>;

// Rebuild the minimal-depth trace leading to visited fingerprint `target`.
// CHECK-fails if the parent chain is broken or replay cannot match it.
std::vector<TraceStep> ReconstructTrace(const Spec& spec, const ParentLookup& parent_of,
                                        uint64_t target, bool use_symmetry);

// Rebuild a minimal-depth trace to `target` without parent pointers — the
// reconstruction path for hash-compacted visited sets (store/compact_store.h),
// which keep bare fingerprints. Runs a fresh bounded BFS from the initial
// states with a local fingerprint->parent map until `target` is generated
// (at most `max_depth` levels, the violation depth the engine already knows),
// then replays the discovered chain forward. The re-search honors the spec's
// state constraint exactly like the engines, so it finds `target` at the same
// minimal depth the engine first saw it.
//
// If `target` is not regenerated within the bound — possible only under a
// 64-bit fingerprint collision, a mode of operation hash compaction
// explicitly accepts — returns an empty trace and, when `error` is non-null,
// describes the failure there. Engines degrade to reporting the violation
// without a trace (Violation::trace_error); they must NOT treat this as
// fatal, since a serve daemon runs many tenants' jobs in one process.
std::vector<TraceStep> ReconstructTraceResearch(const Spec& spec, uint64_t target,
                                                uint64_t max_depth, bool use_symmetry,
                                                std::string* error = nullptr);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_RECONSTRUCT_H_
