// Counterexample reconstruction shared by the serial (mc/bfs.cc) and
// parallel (par/parallel_bfs.cc) breadth-first checkers.
//
// Both checkers store only `fingerprint -> parent fingerprint` for visited
// states (TLC's compact representation); a trace is rebuilt by walking parent
// pointers back to an initial state and replaying forward, at each step
// picking the successor whose (canonical) fingerprint matches the chain.
#ifndef SANDTABLE_SRC_MC_RECONSTRUCT_H_
#define SANDTABLE_SRC_MC_RECONSTRUCT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/spec/spec.h"

namespace sandtable {

// Resolves a visited fingerprint to its parent fingerprint; an entry whose
// parent equals its own fingerprint marks an initial state. Returns nullopt
// for fingerprints that were never visited (a reconstruction bug).
using ParentLookup = std::function<std::optional<uint64_t>(uint64_t fp)>;

// Rebuild the minimal-depth trace leading to visited fingerprint `target`.
// CHECK-fails if the parent chain is broken or replay cannot match it.
std::vector<TraceStep> ReconstructTrace(const Spec& spec, const ParentLookup& parent_of,
                                        uint64_t target, bool use_symmetry);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_RECONSTRUCT_H_
