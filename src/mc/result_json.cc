// Canonical serialization of model-checking results (Violation, BfsResult,
// WalkResult) plus the shared human formatting used by the CLI, the examples
// and the benches, so every surface reports violations identically.
#include <cstdio>

#include "src/mc/bfs.h"
#include "src/mc/random_walk.h"

namespace sandtable {

namespace {

Json TraceToJson(const std::vector<TraceStep>& trace) {
  JsonArray steps;
  for (size_t i = 1; i < trace.size(); ++i) {
    JsonObject step;
    step["action"] = Json(trace[i].label.action);
    step["kind"] = Json(EventKindName(trace[i].label.kind));
    step["params"] = trace[i].label.params;
    steps.push_back(Json(std::move(step)));
  }
  return Json(std::move(steps));
}

}  // namespace

Json Violation::ToJson(bool include_trace) const {
  JsonObject o;
  o["invariant"] = Json(invariant);
  o["is_transition_invariant"] = Json(is_transition_invariant);
  o["depth"] = Json(depth);
  o["states_explored"] = Json(states_explored);
  o["seconds"] = Json(seconds);
  if (include_trace) {
    o["trace"] = TraceToJson(trace);
  }
  if (!trace_error.empty()) {
    // Present only when reconstruction failed (hash-compacted re-search miss)
    // so consumers can treat the field itself as the degraded-trace marker.
    o["trace_error"] = Json(trace_error);
  }
  return Json(std::move(o));
}

Json BfsResult::ToJson(bool include_trace) const {
  JsonObject o;
  o["distinct_states"] = Json(distinct_states);
  o["depth_reached"] = Json(depth_reached);
  o["exhausted"] = Json(exhausted);
  o["hit_state_limit"] = Json(hit_state_limit);
  o["hit_time_limit"] = Json(hit_time_limit);
  o["cancelled"] = Json(cancelled);
  o["seconds"] = Json(seconds);
  o["deadlock_states"] = Json(deadlock_states);
  const char* outcome = "depth_limit";
  if (violation.has_value()) {
    outcome = "violation";
  } else if (exhausted) {
    outcome = "exhausted";
  } else if (cancelled) {
    outcome = "cancelled";
  } else if (hit_state_limit) {
    outcome = "state_limit";
  } else if (hit_time_limit) {
    outcome = "time_limit";
  }
  o["outcome"] = Json(outcome);
  if (hash_compact) {
    // Present only for hash-compacted runs, so consumers can treat the field
    // itself as the mode marker (serve results, reports, bench rows).
    o["hash_compact"] = Json(true);
    o["collision_probability"] = Json(collision_probability);
  }
  if (violation.has_value()) {
    o["violation"] = violation->ToJson(include_trace);
  }
  o["coverage"] = coverage.ToJson();
  return Json(std::move(o));
}

std::string ViolationSummary(const Violation& v) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s at depth %llu after %llu distinct states (%.1fs)",
                v.invariant.c_str(), static_cast<unsigned long long>(v.depth),
                static_cast<unsigned long long>(v.states_explored), v.seconds);
  return buf;
}

std::string FormatTraceEvents(const std::vector<TraceStep>& trace, const char* indent) {
  std::string out;
  char head[48];
  for (size_t i = 1; i < trace.size(); ++i) {
    std::snprintf(head, sizeof(head), "%s%2zu: ", indent, i);
    out += head;
    out += trace[i].label.ToString();
    out += '\n';
  }
  return out;
}

Json WalkResult::ToJson(bool include_trace) const {
  JsonObject o;
  o["depth"] = Json(depth);
  o["deadlocked"] = Json(deadlocked);
  o["hit_depth_limit"] = Json(hit_depth_limit);
  o["hit_time_limit"] = Json(hit_time_limit);
  o["cancelled"] = Json(cancelled);
  o["seconds"] = Json(seconds);
  const char* terminated = "deadlock";
  if (violation.has_value()) {
    terminated = "violation";
  } else if (cancelled) {
    terminated = "cancelled";
  } else if (hit_time_limit) {
    terminated = "time_limit";
  } else if (hit_depth_limit) {
    terminated = "depth_limit";
  }
  o["terminated"] = Json(terminated);
  if (violation.has_value()) {
    o["violation"] = violation->ToJson(include_trace);
  }
  o["coverage"] = coverage.ToJson();
  return Json(std::move(o));
}

}  // namespace sandtable
