#include "src/mc/stateless.h"

#include <chrono>
#include <unordered_set>
#include <vector>

#include "src/mc/expand.h"

namespace sandtable {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

StatelessResult StatelessEnumerate(const Spec& spec, const StatelessOptions& options) {
  const auto start = Clock::now();
  StatelessResult result;
  std::unordered_set<uint64_t> seen;  // only for the redundancy metric

  struct Frame {
    State state;
    std::vector<Successor> succs;
    size_t next = 0;
  };

  bool out_of_budget = false;
  auto over_budget = [&] {
    if (result.transitions_executed >= options.max_transitions) {
      return true;
    }
    if ((result.transitions_executed & 0xFF) == 0) {
      const double secs = std::chrono::duration<double>(Clock::now() - start).count();
      if (secs > options.time_budget_s) {
        return true;
      }
    }
    return false;
  };

  for (const State& init : spec.init_states) {
    if (out_of_budget) {
      break;
    }
    std::vector<Frame> stack;
    seen.insert(init.hash());
    stack.push_back(Frame{init, ExpandAll(spec, init, nullptr), 0});
    while (!stack.empty()) {
      if (over_budget()) {
        out_of_budget = true;
        break;
      }
      Frame& top = stack.back();
      const bool bounded = stack.size() > options.max_depth ||
                           !spec.WithinConstraint(top.state);
      if (bounded || top.next >= top.succs.size()) {
        if (top.next == 0 || bounded) {
          ++result.traces_completed;
        }
        stack.pop_back();
        continue;
      }
      Successor s = top.succs[top.next++];
      ++result.transitions_executed;
      seen.insert(s.state.hash());
      Frame child;
      child.state = std::move(s.state);
      child.succs = ExpandAll(spec, child.state, nullptr);
      stack.push_back(std::move(child));
    }
  }

  result.distinct_states = seen.size();
  result.exhausted = !out_of_budget;
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace sandtable
