// Stateless depth-bounded enumeration — the implementation-level DMCK
// exploration style SandTable argues against (§2.1). Provided as an ablation
// baseline: it re-executes shared prefixes and revisits states, quantifying
// the redundancy stateful BFS avoids.
#ifndef SANDTABLE_SRC_MC_STATELESS_H_
#define SANDTABLE_SRC_MC_STATELESS_H_

#include <cstdint>
#include <limits>

#include "src/spec/spec.h"

namespace sandtable {

struct StatelessOptions {
  uint64_t max_depth = 8;
  // Stop after this many executed transitions (trace steps), counting repeats.
  uint64_t max_transitions = std::numeric_limits<uint64_t>::max();
  double time_budget_s = std::numeric_limits<double>::infinity();
};

struct StatelessResult {
  uint64_t transitions_executed = 0;  // total edges walked, with repetition
  uint64_t distinct_states = 0;       // measured separately, for the redundancy ratio
  uint64_t traces_completed = 0;      // maximal paths enumerated
  bool exhausted = false;
  double seconds = 0;

  double RedundancyFactor() const {
    return distinct_states == 0
               ? 0
               : static_cast<double>(transitions_executed) / static_cast<double>(distinct_states);
  }
};

// Depth-first enumeration of all bounded executions without a visited set.
StatelessResult StatelessEnumerate(const Spec& spec, const StatelessOptions& options);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_MC_STATELESS_H_
