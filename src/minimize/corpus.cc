#include "src/minimize/corpus.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

namespace sandtable {
namespace minimize {

namespace {

EventKind EventKindFromName(const std::string& name) {
  for (int k = 0; k < kNumEventKinds; ++k) {
    if (name == EventKindName(static_cast<EventKind>(k))) {
      return static_cast<EventKind>(k);
    }
  }
  return EventKind::kInternal;
}

}  // namespace

Json GoldenTraceToJson(const GoldenTrace& golden) {
  JsonArray events;
  events.reserve(golden.events.size());
  for (const ActionLabel& label : golden.events) {
    JsonObject e;
    e["action"] = Json(label.action);
    e["kind"] = Json(std::string(EventKindName(label.kind)));
    e["params"] = label.params;
    events.push_back(Json(std::move(e)));
  }
  JsonObject o;
  o["format"] = Json(std::string(kGoldenTraceFormat));
  o["bug"] = Json(golden.bug);
  o["invariant"] = Json(golden.invariant);
  o["is_transition_invariant"] = Json(golden.is_transition_invariant);
  o["init_index"] = Json(static_cast<int64_t>(golden.init_index));
  o["events"] = Json(std::move(events));
  o["meta"] = golden.meta;
  return Json(std::move(o));
}

Result<GoldenTrace> GoldenTraceFromJson(const Json& json) {
  using R = Result<GoldenTrace>;
  if (!json.is_object()) {
    return R::Error("golden trace is not a JSON object");
  }
  if (!json["format"].is_string() || json["format"].as_string() != kGoldenTraceFormat) {
    return R::Error("unknown golden trace format (want " +
                    std::string(kGoldenTraceFormat) + ")");
  }
  if (!json["bug"].is_string() || !json["invariant"].is_string() ||
      !json["events"].is_array()) {
    return R::Error("golden trace missing bug/invariant/events");
  }
  GoldenTrace g;
  g.bug = json["bug"].as_string();
  g.invariant = json["invariant"].as_string();
  g.is_transition_invariant = json["is_transition_invariant"].is_bool() &&
                              json["is_transition_invariant"].as_bool();
  g.init_index = json["init_index"].is_int()
                     ? static_cast<size_t>(json["init_index"].as_int())
                     : 0;
  for (const Json& e : json["events"].as_array()) {
    if (!e.is_object() || !e["action"].is_string()) {
      return R::Error("golden trace event missing action");
    }
    ActionLabel label;
    label.action = e["action"].as_string();
    label.kind = EventKindFromName(e["kind"].is_string() ? e["kind"].as_string()
                                                         : "Internal");
    label.params = e["params"];
    g.events.push_back(std::move(label));
  }
  g.meta = json["meta"];
  return g;
}

Result<GoldenTrace> LoadGoldenTrace(const std::string& path) {
  using R = Result<GoldenTrace>;
  std::ifstream f(path);
  if (!f) {
    return R::Error("cannot open " + path);
  }
  std::ostringstream text;
  text << f.rdbuf();
  auto parsed = Json::Parse(text.str());
  if (!parsed.ok()) {
    return R::Error(path + ": " + parsed.error());
  }
  auto golden = GoldenTraceFromJson(parsed.value());
  if (!golden.ok()) {
    return R::Error(path + ": " + golden.error());
  }
  return golden;
}

Status SaveGoldenTrace(const GoldenTrace& golden, const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    return Status::Error("cannot write " + path);
  }
  f << GoldenTraceToJson(golden).DumpPretty() << "\n";
  f.close();
  if (!f) {
    return Status::Error("write failed: " + path);
  }
  return Status();
}

trace::SpecReplayResult ReplayGoldenTrace(const Spec& spec, const GoldenTrace& golden) {
  trace::SpecReplayOptions opts;
  opts.check_invariants = !golden.is_transition_invariant;
  opts.check_transition_invariants = golden.is_transition_invariant;
  return trace::ReplayLabels(spec, golden.init_index, golden.events, opts);
}

std::string CorpusSlug(const std::string& bug_id) {
  std::string slug;
  slug.reserve(bug_id.size());
  bool pending_sep = false;
  for (char c : bug_id) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      if (pending_sep && !slug.empty()) {
        slug += '_';
      }
      pending_sep = false;
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_sep = true;
    }
  }
  return slug;
}

}  // namespace minimize
}  // namespace sandtable
