// Golden-trace regression corpus: minimized counterexamples checked in as
// small JSON files (tests/corpus/*.trace.json) and replayed against their
// bug's specification by the corpus_replay test driver.
//
// A golden trace pins a bug down by its event labels alone — no states are
// stored. Guided replay (src/trace/spec_replay.h) recomputes the states from
// the spec and asserts that the recorded invariant still fires, which makes
// the whole Table-2 bug set a sub-second regression suite instead of a
// model-checking run, and makes any drift in spec semantics an explicit
// review event (the file diff changes).
#ifndef SANDTABLE_SRC_MINIMIZE_CORPUS_H_
#define SANDTABLE_SRC_MINIMIZE_CORPUS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/spec/spec.h"
#include "src/trace/spec_replay.h"
#include "src/util/result.h"

namespace sandtable {
namespace minimize {

inline constexpr const char* kGoldenTraceFormat = "sandtable-golden-trace-v1";

struct GoldenTrace {
  std::string bug;        // catalog id, e.g. "PySyncObj#2"
  std::string invariant;  // property expected to fire on replay
  bool is_transition_invariant = false;
  size_t init_index = 0;  // index into spec.init_states
  std::vector<ActionLabel> events;
  // Free-form provenance (shrink stats, generator command); not replayed.
  Json meta;
};

Json GoldenTraceToJson(const GoldenTrace& golden);
Result<GoldenTrace> GoldenTraceFromJson(const Json& json);

// Pretty-printed single-object JSON file (stable key order via JsonObject, so
// regeneration diffs cleanly).
Result<GoldenTrace> LoadGoldenTrace(const std::string& path);
Status SaveGoldenTrace(const GoldenTrace& golden, const std::string& path);

// Replay the golden events from spec.init_states[init_index], checking only
// the recorded invariant class (the same narrowing the minimizer's oracle
// uses, so replay cannot be shadowed by an unrelated property).
trace::SpecReplayResult ReplayGoldenTrace(const Spec& spec, const GoldenTrace& golden);

// Corpus file stem for a bug id: lowercase with non-alphanumerics collapsed
// to '_' ("Xraft-KV#1" -> "xraft_kv_1"); the file is <slug>.trace.json.
std::string CorpusSlug(const std::string& bug_id);

}  // namespace minimize
}  // namespace sandtable

#endif  // SANDTABLE_SRC_MINIMIZE_CORPUS_H_
