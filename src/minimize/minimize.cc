#include "src/minimize/minimize.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "src/obs/phase_timer.h"
#include "src/obs/trace.h"
#include "src/trace/spec_replay.h"
#include "src/util/check.h"

namespace sandtable {
namespace minimize {

namespace {

using Clock = std::chrono::steady_clock;
using trace::ReplayLabels;
using trace::SpecReplayOptions;
using trace::SpecReplayOutcome;
using trace::SpecReplayResult;

std::vector<ActionLabel> LabelsOf(const std::vector<TraceStep>& steps) {
  std::vector<ActionLabel> labels;
  labels.reserve(steps.size() > 0 ? steps.size() - 1 : 0);
  for (size_t i = 1; i < steps.size(); ++i) {
    labels.push_back(steps[i].label);
  }
  return labels;
}

// The shrink search: owns the oracle, the budgets and the statistics.
class Shrinker {
 public:
  Shrinker(const Spec& spec, const State& init, const Violation& input,
           const MinimizeOptions& options, MinimizeResult* result)
      : spec_(spec), init_(init), options_(options), result_(result),
        start_(Clock::now()), target_(input.invariant) {
    // Evaluate only the invariant class that can match the target, so an
    // unrelated property cannot shadow the violation being reproduced. In
    // match-any mode both classes are fair game.
    replay_opts_.check_invariants = options.match_any || !input.is_transition_invariant;
    replay_opts_.check_transition_invariants =
        options.match_any || input.is_transition_invariant;
    if (options.metrics != nullptr) {
      replay_timer_ = &options.metrics->GetHistogram(
          std::string("phase.") + obs::PhaseName(obs::Phase::kGuidedReplay));
      replays_ = &options.metrics->GetCounter("minimize.replays");
      candidates_ = &options.metrics->GetCounter("minimize.candidates");
      accepted_ = &options.metrics->GetCounter("minimize.accepted");
      removed_ = &options.metrics->GetCounter("minimize.events_removed");
    }
  }

  bool OutOfBudget() {
    if (result_->replays >= options_.max_replays) {
      result_->hit_replay_limit = true;
      return true;
    }
    if (std::chrono::duration<double>(Clock::now() - start_).count() >
        options_.time_budget_s) {
      result_->hit_time_limit = true;
      return true;
    }
    return false;
  }

  // Replay `cand`; returns the replay result when it reproduces the target
  // violation (or any violation in match-any mode), nullopt otherwise.
  std::optional<SpecReplayResult> Oracle(const std::vector<ActionLabel>& cand) {
    ++result_->candidates;
    obs::Add(candidates_);
    if (OutOfBudget()) {
      return std::nullopt;
    }
    SpecReplayResult r;
    {
      obs::PhaseTimer t(replay_timer_, "guided_replay");
      r = ReplayLabels(spec_, init_, cand, replay_opts_);
    }
    ++result_->replays;
    obs::Add(replays_);
    if (r.outcome != SpecReplayOutcome::kViolation) {
      return std::nullopt;
    }
    if (!options_.match_any && r.invariant != target_) {
      return std::nullopt;
    }
    return r;
  }

  // Oracle plus adoption: on success installs the (possibly truncated)
  // replayed sequence as the current best and returns true.
  bool Accept(const std::vector<ActionLabel>& cand) {
    std::optional<SpecReplayResult> r = Oracle(cand);
    if (!r.has_value()) {
      return false;
    }
    ++result_->accepted;
    obs::Add(accepted_);
    cur_ = LabelsOf(r->trace);
    best_ = std::move(*r);
    return true;
  }

  // Seed with the input sequence; false when it does not reproduce.
  bool Seed(const std::vector<ActionLabel>& input_labels) {
    return Accept(input_labels);
  }

  const std::vector<ActionLabel>& cur() const { return cur_; }
  const SpecReplayResult& best() const { return best_; }

  // ---- ddmin ----------------------------------------------------------------
  //
  // Complement-style delta debugging: partition the event list into n chunks
  // and try dropping each chunk; on success restart with granularity
  // max(n-1, 2) on the shorter list, otherwise double n. Terminates 1-minimal
  // (no single event can be deleted) unless a budget ran out.
  void DdMin() {
    obs::TraceSpan ddmin_span("minimize.ddmin", "events",
                              static_cast<int64_t>(cur_.size()));
    size_t n = 2;
    while (cur_.size() >= 2 && !OutOfBudget()) {
      n = std::min(n, cur_.size());
      bool reduced = false;
      for (size_t i = 0; i < n; ++i) {
        const size_t lo = cur_.size() * i / n;
        const size_t hi = cur_.size() * (i + 1) / n;
        std::vector<ActionLabel> cand;
        cand.reserve(cur_.size() - (hi - lo));
        cand.insert(cand.end(), cur_.begin(), cur_.begin() + static_cast<long>(lo));
        cand.insert(cand.end(), cur_.begin() + static_cast<long>(hi), cur_.end());
        const size_t before = cur_.size();
        if (Accept(cand)) {
          result_->ddmin_removed += before - cur_.size();
          obs::Add(removed_, before - cur_.size());
          n = std::max<size_t>(n - 1, 2);
          reduced = true;
          break;
        }
        if (OutOfBudget()) {
          return;
        }
      }
      if (!reduced) {
        if (n >= cur_.size()) {
          return;  // 1-minimal
        }
        n = std::min(n * 2, cur_.size());
      }
    }
  }

  // Delete pairs of events together, escaping 1-minimal local optima where
  // two events depend on each other — typically a message handle and the
  // handle of the reply it put on the network: deleting either alone leaves
  // the other with no matching successor, so single deletions (and most
  // contiguous chunk deletions) cannot remove them. O(n^2) replays, so only
  // run on already-shrunk traces.
  bool PairDelete() {
    if (cur_.size() > 80) {
      return false;
    }
    bool changed = false;
    for (size_t i = 0; i < cur_.size() && !OutOfBudget(); ++i) {
      for (size_t j = i + 1; j < cur_.size(); ++j) {
        std::vector<ActionLabel> cand = cur_;
        cand.erase(cand.begin() + static_cast<long>(j));
        cand.erase(cand.begin() + static_cast<long>(i));
        const size_t before = cur_.size();
        if (Accept(cand)) {
          result_->ddmin_removed += before - cur_.size();
          obs::Add(removed_, before - cur_.size());
          changed = true;
          i = static_cast<size_t>(-1);  // restart the scan on the shorter list
          break;
        }
        if (OutOfBudget()) {
          return changed;
        }
      }
    }
    return changed;
  }

  // ---- Domain-aware reductions ---------------------------------------------

  // Delete every candidate single event of `kind` (network faults are almost
  // always red herrings in a raw trace; timeouts collapse when consecutive).
  bool DropSingles(EventKind kind) {
    bool changed = false;
    for (size_t i = cur_.size(); i-- > 0;) {
      if (cur_[i].kind != kind || OutOfBudget()) {
        continue;
      }
      std::vector<ActionLabel> cand = cur_;
      cand.erase(cand.begin() + static_cast<long>(i));
      const size_t before = cur_.size();
      if (Accept(cand)) {
        result_->domain_removed += before - cur_.size();
        obs::Add(removed_, before - cur_.size());
        changed = true;
        i = std::min(i, cur_.size());
      }
    }
    return changed;
  }

  // Collapse runs of identical consecutive timeout events (same action, same
  // parameters): re-firing a timer twice in a row rarely changes anything.
  bool CollapseTimeoutRuns() {
    bool changed = false;
    for (size_t i = 0; i + 1 < cur_.size() && !OutOfBudget();) {
      if (cur_[i].kind == EventKind::kTimeout && cur_[i + 1].kind == EventKind::kTimeout &&
          cur_[i].action == cur_[i + 1].action && cur_[i].params == cur_[i + 1].params) {
        std::vector<ActionLabel> cand = cur_;
        cand.erase(cand.begin() + static_cast<long>(i));
        const size_t before = cur_.size();
        if (Accept(cand)) {
          result_->domain_removed += before - cur_.size();
          obs::Add(removed_, before - cur_.size());
          changed = true;
          continue;  // re-inspect the same position
        }
      }
      ++i;
    }
    return changed;
  }

  // Delete matched partition/heal pairs together — removing either alone
  // changes connectivity for the rest of the trace, so single-event ddmin
  // cannot find this reduction.
  bool MergePartitionHealPairs() {
    bool changed = false;
    for (size_t i = 0; i < cur_.size() && !OutOfBudget(); ++i) {
      if (cur_[i].kind != EventKind::kPartition) {
        continue;
      }
      for (size_t j = i + 1; j < cur_.size(); ++j) {
        if (cur_[j].kind == EventKind::kPartition) {
          break;  // a new cut starts; [i] pairs with nothing before it
        }
        if (cur_[j].kind != EventKind::kRecover) {
          continue;
        }
        std::vector<ActionLabel> cand = cur_;
        cand.erase(cand.begin() + static_cast<long>(j));
        cand.erase(cand.begin() + static_cast<long>(i));
        const size_t before = cur_.size();
        if (Accept(cand)) {
          result_->domain_removed += before - cur_.size();
          obs::Add(removed_, before - cur_.size());
          changed = true;
          i = static_cast<size_t>(-1);  // restart scan on the shorter list
        }
        break;
      }
    }
    return changed;
  }

  // Shrink the side set of partition events one node at a time. The event
  // count is unchanged but the failure is weaker, which both reads better and
  // opens further deletions for the next ddmin round.
  bool ShrinkPartitionSides() {
    bool changed = false;
    for (size_t i = 0; i < cur_.size() && !OutOfBudget(); ++i) {
      if (cur_[i].kind != EventKind::kPartition || !cur_[i].params.is_object() ||
          !cur_[i].params.contains("side")) {
        continue;
      }
      bool shrunk = true;
      while (shrunk && cur_[i].params["side"].is_array() &&
             cur_[i].params["side"].size() > 1 && !OutOfBudget()) {
        shrunk = false;
        const JsonArray& side = cur_[i].params["side"].as_array();
        for (size_t k = 0; k < side.size(); ++k) {
          JsonArray smaller;
          for (size_t x = 0; x < side.size(); ++x) {
            if (x != k) {
              smaller.push_back(side[x]);
            }
          }
          std::vector<ActionLabel> cand = cur_;
          cand[i].params.as_object()["side"] = Json(std::move(smaller));
          if (Accept(cand)) {
            changed = true;
            shrunk = true;
            break;
          }
        }
      }
    }
    return changed;
  }

  bool DomainPasses() {
    obs::TraceSpan passes_span("minimize.domain_passes", "events",
                               static_cast<int64_t>(cur_.size()));
    bool changed = false;
    changed |= DropSingles(EventKind::kNetworkFault);
    changed |= CollapseTimeoutRuns();
    changed |= MergePartitionHealPairs();
    changed |= ShrinkPartitionSides();
    return changed;
  }

 private:
  const Spec& spec_;
  const State& init_;
  const MinimizeOptions& options_;
  MinimizeResult* result_;
  const Clock::time_point start_;
  const std::string target_;
  SpecReplayOptions replay_opts_;

  std::vector<ActionLabel> cur_;
  SpecReplayResult best_;

  obs::Histogram* replay_timer_ = nullptr;
  obs::Counter* replays_ = nullptr;
  obs::Counter* candidates_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* removed_ = nullptr;
};

}  // namespace

MinimizeResult MinimizeCounterexample(const Spec& spec, const Violation& input,
                                      const MinimizeOptions& options) {
  const auto start = Clock::now();
  MinimizeResult result;
  result.trace = input.trace;
  result.violation = input;
  result.events_before = input.trace.empty() ? 0 : input.trace.size() - 1;
  result.events_after = result.events_before;
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("minimize.runs").Add(1);
  }
  if (input.trace.empty()) {
    // A violation without a collected trace (e.g. WalkOptions::collect_trace
    // off) cannot be minimized.
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  }

  Shrinker shrink(spec, input.trace[0].state, input, options, &result);
  if (!shrink.Seed(LabelsOf(input.trace))) {
    // The input does not reproduce under guided replay — wrong spec for the
    // trace, or the budgets were exhausted before the seed replay finished.
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  }
  result.input_reproduced = true;

  // Alternate the cheap domain passes with ddmin until a fixed point: a
  // successful pair merge or side shrink can unlock further deletions.
  bool changed = true;
  for (int round = 0; round < 8 && changed && !shrink.OutOfBudget(); ++round) {
    const size_t before = shrink.cur().size();
    changed = false;
    if (options.domain_reductions) {
      changed |= shrink.DomainPasses();
    }
    shrink.DdMin();
    changed |= shrink.PairDelete();
    changed |= shrink.cur().size() < before;
  }

  result.trace = shrink.best().trace;
  result.events_after = result.trace.size() - 1;
  result.violation.invariant = shrink.best().invariant;
  result.violation.is_transition_invariant = shrink.best().is_transition_invariant;
  result.violation.trace = result.trace;
  result.violation.depth = result.events_after;
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("minimize.events_before").Add(result.events_before);
    options.metrics->GetCounter("minimize.events_after").Add(result.events_after);
  }
  return result;
}

Json MinimizeResult::ToJson(bool include_trace) const {
  JsonObject o;
  o["input_reproduced"] = Json(input_reproduced);
  o["events_before"] = Json(events_before);
  o["events_after"] = Json(events_after);
  o["shrink_ratio"] = Json(ShrinkRatio());
  o["replays"] = Json(replays);
  o["candidates"] = Json(candidates);
  o["accepted"] = Json(accepted);
  o["domain_removed"] = Json(domain_removed);
  o["ddmin_removed"] = Json(ddmin_removed);
  o["hit_replay_limit"] = Json(hit_replay_limit);
  o["hit_time_limit"] = Json(hit_time_limit);
  o["seconds"] = Json(seconds);
  o["violation"] = violation.ToJson(include_trace);
  return Json(std::move(o));
}

}  // namespace minimize
}  // namespace sandtable
