// Counterexample minimization: delta-debugging (ddmin) over the event list of
// a violating trace, plus domain-aware reductions for the failure vocabulary
// of the reusable network modules (drop/duplicate faults, partition/heal
// pairs, partition sides, timeout runs).
//
// The paper's workflow replays every specification-level counterexample at
// the implementation level to confirm the bug; short traces are what make
// that confirmation — and later fix validation — tractable. The minimizer
// takes the raw trace emitted by BFS or random walk and searches for the
// smallest event subsequence that still reproduces the violation, using
// guided replay (src/trace/spec_replay.h) as the validity oracle: a candidate
// is accepted only when its labels re-execute through the spec and fire the
// same invariant (or any invariant, in match-any mode). The exploration-time
// budget constraint is deliberately not enforced during replay, so a shrunk
// trace may cut through states the bounded checker never expanded — BFS
// traces are depth-minimal only within the budget, and this is where most of
// their shrink comes from.
#ifndef SANDTABLE_SRC_MINIMIZE_MINIMIZE_H_
#define SANDTABLE_SRC_MINIMIZE_MINIMIZE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/mc/bfs.h"
#include "src/obs/metrics.h"
#include "src/spec/spec.h"

namespace sandtable {
namespace minimize {

struct MinimizeOptions {
  // Accept any violation during replay, not just the input's invariant
  // (the CLI's --minimize-any). The reported violation is whatever fires.
  bool match_any = false;
  // Run the domain-aware reduction passes in addition to ddmin.
  bool domain_reductions = true;
  // Budget on oracle replays and wall-clock; the current best trace is
  // returned when either runs out (it is always a valid counterexample).
  uint64_t max_replays = std::numeric_limits<uint64_t>::max();
  double time_budget_s = std::numeric_limits<double>::infinity();
  // Record shrink statistics and guided-replay phase timings here
  // (src/obs/metrics.h). Borrowed, may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

struct MinimizeResult {
  // The input trace reproduced under the oracle before shrinking started.
  // When false the input is returned unchanged (wrong spec for the trace, or
  // a violation the oracle's invariant classes cannot see).
  bool input_reproduced = false;
  // Minimized counterexample (step 0 = initial state) and the violation its
  // replay fires; `violation.trace` aliases `trace`.
  std::vector<TraceStep> trace;
  Violation violation;

  // Shrink statistics.
  uint64_t events_before = 0;
  uint64_t events_after = 0;
  uint64_t replays = 0;           // oracle invocations
  uint64_t candidates = 0;        // candidate sequences proposed
  uint64_t accepted = 0;          // candidates that reproduced and were adopted
  uint64_t domain_removed = 0;    // events removed by domain-aware passes
  uint64_t ddmin_removed = 0;     // events removed by ddmin deletions
  bool hit_replay_limit = false;
  bool hit_time_limit = false;
  double seconds = 0;

  double ShrinkRatio() const {
    return events_before == 0
               ? 0.0
               : static_cast<double>(events_before - events_after) /
                     static_cast<double>(events_before);
  }

  // Canonical serialization (stats + violation; the trace rides on the
  // violation when `include_trace`).
  Json ToJson(bool include_trace = false) const;
};

// Shrink `input` (a violation whose trace step 0 holds the initial state)
// against `spec`. The result's trace is 1-minimal under single-event deletion
// when the budgets allow the search to finish, and minimizing an already
// minimized trace is a fixed point.
MinimizeResult MinimizeCounterexample(const Spec& spec, const Violation& input,
                                      const MinimizeOptions& options = {});

}  // namespace minimize
}  // namespace sandtable

#endif  // SANDTABLE_SRC_MINIMIZE_MINIMIZE_H_
