#include "src/net/specnet.h"

#include "src/util/check.h"

namespace sandtable {
namespace specnet {

namespace {

const char* kKindField = "kind";
const char* kChanField = "chan";
const char* kDelayedField = "delayed";
const char* kCutField = "cut";

Value MakeNet(const char* kind) {
  return Value::Record({{kKindField, Value::Str(kind)},
                        {kChanField, Value::EmptyFun()},
                        {kDelayedField, Value::EmptyFun()},
                        {kCutField, Value::EmptySet()}});
}

bool CrossesCut(const Value& cut, const Value& a, const Value& b) {
  if (cut.empty()) {
    return false;
  }
  return cut.Contains(a) != cut.Contains(b);
}

// Remove a channel entry entirely when it becomes empty, keeping the value
// canonical so fingerprints do not depend on historic traffic.
Value SetChannelIn(const Value& net, const char* field, const Value& key,
                   const Value& contents) {
  const Value& chan = net.field(field);
  if (contents.empty()) {
    return net.WithField(field, chan.FunRemove(key));
  }
  return net.WithField(field, chan.FunSet(key, contents));
}

Value SetChannel(const Value& net, const Value& key, const Value& contents) {
  return SetChannelIn(net, kChanField, key, contents);
}

}  // namespace

Value InitTcp() { return MakeNet("tcp"); }
Value InitUdp() { return MakeNet("udp"); }

bool IsTcp(const Value& net) { return net.field(kKindField).str_v() == "tcp"; }
bool IsUdp(const Value& net) { return net.field(kKindField).str_v() == "udp"; }

bool ConnectedPair(const Value& net, const Value& a, const Value& b) {
  return !CrossesCut(net.field(kCutField), a, b);
}

bool HasPartition(const Value& net) { return !net.field(kCutField).empty(); }

Value ChannelKey(const Value& src, const Value& dst) {
  return Value::Record({{"src", src}, {"dst", dst}});
}

Value Send(const Value& net, const Value& msg, const Value& crashed_set) {
  const Value& src = msg.field("src");
  const Value& dst = msg.field("dst");
  if (crashed_set.Contains(dst)) {
    return net;  // no listener: TCP write fails, UDP packet lost
  }
  if (IsTcp(net) && !ConnectedPair(net, src, dst)) {
    return net;  // connection broken by a partition
  }
  const Value key = ChannelKey(src, dst);
  const Value& chan = net.field(kChanField);
  if (IsTcp(net)) {
    Value queue = chan.FunHas(key) ? chan.Apply(key) : Value::EmptySeq();
    return SetChannel(net, key, queue.Append(msg));
  }
  Value bag = chan.FunHas(key) ? chan.Apply(key) : Value::EmptyFun();
  const int64_t count = bag.FunHas(msg) ? bag.Apply(msg).int_v() : 0;
  return SetChannel(net, key, bag.FunSet(msg, Value::Int(count + 1)));
}

std::vector<Delivery> Deliveries(const Value& net, const Value& crashed_set) {
  std::vector<Delivery> out;
  const Value& chan = net.field(kChanField);
  const bool tcp = IsTcp(net);
  if (tcp) {
    // Heads of delayed (old-connection) queues, deliverable once connectivity
    // is back. Delayed and live streams interleave arbitrarily; each stays
    // FIFO internally.
    for (const auto& [key, contents] : net.field(kDelayedField).fun_pairs()) {
      const Value& dst = key.field("dst");
      if (crashed_set.Contains(dst) || !ConnectedPair(net, key.field("src"), dst)) {
        continue;
      }
      Delivery d;
      d.msg = contents.Head();
      d.net_after = SetChannelIn(net, kDelayedField, key, contents.Tail());
      d.from_delayed = true;
      out.push_back(std::move(d));
    }
  }
  for (const auto& [key, contents] : chan.fun_pairs()) {
    const Value& dst = key.field("dst");
    if (crashed_set.Contains(dst)) {
      continue;  // receiver down; TCP queues are cleared on crash anyway
    }
    if (tcp) {
      if (!ConnectedPair(net, key.field("src"), dst)) {
        continue;
      }
      // FIFO: only the head is deliverable.
      Delivery d;
      d.msg = contents.Head();
      d.net_after = SetChannel(net, key, contents.Tail());
      out.push_back(std::move(d));
    } else {
      // UDP: any distinct message may be delivered next (reordering).
      for (const auto& [msg, count] : contents.fun_pairs()) {
        Delivery d;
        d.msg = msg;
        const int64_t c = count.int_v();
        Value bag = c <= 1 ? contents.FunRemove(msg) : contents.FunSet(msg, Value::Int(c - 1));
        d.net_after = SetChannel(net, key, bag);
        out.push_back(std::move(d));
      }
    }
  }
  return out;
}

Value Partition(const Value& net, const Value& side) {
  CHECK(IsTcp(net)) << "partition applies to the TCP failure model";
  Value out = net.WithField(kCutField, side);
  // Connections crossing the cut break: their in-flight data moves to the
  // old-connection (delayed) buffers and surfaces only after healing.
  const Value& chan = net.field(kChanField);
  std::vector<Value::Pair> kept;
  for (const auto& [key, queue] : chan.fun_pairs()) {
    if (!CrossesCut(side, key.field("src"), key.field("dst"))) {
      kept.emplace_back(key, queue);
      continue;
    }
    const Value& delayed = out.field(kDelayedField);
    Value merged = delayed.FunHas(key) ? delayed.Apply(key) : Value::EmptySeq();
    for (const Value& msg : queue.elems()) {
      merged = merged.Append(msg);
    }
    out = SetChannelIn(out, kDelayedField, key, merged);
  }
  return out.WithField(kChanField, Value::Fun(std::move(kept)));
}

Value Heal(const Value& net) { return net.WithField(kCutField, Value::EmptySet()); }

std::vector<FaultOption> DropOptions(const Value& net) {
  std::vector<FaultOption> out;
  if (!IsUdp(net)) {
    return out;
  }
  const Value& chan = net.field(kChanField);
  for (const auto& [key, bag] : chan.fun_pairs()) {
    for (const auto& [msg, count] : bag.fun_pairs()) {
      FaultOption f;
      f.msg = msg;
      const int64_t c = count.int_v();
      Value nbag = c <= 1 ? bag.FunRemove(msg) : bag.FunSet(msg, Value::Int(c - 1));
      f.net_after = SetChannel(net, key, nbag);
      out.push_back(std::move(f));
    }
  }
  return out;
}

std::vector<FaultOption> DupOptions(const Value& net, int64_t max_copies) {
  std::vector<FaultOption> out;
  if (!IsUdp(net)) {
    return out;
  }
  const Value& chan = net.field(kChanField);
  for (const auto& [key, bag] : chan.fun_pairs()) {
    for (const auto& [msg, count] : bag.fun_pairs()) {
      const int64_t c = count.int_v();
      if (c >= max_copies) {
        continue;
      }
      FaultOption f;
      f.msg = msg;
      f.net_after = SetChannel(net, key, bag.FunSet(msg, Value::Int(c + 1)));
      out.push_back(std::move(f));
    }
  }
  return out;
}

Value OnCrash(const Value& net, const Value& node) {
  Value out = net;
  for (const char* field : {kChanField, kDelayedField}) {
    std::vector<Value::Pair> kept;
    for (const auto& [key, contents] : out.field(field).fun_pairs()) {
      if (key.field("src") == node || key.field("dst") == node) {
        continue;
      }
      kept.emplace_back(key, contents);
    }
    out = out.WithField(field, Value::Fun(std::move(kept)));
  }
  return out;
}

Value OnRestart(const Value& net, const Value& node) { return net; }

std::vector<Value> AllMessages(const Value& net) {
  std::vector<Value> out;
  const bool tcp = IsTcp(net);
  for (const auto& [key, contents] : net.field(kChanField).fun_pairs()) {
    if (tcp) {
      for (const Value& msg : contents.elems()) {
        out.push_back(msg);
      }
    } else {
      for (const auto& [msg, count] : contents.fun_pairs()) {
        out.push_back(msg);
      }
    }
  }
  if (tcp) {
    for (const auto& [key, contents] : net.field(kDelayedField).fun_pairs()) {
      for (const Value& msg : contents.elems()) {
        out.push_back(msg);
      }
    }
  }
  return out;
}

int64_t MaxChannelLoad(const Value& net) {
  int64_t max_load = 0;
  const bool tcp = IsTcp(net);
  for (const auto& [key, contents] : net.field(kChanField).fun_pairs()) {
    int64_t load = 0;
    if (tcp) {
      load = static_cast<int64_t>(contents.size());
    } else {
      for (const auto& [msg, count] : contents.fun_pairs()) {
        load += count.int_v();
      }
    }
    max_load = std::max(max_load, load);
  }
  if (tcp) {
    for (const auto& [key, contents] : net.field(kDelayedField).fun_pairs()) {
      max_load = std::max(max_load, static_cast<int64_t>(contents.size()));
    }
  }
  return max_load;
}

int64_t TotalInFlight(const Value& net) {
  int64_t total = 0;
  const bool tcp = IsTcp(net);
  for (const auto& [key, contents] : net.field(kChanField).fun_pairs()) {
    if (tcp) {
      total += static_cast<int64_t>(contents.size());
    } else {
      for (const auto& [msg, count] : contents.fun_pairs()) {
        total += count.int_v();
      }
    }
  }
  if (tcp) {
    for (const auto& [key, contents] : net.field(kDelayedField).fun_pairs()) {
      total += static_cast<int64_t>(contents.size());
    }
  }
  return total;
}

}  // namespace specnet
}  // namespace sandtable
