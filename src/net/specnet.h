// Reusable specification-level network modules (§4.2: "We have formally
// specified reusable network modules for both TCP and UDP semantics").
//
// The network is a Value record stored in the spec state:
//
//   TCP:  [kind |-> "tcp", chan |-> (key :> <<m1, ...>>),
//          delayed |-> (key :> <<m0, ...>>), cut |-> {..}]
//   UDP:  [kind |-> "udp", chan |-> (key :> (m1 :> count1 @@ ...)),
//          delayed |-> <<>>, cut |-> {}]
//
// where key = [src |-> nA, dst |-> nB]. TCP channels are FIFO queues with no
// loss, duplication or reordering; the only failure is a network partition
// (`cut` holds one side). A partition breaks crossing connections: writes
// fail until the cut heals. Traffic already in flight on a broken connection
// is not lost, though — it sits in the kernel of the old connection and can
// surface after the peers reconnect, interleaved with traffic of the new
// connection (each stream stays FIFO internally). The `delayed` map models
// exactly that: crossing queues move there when a partition starts and their
// heads become deliverable again once connectivity returns. This is the
// semantics behind PySyncObj#4's "delayed AER1" (Figure 6). UDP channels are
// multisets supporting out-of-order delivery, drop and duplication.
//
// Messages are records that must carry `src` and `dst` fields (model values).
#ifndef SANDTABLE_SRC_NET_SPECNET_H_
#define SANDTABLE_SRC_NET_SPECNET_H_

#include <vector>

#include "src/value/value.h"

namespace sandtable {
namespace specnet {

// Fresh empty networks.
Value InitTcp();
Value InitUdp();

bool IsTcp(const Value& net);
bool IsUdp(const Value& net);

// True when a and b can currently communicate (no cut crossing them).
bool ConnectedPair(const Value& net, const Value& a, const Value& b);
bool HasPartition(const Value& net);

// Send `msg` (a record with src/dst fields). TCP: enqueued iff the connection
// is up and the destination is not crashed, silently dropped otherwise (a
// broken connection loses writes). UDP: added to the channel bag unless the
// destination is crashed (no listener).
Value Send(const Value& net, const Value& msg, const Value& crashed_set);

// One deliverable message together with the network state after removing it.
struct Delivery {
  Value msg;
  Value net_after;
  // TCP: the message came from the old-connection (delayed) buffer. Recorded
  // in trace parameters so replay drains the same buffer when both stream
  // heads carry identical bytes.
  bool from_delayed = false;
};

// Enumerate every message delivery currently allowed by the semantics:
// TCP — the head of each live queue; UDP — any distinct message in any bag
// (out-of-order delivery is expressed by this choice).
std::vector<Delivery> Deliveries(const Value& net, const Value& crashed_set);

// TCP partition: install cut `side` (a set of nodes); queues crossing the cut
// move to the delayed map (the broken connection's in-flight data). Heal
// removes the cut; delayed traffic becomes deliverable alongside new traffic.
Value Partition(const Value& net, const Value& side);
Value Heal(const Value& net);

// UDP fault options: dropping one copy of a message, or duplicating one
// message (bounded by `max_copies` per channel entry).
struct FaultOption {
  Value msg;
  Value net_after;
};
std::vector<FaultOption> DropOptions(const Value& net);
std::vector<FaultOption> DupOptions(const Value& net, int64_t max_copies);

// Node lifecycle hooks: a crash clears all channels to and from the node (TCP
// connections break; UDP packets to a dead socket are lost). Restart is a
// no-op on the network (connections re-establish lazily).
Value OnCrash(const Value& net, const Value& node);
Value OnRestart(const Value& net, const Value& node);

// Metrics for budget constraints: the largest single channel load and the
// total number of in-flight messages (counting duplicates).
int64_t MaxChannelLoad(const Value& net);
int64_t TotalInFlight(const Value& net);

// The channel key record for (src, dst).
Value ChannelKey(const Value& src, const Value& dst);

// Every in-flight message (ignoring duplicate counts), for invariants that
// inspect the wire, e.g. WRaft's non-empty-retry property.
std::vector<Value> AllMessages(const Value& net);

}  // namespace specnet
}  // namespace sandtable

#endif  // SANDTABLE_SRC_NET_SPECNET_H_
