#include "src/obs/analytics.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace sandtable {
namespace obs {

namespace {

// Shared serialization field names, so ToJson/FromJson cannot drift.
constexpr char kActions[] = "actions";
constexpr char kInvariants[] = "invariants";
constexpr char kTransitionInvariants[] = "transition_invariants";
constexpr char kDepthHistogram[] = "depth_histogram";

Json InvariantsToJson(const std::vector<std::string>& names,
                      const std::vector<InvariantStats>& stats) {
  JsonArray arr;
  for (size_t i = 0; i < names.size(); ++i) {
    JsonObject o;
    o["name"] = Json(names[i]);
    o["checks"] = Json(stats[i].checks);
    o["ns"] = Json(stats[i].ns);
    arr.emplace_back(Json(std::move(o)));
  }
  return Json(std::move(arr));
}

bool InvariantsFromJson(const Json& arr, std::vector<std::string>* names,
                        std::vector<InvariantStats>* stats) {
  if (!arr.is_array()) {
    return false;
  }
  for (const Json& e : arr.as_array()) {
    if (!e.is_object() || !e["name"].is_string() || !e["checks"].is_int() ||
        !e["ns"].is_int()) {
      return false;
    }
    names->push_back(e["name"].as_string());
    InvariantStats s;
    s.checks = static_cast<uint64_t>(e["checks"].as_int());
    s.ns = static_cast<uint64_t>(e["ns"].as_int());
    stats->push_back(s);
  }
  return true;
}

}  // namespace

void ExplorationProfile::Init(std::vector<ActionInfo> actions,
                              std::vector<std::string> invariants,
                              std::vector<std::string> transition_invariants) {
  *this = ExplorationProfile();
  actions_ = std::move(actions);
  invariant_names_ = std::move(invariants);
  transition_invariant_names_ = std::move(transition_invariants);
  stats_.resize(actions_.size());
  branches_.resize(actions_.size());
  drained_.resize(actions_.size(), 0);
  invariants_.resize(invariant_names_.size());
  transition_invariants_.resize(transition_invariant_names_.size());
  initialized_ = true;
}

void ExplorationProfile::RecordLevel(uint64_t depth, uint64_t width) {
  if (wave_widths_.size() <= depth) {
    wave_widths_.resize(depth + 1, 0);
  }
  wave_widths_[depth] += width;
}

void ExplorationProfile::MergeCounts(const ExplorationProfile& other) {
  CHECK(initialized_ && other.initialized_)
      << "MergeCounts on uninitialized profile";
  CHECK(actions_.size() == other.actions_.size() &&
        invariant_names_.size() == other.invariant_names_.size() &&
        transition_invariant_names_.size() ==
            other.transition_invariant_names_.size())
      << "MergeCounts across profiles from different specs";
  for (size_t i = 0; i < actions_.size(); ++i) {
    CHECK(actions_[i].name == other.actions_[i].name)
        << "MergeCounts action mismatch at " << i;
    stats_[i].enabled += other.stats_[i].enabled;
    stats_[i].fired += other.stats_[i].fired;
    stats_[i].fanout_max = std::max(stats_[i].fanout_max, other.stats_[i].fanout_max);
    stats_[i].duplicates += other.stats_[i].duplicates;
    stats_[i].expand_ns += other.stats_[i].expand_ns;
    for (const BranchHits& b : other.branches_[i]) {
      bool found = false;
      for (BranchHits& mine : branches_[i]) {
        if (mine.id == b.id) {
          mine.hits += b.hits;
          found = true;
          break;
        }
      }
      if (!found) {
        branches_[i].push_back(b);
      }
    }
  }
  for (size_t i = 0; i < invariants_.size(); ++i) {
    invariants_[i].checks += other.invariants_[i].checks;
    invariants_[i].ns += other.invariants_[i].ns;
  }
  for (size_t i = 0; i < transition_invariants_.size(); ++i) {
    transition_invariants_[i].checks += other.transition_invariants_[i].checks;
    transition_invariants_[i].ns += other.transition_invariants_[i].ns;
  }
  for (size_t d = 0; d < other.wave_widths_.size(); ++d) {
    RecordLevel(d, other.wave_widths_[d]);
  }
  states_expanded_ += other.states_expanded_;
  commuting_delivery_pairs_ += other.commuting_delivery_pairs_;
  delivery_pairs_ += other.delivery_pairs_;
  distinct_states_ = std::max(distinct_states_, other.distinct_states_);
}

void ExplorationProfile::ResetCounts() {
  for (ActionStats& s : stats_) {
    s = ActionStats{};
  }
  for (std::vector<BranchHits>& bs : branches_) {
    for (BranchHits& b : bs) {
      b.hits = 0;
    }
  }
  for (InvariantStats& s : invariants_) {
    s = InvariantStats{};
  }
  for (InvariantStats& s : transition_invariants_) {
    s = InvariantStats{};
  }
  wave_widths_.clear();
  states_expanded_ = 0;
  distinct_states_ = 0;
  commuting_delivery_pairs_ = 0;
  delivery_pairs_ = 0;
}

void ExplorationProfile::DrainNewBranches(std::vector<std::string>* out) {
  for (size_t i = 0; i < branches_.size(); ++i) {
    for (size_t b = drained_[i]; b < branches_[i].size(); ++b) {
      out->push_back(actions_[i].name + "/" + branches_[i][b].id);
    }
    drained_[i] = branches_[i].size();
  }
}

uint64_t ExplorationProfile::TotalFired() const {
  uint64_t n = 0;
  for (const ActionStats& s : stats_) {
    n += s.fired;
  }
  return n;
}

uint64_t ExplorationProfile::TotalDuplicates() const {
  uint64_t n = 0;
  for (const ActionStats& s : stats_) {
    n += s.duplicates;
  }
  return n;
}

double ExplorationProfile::CollisionProbability(uint64_t n) {
  // 1 - exp(-n^2 / 2^65); expm1 keeps precision for the tiny probabilities
  // that matter in practice.
  const double x = static_cast<double>(n);
  return -std::expm1(-(x * x) / std::ldexp(1.0, 65));
}

Json ExplorationProfile::ToJson() const {
  JsonArray actions;
  std::vector<std::string> zero_hit_actions;
  std::vector<std::string> zero_hit_branches;
  for (size_t i = 0; i < actions_.size(); ++i) {
    const ActionStats& s = stats_[i];
    JsonObject a;
    a["action"] = Json(actions_[i].name);
    a["kind"] = Json(actions_[i].kind);
    a["enabled"] = Json(s.enabled);
    a["fired"] = Json(s.fired);
    a["fanout_max"] = Json(s.fanout_max);
    a["fanout_avg"] =
        Json(s.enabled == 0 ? 0.0
                            : static_cast<double>(s.fired) / static_cast<double>(s.enabled));
    a["duplicates"] = Json(s.duplicates);
    a["duplicate_rate"] =
        Json(s.fired == 0 ? 0.0
                          : static_cast<double>(s.duplicates) / static_cast<double>(s.fired));
    a["expand_ns"] = Json(s.expand_ns);
    JsonArray branches;
    for (const BranchHits& b : branches_[i]) {
      JsonObject bo;
      bo["id"] = Json(b.id);
      bo["hits"] = Json(b.hits);
      branches.emplace_back(Json(std::move(bo)));
    }
    a["branches"] = Json(std::move(branches));
    if (!actions_[i].declared_branches.empty()) {
      JsonArray declared;
      for (const std::string& d : actions_[i].declared_branches) {
        declared.emplace_back(d);
        bool hit = false;
        for (const BranchHits& b : branches_[i]) {
          if (b.id == d && b.hits > 0) {
            hit = true;
            break;
          }
        }
        if (!hit) {
          zero_hit_branches.push_back(actions_[i].name + "/" + d);
        }
      }
      a["declared_branches"] = Json(std::move(declared));
    }
    actions.emplace_back(Json(std::move(a)));
    if (s.fired == 0) {
      zero_hit_actions.push_back(actions_[i].name);
    }
  }

  JsonArray depth_hist;
  for (uint64_t w : wave_widths_) {
    depth_hist.emplace_back(w);
  }

  const uint64_t fired = TotalFired();
  const uint64_t dups = TotalDuplicates();

  JsonObject o;
  o["schema_version"] = Json(static_cast<int64_t>(1));
  o[kActions] = Json(std::move(actions));
  o[kInvariants] = InvariantsToJson(invariant_names_, invariants_);
  o[kTransitionInvariants] =
      InvariantsToJson(transition_invariant_names_, transition_invariants_);
  o[kDepthHistogram] = Json(std::move(depth_hist));
  o["states_expanded"] = Json(states_expanded_);
  o["distinct_states"] = Json(distinct_states_);
  o["successors"] = Json(fired);
  o["duplicates"] = Json(dups);
  o["duplicate_rate"] =
      Json(fired == 0 ? 0.0 : static_cast<double>(dups) / static_cast<double>(fired));
  // Revisit rate: fraction of distinct states reached by more than one
  // transition. Every duplicate successor is an extra in-edge on an already
  // known state, so `duplicates / distinct` bounds the average extra
  // in-degree; states with in-degree > 1 are at most min(duplicates, distinct).
  o["revisit_rate"] =
      Json(distinct_states_ == 0
               ? 0.0
               : static_cast<double>(std::min(dups, distinct_states_)) /
                     static_cast<double>(distinct_states_));
  o["collision_probability"] = Json(CollisionProbability(distinct_states_));
  o["delivery_pairs"] = Json(delivery_pairs_);
  o["commuting_delivery_pairs"] = Json(commuting_delivery_pairs_);
  JsonArray zha;
  for (std::string& s : zero_hit_actions) {
    zha.emplace_back(std::move(s));
  }
  o["zero_hit_actions"] = Json(std::move(zha));
  JsonArray zhb;
  for (std::string& s : zero_hit_branches) {
    zhb.emplace_back(std::move(s));
  }
  o["zero_hit_branches"] = Json(std::move(zhb));
  return Json(std::move(o));
}

Result<ExplorationProfile> ExplorationProfile::FromJson(const Json& j) {
  using R = Result<ExplorationProfile>;
  if (!j.is_object() || !j[kActions].is_array() ||
      !j[kDepthHistogram].is_array() || !j["states_expanded"].is_int() ||
      !j["distinct_states"].is_int()) {
    return R::Error("malformed exploration profile");
  }
  ExplorationProfile p;
  for (const Json& a : j[kActions].as_array()) {
    if (!a.is_object() || !a["action"].is_string() || !a["enabled"].is_int() ||
        !a["fired"].is_int() || !a["fanout_max"].is_int() ||
        !a["duplicates"].is_int() || !a["expand_ns"].is_int() ||
        !a["branches"].is_array()) {
      return R::Error("malformed exploration profile action");
    }
    ActionInfo info;
    info.name = a["action"].as_string();
    info.kind = a["kind"].is_string() ? a["kind"].as_string() : "";
    if (a["declared_branches"].is_array()) {
      for (const Json& d : a["declared_branches"].as_array()) {
        if (!d.is_string()) {
          return R::Error("malformed exploration profile declared branch");
        }
        info.declared_branches.push_back(d.as_string());
      }
    }
    ActionStats s;
    s.enabled = static_cast<uint64_t>(a["enabled"].as_int());
    s.fired = static_cast<uint64_t>(a["fired"].as_int());
    s.fanout_max = static_cast<uint64_t>(a["fanout_max"].as_int());
    s.duplicates = static_cast<uint64_t>(a["duplicates"].as_int());
    s.expand_ns = static_cast<uint64_t>(a["expand_ns"].as_int());
    std::vector<BranchHits> branches;
    for (const Json& b : a["branches"].as_array()) {
      if (!b.is_object() || !b["id"].is_string() || !b["hits"].is_int()) {
        return R::Error("malformed exploration profile branch");
      }
      branches.push_back(
          BranchHits{b["id"].as_string(), static_cast<uint64_t>(b["hits"].as_int())});
    }
    p.actions_.push_back(std::move(info));
    p.stats_.push_back(s);
    p.branches_.push_back(std::move(branches));
  }
  if (!InvariantsFromJson(j[kInvariants], &p.invariant_names_, &p.invariants_) ||
      !InvariantsFromJson(j[kTransitionInvariants], &p.transition_invariant_names_,
                          &p.transition_invariants_)) {
    return R::Error("malformed exploration profile invariants");
  }
  for (const Json& w : j[kDepthHistogram].as_array()) {
    if (!w.is_int()) {
      return R::Error("malformed exploration profile depth histogram");
    }
    p.wave_widths_.push_back(static_cast<uint64_t>(w.as_int()));
  }
  p.drained_.resize(p.actions_.size(), 0);
  p.states_expanded_ = static_cast<uint64_t>(j["states_expanded"].as_int());
  p.distinct_states_ = static_cast<uint64_t>(j["distinct_states"].as_int());
  if (j["delivery_pairs"].is_int()) {
    p.delivery_pairs_ = static_cast<uint64_t>(j["delivery_pairs"].as_int());
  }
  if (j["commuting_delivery_pairs"].is_int()) {
    p.commuting_delivery_pairs_ =
        static_cast<uint64_t>(j["commuting_delivery_pairs"].as_int());
  }
  p.initialized_ = true;
  return p;
}

Json ExplorationProfile::SummaryJson(size_t top_n) const {
  std::vector<size_t> order(actions_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (stats_[a].expand_ns != stats_[b].expand_ns) {
      return stats_[a].expand_ns > stats_[b].expand_ns;
    }
    return actions_[a].name < actions_[b].name;
  });
  JsonArray top;
  for (size_t i = 0; i < order.size() && i < top_n; ++i) {
    const size_t idx = order[i];
    JsonObject a;
    a["action"] = Json(actions_[idx].name);
    a["fired"] = Json(stats_[idx].fired);
    a["expand_ns"] = Json(stats_[idx].expand_ns);
    top.emplace_back(Json(std::move(a)));
  }
  const uint64_t fired = TotalFired();
  const uint64_t dups = TotalDuplicates();
  JsonObject o;
  o["top_actions"] = Json(std::move(top));
  o["duplicate_rate"] =
      Json(fired == 0 ? 0.0 : static_cast<double>(dups) / static_cast<double>(fired));
  o["collision_probability"] = Json(CollisionProbability(distinct_states_));
  return Json(std::move(o));
}

void ExplorationProfile::FlushToMetrics(MetricsRegistry* registry) const {
  if (registry == nullptr) {
    return;
  }
  for (size_t i = 0; i < actions_.size(); ++i) {
    const std::string& name = actions_[i].name;
    registry->GetCounter("analytics.action.fired." + name).Add(stats_[i].fired);
    registry->GetCounter("analytics.action.duplicates." + name)
        .Add(stats_[i].duplicates);
    registry->GetCounter("analytics.action.expand_ns." + name)
        .Add(stats_[i].expand_ns);
  }
  for (size_t i = 0; i < invariant_names_.size(); ++i) {
    registry->GetCounter("analytics.invariant.ns." + invariant_names_[i])
        .Add(invariants_[i].ns);
  }
  for (size_t i = 0; i < transition_invariant_names_.size(); ++i) {
    registry
        ->GetCounter("analytics.transition_invariant.ns." +
                     transition_invariant_names_[i])
        .Add(transition_invariants_[i].ns);
  }
}

}  // namespace obs
}  // namespace sandtable
