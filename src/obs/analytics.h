// State-space analytics: a per-action exploration profiler that explains
// where the states (and the time) go.
//
// An ExplorationProfile accumulates, per spec action: enabled/fired counts,
// successor fanout (sum + max), duplicate-successor counts against the
// fingerprint set, cumulative expansion nanoseconds, and per-branch hit
// counts; plus per-invariant check cost, a depth/wave-width histogram, the
// revisit rate, an estimated fingerprint-collision probability (TLC's
// 1 - exp(-n²/2·2⁶⁴) formula), and a commuting-delivery-pair counter that
// quantifies the partial-order-reduction opportunity.
//
// Collection follows the CoverageStats pattern: each parallel worker owns a
// private profile and the coordinator merges at the BFS level barrier (or at
// walk end), so the hot path never synchronizes. The profile is engine-owned
// state, not a spec-layer concept — engines Init() it from the spec's action/
// invariant names and record through dense indices; a null profile pointer
// costs nothing.
//
// Branch hits are interned per action into an append-only (id, hits) table
// with a linear string_view scan, so a repeat hit is allocation-free. This
// replaces the per-hit `action + "/" + id` string construction and
// std::set insert the coverage path used to pay, and DrainNewBranches()
// syncs newly seen names into CoverageStats::branches once per level.
#ifndef SANDTABLE_SRC_OBS_ANALYTICS_H_
#define SANDTABLE_SRC_OBS_ANALYTICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/json.h"
#include "src/util/result.h"

namespace sandtable {
namespace obs {

class MetricsRegistry;

// Static identity of one action, captured at Init. `kind` is the
// EventKindName string; `declared_branches` lists the branch ids the spec
// author expects the action to exercise (zero-hit declared branches become
// coverage warnings).
struct ActionInfo {
  std::string name;
  std::string kind;
  std::vector<std::string> declared_branches;
};

// Dense per-action counters (hot path: plain adds, no atomics).
struct ActionStats {
  uint64_t enabled = 0;     // expansions that emitted >= 1 successor
  uint64_t fired = 0;       // successors emitted (sum of fanout)
  uint64_t fanout_max = 0;  // largest fanout from a single expansion
  uint64_t duplicates = 0;  // successors already in the fingerprint set
  uint64_t expand_ns = 0;   // cumulative wall time inside expand()
};

struct InvariantStats {
  uint64_t checks = 0;
  uint64_t ns = 0;
};

class ExplorationProfile {
 public:
  // Fix the action/invariant identity. Counts start at zero. Calling Init on
  // an initialized profile resets everything.
  void Init(std::vector<ActionInfo> actions, std::vector<std::string> invariants,
            std::vector<std::string> transition_invariants);
  bool initialized() const { return initialized_; }
  size_t num_actions() const { return actions_.size(); }

  // ---- Hot-path recording (one profile per thread; no synchronization) ----

  // One ExpandAll evaluation of action `idx`: `emitted` successors in `ns`.
  void RecordExpand(uint32_t idx, uint64_t emitted, uint64_t ns) {
    ActionStats& a = stats_[idx];
    if (emitted > 0) {
      ++a.enabled;
      a.fired += emitted;
      if (emitted > a.fanout_max) {
        a.fanout_max = emitted;
      }
    }
    a.expand_ns += ns;
  }
  // One fully expanded state (one ExpandAll call).
  void RecordState() { ++states_expanded_; }
  // A successor of action `idx` hit the fingerprint set.
  void RecordDuplicate(uint32_t idx) { ++stats_[idx].duplicates; }
  // Branch `id` of action `idx` was exercised. Interned: repeat hits are a
  // linear string_view scan over the action's (typically tiny) branch table.
  void RecordBranch(uint32_t idx, std::string_view id) {
    for (BranchHits& b : branches_[idx]) {
      if (b.id == id) {
        ++b.hits;
        return;
      }
    }
    branches_[idx].push_back(BranchHits{std::string(id), 1});
  }
  void RecordInvariant(uint32_t idx, uint64_t ns) {
    ++invariants_[idx].checks;
    invariants_[idx].ns += ns;
  }
  void RecordTransitionInvariant(uint32_t idx, uint64_t ns) {
    ++transition_invariants_[idx].checks;
    transition_invariants_[idx].ns += ns;
  }
  // Delivery pairs enabled at one state: `commuting` of `total` message pairs
  // target different destinations (the POR opportunity).
  void RecordDeliveryPairs(uint64_t commuting, uint64_t total) {
    commuting_delivery_pairs_ += commuting;
    delivery_pairs_ += total;
  }

  // ---- Coordinator-side (level barrier / walk end) ----

  // BFS wave width at `depth` (+= semantics: resumed runs and walk depths
  // accumulate). Grows the histogram as needed.
  void RecordLevel(uint64_t depth, uint64_t width);
  // Denominator of the collision-probability estimate; set before ToJson.
  void SetDistinctStates(uint64_t n) { distinct_states_ = n; }
  uint64_t distinct_states() const { return distinct_states_; }

  // Add `other`'s counts into this profile. Both must be initialized from the
  // same spec (identical action/invariant name vectors, checked).
  void MergeCounts(const ExplorationProfile& other);
  // Zero all counts, keeping the action identity and the interned branch-name
  // slots so a worker profile stays allocation-free across levels.
  void ResetCounts();
  // Append "Action/branch" names interned since the last drain (per-action
  // high-water mark). O(new names) — the once-per-level sync into
  // CoverageStats::branches.
  void DrainNewBranches(std::vector<std::string>* out);

  // ---- Output ----

  // Lossless serialization plus derived fields (fanout_avg, duplicate_rate,
  // revisit_rate, collision_probability, zero_hit_actions/branches).
  Json ToJson() const;
  static Result<ExplorationProfile> FromJson(const Json& j);
  // Compact top-N-actions-by-expand-time summary for progress lines and
  // serve frames.
  Json SummaryJson(size_t top_n) const;
  // Export per-action counters into a metrics registry (Prometheus surface):
  // analytics.action.{fired,duplicates,expand_ns}.<name> and
  // analytics.invariant.ns.<name>.
  void FlushToMetrics(MetricsRegistry* registry) const;

  // TLC's estimate that at least two of `n` distinct states collided in a
  // 64-bit fingerprint space: 1 - exp(-n²/2·2⁶⁴).
  static double CollisionProbability(uint64_t n);

  const std::vector<ActionInfo>& actions() const { return actions_; }
  const ActionStats& action_stats(size_t i) const { return stats_[i]; }
  uint64_t states_expanded() const { return states_expanded_; }
  uint64_t TotalFired() const;
  uint64_t TotalDuplicates() const;
  const std::vector<uint64_t>& wave_widths() const { return wave_widths_; }

 private:
  struct BranchHits {
    std::string id;
    uint64_t hits = 0;
  };

  bool initialized_ = false;
  std::vector<ActionInfo> actions_;
  std::vector<ActionStats> stats_;
  std::vector<std::vector<BranchHits>> branches_;
  std::vector<size_t> drained_;  // per-action branch high-water mark
  std::vector<std::string> invariant_names_;
  std::vector<std::string> transition_invariant_names_;
  std::vector<InvariantStats> invariants_;
  std::vector<InvariantStats> transition_invariants_;
  std::vector<uint64_t> wave_widths_;  // index = depth, value = summed width
  uint64_t states_expanded_ = 0;
  uint64_t distinct_states_ = 0;
  uint64_t commuting_delivery_pairs_ = 0;
  uint64_t delivery_pairs_ = 0;
};

}  // namespace obs
}  // namespace sandtable

#endif  // SANDTABLE_SRC_OBS_ANALYTICS_H_
