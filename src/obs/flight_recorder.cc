#include "src/obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/run_id.h"

namespace sandtable {
namespace obs {

namespace internal {
std::atomic<FlightRecorder*> g_flight_recorder{nullptr};
}  // namespace internal

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGQUIT};
constexpr int kNumFatalSignals = 4;
struct sigaction g_prev_actions[kNumFatalSignals];

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// --- async-signal-safe output helpers ---------------------------------------

void WriteRaw(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      return;  // nothing sensible to do in a signal handler
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void WriteStr(int fd, const char* s) { WriteRaw(fd, s, std::strlen(s)); }

void WriteU64(int fd, uint64_t v) {
  char buf[24];
  int i = 24;
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  WriteRaw(fd, buf + i, static_cast<size_t>(24 - i));
}

void WriteI64(int fd, int64_t v) {
  if (v < 0) {
    WriteStr(fd, "-");
    WriteU64(fd, static_cast<uint64_t>(-(v + 1)) + 1);
  } else {
    WriteU64(fd, static_cast<uint64_t>(v));
  }
}

// sargs can carry client-supplied bytes (tenant ids); neutralize anything
// that would break the JSON rather than escaping (no allocation allowed).
void WriteSanitized(int fd, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    const char out =
        (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) ? '_'
                                                                        : c;
    WriteRaw(fd, &out, 1);
  }
}

// An event read from the ring mid-write can be garbage; keep only records
// that look like something EmitEventSlow produced.
bool LooksValid(const TraceEvent& e) {
  return e.name != nullptr &&
         static_cast<uint8_t>(e.kind) <= static_cast<uint8_t>(
                                             TraceEventKind::kCounter);
}

const char* KindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kComplete:
      return "span";
    case TraceEventKind::kInstant:
      return "instant";
    case TraceEventKind::kCounter:
      return "counter";
  }
  return "?";
}

void FlightSignalHandler(int sig) {
  FlightRecorder* r = internal::g_flight_recorder.load(std::memory_order_relaxed);
  if (r != nullptr) {
    r->DumpText(STDERR_FILENO, sig);
    const int fd =
        ::open(r->dump_path(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      r->DumpJson(fd, sig);
      ::close(fd);
    }
  }
  // Chain to the default disposition so the exit status still reports the
  // signal (core dumps, waitpid WTERMSIG, etc).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

Json EventJson(const TraceEvent& e) {
  JsonObject o;
  o["name"] = e.name;
  o["kind"] = KindName(e.kind);
  o["ts_ns"] = e.ts_ns;
  if (e.kind == TraceEventKind::kComplete) {
    o["dur_ns"] = e.dur_ns;
  }
  o["tid"] = static_cast<int64_t>(e.tid);
  JsonObject args;
  if (e.kind == TraceEventKind::kCounter) {
    args["value"] = e.arg1;
  } else {
    if (e.arg1_name != nullptr) {
      args[e.arg1_name] = e.arg1;
    }
    if (e.arg2_name != nullptr) {
      args[e.arg2_name] = e.arg2;
    }
    if (e.sarg_name != nullptr) {
      args[e.sarg_name] = std::string(e.sarg);
    }
  }
  if (!args.empty()) {
    o["args"] = std::move(args);
  }
  return Json(std::move(o));
}

}  // namespace

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  const size_t cap = RoundUpPow2(options_.capacity == 0 ? 1 : options_.capacity);
  ring_.resize(cap);
  mask_ = cap - 1;
}

FlightRecorder::~FlightRecorder() { Uninstall(); }

void FlightRecorder::Install() {
  dump_path_ = options_.dump_path;
  if (dump_path_.empty()) {
    const char* env = std::getenv("SANDTABLE_FLIGHT_DUMP");
    if (env != nullptr && env[0] != '\0') {
      dump_path_ = env;
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "sandtable-flight-%d.json",
                    static_cast<int>(::getpid()));
      dump_path_ = buf;
    }
  }
  // Snapshot identity into fixed buffers: the handler cannot call RunId().
  std::snprintf(run_id_, sizeof(run_id_), "%s", RunId().c_str());
  std::snprintf(version_, sizeof(version_), "%s", BuildVersion());

  internal::g_flight_recorder.store(this, std::memory_order_release);
  internal::UpdateEmitActive();
  if (options_.install_signal_handlers && !handlers_installed_) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &FlightSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    for (int i = 0; i < kNumFatalSignals; ++i) {
      ::sigaction(kFatalSignals[i], &sa, &g_prev_actions[i]);
    }
    handlers_installed_ = true;
  }
}

void FlightRecorder::Uninstall() {
  FlightRecorder* expected = this;
  internal::g_flight_recorder.compare_exchange_strong(
      expected, nullptr, std::memory_order_acq_rel);
  internal::UpdateEmitActive();
  if (handlers_installed_) {
    for (int i = 0; i < kNumFatalSignals; ++i) {
      ::sigaction(kFatalSignals[i], &g_prev_actions[i], nullptr);
    }
    handlers_installed_ = false;
  }
}

FlightRecorder* FlightRecorder::Installed() {
  return internal::g_flight_recorder.load(std::memory_order_acquire);
}

void FlightRecorder::Record(const TraceEvent& e) {
  const uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
  ring_[slot & mask_] = e;
}

std::vector<TraceEvent> FlightRecorder::Snapshot(size_t last_n) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t count = head < ring_.size() ? head : ring_.size();
  if (last_n != 0 && count > last_n) {
    count = last_n;
  }
  std::vector<TraceEvent> out;
  out.reserve(count);
  for (uint64_t i = head - count; i < head; ++i) {
    const TraceEvent& e = ring_[i & mask_];
    if (LooksValid(e)) {
      out.push_back(e);
    }
  }
  return out;
}

Json FlightRecorder::RecentJson(size_t last_n) const {
  JsonObject o;
  o["type"] = "flight_recorder";
  o["run_id"] = RunId();
  o["recorded"] = recorded();
  JsonArray events;
  for (const TraceEvent& e : Snapshot(last_n)) {
    events.push_back(EventJson(e));
  }
  o["events"] = std::move(events);
  return Json(std::move(o));
}

void FlightRecorder::DumpJson(int fd, int sig) const {
  WriteStr(fd, "{\"type\":\"flight_recorder\",\"run_id\":\"");
  WriteSanitized(fd, run_id_);
  WriteStr(fd, "\",\"version\":\"");
  WriteSanitized(fd, version_);
  WriteStr(fd, "\",\"signal\":");
  WriteI64(fd, sig);
  WriteStr(fd, ",\"recorded\":");
  WriteU64(fd, head_.load(std::memory_order_relaxed));
  WriteStr(fd, ",\"events\":[");
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t count = head < ring_.size() ? head : ring_.size();
  bool first = true;
  for (uint64_t i = head - count; i < head; ++i) {
    const TraceEvent& e = ring_[i & mask_];
    if (!LooksValid(e)) {
      continue;
    }
    if (!first) {
      WriteStr(fd, ",");
    }
    first = false;
    WriteStr(fd, "{\"name\":\"");
    WriteSanitized(fd, e.name);
    WriteStr(fd, "\",\"kind\":\"");
    WriteStr(fd, KindName(e.kind));
    WriteStr(fd, "\",\"ts_ns\":");
    WriteU64(fd, e.ts_ns);
    if (e.kind == TraceEventKind::kComplete) {
      WriteStr(fd, ",\"dur_ns\":");
      WriteU64(fd, e.dur_ns);
    }
    WriteStr(fd, ",\"tid\":");
    WriteU64(fd, e.tid);
    if (e.kind == TraceEventKind::kCounter) {
      WriteStr(fd, ",\"value\":");
      WriteI64(fd, e.arg1);
    } else {
      if (e.arg1_name != nullptr) {
        WriteStr(fd, ",\"");
        WriteSanitized(fd, e.arg1_name);
        WriteStr(fd, "\":");
        WriteI64(fd, e.arg1);
      }
      if (e.arg2_name != nullptr) {
        WriteStr(fd, ",\"");
        WriteSanitized(fd, e.arg2_name);
        WriteStr(fd, "\":");
        WriteI64(fd, e.arg2);
      }
      if (e.sarg_name != nullptr) {
        WriteStr(fd, ",\"");
        WriteSanitized(fd, e.sarg_name);
        WriteStr(fd, "\":\"");
        WriteSanitized(fd, e.sarg);
        WriteStr(fd, "\"");
      }
    }
    WriteStr(fd, "}");
  }
  WriteStr(fd, "]}\n");
}

void FlightRecorder::DumpText(int fd, int sig) const {
  WriteStr(fd, "\n=== sandtable flight recorder (run ");
  WriteSanitized(fd, run_id_);
  WriteStr(fd, ", signal ");
  WriteI64(fd, sig);
  WriteStr(fd, ") ===\n");
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t count = head < ring_.size() ? head : ring_.size();
  for (uint64_t i = head - count; i < head; ++i) {
    const TraceEvent& e = ring_[i & mask_];
    if (!LooksValid(e)) {
      continue;
    }
    WriteStr(fd, "  ");
    WriteU64(fd, e.ts_ns);
    WriteStr(fd, "ns T");
    WriteU64(fd, e.tid);
    WriteStr(fd, " ");
    WriteStr(fd, KindName(e.kind));
    WriteStr(fd, " ");
    WriteSanitized(fd, e.name);
    if (e.kind == TraceEventKind::kComplete) {
      WriteStr(fd, " dur=");
      WriteU64(fd, e.dur_ns);
      WriteStr(fd, "ns");
    }
    if (e.kind == TraceEventKind::kCounter) {
      WriteStr(fd, " value=");
      WriteI64(fd, e.arg1);
    } else {
      if (e.arg1_name != nullptr) {
        WriteStr(fd, " ");
        WriteSanitized(fd, e.arg1_name);
        WriteStr(fd, "=");
        WriteI64(fd, e.arg1);
      }
      if (e.arg2_name != nullptr) {
        WriteStr(fd, " ");
        WriteSanitized(fd, e.arg2_name);
        WriteStr(fd, "=");
        WriteI64(fd, e.arg2);
      }
      if (e.sarg_name != nullptr) {
        WriteStr(fd, " ");
        WriteSanitized(fd, e.sarg_name);
        WriteStr(fd, "=");
        WriteSanitized(fd, e.sarg);
      }
    }
    WriteStr(fd, "\n");
  }
  WriteStr(fd, "=== end flight recorder (");
  WriteU64(fd, head);
  WriteStr(fd, " events recorded, dump written to ");
  WriteSanitized(fd, dump_path_.c_str());
  WriteStr(fd, ") ===\n");
}

}  // namespace obs
}  // namespace sandtable
