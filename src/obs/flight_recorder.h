// Crash-safe flight recorder: a fixed-size lock-free ring of the most recent
// trace events (the same TraceEvent stream the Tracer consumes — see
// trace.h), dumped when the process dies on SIGSEGV/SIGABRT/SIGBUS/SIGQUIT.
//
// Purpose: a wedged or crashed exploration should explain itself. The ring
// always holds the last ~capacity events (phase scopes, BFS levels, spills,
// job lifecycle), so the post-mortem shows *what the process was doing*,
// not just where it died. The dump is written twice: human-readable text to
// stderr and JSON to a file (SANDTABLE_FLIGHT_DUMP or
// "sandtable-flight-<pid>.json" in the cwd); the serve scheduler also
// attaches the most recent events to failed-job result frames.
//
// Signal safety: the dump path uses only write(2)/open(2) and hand-rolled
// integer formatting — no allocation, no stdio, no locks. Event names are
// static string literals by the trace.h contract, so reading them in a
// handler is safe. The ring itself is written with a relaxed fetch_add slot
// claim and a plain struct copy: a dump racing an in-flight writer can see
// one torn event per writing thread. That is acceptable for a post-mortem
// aid and is filtered by a per-event sanity check; the alternative (locks on
// the hot path) is not.
#ifndef SANDTABLE_SRC_OBS_FLIGHT_RECORDER_H_
#define SANDTABLE_SRC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/json.h"

namespace sandtable {
namespace obs {

class FlightRecorder {
 public:
  struct Options {
    size_t capacity = 4096;  // rounded up to a power of two
    // JSON dump target; empty = $SANDTABLE_FLIGHT_DUMP at Install() time,
    // falling back to "sandtable-flight-<pid>.json".
    std::string dump_path;
    // When false, only the ring is active (RecentJson for serve error
    // frames, tests); no process signal handlers are touched.
    bool install_signal_handlers = true;
  };

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(Options options);
  ~FlightRecorder();  // Uninstall()s

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Makes this recorder the process-wide event ring (one at a time; second
  // Install replaces the first) and optionally installs the fatal-signal
  // handlers (SIGSEGV, SIGABRT, SIGBUS, SIGQUIT), chaining to the previous
  // disposition after dumping via re-raise.
  void Install();
  void Uninstall();

  // The installed recorder, if any (used by the serve scheduler to attach
  // recent events to failed jobs).
  static FlightRecorder* Installed();

  // Hot path: copies e into the next ring slot. Lock-free; called by the
  // trace emit path for every event when installed.
  void Record(const TraceEvent& e);

  // Most recent events, oldest first, at most last_n (0 = whole ring).
  // Best-effort under concurrent writers (see file comment).
  std::vector<TraceEvent> Snapshot(size_t last_n = 0) const;

  // {"type":"flight_recorder","run_id":...,"events":[...]} for attaching to
  // serve error frames. Not signal-safe (allocates); use DumpJson in
  // handlers.
  Json RecentJson(size_t last_n = 0) const;

  // Async-signal-safe dumps. `sig` is recorded in the output (0 = manual).
  void DumpJson(int fd, int sig) const;
  void DumpText(int fd, int sig) const;

  uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  const char* dump_path() const { return dump_path_.c_str(); }

 private:
  std::vector<TraceEvent> ring_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
  Options options_;
  std::string dump_path_;
  // Fixed copies for signal-handler use (std::string access would allocate
  // or race).
  char run_id_[40] = {};
  char version_[64] = {};
  bool handlers_installed_ = false;
};

namespace internal {
extern std::atomic<FlightRecorder*> g_flight_recorder;
}  // namespace internal

}  // namespace obs
}  // namespace sandtable

#endif  // SANDTABLE_SRC_OBS_FLIGHT_RECORDER_H_
