#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sandtable {
namespace obs {

namespace internal {

int ThisThreadShard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

}  // namespace internal

namespace {

int BucketIndex(uint64_t value) {
  // value 0 -> bucket 0; otherwise bit_width(v) in [1, 64].
  return value == 0 ? 0 : std::bit_width(value);
}

// Inclusive value range covered by bucket i (see kHistogramBuckets comment).
void BucketBounds(int i, uint64_t* lo, uint64_t* hi) {
  if (i == 0) {
    *lo = 0;
    *hi = 0;
    return;
  }
  *lo = uint64_t{1} << (i - 1);
  *hi = (i >= 64) ? UINT64_MAX : (uint64_t{1} << i) - 1;
}

void AtomicMin(std::atomic<uint64_t>& target, uint64_t v) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& target, uint64_t v) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(uint64_t value) {
  Shard& shard = shards_[internal::ThisThreadShard()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(shard.min, value);
  AtomicMax(shard.max, value);
  const int bucket = BucketIndex(value);
  // bit_width(v) <= 64 and kHistogramBuckets == 64: index 64 would be one
  // past the end, so the top bucket absorbs the largest octave.
  shard.buckets[static_cast<size_t>(std::min(bucket, kHistogramBuckets - 1))].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, shard.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested quantile, 1-based.
  const double rank = p * static_cast<double>(count - 1) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[static_cast<size_t>(i)] == 0) {
      continue;
    }
    const uint64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (static_cast<double>(seen + in_bucket) < rank) {
      seen += in_bucket;
      continue;
    }
    uint64_t lo = 0;
    uint64_t hi = 0;
    BucketBounds(i, &lo, &hi);
    // Interpolate linearly inside the bucket, then clamp into the observed
    // extremes so single-value histograms report exact percentiles.
    const double frac =
        in_bucket <= 1 ? 0.0 : (rank - static_cast<double>(seen) - 1) /
                                   static_cast<double>(in_bucket - 1);
    double v = static_cast<double>(lo) + frac * static_cast<double>(hi - lo);
    v = std::max(v, static_cast<double>(min));
    v = std::min(v, static_cast<double>(max));
    return v;
  }
  return static_cast<double>(max);
}

Json HistogramSnapshot::ToJson() const {
  JsonObject o;
  o["count"] = Json(count);
  o["sum"] = Json(sum);
  o["min"] = Json(count == 0 ? uint64_t{0} : min);
  o["max"] = Json(max);
  o["mean"] = Json(Mean());
  o["p50"] = Json(Percentile(0.50));
  o["p90"] = Json(Percentile(0.90));
  o["p99"] = Json(Percentile(0.99));
  // Sparse bucket listing: [bucket_upper_bound, count] pairs.
  JsonArray bucket_list;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[static_cast<size_t>(i)] == 0) {
      continue;
    }
    uint64_t lo = 0;
    uint64_t hi = 0;
    BucketBounds(i, &lo, &hi);
    bucket_list.push_back(Json(JsonArray{Json(hi), Json(buckets[static_cast<size_t>(i)])}));
  }
  o["buckets"] = Json(std::move(bucket_list));
  return Json(std::move(o));
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) {
    counters[name] += v;
  }
  for (const auto& [name, v] : other.gauges) {
    auto it = gauges.find(name);
    if (it == gauges.end()) {
      gauges[name] = v;
    } else {
      it->second = std::max(it->second, v);
    }
  }
  for (const auto& [name, h] : other.histograms) {
    histograms[name].Merge(h);
  }
}

Json MetricsSnapshot::ToJson() const {
  JsonObject counters_json;
  for (const auto& [name, v] : counters) {
    counters_json[name] = Json(v);
  }
  JsonObject gauges_json;
  for (const auto& [name, v] : gauges) {
    gauges_json[name] = Json(v);
  }
  JsonObject histograms_json;
  for (const auto& [name, h] : histograms) {
    histograms_json[name] = h.ToJson();
  }
  JsonObject o;
  o["counters"] = Json(std::move(counters_json));
  o["gauges"] = Json(std::move(gauges_json));
  o["histograms"] = Json(std::move(histograms_json));
  return Json(std::move(o));
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

}  // namespace obs
}  // namespace sandtable
