// Low-overhead metrics for the exploration engines.
//
// Counters, gauges and histograms are sharded across cache-line-aligned
// atomic cells indexed by a thread-local shard id, so parallel BFS workers
// record contention-free (the same organization TLC uses for its worker
// statistics). Reads aggregate across shards into an immutable snapshot;
// snapshots merge associatively, which lets per-run, per-worker and
// cross-run aggregation share one code path.
//
// A MetricsRegistry names metrics and owns their storage; handles returned by
// Get*() stay valid for the registry's lifetime, so engines resolve names
// once before the hot loop and record through raw pointers.
#ifndef SANDTABLE_SRC_OBS_METRICS_H_
#define SANDTABLE_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/json.h"

namespace sandtable {
namespace obs {

// Power-of-two shard count: enough that a typical worker pool (<= hardware
// threads) rarely collides, small enough that snapshots stay cheap.
inline constexpr int kMetricShards = 16;

// Histograms bucket values (durations in ns, sizes, ...) by power of two:
// bucket 0 holds value 0, bucket i>0 holds [2^(i-1), 2^i - 1].
inline constexpr int kHistogramBuckets = 64;

namespace internal {

// Stable per-thread shard id: threads are striped round-robin over the shard
// space, so a level-synchronized worker pool lands each worker on its own cell.
int ThisThreadShard();

struct alignas(64) CounterCell {
  std::atomic<uint64_t> v{0};
};

}  // namespace internal

// Monotonic counter. Add() is a relaxed fetch_add on this thread's shard.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[internal::ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::CounterCell, kMetricShards> cells_;
};

// Last-value gauge (frontier size, worker count). Merge semantics are "max",
// which keeps snapshot merging associative.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  // Raise the gauge to at least `v` (peak tracking).
  void SetMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Immutable aggregate of one histogram; merges associatively.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = UINT64_MAX;  // UINT64_MAX when empty
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  void Merge(const HistogramSnapshot& other);
  double Mean() const { return count == 0 ? 0 : static_cast<double>(sum) / count; }
  // Quantile estimate (p in [0,1]) by linear interpolation inside the
  // containing power-of-two bucket, clamped to the observed min/max.
  double Percentile(double p) const;
  Json ToJson() const;
};

// Concurrent histogram over uint64 values, sharded like Counter.
class Histogram {
 public:
  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Point-in-time view of a whole registry. Counters merge by addition, gauges
// by max, histograms bucket-wise — all associative and commutative.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& other);
  Json ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. The returned reference is valid for the
  // registry's lifetime. Creation takes a lock; recording does not.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace sandtable

#endif  // SANDTABLE_SRC_OBS_METRICS_H_
