#include "src/obs/phase_timer.h"

namespace sandtable {
namespace obs {

namespace internal {
std::atomic<bool> g_phase_timers_enabled{true};
}  // namespace internal

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kExpand:
      return "expand";
    case Phase::kCanonicalize:
      return "canonicalize";
    case Phase::kFingerprint:
      return "fingerprint";
    case Phase::kInvariants:
      return "invariants";
    case Phase::kReconstruct:
      return "reconstruct";
    case Phase::kGuidedReplay:
      return "guided_replay";
  }
  return "?";
}

void SetPhaseTimersEnabled(bool enabled) {
  internal::g_phase_timers_enabled.store(enabled, std::memory_order_relaxed);
}

bool PhaseTimersEnabled() {
  return internal::g_phase_timers_enabled.load(std::memory_order_relaxed);
}

ExplorationMetrics ExplorationMetrics::Bind(MetricsRegistry* registry) {
  ExplorationMetrics m;
  if (registry == nullptr) {
    return m;
  }
  m.distinct_states = &registry->GetCounter("states.distinct");
  m.generated = &registry->GetCounter("states.generated");
  m.duplicates = &registry->GetCounter("states.duplicate");
  m.deadlocks = &registry->GetCounter("states.deadlock");
  m.expand_calls = &registry->GetCounter("expand.calls");
  m.invariant_checks = &registry->GetCounter("invariants.checked");
  m.transition_checks = &registry->GetCounter("invariants.transition_checked");
  m.violations = &registry->GetCounter("violations.found");
  m.levels = &registry->GetCounter("bfs.levels");
  m.reconstructions = &registry->GetCounter("trace.reconstructions");
  m.walk_steps = &registry->GetCounter("walk.steps");
  m.walks = &registry->GetCounter("walk.traces");
  m.steals = &registry->GetCounter("steal.chunks");
  m.steal_misses = &registry->GetCounter("steal.misses");
  m.steal_idle_ns = &registry->GetCounter("steal.idle_ns");
  m.frontier = &registry->GetGauge("frontier.size");
  m.frontier_peak = &registry->GetGauge("frontier.peak");
  m.workers = &registry->GetGauge("workers");
  for (int i = 0; i < kNumPhases; ++i) {
    m.phases[i] = &registry->GetHistogram(std::string("phase.") +
                                          PhaseName(static_cast<Phase>(i)));
  }
  return m;
}

}  // namespace obs
}  // namespace sandtable
