// RAII timers for the exploration hot phases, recording nanosecond durations
// into obs::Histogram. A process-wide switch turns all phase timers into
// no-ops so the instrumentation overhead itself can be measured (see
// DESIGN.md "Observability"); with no histogram attached a timer never reads
// the clock, so un-instrumented runs pay nothing.
//
// Phase timers are unified with span tracing (trace.h): a timer constructed
// with a phase (or explicit span name) emits one histogram sample AND one
// Chrome-trace span from the same pair of clock reads whenever a trace sink
// is installed — a single scope instruments both the aggregate view
// (percentiles) and the timeline view (what ran when, on which worker).
#ifndef SANDTABLE_SRC_OBS_PHASE_TIMER_H_
#define SANDTABLE_SRC_OBS_PHASE_TIMER_H_

#include <atomic>
#include <chrono>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sandtable {
namespace obs {

// The hot phases every exploration engine reports under the same names, so
// serial BFS, parallel BFS and random walk produce comparable reports.
enum class Phase : int {
  kExpand = 0,        // successor enumeration (ExpandAll)
  kCanonicalize = 1,  // symmetry-invariant fingerprint computation
  kFingerprint = 2,   // visited-set lookup/insert
  kInvariants = 3,    // state + transition invariant evaluation
  kReconstruct = 4,   // counterexample trace reconstruction
  kGuidedReplay = 5,  // label-guided spec replay (minimizer/corpus oracle)
};
inline constexpr int kNumPhases = 6;

const char* PhaseName(Phase phase);

// Process-wide enable switch for phase timing (default on). Counters are not
// affected — only the clock reads around the phases.
void SetPhaseTimersEnabled(bool enabled);
bool PhaseTimersEnabled();

namespace internal {
extern std::atomic<bool> g_phase_timers_enabled;
}  // namespace internal

struct ExplorationMetrics;

// Scoped timer: records elapsed ns into `h` at destruction, and — when
// constructed with a span name (or via the ExplorationMetrics/Phase
// convenience overload) while a trace sink is installed — emits the same
// interval as a trace span. Null histogram + no active trace, or disabled
// timers, cost one branch and never read the clock.
class PhaseTimer {
 public:
  explicit PhaseTimer(Histogram* h) : PhaseTimer(h, nullptr) {}

  // One scope ⇒ histogram sample + trace span named PhaseName(p).
  inline PhaseTimer(const ExplorationMetrics& m, Phase p);

  // span_name must have static lifetime (trace.h contract); nullptr = no span.
  PhaseTimer(Histogram* h, const char* span_name) {
    if (!internal::g_phase_timers_enabled.load(std::memory_order_relaxed)) {
      return;
    }
    h_ = h;
    span_name_ = (span_name != nullptr && TraceActive()) ? span_name : nullptr;
    if (h_ != nullptr || span_name_ != nullptr) {
      start_ns_ = TraceNowNs();
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() {
    if (h_ == nullptr && span_name_ == nullptr) {
      return;
    }
    const uint64_t end_ns = TraceNowNs();
    const uint64_t dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
    if (h_ != nullptr) {
      h_->Record(dur_ns);
    }
    if (span_name_ != nullptr) {
      TraceEvent e;
      e.name = span_name_;
      e.ts_ns = start_ns_;
      e.dur_ns = dur_ns;
      internal::EmitEventSlow(e);
    }
  }

 private:
  Histogram* h_ = nullptr;
  const char* span_name_ = nullptr;
  uint64_t start_ns_ = 0;
};

// Null-safe handles on the well-known exploration metrics. Engines bind once
// per run; with a null registry every handle is null and recording is free.
struct ExplorationMetrics {
  Counter* distinct_states = nullptr;      // states.distinct
  Counter* generated = nullptr;            // states.generated (incl. duplicates)
  Counter* duplicates = nullptr;           // states.duplicate (fingerprint hits)
  Counter* deadlocks = nullptr;            // states.deadlock
  Counter* expand_calls = nullptr;         // expand.calls
  Counter* invariant_checks = nullptr;     // invariants.checked
  Counter* transition_checks = nullptr;    // invariants.transition_checked
  Counter* violations = nullptr;           // violations.found
  Counter* levels = nullptr;               // bfs.levels
  Counter* reconstructions = nullptr;      // trace.reconstructions
  Counter* walk_steps = nullptr;           // walk.steps
  Counter* walks = nullptr;                // walk.traces
  Counter* steals = nullptr;               // steal.chunks (taken from a victim)
  Counter* steal_misses = nullptr;         // steal.misses (full failed sweeps)
  Counter* steal_idle_ns = nullptr;        // steal.idle_ns (ns waiting for work)
  Gauge* frontier = nullptr;               // frontier.size (last completed level)
  Gauge* frontier_peak = nullptr;          // frontier.peak
  Gauge* workers = nullptr;                // workers
  Histogram* phases[kNumPhases] = {};      // phase.<name>, ns

  static ExplorationMetrics Bind(MetricsRegistry* registry);

  Histogram* phase(Phase p) const { return phases[static_cast<int>(p)]; }
};

inline PhaseTimer::PhaseTimer(const ExplorationMetrics& m, Phase p)
    : PhaseTimer(m.phase(p), PhaseName(p)) {}

// Null-safe recording helpers.
inline void Add(Counter* c, uint64_t n = 1) {
  if (c != nullptr) {
    c->Add(n);
  }
}
inline void Set(Gauge* g, int64_t v) {
  if (g != nullptr) {
    g->Set(v);
  }
}
inline void SetMax(Gauge* g, int64_t v) {
  if (g != nullptr) {
    g->SetMax(v);
  }
}

}  // namespace obs
}  // namespace sandtable

#endif  // SANDTABLE_SRC_OBS_PHASE_TIMER_H_
