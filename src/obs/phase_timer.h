// RAII timers for the exploration hot phases, recording nanosecond durations
// into obs::Histogram. A process-wide switch turns all phase timers into
// no-ops so the instrumentation overhead itself can be measured (see
// DESIGN.md "Observability"); with no histogram attached a timer never reads
// the clock, so un-instrumented runs pay nothing.
#ifndef SANDTABLE_SRC_OBS_PHASE_TIMER_H_
#define SANDTABLE_SRC_OBS_PHASE_TIMER_H_

#include <atomic>
#include <chrono>

#include "src/obs/metrics.h"

namespace sandtable {
namespace obs {

// The hot phases every exploration engine reports under the same names, so
// serial BFS, parallel BFS and random walk produce comparable reports.
enum class Phase : int {
  kExpand = 0,        // successor enumeration (ExpandAll)
  kCanonicalize = 1,  // symmetry-invariant fingerprint computation
  kFingerprint = 2,   // visited-set lookup/insert
  kInvariants = 3,    // state + transition invariant evaluation
  kReconstruct = 4,   // counterexample trace reconstruction
  kGuidedReplay = 5,  // label-guided spec replay (minimizer/corpus oracle)
};
inline constexpr int kNumPhases = 6;

const char* PhaseName(Phase phase);

// Process-wide enable switch for phase timing (default on). Counters are not
// affected — only the clock reads around the phases.
void SetPhaseTimersEnabled(bool enabled);
bool PhaseTimersEnabled();

namespace internal {
extern std::atomic<bool> g_phase_timers_enabled;
}  // namespace internal

// Scoped timer: records elapsed ns into `h` at destruction. Null histogram
// (metrics not requested) or disabled timers cost one branch.
class PhaseTimer {
 public:
  explicit PhaseTimer(Histogram* h)
      : h_(h != nullptr &&
                   internal::g_phase_timers_enabled.load(std::memory_order_relaxed)
               ? h
               : nullptr) {
    if (h_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() {
    if (h_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      h_->Record(static_cast<uint64_t>(ns < 0 ? 0 : ns));
    }
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

// Null-safe handles on the well-known exploration metrics. Engines bind once
// per run; with a null registry every handle is null and recording is free.
struct ExplorationMetrics {
  Counter* distinct_states = nullptr;      // states.distinct
  Counter* generated = nullptr;            // states.generated (incl. duplicates)
  Counter* duplicates = nullptr;           // states.duplicate (fingerprint hits)
  Counter* deadlocks = nullptr;            // states.deadlock
  Counter* expand_calls = nullptr;         // expand.calls
  Counter* invariant_checks = nullptr;     // invariants.checked
  Counter* transition_checks = nullptr;    // invariants.transition_checked
  Counter* violations = nullptr;           // violations.found
  Counter* levels = nullptr;               // bfs.levels
  Counter* reconstructions = nullptr;      // trace.reconstructions
  Counter* walk_steps = nullptr;           // walk.steps
  Counter* walks = nullptr;                // walk.traces
  Gauge* frontier = nullptr;               // frontier.size (last completed level)
  Gauge* frontier_peak = nullptr;          // frontier.peak
  Gauge* workers = nullptr;                // workers
  Histogram* phases[kNumPhases] = {};      // phase.<name>, ns

  static ExplorationMetrics Bind(MetricsRegistry* registry);

  Histogram* phase(Phase p) const { return phases[static_cast<int>(p)]; }
};

// Null-safe recording helpers.
inline void Add(Counter* c, uint64_t n = 1) {
  if (c != nullptr) {
    c->Add(n);
  }
}
inline void Set(Gauge* g, int64_t v) {
  if (g != nullptr) {
    g->Set(v);
  }
}
inline void SetMax(Gauge* g, int64_t v) {
  if (g != nullptr) {
    g->SetMax(v);
  }
}

}  // namespace obs
}  // namespace sandtable

#endif  // SANDTABLE_SRC_OBS_PHASE_TIMER_H_
