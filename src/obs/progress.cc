#include "src/obs/progress.h"

#include "src/util/run_id.h"

namespace sandtable {
namespace obs {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

Json ProgressSample::ToJson() const {
  JsonObject o;
  o["type"] = Json("progress");
  o["engine"] = Json(engine);
  o["elapsed_s"] = Json(elapsed_s);
  o["distinct_states"] = Json(distinct_states);
  o["frontier"] = Json(frontier);
  o["depth"] = Json(depth);
  o["transitions"] = Json(transitions);
  o["deadlocks"] = Json(deadlocks);
  o["event_kinds"] = Json(static_cast<int64_t>(event_kinds));
  o["branches"] = Json(branches);
  if (!worker_queue_depths.empty()) {
    JsonArray workers;
    for (uint64_t depth_w : worker_queue_depths) {
      workers.push_back(Json(depth_w));
    }
    o["workers"] = Json(std::move(workers));
  }
  if (shard_load.has_value()) {
    JsonObject shards;
    shards["count"] = Json(static_cast<int64_t>(shard_load->shards));
    shards["min"] = Json(shard_load->min_size);
    shards["max"] = Json(shard_load->max_size);
    shards["avg"] = Json(shard_load->avg_size);
    shards["max_load_factor"] = Json(shard_load->max_load_factor);
    o["shards"] = Json(std::move(shards));
  }
  if (!analytics.is_null()) {
    o["analytics"] = analytics;
  }
  return Json(std::move(o));
}

ProgressReporter::ProgressReporter(std::ostream* out, ProgressOptions options)
    : out_(out),
      options_(std::move(options)),
      next_states_(options_.every_states),
      next_time_(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(
                                        options_.every_seconds > 0
                                            ? options_.every_seconds
                                            : 0))) {}

bool ProgressReporter::Due(uint64_t distinct_states) const {
  if (options_.every_states > 0 && distinct_states >= next_states_) {
    return true;
  }
  if (options_.every_seconds > 0 && Clock::now() >= next_time_) {
    return true;
  }
  return false;
}

bool ProgressReporter::Offer(const ProgressSample& sample) {
  if (!Due(sample.distinct_states)) {
    return false;
  }
  Emit(sample);
  return true;
}

void ProgressReporter::Emit(const ProgressSample& sample) {
  if (options_.run_id.empty()) {
    options_.run_id = RunId();
  }
  Json line = sample.ToJson();
  line["run_id"] = Json(options_.run_id);
  const double dt = sample.elapsed_s - last_elapsed_s_;
  const double d_states =
      static_cast<double>(sample.distinct_states) - static_cast<double>(last_distinct_);
  line["states_per_sec"] =
      Json(sample.elapsed_s > 0 ? sample.distinct_states / sample.elapsed_s : 0.0);
  line["recent_states_per_sec"] = Json(dt > 0 ? d_states / dt : 0.0);

  (*out_) << line.Dump() << '\n';
  out_->flush();

  ++lines_emitted_;
  last_distinct_ = sample.distinct_states;
  last_elapsed_s_ = sample.elapsed_s;
  if (options_.every_states > 0) {
    // Skip cadence points the run has already passed.
    while (next_states_ <= sample.distinct_states) {
      next_states_ += options_.every_states;
    }
  }
  if (options_.every_seconds > 0) {
    next_time_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(options_.every_seconds));
  }
}

}  // namespace obs
}  // namespace sandtable
