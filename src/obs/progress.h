// Structured exploration progress: periodic JSON lines describing how a
// checker run is advancing, replacing the ad-hoc progress callback the
// engines used to expose. One line per emission, schema:
//
//   {"type":"progress","engine":"bfs","elapsed_s":1.25,"distinct_states":..,
//    "frontier":..,"depth":..,"states_per_sec":..,"recent_states_per_sec":..,
//    "transitions":..,"event_kinds":..,"branches":..,"deadlocks":..,
//    "workers":[q0,q1,...],            // per-worker next-frontier depths (parallel only)
//    "shards":{"count":..,"min":..,"max":..,"avg":..,"max_load_factor":..},
//    "analytics":{"top_actions":[{"action":..,"fired":..,"expand_ns":..},...],
//                 "duplicate_rate":..,"collision_probability":..}}  // with --analytics
//
// The reporter owns the cadence (every N states and/or every T seconds); the
// engines only offer samples at their natural sampling points. Emission goes
// to any std::ostream — stderr by default, or a --metrics-out style file.
#ifndef SANDTABLE_SRC_OBS_PROGRESS_H_
#define SANDTABLE_SRC_OBS_PROGRESS_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/json.h"

namespace sandtable {
namespace obs {

// Load distribution of a sharded fingerprint set at sampling time.
struct ShardLoad {
  int shards = 0;
  uint64_t min_size = 0;
  uint64_t max_size = 0;
  double avg_size = 0;
  double max_load_factor = 0;  // worst unordered_map load factor across shards
};

struct ProgressSample {
  std::string engine;  // "bfs" | "parallel_bfs" | "random_walk" | "conformance"
  double elapsed_s = 0;
  uint64_t distinct_states = 0;
  uint64_t frontier = 0;
  uint64_t depth = 0;
  uint64_t transitions = 0;
  uint64_t deadlocks = 0;
  int event_kinds = 0;
  uint64_t branches = 0;
  std::vector<uint64_t> worker_queue_depths;  // empty for serial engines
  std::optional<ShardLoad> shard_load;
  // Top-N-actions analytics summary (obs::ExplorationProfile::SummaryJson);
  // omitted from the line when null.
  Json analytics;

  Json ToJson() const;
};

struct ProgressOptions {
  // Emit whenever distinct_states has grown by this many since the last
  // emission (0 = no state-based cadence).
  uint64_t every_states = 0;
  // Emit at most once per this many wall-clock seconds (0 = no time cadence).
  double every_seconds = 0;
  // Run id stamped on every line; empty = the process-wide RunId(). Serve
  // jobs set their per-job id here so concurrent tenants stay separable.
  std::string run_id;
};

// Not thread-safe: engines report from the coordinator thread only.
class ProgressReporter {
 public:
  // `out` is borrowed and must outlive the reporter.
  explicit ProgressReporter(std::ostream* out, ProgressOptions options = {});

  // Cheap cadence check for hot loops: build the (comparatively expensive)
  // sample only when this returns true.
  bool Due(uint64_t distinct_states) const;

  // Emit if due; returns true when a line was written.
  bool Offer(const ProgressSample& sample);

  // Emit unconditionally and advance the cadence markers.
  void Emit(const ProgressSample& sample);

  uint64_t lines_emitted() const { return lines_emitted_; }
  const std::string& run_id() const { return options_.run_id; }

 private:
  std::ostream* out_;
  ProgressOptions options_;
  uint64_t next_states_;
  std::chrono::steady_clock::time_point next_time_;
  uint64_t last_distinct_ = 0;
  double last_elapsed_s_ = 0;
  uint64_t lines_emitted_ = 0;
};

}  // namespace obs
}  // namespace sandtable

#endif  // SANDTABLE_SRC_OBS_PROGRESS_H_
