#include "src/obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <vector>

#include "src/util/run_id.h"

namespace sandtable {
namespace obs {

namespace {

// Render a nanosecond quantity with a human scale suffix.
std::string HumanNs(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

std::string ScalarToText(const Json& v) {
  switch (v.type()) {
    case Json::Type::kBool:
      return v.as_bool() ? "yes" : "no";
    case Json::Type::kInt:
    case Json::Type::kDouble:
    case Json::Type::kString:
    case Json::Type::kNull:
      return v.is_string() ? v.as_string() : v.Dump();
    default:
      return v.Dump();
  }
}

void AppendLine(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

// The "hot actions / coverage holes" section of a run report, rendered from
// an obs::ExplorationProfile::ToJson document (result["analytics"]).
void AppendAnalytics(std::string& out, const Json& a) {
  if (!a.is_object() || !a["actions"].is_array()) {
    return;
  }
  AppendLine(out, "state-space analytics:");
  AppendLine(out, "  hot actions (by expand time):");
  AppendLine(out, "  %-24s %-9s %9s %9s %7s %7s %8s %10s", "action", "kind",
             "enabled", "fired", "fan.avg", "fan.max", "dup.rate", "time");
  // Sort by cumulative expansion time, hottest first; cap the table.
  std::vector<const Json*> actions;
  for (const Json& act : a["actions"].as_array()) {
    actions.push_back(&act);
  }
  std::sort(actions.begin(), actions.end(), [](const Json* x, const Json* y) {
    return (*x)["expand_ns"].as_int() > (*y)["expand_ns"].as_int();
  });
  constexpr size_t kMaxRows = 12;
  for (size_t i = 0; i < actions.size() && i < kMaxRows; ++i) {
    const Json& act = *actions[i];
    AppendLine(out, "  %-24s %-9s %9" PRId64 " %9" PRId64 " %7.2f %7" PRId64
                    " %7.1f%% %10s",
               act["action"].as_string().c_str(),
               act["kind"].is_string() ? act["kind"].as_string().c_str() : "?",
               act["enabled"].as_int(), act["fired"].as_int(),
               act["fanout_avg"].is_number() ? act["fanout_avg"].as_double() : 0.0,
               act["fanout_max"].as_int(),
               (act["duplicate_rate"].is_number() ? act["duplicate_rate"].as_double()
                                                  : 0.0) *
                   100.0,
               HumanNs(act["expand_ns"].as_double()).c_str());
  }
  if (actions.size() > kMaxRows) {
    AppendLine(out, "  ... %zu more actions (see --analytics-out JSON)",
               actions.size() - kMaxRows);
  }
  for (const char* key : {"invariants", "transition_invariants"}) {
    const Json& invs = a[key];
    if (!invs.is_array() || invs.size() == 0) {
      continue;
    }
    AppendLine(out, "  %s:", key);
    for (const Json& inv : invs.as_array()) {
      const int64_t checks = inv["checks"].as_int();
      const double ns = inv["ns"].as_double();
      AppendLine(out, "  %-24s checks %-12" PRId64 " total %-10s mean %s",
                 inv["name"].as_string().c_str(), checks, HumanNs(ns).c_str(),
                 HumanNs(checks > 0 ? ns / static_cast<double>(checks) : 0).c_str());
    }
  }
  if (a["depth_histogram"].is_array() && a["depth_histogram"].size() > 0) {
    const Json& hist = a["depth_histogram"];
    std::string widths;
    constexpr size_t kMaxBuckets = 16;
    for (size_t d = 0; d < hist.size() && d < kMaxBuckets; ++d) {
      if (d > 0) {
        widths += ' ';
      }
      widths += std::to_string(d) + ":" + std::to_string(hist[d].as_int());
    }
    if (hist.size() > kMaxBuckets) {
      widths += " ...";
    }
    AppendLine(out, "  %-28s %s  (%zu levels)", "wave widths (depth:states)",
               widths.c_str(), hist.size());
  }
  if (a["duplicate_rate"].is_number()) {
    AppendLine(out, "  %-28s %.1f%%", "duplicate successor rate",
               a["duplicate_rate"].as_double() * 100.0);
  }
  if (a["revisit_rate"].is_number()) {
    AppendLine(out, "  %-28s %.1f%%", "revisit rate",
               a["revisit_rate"].as_double() * 100.0);
  }
  if (a["collision_probability"].is_number()) {
    AppendLine(out, "  %-28s %.3g", "collision probability",
               a["collision_probability"].as_double());
  }
  if (a["delivery_pairs"].is_number() && a["delivery_pairs"].as_int() > 0) {
    const double total = a["delivery_pairs"].as_double();
    const double commuting = a["commuting_delivery_pairs"].as_double();
    AppendLine(out,
               "  %-28s %.0f of %.0f delivery pairs (%.1f%%) commute (POR "
               "opportunity)",
               "commuting deliveries", commuting, total,
               total > 0 ? commuting / total * 100.0 : 0.0);
  }
  if (a["zero_hit_actions"].is_array()) {
    for (const Json& name : a["zero_hit_actions"].as_array()) {
      AppendLine(out, "  WARNING: action %s never fired (coverage hole)",
                 name.as_string().c_str());
    }
  }
  if (a["zero_hit_branches"].is_array()) {
    for (const Json& name : a["zero_hit_branches"].as_array()) {
      AppendLine(out,
                 "  WARNING: branch %s declared but never hit (coverage hole)",
                 name.as_string().c_str());
    }
  }
}

}  // namespace

uint64_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  uint64_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %" SCNu64, &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb;
}

Json MakeReport(const std::string& engine, Json result, const MetricsRegistry* metrics) {
  JsonObject o;
  o["type"] = Json("report");
  o["schema_version"] = Json(static_cast<int64_t>(kReportSchemaVersion));
  o["run_id"] = Json(RunId());
  o["engine"] = Json(engine);
  o["result"] = std::move(result);
  o["peak_rss_kb"] = Json(PeakRssKb());
  if (metrics != nullptr) {
    o["metrics"] = metrics->Snapshot().ToJson();
  }
  return Json(std::move(o));
}

std::string ReportToText(const Json& report) {
  std::string out;
  const std::string engine =
      report["engine"].is_string() ? report["engine"].as_string() : "?";
  AppendLine(out, "=== %s run report ===", engine.c_str());
  if (report["run_id"].is_string()) {
    AppendLine(out, "  %-28s %s", "run_id",
               report["run_id"].as_string().c_str());
  }

  const Json& result = report["result"];
  if (result.is_object()) {
    for (const auto& [key, value] : result.as_object()) {
      if (value.is_array() || value.is_object()) {
        continue;  // traces and nested structures stay JSON-only
      }
      if (key == "hash_compact" || key == "collision_probability") {
        continue;  // rendered as one explanatory line below
      }
      AppendLine(out, "  %-28s %s", key.c_str(), ScalarToText(value).c_str());
    }
    if (result["hash_compact"].is_bool() && result["hash_compact"].as_bool()) {
      // The contract promised by --hash-compact: violations reported are
      // real (invariants ran on real states); the estimate bounds the chance
      // that a fingerprint collision silently merged two distinct states.
      AppendLine(out, "  %-28s on — P(any state missed to a fingerprint "
                 "collision) <= %.3g",
                 "hash compaction",
                 result["collision_probability"].is_number()
                     ? result["collision_probability"].as_double()
                     : 0.0);
    }
  }
  if (report["peak_rss_kb"].is_number() && report["peak_rss_kb"].as_int() > 0) {
    AppendLine(out, "  %-28s %" PRId64 " KiB", "peak_rss",
               report["peak_rss_kb"].as_int());
  }

  AppendAnalytics(out, result["analytics"]);

  const Json& metrics = report["metrics"];
  if (!metrics.is_object()) {
    return out;
  }
  const Json& counters = metrics["counters"];
  if (counters.is_object() && !counters.as_object().empty()) {
    AppendLine(out, "counters:");
    for (const auto& [name, value] : counters.as_object()) {
      AppendLine(out, "  %-28s %" PRId64, name.c_str(),
                 value.is_number() ? value.as_int() : 0);
    }
  }
  const Json& gauges = metrics["gauges"];
  if (gauges.is_object() && !gauges.as_object().empty()) {
    AppendLine(out, "gauges:");
    for (const auto& [name, value] : gauges.as_object()) {
      AppendLine(out, "  %-28s %" PRId64, name.c_str(),
                 value.is_number() ? value.as_int() : 0);
    }
  }
  const Json& histograms = metrics["histograms"];
  if (histograms.is_object() && !histograms.as_object().empty()) {
    AppendLine(out, "phase timers:");
    AppendLine(out, "  %-28s %10s %10s %9s %9s %9s %9s", "histogram", "count", "total",
               "mean", "p50", "p90", "p99");
    for (const auto& [name, h] : histograms.as_object()) {
      const uint64_t count =
          h["count"].is_number() ? static_cast<uint64_t>(h["count"].as_int()) : 0;
      if (count == 0) {
        AppendLine(out, "  %-28s %10s %10s %9s %9s %9s %9s", name.c_str(), "0", "-", "-",
                   "-", "-", "-");
        continue;
      }
      AppendLine(out, "  %-28s %10llu %10s %9s %9s %9s %9s", name.c_str(),
                 static_cast<unsigned long long>(count),
                 HumanNs(h["sum"].as_double()).c_str(),
                 HumanNs(h["mean"].as_double()).c_str(),
                 HumanNs(h["p50"].as_double()).c_str(),
                 HumanNs(h["p90"].as_double()).c_str(),
                 HumanNs(h["p99"].as_double()).c_str());
    }
  }
  return out;
}

}  // namespace obs
}  // namespace sandtable
