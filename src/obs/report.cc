#include "src/obs/report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/util/run_id.h"

namespace sandtable {
namespace obs {

namespace {

// Render a nanosecond quantity with a human scale suffix.
std::string HumanNs(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

std::string ScalarToText(const Json& v) {
  switch (v.type()) {
    case Json::Type::kBool:
      return v.as_bool() ? "yes" : "no";
    case Json::Type::kInt:
    case Json::Type::kDouble:
    case Json::Type::kString:
    case Json::Type::kNull:
      return v.is_string() ? v.as_string() : v.Dump();
    default:
      return v.Dump();
  }
}

void AppendLine(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

}  // namespace

uint64_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  uint64_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %" SCNu64, &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb;
}

Json MakeReport(const std::string& engine, Json result, const MetricsRegistry* metrics) {
  JsonObject o;
  o["type"] = Json("report");
  o["schema_version"] = Json(static_cast<int64_t>(kReportSchemaVersion));
  o["run_id"] = Json(RunId());
  o["engine"] = Json(engine);
  o["result"] = std::move(result);
  o["peak_rss_kb"] = Json(PeakRssKb());
  if (metrics != nullptr) {
    o["metrics"] = metrics->Snapshot().ToJson();
  }
  return Json(std::move(o));
}

std::string ReportToText(const Json& report) {
  std::string out;
  const std::string engine =
      report["engine"].is_string() ? report["engine"].as_string() : "?";
  AppendLine(out, "=== %s run report ===", engine.c_str());
  if (report["run_id"].is_string()) {
    AppendLine(out, "  %-28s %s", "run_id",
               report["run_id"].as_string().c_str());
  }

  const Json& result = report["result"];
  if (result.is_object()) {
    for (const auto& [key, value] : result.as_object()) {
      if (value.is_array() || value.is_object()) {
        continue;  // traces and nested structures stay JSON-only
      }
      AppendLine(out, "  %-28s %s", key.c_str(), ScalarToText(value).c_str());
    }
  }
  if (report["peak_rss_kb"].is_number() && report["peak_rss_kb"].as_int() > 0) {
    AppendLine(out, "  %-28s %" PRId64 " KiB", "peak_rss",
               report["peak_rss_kb"].as_int());
  }

  const Json& metrics = report["metrics"];
  if (!metrics.is_object()) {
    return out;
  }
  const Json& counters = metrics["counters"];
  if (counters.is_object() && !counters.as_object().empty()) {
    AppendLine(out, "counters:");
    for (const auto& [name, value] : counters.as_object()) {
      AppendLine(out, "  %-28s %" PRId64, name.c_str(),
                 value.is_number() ? value.as_int() : 0);
    }
  }
  const Json& gauges = metrics["gauges"];
  if (gauges.is_object() && !gauges.as_object().empty()) {
    AppendLine(out, "gauges:");
    for (const auto& [name, value] : gauges.as_object()) {
      AppendLine(out, "  %-28s %" PRId64, name.c_str(),
                 value.is_number() ? value.as_int() : 0);
    }
  }
  const Json& histograms = metrics["histograms"];
  if (histograms.is_object() && !histograms.as_object().empty()) {
    AppendLine(out, "phase timers:");
    AppendLine(out, "  %-28s %10s %10s %9s %9s %9s %9s", "histogram", "count", "total",
               "mean", "p50", "p90", "p99");
    for (const auto& [name, h] : histograms.as_object()) {
      const uint64_t count =
          h["count"].is_number() ? static_cast<uint64_t>(h["count"].as_int()) : 0;
      if (count == 0) {
        AppendLine(out, "  %-28s %10s %10s %9s %9s %9s %9s", name.c_str(), "0", "-", "-",
                   "-", "-", "-");
        continue;
      }
      AppendLine(out, "  %-28s %10llu %10s %9s %9s %9s %9s", name.c_str(),
                 static_cast<unsigned long long>(count),
                 HumanNs(h["sum"].as_double()).c_str(),
                 HumanNs(h["mean"].as_double()).c_str(),
                 HumanNs(h["p50"].as_double()).c_str(),
                 HumanNs(h["p90"].as_double()).c_str(),
                 HumanNs(h["p99"].as_double()).c_str());
    }
  }
  return out;
}

}  // namespace obs
}  // namespace sandtable
