// End-of-run reports: one JSON document combining an engine's result with the
// run's metrics snapshot, plus a human-readable rendering. Schema:
//
//   {"type":"report","engine":"bfs","schema_version":1,
//    "result":{...engine-specific, e.g. BfsResult::ToJson()...},
//    "metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
//
// The report layer is engine-agnostic on purpose: callers pass the result
// already serialized, so obs depends only on util and every engine (BFS,
// parallel BFS, random walk, conformance) and every bench shares the same
// export path.
#ifndef SANDTABLE_SRC_OBS_REPORT_H_
#define SANDTABLE_SRC_OBS_REPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/util/json.h"

namespace sandtable {
namespace obs {

inline constexpr int kReportSchemaVersion = 1;

// Peak resident set size of this process in KiB (VmHWM from
// /proc/self/status); 0 where unavailable. Cheap enough for end-of-run use.
uint64_t PeakRssKb();

// Compose the report document. `metrics` may be null (no "metrics" key).
// Adds "peak_rss_kb" so memory trajectories land next to throughput.
Json MakeReport(const std::string& engine, Json result, const MetricsRegistry* metrics);

// Render a report (as produced by MakeReport) as an aligned human table:
// result fields, counters, gauges, and per-phase timer percentiles.
std::string ReportToText(const Json& report);

}  // namespace obs
}  // namespace sandtable

#endif  // SANDTABLE_SRC_OBS_REPORT_H_
