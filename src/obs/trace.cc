#include "src/obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <map>

#include "src/obs/flight_recorder.h"
#include "src/util/run_id.h"

namespace sandtable {
namespace obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};

// Bumped on every Install/Uninstall/~Tracer so the per-thread buffer cache
// below can never hand back a buffer belonging to a dead or replaced tracer
// (including the ABA case of a new tracer allocated at the old address).
std::atomic<uint64_t> g_install_epoch{1};

struct TlsBuf {
  const void* owner = nullptr;
  uint64_t epoch = 0;
  void* buf = nullptr;
};
thread_local TlsBuf t_buf;

std::mutex& ThreadNameMu() {
  static std::mutex mu;
  return mu;
}
std::map<uint32_t, std::string>& ThreadNames() {
  static std::map<uint32_t, std::string> names;
  return names;
}

}  // namespace

namespace internal {

std::atomic<bool> g_emit_active{false};

void UpdateEmitActive() {
  g_emit_active.store(g_tracer.load(std::memory_order_acquire) != nullptr ||
                          g_flight_recorder.load(std::memory_order_acquire) !=
                              nullptr,
                      std::memory_order_release);
}

void EmitEventSlow(TraceEvent& e) {
  e.tid = TraceTid();
  Tracer* tracer = g_tracer.load(std::memory_order_acquire);
  if (tracer != nullptr) {
    tracer->Append(e);
  }
  FlightRecorder* recorder =
      g_flight_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) {
    recorder->Record(e);
  }
}

}  // namespace internal

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

uint32_t TraceTid() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void TraceSetCurrentThreadName(const std::string& name) {
  std::lock_guard<std::mutex> lock(ThreadNameMu());
  ThreadNames()[TraceTid()] = name;
}

struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(uint32_t tid) : tid(tid) {}

  const uint32_t tid;
  // Chunked so growth never moves already-written events under a concurrent
  // drain. The chunk list itself is guarded by the owning Tracer's mu_.
  std::vector<std::unique_ptr<TraceEvent[]>> chunks;
  TraceEvent* cur = nullptr;  // writer-owned
  size_t cur_used = 0;        // writer-owned
  uint64_t written = 0;       // writer-owned
  // Drain reads events [0, published): the release store in Append makes the
  // event contents visible to an acquire reader before the count is.
  std::atomic<uint64_t> published{0};
};

Tracer::Tracer(Options options) : options_(options) {
  if (options_.chunk_events == 0) {
    options_.chunk_events = 4096;
  }
}

Tracer::~Tracer() {
  Uninstall();
  // Invalidate any cached buffer pointers into this tracer even if it was
  // never installed (tests Append directly).
  g_install_epoch.fetch_add(1, std::memory_order_acq_rel);
}

void Tracer::Install() {
  g_tracer.store(this, std::memory_order_release);
  g_install_epoch.fetch_add(1, std::memory_order_acq_rel);
  internal::UpdateEmitActive();
}

void Tracer::Uninstall() {
  Tracer* expected = this;
  g_tracer.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
  g_install_epoch.fetch_add(1, std::memory_order_acq_rel);
  internal::UpdateEmitActive();
}

bool Tracer::installed() const {
  return g_tracer.load(std::memory_order_acquire) == this;
}

uint64_t Tracer::dropped_events() const {
  return dropped_.load(std::memory_order_relaxed);
}

Tracer::ThreadBuffer* Tracer::RegisterCurrentThread() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(TraceTid()));
  return buffers_.back().get();
}

void Tracer::Append(const TraceEvent& e) {
  const uint64_t epoch = g_install_epoch.load(std::memory_order_acquire);
  if (t_buf.owner != this || t_buf.epoch != epoch || t_buf.buf == nullptr) {
    t_buf.buf = RegisterCurrentThread();
    t_buf.owner = this;
    t_buf.epoch = epoch;
  }
  auto* b = static_cast<ThreadBuffer*>(t_buf.buf);
  if (b->written >= options_.max_events_per_thread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (b->cur == nullptr || b->cur_used == options_.chunk_events) {
    std::lock_guard<std::mutex> lock(mu_);
    b->chunks.push_back(std::make_unique<TraceEvent[]>(options_.chunk_events));
    b->cur = b->chunks.back().get();
    b->cur_used = 0;
  }
  b->cur[b->cur_used++] = e;
  ++b->written;
  b->published.store(b->written, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Drain() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : buffers_) {
      uint64_t remaining = b->published.load(std::memory_order_acquire);
      for (const auto& chunk : b->chunks) {
        if (remaining == 0) {
          break;
        }
        const uint64_t n =
            std::min<uint64_t>(remaining, options_.chunk_events);
        out.insert(out.end(), chunk.get(), chunk.get() + n);
        remaining -= n;
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                               : a.tid < b.tid;
                   });
  return out;
}

Json Tracer::ToChromeJson() const {
  const int64_t pid = static_cast<int64_t>(::getpid());
  JsonArray events;

  {
    JsonObject pname;
    pname["ph"] = "M";
    pname["name"] = "process_name";
    pname["ts"] = 0.0;  // metadata is timeless; uniform shape for validators
    pname["pid"] = pid;
    pname["tid"] = static_cast<int64_t>(0);
    JsonObject pargs;
    pargs["name"] = "sandtable";
    pname["args"] = std::move(pargs);
    events.emplace_back(std::move(pname));
  }
  {
    std::lock_guard<std::mutex> lock(ThreadNameMu());
    for (const auto& [tid, name] : ThreadNames()) {
      JsonObject m;
      m["ph"] = "M";
      m["name"] = "thread_name";
      m["ts"] = 0.0;
      m["pid"] = pid;
      m["tid"] = static_cast<int64_t>(tid);
      JsonObject args;
      args["name"] = name;
      m["args"] = std::move(args);
      events.emplace_back(std::move(m));
    }
  }

  for (const TraceEvent& e : Drain()) {
    JsonObject o;
    o["name"] = e.name != nullptr ? e.name : "?";
    o["cat"] = "sandtable";
    o["ts"] = static_cast<double>(e.ts_ns) / 1000.0;  // microseconds
    o["pid"] = pid;
    o["tid"] = static_cast<int64_t>(e.tid);
    JsonObject args;
    switch (e.kind) {
      case TraceEventKind::kComplete:
        o["ph"] = "X";
        o["dur"] = static_cast<double>(e.dur_ns) / 1000.0;
        break;
      case TraceEventKind::kInstant:
        o["ph"] = "i";
        o["s"] = "t";
        break;
      case TraceEventKind::kCounter:
        o["ph"] = "C";
        args["value"] = e.arg1;
        break;
    }
    if (e.kind != TraceEventKind::kCounter) {
      if (e.arg1_name != nullptr) {
        args[e.arg1_name] = e.arg1;
      }
      if (e.arg2_name != nullptr) {
        args[e.arg2_name] = e.arg2;
      }
      if (e.sarg_name != nullptr) {
        args[e.sarg_name] = std::string(e.sarg);
      }
    }
    if (!args.empty()) {
      o["args"] = std::move(args);
    }
    events.emplace_back(std::move(o));
  }

  JsonObject metadata;
  metadata["schema"] = "sandtable-trace-1";
  metadata["run_id"] = RunId();
  metadata["version"] = BuildVersion();
  metadata["dropped_events"] = dropped_events();
  metadata["clock"] = "steady, ns since process trace epoch";

  JsonObject root;
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";
  root["metadata"] = std::move(metadata);
  return Json(std::move(root));
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Error("trace: cannot open " + path + " for writing");
  }
  out << ToChromeJson().Dump() << "\n";
  out.flush();
  if (!out) {
    return Status::Error("trace: short write to " + path);
  }
  return Status();
}

}  // namespace obs
}  // namespace sandtable
