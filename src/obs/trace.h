// Low-overhead span tracing for exploration runs, exported as Chrome
// trace-event JSON (load in chrome://tracing or https://ui.perfetto.dev).
//
// Model: instrumentation sites emit fixed-size TraceEvent records — complete
// spans (RAII TraceSpan, or a PhaseTimer constructed with a phase), instant
// events, and counter samples. Records flow through one guard check into up
// to two sinks:
//
//   - an installed Tracer: per-thread chunked buffers, appended lock-free by
//     the owning thread and drained at run end into one Chrome JSON file;
//   - an installed FlightRecorder (flight_recorder.h): a small global ring of
//     the most recent events, dumped on fatal signals.
//
// Cost model: with neither sink installed, every emit site is a single
// relaxed atomic load and branch — no clock read, no allocation, no event
// construction (measured on bench_table3_exploration; see DESIGN.md
// "Tracing & flight recorder"). With a sink installed, the hot path is two
// clock reads (span begin/end) plus an ~96-byte store into a thread-local
// chunk; chunk allocation (amortized 1/4096 events) takes a mutex.
//
// Threading contract: Append is single-writer per thread buffer; Drain/
// export synchronize via per-buffer release/acquire publication, so a
// concurrent drain never reads a half-written event. Install/Uninstall and
// Tracer destruction must happen while no instrumented code is running
// (engines quiesce at run end; serve drains after workers join).
//
// Event names and arg names must be string literals (static lifetime): the
// hot path stores the pointer, not a copy. One short string arg per event
// (tenant ids, statuses) is stored inline, truncated to kSargCap-1 chars.
#ifndef SANDTABLE_SRC_OBS_TRACE_H_
#define SANDTABLE_SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/result.h"

namespace sandtable {
namespace obs {

enum class TraceEventKind : uint8_t {
  kComplete = 0,  // span with duration ("ph":"X")
  kInstant = 1,   // point event ("ph":"i")
  kCounter = 2,   // sampled value ("ph":"C")
};

struct TraceEvent {
  static constexpr size_t kSargCap = 24;

  const char* name = nullptr;       // static lifetime, required
  const char* arg1_name = nullptr;  // static lifetime, nullptr = absent
  const char* arg2_name = nullptr;
  const char* sarg_name = nullptr;  // static lifetime, nullptr = absent
  uint64_t ts_ns = 0;               // ns since TraceEpoch()
  uint64_t dur_ns = 0;              // kComplete only
  int64_t arg1 = 0;
  int64_t arg2 = 0;                 // kCounter stores the sample in arg1
  char sarg[kSargCap] = {};         // inline short string arg, NUL-terminated
  uint32_t tid = 0;                 // small sequential trace thread id
  TraceEventKind kind = TraceEventKind::kComplete;

  void set_sarg(const char* static_name, const std::string& value) {
    sarg_name = static_name;
    const size_t n = value.size() < kSargCap - 1 ? value.size() : kSargCap - 1;
    std::memcpy(sarg, value.data(), n);
    sarg[n] = '\0';
  }
};

// Monotonic time base shared by every event in the process (and by the
// scheduler's retroactive "job.queued" spans).
std::chrono::steady_clock::time_point TraceEpoch();
uint64_t TraceNowNs();

// Small sequential id for the calling thread, assigned on first use and
// shared by the tracer and the flight recorder.
uint32_t TraceTid();

// Names the calling thread's lane in exported traces ("worker-3"). Cold path
// (mutex); safe to call whether or not a sink is installed.
void TraceSetCurrentThreadName(const std::string& name);

namespace internal {
// True iff a Tracer and/or FlightRecorder is installed. The only cost paid
// by instrumentation sites when tracing is off.
extern std::atomic<bool> g_emit_active;
// Routes a finished event to the installed sinks. Fills e.tid.
void EmitEventSlow(TraceEvent& e);
void UpdateEmitActive();
}  // namespace internal

inline bool TraceActive() {
  return internal::g_emit_active.load(std::memory_order_relaxed);
}

inline void EmitEvent(TraceEvent& e) {
  if (TraceActive()) {
    internal::EmitEventSlow(e);
  }
}

class Tracer {
 public:
  struct Options {
    // Hard cap per thread; events past it are counted in dropped_events()
    // and recorded in export metadata rather than silently lost.
    size_t max_events_per_thread = 1u << 20;
    size_t chunk_events = 4096;
  };

  Tracer() : Tracer(Options()) {}
  explicit Tracer(Options options);
  ~Tracer();  // Uninstall()s if installed; requires quiescence (see above)

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Makes this tracer the process-wide span sink. One tracer at a time; a
  // second Install replaces the first (which stops receiving events).
  void Install();
  void Uninstall();
  bool installed() const;

  // Events dropped because a thread hit max_events_per_thread.
  uint64_t dropped_events() const;

  // All recorded events, merged across threads and sorted by ts_ns. Safe
  // concurrently with writers (release/acquire publication), but a coherent
  // full trace requires writer quiescence.
  std::vector<TraceEvent> Drain() const;

  // {"traceEvents":[...],"metadata":{run_id,version,dropped_events,...}}
  Json ToChromeJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  // Appends to the calling thread's buffer, registering it on first use.
  // Called via EmitEvent; public for the flight-recorder-less test path.
  void Append(const TraceEvent& e);

 private:
  struct ThreadBuffer;

  ThreadBuffer* RegisterCurrentThread();

  Options options_;
  mutable std::mutex mu_;  // guards buffers_ (registration) and chunk growth
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<uint64_t> dropped_{0};
};

// RAII complete-span scope. When no sink is installed at construction, the
// whole scope is one branch: no clock read, no event at destruction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceActive()) {
      event_.name = name;
      event_.ts_ns = TraceNowNs();
      armed_ = true;
    }
  }
  TraceSpan(const char* name, const char* arg1_name, int64_t arg1)
      : TraceSpan(name) {
    if (armed_) {
      event_.arg1_name = arg1_name;
      event_.arg1 = arg1;
    }
  }
  TraceSpan(const char* name, const char* arg1_name, int64_t arg1,
            const char* arg2_name, int64_t arg2)
      : TraceSpan(name, arg1_name, arg1) {
    if (armed_) {
      event_.arg2_name = arg2_name;
      event_.arg2 = arg2;
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (armed_) {
      event_.dur_ns = TraceNowNs() - event_.ts_ns;
      internal::EmitEventSlow(event_);
    }
  }

  // Attach args whose values are only known at scope end (e.g. how many
  // states a wave produced). No-ops when the span is disarmed.
  void set_arg2(const char* arg2_name, int64_t arg2) {
    if (armed_) {
      event_.arg2_name = arg2_name;
      event_.arg2 = arg2;
    }
  }
  void set_sarg(const char* sarg_name, const std::string& value) {
    if (armed_) {
      event_.set_sarg(sarg_name, value);
    }
  }

 private:
  TraceEvent event_;
  bool armed_ = false;
};

inline void TraceInstant(const char* name, const char* arg1_name = nullptr,
                         int64_t arg1 = 0) {
  if (TraceActive()) {
    TraceEvent e;
    e.kind = TraceEventKind::kInstant;
    e.name = name;
    e.ts_ns = TraceNowNs();
    e.arg1_name = arg1_name;
    e.arg1 = arg1;
    internal::EmitEventSlow(e);
  }
}

inline void TraceCounter(const char* name, int64_t value) {
  if (TraceActive()) {
    TraceEvent e;
    e.kind = TraceEventKind::kCounter;
    e.name = name;
    e.ts_ns = TraceNowNs();
    e.arg1 = value;
    internal::EmitEventSlow(e);
  }
}

}  // namespace obs
}  // namespace sandtable

#endif  // SANDTABLE_SRC_OBS_TRACE_H_
