// Internals shared by the two parallel exploration engines (parallel_bfs.cc
// level-synchronized, steal.cc work-stealing): frontier items, violation
// candidates and their deterministic arbitration order, and the per-worker
// output buffers merged at barriers. Not installed API — engine TUs only.
#ifndef SANDTABLE_SRC_PAR_BFS_INTERNAL_H_
#define SANDTABLE_SRC_PAR_BFS_INTERNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mc/bfs.h"
#include "src/obs/analytics.h"
#include "src/spec/spec.h"

namespace sandtable {
namespace par_internal {

// Frontier entries carry the fingerprint computed at insertion time, like the
// serial checker: one Fingerprint() evaluation per distinct state.
struct FrontierItem {
  uint64_t fp;
  State state;
};

// A violation discovered by a worker during one level/epoch, resolved into a
// trace only after arbitration at the barrier. For state invariants `fp` is
// the violating state; for transition invariants it is the parent, and
// label/state describe the offending edge.
struct ViolationCandidate {
  std::string invariant;
  bool is_transition = false;
  uint64_t fp = 0;
  uint64_t succ_fp = 0;
  ActionLabel label;
  State state;
};

// Deterministic arbitration: all candidates of a level share the same trace
// depth (the barrier guarantees it), so any fixed order preserves the
// minimal-depth result; this one makes the chosen candidate independent of
// worker count and scheduling — identical for the chunk-claiming and the
// work-stealing engine, which is what lets the differential harness compare
// their violations field by field.
inline bool CandidateLess(const ViolationCandidate& a, const ViolationCandidate& b) {
  if (a.invariant != b.invariant) {
    return a.invariant < b.invariant;
  }
  if (a.is_transition != b.is_transition) {
    return !a.is_transition;
  }
  if (a.fp != b.fp) {
    return a.fp < b.fp;
  }
  return a.succ_fp < b.succ_fp;
}

// Everything a worker accumulates privately during a level; merged by the
// coordinator at the barrier (frontier slices, candidates) or at finalization
// (coverage, deadlocks), so workers never share mutable state.
struct WorkerOutput {
  std::vector<FrontierItem> next;
  std::vector<ViolationCandidate> candidates;
  CoverageStats coverage;
  uint64_t deadlocks = 0;
  // Per-worker analytics slice (initialized iff analytics is enabled): merged
  // into the main profile at the barrier, then count-reset so the interned
  // branch tables keep their slots across levels. With analytics on, branch
  // hits land here instead of coverage.branches, which turns the per-level
  // coverage set merge under the barrier into a no-op.
  obs::ExplorationProfile profile;
};

}  // namespace par_internal
}  // namespace sandtable

#endif  // SANDTABLE_SRC_PAR_BFS_INTERNAL_H_
