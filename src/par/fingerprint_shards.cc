#include "src/par/fingerprint_shards.h"

#include <algorithm>

#include "src/util/check.h"

namespace sandtable {
namespace par {

ShardedFingerprintSet::ShardedFingerprintSet(int shard_count_log2)
    : nshards_(1 << shard_count_log2),
      shift_(64 - shard_count_log2),
      shards_(new Shard[static_cast<size_t>(nshards_)]) {
  CHECK(shard_count_log2 >= 0 && shard_count_log2 < 16)
      << "unreasonable shard count log2: " << shard_count_log2;
}

bool ShardedFingerprintSet::InsertIfAbsent(uint64_t fp, uint64_t parent_fp) {
  Shard& shard = shards_[ShardIndex(fp)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.map.emplace(fp, parent_fp).second) {
      return false;
    }
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<uint64_t> ShardedFingerprintSet::Parent(uint64_t fp) const {
  const Shard& shard = shards_[ShardIndex(fp)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(fp);
  if (it == shard.map.end()) {
    return std::nullopt;
  }
  return it->second;
}

ShardedFingerprintSet::LoadStats ShardedFingerprintSet::Load() const {
  LoadStats stats;
  stats.sizes.reserve(static_cast<size_t>(nshards_));
  for (int i = 0; i < nshards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    stats.sizes.push_back(shards_[i].map.size());
    stats.max_load_factor =
        std::max(stats.max_load_factor, static_cast<double>(shards_[i].map.load_factor()));
  }
  return stats;
}

void ShardedFingerprintSet::Reserve(uint64_t expected_total) {
  const size_t per_shard =
      static_cast<size_t>(expected_total / static_cast<uint64_t>(nshards_)) + 1;
  for (int i = 0; i < nshards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].map.reserve(per_shard);
  }
}

}  // namespace par
}  // namespace sandtable
