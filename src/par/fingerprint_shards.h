// Sharded concurrent fingerprint set for the parallel BFS engine.
//
// The visited set (fingerprint -> parent fingerprint) is split into N
// lock-striped shards keyed by the fingerprint's high bits — the same
// organization TLC uses for its multi-worker fingerprint set. High bits are
// uniformly distributed by the structural hash, so shards stay balanced and
// two workers only contend when they simultaneously touch the same 1/N-th of
// fingerprint space. The distinct-state count is a separate atomic so readers
// never take a lock.
#ifndef SANDTABLE_SRC_PAR_FINGERPRINT_SHARDS_H_
#define SANDTABLE_SRC_PAR_FINGERPRINT_SHARDS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace sandtable {
namespace par {

class ShardedFingerprintSet {
 public:
  // 1 << shard_count_log2 shards (default 64).
  explicit ShardedFingerprintSet(int shard_count_log2 = 6);

  ShardedFingerprintSet(const ShardedFingerprintSet&) = delete;
  ShardedFingerprintSet& operator=(const ShardedFingerprintSet&) = delete;

  // Insert fp -> parent_fp if fp is absent; returns true on first insertion
  // (the caller owns expanding the state). parent_fp == fp marks an initial
  // state, matching the serial checker's convention (mc/reconstruct.h).
  bool InsertIfAbsent(uint64_t fp, uint64_t parent_fp);

  // Parent pointer of a visited fingerprint; nullopt if never inserted.
  // Used by the (serial) trace reconstruction after the level barrier.
  std::optional<uint64_t> Parent(uint64_t fp) const;

  // Distinct states inserted so far. Monotonic, lock-free.
  uint64_t size() const { return count_.load(std::memory_order_relaxed); }

  // Pre-size every shard for ~expected_total total fingerprints.
  void Reserve(uint64_t expected_total);

  int shard_count() const { return nshards_; }

  // Per-shard entry counts plus the largest hash-table load factor, for the
  // progress reporter's shard-balance telemetry. Takes each shard lock in
  // turn, so the snapshot is per-shard consistent but not globally atomic —
  // call it from the coordinator (e.g. at a level barrier), not the hot path.
  struct LoadStats {
    std::vector<size_t> sizes;   // entries per shard
    double max_load_factor = 0;  // worst shard's hash-table load factor
  };
  LoadStats Load() const;

 private:
  struct alignas(64) Shard {  // own cache line: the mutex must not false-share
    mutable std::mutex mu;
    std::unordered_map<uint64_t, uint64_t> map;
  };

  // shift_ == 64 (single shard) would be UB in `fp >> shift_`; special-case it.
  size_t ShardIndex(uint64_t fp) const { return shift_ >= 64 ? 0 : fp >> shift_; }

  const int nshards_;
  const int shift_;  // 64 - log2(#shards): shard by high bits
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> count_{0};
};

}  // namespace par
}  // namespace sandtable

#endif  // SANDTABLE_SRC_PAR_FINGERPRINT_SHARDS_H_
