#include "src/par/parallel_bfs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "src/mc/expand.h"
#include "src/mc/reconstruct.h"
#include "src/obs/phase_timer.h"
#include "src/par/fingerprint_shards.h"
#include "src/par/work_queue.h"
#include "src/par/worker_pool.h"
#include "src/util/check.h"

namespace sandtable {

namespace {

using Clock = std::chrono::steady_clock;
using obs::Phase;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Frontier entries carry the fingerprint computed at insertion time, like the
// serial checker: one Fingerprint() evaluation per distinct state.
struct FrontierItem {
  uint64_t fp;
  State state;
};

// A violation discovered by a worker during one level, resolved into a trace
// only after arbitration at the barrier. For state invariants `fp` is the
// violating state; for transition invariants it is the parent, and
// label/state describe the offending edge.
struct ViolationCandidate {
  std::string invariant;
  bool is_transition = false;
  uint64_t fp = 0;
  uint64_t succ_fp = 0;
  ActionLabel label;
  State state;
};

// Deterministic arbitration: all candidates of a level share the same trace
// depth (the level barrier guarantees it), so any fixed order preserves the
// minimal-depth result; this one makes the chosen candidate independent of
// worker count and chunk scheduling.
bool CandidateLess(const ViolationCandidate& a, const ViolationCandidate& b) {
  if (a.invariant != b.invariant) {
    return a.invariant < b.invariant;
  }
  if (a.is_transition != b.is_transition) {
    return !a.is_transition;
  }
  if (a.fp != b.fp) {
    return a.fp < b.fp;
  }
  return a.succ_fp < b.succ_fp;
}

// Everything a worker accumulates privately during a level; merged by the
// coordinator at the barrier (frontier slices, candidates) or at finalization
// (coverage, deadlocks), so workers never share mutable state.
struct WorkerOutput {
  std::vector<FrontierItem> next;
  std::vector<ViolationCandidate> candidates;
  CoverageStats coverage;
  uint64_t deadlocks = 0;
};

}  // namespace

BfsResult ParallelBfsCheck(const Spec& spec, const ParBfsOptions& options) {
  const auto start = Clock::now();
  const BfsOptions& base = options.base;
  BfsResult result;
  const bool use_symmetry = base.use_symmetry && spec.symmetry.has_value();

  const int workers =
      options.workers > 0
          ? options.workers
          : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  // The registry's counters and histograms are internally sharded, so workers
  // record into `m` concurrently without further coordination.
  const obs::ExplorationMetrics m = obs::ExplorationMetrics::Bind(base.metrics);
  obs::Set(m.workers, workers);

  par::ShardedFingerprintSet visited(options.shard_count_log2);
  visited.Reserve(options.reserve_states > 0 ? options.reserve_states : (1 << 16));

  const ParentLookup parent_of = [&visited](uint64_t fp) { return visited.Parent(fp); };

  std::vector<WorkerOutput> outs(static_cast<size_t>(workers));

  auto record_violation = [&](const std::string& invariant, bool is_transition,
                              std::vector<TraceStep> trace) {
    obs::Add(m.violations);
    if (result.violation.has_value()) {
      return;  // keep the first (minimal-depth) violation
    }
    Violation v;
    v.invariant = invariant;
    v.is_transition_invariant = is_transition;
    v.depth = trace.empty() ? 0 : trace.size() - 1;
    v.trace = std::move(trace);
    v.states_explored = visited.size();
    v.seconds = SecondsSince(start);
    result.violation = std::move(v);
  };

  // Single exit point, same semantics as serial BfsCheck's finalize.
  auto finalize = [&](uint64_t depth, bool frontier_drained) -> BfsResult& {
    for (WorkerOutput& out : outs) {
      result.coverage.Merge(out.coverage);
      result.deadlock_states += out.deadlocks;
      out.coverage = CoverageStats{};
      out.deadlocks = 0;
    }
    result.distinct_states = visited.size();
    result.depth_reached = depth;
    result.exhausted = frontier_drained && !result.hit_state_limit &&
                       !result.hit_time_limit &&
                       !(result.violation.has_value() && base.stop_at_first_violation);
    result.seconds = SecondsSince(start);
    return result;
  };

  // Seed with initial states (serial; also primes the symmetry-context epoch
  // on the coordinator before any worker fingerprints concurrently).
  std::vector<FrontierItem> frontier;
  for (const State& init : spec.init_states) {
    const uint64_t fp = Fingerprint(spec, init, use_symmetry);
    if (!visited.InsertIfAbsent(fp, fp)) {
      continue;
    }
    obs::Add(m.distinct_states);
    obs::Add(m.invariant_checks);
    const std::string bad = CheckInvariants(spec, init);
    if (!bad.empty()) {
      record_violation(bad, false, {TraceStep{ActionLabel{}, init}});
      if (base.stop_at_first_violation) {
        return finalize(0, false);
      }
    }
    if (spec.WithinConstraint(init)) {
      frontier.push_back(FrontierItem{fp, init});
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> hit_state_limit{false};
  std::atomic<bool> hit_time_limit{false};

  par::WorkerPool pool(workers);

  uint64_t depth = 0;

  while (!frontier.empty()) {
    if (depth >= base.max_depth) {
      return finalize(depth, false);
    }
    obs::SetMax(m.frontier_peak, static_cast<int64_t>(frontier.size()));

    par::WorkQueue queue(frontier.size(), options.chunk_size);
    pool.RunLevel([&](int w) {
      WorkerOutput& out = outs[static_cast<size_t>(w)];
      size_t begin = 0;
      size_t end = 0;
      while (!stop.load(std::memory_order_relaxed) && queue.NextChunk(&begin, &end)) {
        for (size_t i = begin; i < end; ++i) {
          const FrontierItem& item = frontier[i];
          std::vector<Successor> succs;
          {
            obs::PhaseTimer t(m.phase(Phase::kExpand));
            obs::Add(m.expand_calls);
            succs = ExpandAll(spec, item.state, &out.coverage);
          }
          if (succs.empty()) {
            ++out.deadlocks;
            obs::Add(m.deadlocks);
            continue;
          }
          obs::Add(m.generated, succs.size());
          for (Successor& s : succs) {
            out.coverage.RecordEvent(s.label.kind);
            uint64_t fp;
            {
              obs::PhaseTimer t(m.phase(Phase::kCanonicalize));
              fp = Fingerprint(spec, s.state, use_symmetry);
            }

            // Transition invariants hold on every edge, including edges back
            // to already-visited states.
            std::string bad_edge;
            {
              obs::PhaseTimer t(m.phase(Phase::kInvariants));
              obs::Add(m.transition_checks);
              bad_edge = CheckTransitionInvariants(spec, item.state, s.label, s.state);
            }
            if (!bad_edge.empty()) {
              out.candidates.push_back(
                  ViolationCandidate{bad_edge, true, item.fp, fp, s.label, s.state});
            }

            bool duplicate;
            {
              obs::PhaseTimer t(m.phase(Phase::kFingerprint));
              duplicate = !visited.InsertIfAbsent(fp, item.fp);
            }
            if (duplicate) {
              obs::Add(m.duplicates);
              continue;
            }
            obs::Add(m.distinct_states);
            std::string bad;
            {
              obs::PhaseTimer t(m.phase(Phase::kInvariants));
              obs::Add(m.invariant_checks);
              bad = CheckInvariants(spec, s.state);
            }
            if (!bad.empty()) {
              out.candidates.push_back(
                  ViolationCandidate{bad, false, fp, fp, ActionLabel{}, State{}});
            }
            if (visited.size() >= base.max_distinct_states) {
              hit_state_limit.store(true, std::memory_order_relaxed);
              stop.store(true, std::memory_order_relaxed);
            }
            if (spec.WithinConstraint(s.state)) {
              out.next.push_back(FrontierItem{fp, std::move(s.state)});
            }
          }
        }
        if (SecondsSince(start) > base.time_budget_s) {
          hit_time_limit.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
        }
      }
    });

    // ---- Level barrier: the coordinator owns everything again. -------------

    // Arbitrate this level's violation candidates and reconstruct the winner's
    // trace serially over the sharded parent pointers.
    const ViolationCandidate* best = nullptr;
    for (const WorkerOutput& out : outs) {
      for (const ViolationCandidate& c : out.candidates) {
        if (best == nullptr || CandidateLess(c, *best)) {
          best = &c;
        }
      }
    }
    if (best != nullptr && !result.violation.has_value()) {
      std::vector<TraceStep> trace;
      {
        obs::PhaseTimer t(m.phase(Phase::kReconstruct));
        obs::Add(m.reconstructions);
        trace = ReconstructTrace(spec, parent_of, best->fp, use_symmetry);
      }
      if (best->is_transition) {
        trace.push_back(TraceStep{best->label, best->state});
      }
      record_violation(best->invariant, best->is_transition, std::move(trace));
    }
    for (WorkerOutput& out : outs) {
      out.candidates.clear();
    }
    if (result.violation.has_value() && base.stop_at_first_violation) {
      return finalize(depth, false);
    }

    if (hit_state_limit.load(std::memory_order_relaxed)) {
      result.hit_state_limit = true;
      return finalize(depth, false);
    }
    if (hit_time_limit.load(std::memory_order_relaxed)) {
      result.hit_time_limit = true;
      return finalize(depth, false);
    }

    // Progress is sampled at the level barrier, where per-worker queue depths
    // and shard balance can be read without racing the workers.
    if (base.progress != nullptr && base.progress->Due(visited.size())) {
      obs::ProgressSample sample;
      sample.engine = "parallel_bfs";
      sample.elapsed_s = SecondsSince(start);
      sample.distinct_states = visited.size();
      sample.depth = depth + 1;
      sample.deadlocks = 0;
      uint64_t frontier_total = 0;
      for (const WorkerOutput& out : outs) {
        sample.worker_queue_depths.push_back(out.next.size());
        frontier_total += out.next.size();
        sample.deadlocks += out.deadlocks;
        sample.transitions += out.coverage.transitions;
      }
      sample.frontier = frontier_total;
      const par::ShardedFingerprintSet::LoadStats load = visited.Load();
      obs::ShardLoad shard_load;
      shard_load.shards = load.sizes.size();
      shard_load.max_load_factor = load.max_load_factor;
      size_t min_size = load.sizes.empty() ? 0 : load.sizes[0];
      size_t max_size = 0;
      size_t total = 0;
      for (size_t sz : load.sizes) {
        min_size = std::min(min_size, sz);
        max_size = std::max(max_size, sz);
        total += sz;
      }
      shard_load.min_size = min_size;
      shard_load.max_size = max_size;
      shard_load.avg_size =
          load.sizes.empty() ? 0.0
                             : static_cast<double>(total) / static_cast<double>(load.sizes.size());
      sample.shard_load = shard_load;
      base.progress->Emit(sample);
    }

    // Concatenate the workers' next-frontier slices. Each distinct state was
    // inserted by exactly one worker, so the union is duplicate-free.
    size_t total = 0;
    for (const WorkerOutput& out : outs) {
      total += out.next.size();
    }
    frontier.clear();
    frontier.reserve(total);
    for (WorkerOutput& out : outs) {
      for (FrontierItem& item : out.next) {
        frontier.push_back(std::move(item));
      }
      out.next.clear();
    }
    obs::Add(m.levels);
    obs::Set(m.frontier, static_cast<int64_t>(frontier.size()));
    if (!frontier.empty()) {
      ++depth;
    }
  }

  return finalize(depth, /*frontier_drained=*/true);
}

}  // namespace sandtable
