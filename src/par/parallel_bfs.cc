#include "src/par/parallel_bfs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/mc/expand.h"
#include "src/mc/reconstruct.h"
#include "src/obs/phase_timer.h"
#include "src/obs/trace.h"
#include "src/par/bfs_internal.h"
#include "src/par/fingerprint_shards.h"
#include "src/par/steal.h"
#include "src/par/work_queue.h"
#include "src/par/worker_pool.h"
#include "src/store/checkpoint.h"
#include "src/store/frontier.h"
#include "src/store/state_store.h"
#include "src/util/check.h"

namespace sandtable {

namespace {

using Clock = std::chrono::steady_clock;
using obs::Phase;
using par_internal::CandidateLess;
using par_internal::FrontierItem;
using par_internal::ViolationCandidate;
using par_internal::WorkerOutput;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

BfsResult ParallelBfsCheck(const Spec& spec, const ParBfsOptions& options) {
  if (options.steal) {
    return WorkStealingBfsCheck(spec, options);
  }
  const auto start = Clock::now();
  const BfsOptions& base = options.base;
  BfsResult result;
  const bool use_symmetry = base.use_symmetry && spec.symmetry.has_value();

  const int workers =
      options.workers > 0
          ? options.workers
          : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  // The registry's counters and histograms are internally sharded, so workers
  // record into `m` concurrently without further coordination.
  const obs::ExplorationMetrics m = obs::ExplorationMetrics::Bind(base.metrics);
  obs::Set(m.workers, workers);

  // Out-of-core wiring, mirroring serial BfsCheck: with no OocConfig every
  // branch picks the original in-memory structure.
  store::StateStore* sstore = base.ooc.state_store;
  const store::SpoolConfig* spool_cfg = base.ooc.frontier_spool;
  store::Checkpointer* ckpt = base.ooc.checkpointer;
  const store::ResumedRun* resume = base.ooc.resume;
  if (ckpt != nullptr || resume != nullptr) {
    CHECK(sstore != nullptr && spool_cfg != nullptr)
        << "checkpoint/resume requires ooc.state_store and ooc.frontier_spool";
  }
  const bool use_spool = spool_cfg != nullptr;

  par::ShardedFingerprintSet visited(options.shard_count_log2);
  if (sstore == nullptr) {
    visited.Reserve(options.reserve_states > 0 ? options.reserve_states : (1 << 16));
  }

  // Thread-safe either way: the store is internally sharded, and so is the
  // fingerprint set.
  auto insert_visited = [&](uint64_t fp, uint64_t parent_fp) {
    return sstore != nullptr ? sstore->InsertIfAbsent(fp, parent_fp)
                             : visited.InsertIfAbsent(fp, parent_fp);
  };
  auto distinct = [&]() -> uint64_t {
    return sstore != nullptr ? sstore->Size() : visited.size();
  };
  const ParentLookup parent_of = [&](uint64_t fp) -> std::optional<uint64_t> {
    return sstore != nullptr ? sstore->Parent(fp) : visited.Parent(fp);
  };
  // Hash-compacted stores keep no ancestry; counterexamples are then rebuilt
  // by a bounded re-search instead of the parent-chain walk.
  const bool parents_available = sstore == nullptr || sstore->RetainsParents();
  result.hash_compact = !parents_available;

  std::vector<WorkerOutput> outs(static_cast<size_t>(workers));
  obs::ExplorationProfile* profile = base.analytics;
  if (profile != nullptr) {
    if (!profile->initialized()) {
      InitProfileFromSpec(profile, spec);
    }
    for (WorkerOutput& out : outs) {
      InitProfileFromSpec(&out.profile, spec);
    }
  }
  // Barrier-side profile merge: fold each worker's slice into the main
  // profile, zero the slices (keeping their interned branch slots), and sync
  // newly seen branch names into the coverage set once per level.
  auto merge_worker_profiles = [&]() {
    if (profile == nullptr) {
      return;
    }
    for (WorkerOutput& out : outs) {
      profile->MergeCounts(out.profile);
      out.profile.ResetCounts();
    }
    std::vector<std::string> names;
    profile->DrainNewBranches(&names);
    for (std::string& n : names) {
      result.coverage.branches.insert(std::move(n));
    }
  };

  // Set at the barrier when the hash-compacted re-search misses its target
  // (fingerprint collision); record_violation copies it onto the violation so
  // the run degrades to a trace-less report instead of aborting.
  std::string reconstruct_error;
  auto record_violation = [&](const std::string& invariant, bool is_transition,
                              std::vector<TraceStep> trace) {
    obs::Add(m.violations);
    if (result.violation.has_value()) {
      return;  // keep the first (minimal-depth) violation
    }
    Violation v;
    v.invariant = invariant;
    v.is_transition_invariant = is_transition;
    v.trace_error = reconstruct_error;
    v.depth = trace.empty() ? 0 : trace.size() - 1;
    v.trace = std::move(trace);
    v.states_explored = distinct();
    v.seconds = SecondsSince(start);
    result.violation = std::move(v);
  };

  // Frontier: one vector per level in-memory; spools when configured. The
  // spool path processes a level in bounded waves so at most max_resident
  // decoded states are pinned at once.
  std::vector<FrontierItem> frontier;
  std::unique_ptr<store::FrontierSpool> cur_spool;
  std::unique_ptr<store::FrontierSpool> next_spool;
  uint64_t spool_seq = 0;
  auto new_spool = [&]() {
    char name[48];
    std::snprintf(name, sizeof(name), "par-frontier-%06llu.seg",
                  static_cast<unsigned long long>(spool_seq++));
    return std::make_unique<store::FrontierSpool>(spool_cfg, name);
  };
  if (use_spool) {
    cur_spool = new_spool();
    next_spool = new_spool();
  }
  auto frontier_size = [&]() -> uint64_t {
    return use_spool ? cur_spool->size() : frontier.size();
  };
  auto push_cur = [&](uint64_t fp, State state) {
    if (use_spool) {
      const Status st = cur_spool->Push(fp, std::move(state));
      CHECK(st.ok()) << "frontier spill failed: " << st.error();
    } else {
      frontier.push_back(FrontierItem{fp, std::move(state)});
    }
  };

  // Single exit point, same semantics as serial BfsCheck's finalize.
  auto finalize = [&](uint64_t final_depth, bool frontier_drained) -> BfsResult& {
    merge_worker_profiles();
    if (profile != nullptr) {
      profile->SetDistinctStates(distinct());
    }
    for (WorkerOutput& out : outs) {
      result.coverage.Merge(out.coverage);
      result.deadlock_states += out.deadlocks;
      out.coverage = CoverageStats{};
      out.deadlocks = 0;
    }
    result.distinct_states = distinct();
    result.depth_reached = final_depth;
    result.exhausted = frontier_drained && !result.hit_state_limit &&
                       !result.hit_time_limit && !result.cancelled &&
                       !(result.violation.has_value() && base.stop_at_first_violation);
    result.seconds = SecondsSince(start);
    if (result.hash_compact) {
      result.collision_probability =
          obs::ExplorationProfile::CollisionProbability(result.distinct_states);
    }
    return result;
  };

  uint64_t depth = 0;
  double base_seconds = 0;  // wall time carried over from a resumed checkpoint
  uint64_t resumed_deadlocks = 0;

  if (resume != nullptr) {
    // Seed from the checkpoint. The caller already loaded the visited runs
    // into the state store, so distinct() reflects the checkpoint's count.
    CHECK(resume->meta.hash_compact == result.hash_compact)
        << "resume mode mismatch: checkpoint "
        << (resume->meta.hash_compact ? "was" : "was not")
        << " written with a hash-compacted store, this run "
        << (result.hash_compact ? "is" : "is not") << " using one";
    const store::CheckpointMeta& meta = resume->meta;
    depth = meta.depth_reached;
    base_seconds = meta.seconds;
    resumed_deadlocks = meta.deadlock_states;
    result.deadlock_states = meta.deadlock_states;
    if (!meta.coverage.is_null()) {
      auto cov = CoverageStats::FromFullJson(meta.coverage);
      CHECK(cov.ok()) << "resume: " << cov.error();
      result.coverage = std::move(cov).value();
    }
    if (profile != nullptr && !meta.analytics.is_null()) {
      auto prior = obs::ExplorationProfile::FromJson(meta.analytics);
      CHECK(prior.ok()) << "resume: " << prior.error();
      profile->MergeCounts(prior.value());
      // The merged branch names are already in the restored coverage set.
      std::vector<std::string> drained;
      profile->DrainNewBranches(&drained);
    }
    const Status st = store::ForEachSegmentEntry(
        resume->frontier_path, [&](uint64_t fp, State&& state) -> Status {
          push_cur(fp, std::move(state));
          return Status();
        });
    CHECK(st.ok()) << "resume: " << st.error();
    if (ckpt != nullptr) {
      ckpt->SeedCadence(meta.distinct_states);
    }
  } else {
    // Seed with initial states (serial; also primes the symmetry-context epoch
    // on the coordinator before any worker fingerprints concurrently).
    for (const State& init : spec.init_states) {
      const uint64_t fp = Fingerprint(spec, init, use_symmetry);
      if (!insert_visited(fp, fp)) {
        continue;
      }
      obs::Add(m.distinct_states);
      obs::Add(m.invariant_checks);
      const std::string bad = CheckInvariants(spec, init, profile);
      if (!bad.empty()) {
        record_violation(bad, false, {TraceStep{ActionLabel{}, init}});
        if (base.stop_at_first_violation) {
          return finalize(0, false);
        }
      }
      if (spec.WithinConstraint(init)) {
        push_cur(fp, init);
      }
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> hit_state_limit{false};
  std::atomic<bool> hit_time_limit{false};
  std::atomic<bool> cancel_hit{false};

  par::WorkerPool pool(workers);

  // Expand one batch of frontier items across the pool; workers buffer their
  // results in outs[]. Candidates accumulate across the waves of one level.
  // Returns the claimed-prefix length: on an early stop, items[claimed..) were
  // never expanded and belong in the final checkpoint's frontier.
  auto run_wave = [&](const std::vector<FrontierItem>& items) -> size_t {
    par::WorkQueue queue(items.size(), options.chunk_size);
    pool.RunLevel([&](int w) {
      WorkerOutput& out = outs[static_cast<size_t>(w)];
      obs::ExplorationProfile* wp = profile != nullptr ? &out.profile : nullptr;
      // One lane-local span per wave: in the trace, a worker's life is
      // alternating worker.wave (busy) and barrier.wait (idle) spans.
      obs::TraceSpan wave_span("worker.wave", "worker", w, "items",
                               static_cast<int64_t>(items.size()));
      size_t begin = 0;
      size_t end = 0;
      while (!stop.load(std::memory_order_relaxed) && queue.NextChunk(&begin, &end)) {
        for (size_t i = begin; i < end; ++i) {
          const FrontierItem& item = items[i];
          std::vector<Successor> succs;
          {
            obs::PhaseTimer t(m, Phase::kExpand);
            obs::Add(m.expand_calls);
            succs = ExpandAll(spec, item.state, &out.coverage, wp);
          }
          if (succs.empty()) {
            ++out.deadlocks;
            obs::Add(m.deadlocks);
            continue;
          }
          obs::Add(m.generated, succs.size());
          for (Successor& s : succs) {
            out.coverage.RecordEvent(s.label.kind);
            uint64_t fp;
            {
              obs::PhaseTimer t(m, Phase::kCanonicalize);
              fp = Fingerprint(spec, s.state, use_symmetry);
            }

            // Transition invariants hold on every edge, including edges back
            // to already-visited states.
            std::string bad_edge;
            {
              obs::PhaseTimer t(m, Phase::kInvariants);
              obs::Add(m.transition_checks);
              bad_edge = CheckTransitionInvariants(spec, item.state, s.label,
                                                   s.state, wp);
            }
            if (!bad_edge.empty()) {
              out.candidates.push_back(
                  ViolationCandidate{bad_edge, true, item.fp, fp, s.label, s.state});
            }

            bool duplicate;
            {
              obs::PhaseTimer t(m, Phase::kFingerprint);
              duplicate = !insert_visited(fp, item.fp);
            }
            if (duplicate) {
              obs::Add(m.duplicates);
              if (wp != nullptr) {
                wp->RecordDuplicate(s.action_index);
              }
              continue;
            }
            obs::Add(m.distinct_states);
            std::string bad;
            {
              obs::PhaseTimer t(m, Phase::kInvariants);
              obs::Add(m.invariant_checks);
              bad = CheckInvariants(spec, s.state, wp);
            }
            if (!bad.empty()) {
              out.candidates.push_back(
                  ViolationCandidate{bad, false, fp, fp, ActionLabel{}, State{}});
            }
            if (distinct() >= base.max_distinct_states) {
              hit_state_limit.store(true, std::memory_order_relaxed);
              stop.store(true, std::memory_order_relaxed);
            }
            if (spec.WithinConstraint(s.state)) {
              out.next.push_back(FrontierItem{fp, std::move(s.state)});
            }
          }
        }
        if (StopRequested(base.stop)) {
          cancel_hit.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
        }
        if (SecondsSince(start) > base.time_budget_s) {
          hit_time_limit.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
        }
      }
    });
    return queue.Claimed();
  };

  auto write_checkpoint = [&]() {
    store::CheckpointMeta meta;
    meta.distinct_states = distinct();
    meta.depth_reached = depth;
    meta.frontier_size = cur_spool->size();
    meta.seconds = base_seconds + SecondsSince(start);
    meta.use_symmetry = use_symmetry;
    meta.hash_compact = result.hash_compact;
    // Merged coverage so far: result.coverage plus the workers' live stats.
    CoverageStats cov = result.coverage;
    uint64_t deadlocks = resumed_deadlocks;
    for (const WorkerOutput& out : outs) {
      cov.Merge(out.coverage);
      deadlocks += out.deadlocks;
    }
    meta.deadlock_states = deadlocks;
    if (profile != nullptr) {
      // Copy-merge the live worker slices (mirrors the coverage copy-merge
      // above): the cancel-path checkpoint runs before the barrier merge, the
      // level-boundary one after — merging already-reset slices is a no-op.
      obs::ExplorationProfile prof = *profile;
      for (const WorkerOutput& out : outs) {
        prof.MergeCounts(out.profile);
      }
      prof.SetDistinctStates(distinct());
      std::vector<std::string> names;
      prof.DrainNewBranches(&names);
      for (std::string& n : names) {
        cov.branches.insert(std::move(n));
      }
      meta.analytics = prof.ToJson();
    }
    meta.coverage = cov.ToFullJson();
    if (base.metrics != nullptr) {
      meta.metrics = base.metrics->Snapshot().ToJson();
    }
    const Status st = ckpt->Write(*sstore, *cur_spool, std::move(meta));
    if (!st.ok()) {
      std::fprintf(stderr, "sandtable: checkpoint write failed: %s\n",
                   st.error().c_str());
    }
  };

  while (frontier_size() > 0) {
    if (depth >= base.max_depth) {
      return finalize(depth, false);
    }
    obs::TraceSpan level_span("bfs.level", "level",
                              static_cast<int64_t>(depth), "frontier",
                              static_cast<int64_t>(frontier_size()));
    obs::SetMax(m.frontier_peak, static_cast<int64_t>(frontier_size()));
    if (profile != nullptr) {
      profile->RecordLevel(depth, frontier_size());
    }

    if (use_spool) {
      // Bounded waves: decode up to max_resident states, expand them, flush
      // the workers' next-frontier slices into the next spool, repeat.
      store::FrontierSpool::Reader reader = cur_spool->Read();
      const uint64_t wave_cap = spool_cfg->max_resident > 0
                                    ? spool_cfg->max_resident
                                    : cur_spool->size();
      std::vector<FrontierItem> wave;
      size_t claimed = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        wave.clear();
        uint64_t fp;
        State state;
        while (wave.size() < wave_cap && reader.Next(&fp, &state)) {
          wave.push_back(FrontierItem{fp, std::move(state)});
        }
        CHECK(reader.status().ok())
            << "frontier read failed: " << reader.status().error();
        if (wave.empty()) {
          break;
        }
        claimed = run_wave(wave);
        for (WorkerOutput& out : outs) {
          for (FrontierItem& item : out.next) {
            const Status st = next_spool->Push(item.fp, std::move(item.state));
            CHECK(st.ok()) << "frontier spill failed: " << st.error();
          }
          out.next.clear();
        }
      }
      if (cancel_hit.load(std::memory_order_relaxed) && ckpt != nullptr) {
        bool has_candidates = false;
        for (const WorkerOutput& out : outs) {
          has_candidates = has_candidates || !out.candidates.empty();
        }
        if (!(has_candidates && base.stop_at_first_violation)) {
          // Final checkpoint for a cancellation stop only, mirroring serial
          // BfsCheck: the unexpanded tail of the stopped wave plus the unread
          // remainder of the level joins the generated successors, so the
          // checkpointed frontier is exactly the set of unexpanded states.
          // Budget stops keep the last level-boundary checkpoint so a resumed
          // run reproduces an uninterrupted one.
          for (size_t i = claimed; i < wave.size(); ++i) {
            const Status st =
                next_spool->Push(wave[i].fp, std::move(wave[i].state));
            CHECK(st.ok()) << "frontier spill failed: " << st.error();
          }
          uint64_t fp;
          State state;
          while (reader.Next(&fp, &state)) {
            const Status st = next_spool->Push(fp, std::move(state));
            CHECK(st.ok()) << "frontier spill failed: " << st.error();
          }
          CHECK(reader.status().ok())
              << "frontier read failed: " << reader.status().error();
          cur_spool = std::move(next_spool);
          next_spool = new_spool();
          write_checkpoint();
        }
      }
    } else {
      run_wave(frontier);
    }

    // ---- Level barrier: the coordinator owns everything again. -------------

    merge_worker_profiles();

    // Arbitrate this level's violation candidates and reconstruct the winner's
    // trace serially over the sharded parent pointers.
    const ViolationCandidate* best = nullptr;
    for (const WorkerOutput& out : outs) {
      for (const ViolationCandidate& c : out.candidates) {
        if (best == nullptr || CandidateLess(c, *best)) {
          best = &c;
        }
      }
    }
    if (best != nullptr && !result.violation.has_value()) {
      std::vector<TraceStep> trace;
      reconstruct_error.clear();
      {
        obs::PhaseTimer t(m, Phase::kReconstruct);
        obs::Add(m.reconstructions);
        trace = parents_available
                    ? ReconstructTrace(spec, parent_of, best->fp, use_symmetry)
                    : ReconstructTraceResearch(spec, best->fp, depth + 2,
                                               use_symmetry, &reconstruct_error);
      }
      if (best->is_transition && !trace.empty()) {
        trace.push_back(TraceStep{best->label, best->state});
      }
      record_violation(best->invariant, best->is_transition, std::move(trace));
    }
    for (WorkerOutput& out : outs) {
      out.candidates.clear();
    }
    if (result.violation.has_value() && base.stop_at_first_violation) {
      return finalize(depth, false);
    }

    if (cancel_hit.load(std::memory_order_relaxed)) {
      result.cancelled = true;
      return finalize(depth, false);
    }
    if (hit_state_limit.load(std::memory_order_relaxed)) {
      result.hit_state_limit = true;
      return finalize(depth, false);
    }
    if (hit_time_limit.load(std::memory_order_relaxed)) {
      result.hit_time_limit = true;
      return finalize(depth, false);
    }

    // Progress is sampled at the level barrier, where per-worker queue depths
    // and shard balance can be read without racing the workers.
    if (base.progress != nullptr && base.progress->Due(distinct())) {
      obs::ProgressSample sample;
      sample.engine = "parallel_bfs";
      sample.elapsed_s = SecondsSince(start);
      sample.distinct_states = distinct();
      sample.depth = depth + 1;
      sample.deadlocks = 0;
      uint64_t frontier_total = 0;
      for (const WorkerOutput& out : outs) {
        sample.worker_queue_depths.push_back(out.next.size());
        frontier_total += out.next.size();
        sample.deadlocks += out.deadlocks;
        sample.transitions += out.coverage.transitions;
      }
      if (use_spool) {
        frontier_total = next_spool->size();
      }
      sample.frontier = frontier_total;
      if (sstore == nullptr) {
        const par::ShardedFingerprintSet::LoadStats load = visited.Load();
        obs::ShardLoad shard_load;
        shard_load.shards = load.sizes.size();
        shard_load.max_load_factor = load.max_load_factor;
        size_t min_size = load.sizes.empty() ? 0 : load.sizes[0];
        size_t max_size = 0;
        size_t total = 0;
        for (size_t sz : load.sizes) {
          min_size = std::min(min_size, sz);
          max_size = std::max(max_size, sz);
          total += sz;
        }
        shard_load.min_size = min_size;
        shard_load.max_size = max_size;
        shard_load.avg_size =
            load.sizes.empty() ? 0.0
                               : static_cast<double>(total) / static_cast<double>(load.sizes.size());
        sample.shard_load = shard_load;
      }
      sample.event_kinds = result.coverage.DistinctEventKinds();
      sample.branches = result.coverage.branches.size();
      if (profile != nullptr) {
        sample.analytics = profile->SummaryJson(3);
      }
      base.progress->Emit(sample);
    }

    // Concatenate the workers' next-frontier slices. Each distinct state was
    // inserted by exactly one worker, so the union is duplicate-free. (In the
    // spool path the slices were already flushed per wave.)
    {
      obs::TraceSpan merge_span("bfs.merge");
      if (use_spool) {
        cur_spool = std::move(next_spool);
        next_spool = new_spool();
      } else {
        size_t total = 0;
        for (const WorkerOutput& out : outs) {
          total += out.next.size();
        }
        frontier.clear();
        frontier.reserve(total);
        for (WorkerOutput& out : outs) {
          for (FrontierItem& item : out.next) {
            frontier.push_back(std::move(item));
          }
          out.next.clear();
        }
      }
    }
    obs::Add(m.levels);
    obs::Set(m.frontier, static_cast<int64_t>(frontier_size()));
    obs::TraceCounter("distinct_states", static_cast<int64_t>(distinct()));
    obs::TraceCounter("frontier", static_cast<int64_t>(frontier_size()));
    if (frontier_size() > 0) {
      ++depth;
    }
    if (ckpt != nullptr && ckpt->Due(distinct())) {
      write_checkpoint();
    }
  }

  return finalize(depth, /*frontier_drained=*/true);
}

}  // namespace sandtable
