// Parallel stateful breadth-first model checking: the multi-worker analogue
// of mc/bfs.h, mirroring TLC's multi-worker explorer.
//
// Architecture (level-synchronized):
//   - the current frontier is immutable for the duration of a level; workers
//     claim chunks of it through an atomic cursor (par/work_queue.h);
//   - visited fingerprints and parent pointers live in a lock-striped
//     sharded set (par/fingerprint_shards.h) — `fp -> parent_fp` is stored in
//     the shard that owns `fp`;
//   - each worker buffers its slice of the next frontier, its coverage stats
//     and any violation candidates locally; the coordinator merges them at
//     the level barrier (par/worker_pool.h) with no further locking.
//
// Minimal-depth guarantee: because no worker starts level d+1 before every
// state of level d is expanded, any violation discovered during level d's
// expansion has trace depth exactly d+1, and the first level that yields a
// candidate yields the globally minimal depth. Workers race within a level,
// but arbitration at the barrier picks a deterministic candidate, so the
// reported violation depth equals serial BFS's. Unlike the serial checker the
// engine finishes the level before stopping, which also makes
// distinct_states/depth_reached independent of the worker count.
//
// Trace reconstruction is serial (after the barrier) and reuses the shared
// mc/reconstruct.h replay over the sharded parent pointers.
//
// Symmetry caveat: under symmetry reduction the checker stores one
// representative state per orbit — whichever reaches the fingerprint set
// first. When the declared symmetry is a true symmetry of the actions
// (successor sets commute with the permutations, e.g. the Raft spec or
// tests' TokenRing), representative choice cannot change the explored
// quotient and the worker-count independence above still holds exactly. When
// it is only an abstraction — e.g. the Zab spec, whose election tie-breaks
// on the server id — the reachable quotient depends on which representative
// wins the race, so distinct_states may differ slightly between worker
// counts (serial and workers=1 remain bit-identical; exploration stays sound
// either way). tests/test_par.cc covers both situations.
#ifndef SANDTABLE_SRC_PAR_PARALLEL_BFS_H_
#define SANDTABLE_SRC_PAR_PARALLEL_BFS_H_

#include <cstddef>

#include "src/mc/bfs.h"
#include "src/spec/spec.h"

namespace sandtable {

struct ParBfsOptions {
  // Limits, symmetry, progress and stop behaviour are shared with serial BFS.
  BfsOptions base;
  // Worker threads; 0 = std::thread::hardware_concurrency().
  int workers = 0;
  // log2 of the fingerprint-set shard count (default 64 shards).
  int shard_count_log2 = 6;
  // Frontier states claimed per cursor bump. The work-stealing engine reuses
  // it as the stealable chunk granularity.
  size_t chunk_size = 64;
  // Pre-size the fingerprint shards for this many states (0 = default).
  uint64_t reserve_states = 0;
  // Use the work-stealing scheduler (par/steal.h) instead of the
  // level-synchronized chunk cursor: ParallelBfsCheck then forwards to
  // WorkStealingBfsCheck. Same result contract, same minimal-depth guarantee
  // (epochs are synchronized at the same barriers as levels); fast workers
  // steal frontier chunks from slow ones instead of idling at the barrier.
  bool steal = false;
};

// Explores `spec` with a pool of workers and returns the same BfsResult as
// BfsCheck. On a fully explored space, distinct_states, depth_reached,
// deadlock_states, exhausted and coverage are identical to serial BFS for
// every worker count; with a violation, the reported depth is identical
// (minimal), while states_explored reflects the completed level.
BfsResult ParallelBfsCheck(const Spec& spec, const ParBfsOptions& options = {});

}  // namespace sandtable

#endif  // SANDTABLE_SRC_PAR_PARALLEL_BFS_H_
