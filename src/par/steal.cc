// Work-stealing parallel BFS engine. See steal.h for the scheduling model.
//
// The hot loop (expand / transition invariants / visited insert / state
// invariants / constraint gate) is a line-for-line mirror of
// parallel_bfs.cc's run_wave, and candidate arbitration uses the shared
// par_internal::CandidateLess — those two facts together are the equivalence
// argument the differential harness (tests/test_differential.cc) pins down:
// every epoch-d item is expanded before any epoch-(d+1) item, so the
// candidate set at a barrier equals the level-sync engine's candidate set at
// the same level, and the same deterministic arbitration picks the same
// violation.
#include "src/par/steal.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/mc/expand.h"
#include "src/mc/reconstruct.h"
#include "src/obs/phase_timer.h"
#include "src/obs/trace.h"
#include "src/par/bfs_internal.h"
#include "src/par/fingerprint_shards.h"
#include "src/store/checkpoint.h"
#include "src/store/frontier.h"
#include "src/store/state_store.h"
#include "src/util/check.h"

namespace sandtable {

namespace {

using Clock = std::chrono::steady_clock;
using obs::Phase;
using par_internal::CandidateLess;
using par_internal::FrontierItem;
using par_internal::ViolationCandidate;
using par_internal::WorkerOutput;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The unit of scheduling: an epoch-tagged batch of frontier items. Deques
// hold owning raw pointers (chase-lev slots must be trivially copyable); a
// chunk is deleted by whichever worker claims it, or by the coordinator when
// draining a stopped run.
struct StealChunk {
  uint64_t epoch = 0;
  std::vector<FrontierItem> items;
};

using ChunkDeque = par::ChaseLevDeque<StealChunk*>;

// Coordinator/worker epoch barrier. `round` releases an epoch; `arrived`
// collects the workers back. cur_side / epoch / pending are written by the
// coordinator strictly between epochs (all workers parked), published to the
// workers by the mutex that guards `round`.
struct EpochSync {
  std::mutex mu;
  std::condition_variable start_cv;  // coordinator -> workers: epoch released
  std::condition_variable done_cv;   // workers -> coordinator: all arrived
  uint64_t round = 0;
  int arrived = 0;
  bool shutdown = false;
  int cur_side = 0;      // which of the two deque arrays is the current epoch
  uint64_t epoch = 0;    // BFS depth of the current epoch's items
};

}  // namespace

BfsResult WorkStealingBfsCheck(const Spec& spec, const ParBfsOptions& options) {
  const auto start = Clock::now();
  const BfsOptions& base = options.base;
  BfsResult result;
  const bool use_symmetry = base.use_symmetry && spec.symmetry.has_value();

  const int workers =
      options.workers > 0
          ? options.workers
          : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const size_t chunk_size = std::max<size_t>(1, options.chunk_size);
  const obs::ExplorationMetrics m = obs::ExplorationMetrics::Bind(base.metrics);
  obs::Set(m.workers, workers);

  // Out-of-core wiring, mirroring parallel_bfs.cc. The steal engine keeps its
  // live frontier in deque chunks in memory; the spool config is used to
  // materialize checkpoint segments (and can spill those to disk).
  store::StateStore* sstore = base.ooc.state_store;
  const store::SpoolConfig* spool_cfg = base.ooc.frontier_spool;
  store::Checkpointer* ckpt = base.ooc.checkpointer;
  const store::ResumedRun* resume = base.ooc.resume;
  if (ckpt != nullptr || resume != nullptr) {
    CHECK(sstore != nullptr && spool_cfg != nullptr)
        << "checkpoint/resume requires ooc.state_store and ooc.frontier_spool";
  }

  par::ShardedFingerprintSet visited(options.shard_count_log2);
  if (sstore == nullptr) {
    visited.Reserve(options.reserve_states > 0 ? options.reserve_states : (1 << 16));
  }

  auto insert_visited = [&](uint64_t fp, uint64_t parent_fp) {
    return sstore != nullptr ? sstore->InsertIfAbsent(fp, parent_fp)
                             : visited.InsertIfAbsent(fp, parent_fp);
  };
  auto distinct = [&]() -> uint64_t {
    return sstore != nullptr ? sstore->Size() : visited.size();
  };
  const ParentLookup parent_of = [&](uint64_t fp) -> std::optional<uint64_t> {
    return sstore != nullptr ? sstore->Parent(fp) : visited.Parent(fp);
  };
  const bool parents_available = sstore == nullptr || sstore->RetainsParents();
  result.hash_compact = !parents_available;

  std::vector<WorkerOutput> outs(static_cast<size_t>(workers));
  obs::ExplorationProfile* profile = base.analytics;
  if (profile != nullptr) {
    if (!profile->initialized()) {
      InitProfileFromSpec(profile, spec);
    }
    for (WorkerOutput& out : outs) {
      InitProfileFromSpec(&out.profile, spec);
    }
  }
  auto merge_worker_profiles = [&]() {
    if (profile == nullptr) {
      return;
    }
    for (WorkerOutput& out : outs) {
      profile->MergeCounts(out.profile);
      out.profile.ResetCounts();
    }
    std::vector<std::string> names;
    profile->DrainNewBranches(&names);
    for (std::string& n : names) {
      result.coverage.branches.insert(std::move(n));
    }
  };

  // Set at the epoch barrier when the hash-compacted re-search misses its
  // target (fingerprint collision); record_violation copies it onto the
  // violation so the run degrades to a trace-less report instead of aborting.
  std::string reconstruct_error;
  auto record_violation = [&](const std::string& invariant, bool is_transition,
                              std::vector<TraceStep> trace) {
    obs::Add(m.violations);
    if (result.violation.has_value()) {
      return;  // keep the first (minimal-depth) violation
    }
    Violation v;
    v.invariant = invariant;
    v.is_transition_invariant = is_transition;
    v.trace_error = reconstruct_error;
    v.depth = trace.empty() ? 0 : trace.size() - 1;
    v.trace = std::move(trace);
    v.states_explored = distinct();
    v.seconds = SecondsSince(start);
    result.violation = std::move(v);
  };

  auto finalize = [&](uint64_t final_depth, bool frontier_drained) -> BfsResult& {
    merge_worker_profiles();
    if (profile != nullptr) {
      profile->SetDistinctStates(distinct());
    }
    for (WorkerOutput& out : outs) {
      result.coverage.Merge(out.coverage);
      result.deadlock_states += out.deadlocks;
      out.coverage = CoverageStats{};
      out.deadlocks = 0;
    }
    result.distinct_states = distinct();
    result.depth_reached = final_depth;
    result.exhausted = frontier_drained && !result.hit_state_limit &&
                       !result.hit_time_limit && !result.cancelled &&
                       !(result.violation.has_value() && base.stop_at_first_violation);
    result.seconds = SecondsSince(start);
    if (result.hash_compact) {
      result.collision_probability =
          obs::ExplorationProfile::CollisionProbability(result.distinct_states);
    }
    return result;
  };

  // Two deque arrays per worker, flipped each epoch: deques[side][w].
  std::vector<std::unique_ptr<ChunkDeque>> deques[2];
  for (int side = 0; side < 2; ++side) {
    for (int w = 0; w < workers; ++w) {
      deques[side].push_back(std::make_unique<ChunkDeque>());
    }
  }
  std::atomic<uint64_t> pending{0};  // unclaimed chunks of the current epoch
  EpochSync sync;
  auto drain_all_chunks = [&]() {
    for (int side = 0; side < 2; ++side) {
      for (auto& dq : deques[side]) {
        dq->DrainQuiescent([](StealChunk* c) { delete c; });
      }
    }
  };

  uint64_t depth = 0;
  double base_seconds = 0;
  uint64_t resumed_deadlocks = 0;

  // Seed the side-0 deques round-robin, packing `chunk_size` items per chunk.
  uint64_t seed_items = 0;
  uint64_t seed_chunks = 0;
  int seed_rr = 0;
  std::vector<FrontierItem> seed_open;
  auto seed_flush = [&](uint64_t epoch) {
    if (seed_open.empty()) {
      return;
    }
    auto* c = new StealChunk{epoch, std::move(seed_open)};
    seed_open = {};
    deques[0][static_cast<size_t>(seed_rr)]->Push(c);
    seed_rr = (seed_rr + 1) % workers;
    ++seed_chunks;
  };
  auto seed_push = [&](uint64_t epoch, uint64_t fp, State state) {
    seed_open.push_back(FrontierItem{fp, std::move(state)});
    ++seed_items;
    if (seed_open.size() >= chunk_size) {
      seed_flush(epoch);
    }
  };

  if (resume != nullptr) {
    CHECK(resume->meta.hash_compact == result.hash_compact)
        << "resume mode mismatch: checkpoint "
        << (resume->meta.hash_compact ? "was" : "was not")
        << " written with a hash-compacted store, this run "
        << (result.hash_compact ? "is" : "is not") << " using one";
    const store::CheckpointMeta& meta = resume->meta;
    depth = meta.depth_reached;
    base_seconds = meta.seconds;
    resumed_deadlocks = meta.deadlock_states;
    result.deadlock_states = meta.deadlock_states;
    if (!meta.coverage.is_null()) {
      auto cov = CoverageStats::FromFullJson(meta.coverage);
      CHECK(cov.ok()) << "resume: " << cov.error();
      result.coverage = std::move(cov).value();
    }
    if (profile != nullptr && !meta.analytics.is_null()) {
      auto prior = obs::ExplorationProfile::FromJson(meta.analytics);
      CHECK(prior.ok()) << "resume: " << prior.error();
      profile->MergeCounts(prior.value());
      std::vector<std::string> drained;
      profile->DrainNewBranches(&drained);
    }
    const Status st = store::ForEachSegmentEntry(
        resume->frontier_path, [&](uint64_t fp, State&& state) -> Status {
          seed_push(depth, fp, std::move(state));
          return Status();
        });
    CHECK(st.ok()) << "resume: " << st.error();
    if (ckpt != nullptr) {
      ckpt->SeedCadence(meta.distinct_states);
    }
  } else {
    // Serial seeding on the coordinator, like parallel_bfs.cc (also primes
    // the symmetry-context epoch before workers fingerprint concurrently).
    for (const State& init : spec.init_states) {
      const uint64_t fp = Fingerprint(spec, init, use_symmetry);
      if (!insert_visited(fp, fp)) {
        continue;
      }
      obs::Add(m.distinct_states);
      obs::Add(m.invariant_checks);
      const std::string bad = CheckInvariants(spec, init, profile);
      if (!bad.empty()) {
        record_violation(bad, false, {TraceStep{ActionLabel{}, init}});
        if (base.stop_at_first_violation) {
          drain_all_chunks();
          return finalize(0, false);
        }
      }
      if (spec.WithinConstraint(init)) {
        seed_push(0, fp, init);
      }
    }
  }
  seed_flush(depth);

  std::atomic<bool> stop{false};
  std::atomic<bool> hit_state_limit{false};
  std::atomic<bool> hit_time_limit{false};
  std::atomic<bool> cancel_hit{false};

  // One epoch of one worker: pop own chunks, steal when dry, exit at global
  // quiescence (pending == 0) or stop. Successors are chunked into the
  // worker's OWN next-side deque — they never pass through the coordinator,
  // which is the structural win over the level-synchronized engine.
  auto run_epoch = [&](int w, int side, uint64_t epoch) {
    WorkerOutput& out = outs[static_cast<size_t>(w)];
    obs::ExplorationProfile* wp = profile != nullptr ? &out.profile : nullptr;
    ChunkDeque& own = *deques[side][static_cast<size_t>(w)];
    ChunkDeque& next = *deques[side ^ 1][static_cast<size_t>(w)];
    obs::TraceSpan wave_span("worker.wave", "worker", w, "epoch",
                             static_cast<int64_t>(epoch));

    std::vector<FrontierItem> open;  // the chunk being filled with successors
    auto flush_open = [&]() {
      if (!open.empty()) {
        next.Push(new StealChunk{epoch + 1, std::move(open)});
        open = {};
      }
    };

    while (!stop.load(std::memory_order_relaxed)) {
      StealChunk* chunk = nullptr;
      if (!own.Pop(&chunk)) {
        // Own deque dry: sweep the victims until a steal lands or the epoch
        // is globally quiescent. The idle clock is only read when the
        // steal.idle_ns counter is bound.
        const bool timing = m.steal_idle_ns != nullptr;
        const uint64_t idle_start = timing ? obs::TraceNowNs() : 0;
        while (chunk == nullptr && !stop.load(std::memory_order_relaxed)) {
          for (int i = 1; i < workers; ++i) {
            const int v = (w + i) % workers;
            if (deques[side][static_cast<size_t>(v)]->Steal(&chunk)) {
              obs::Add(m.steals);
              break;
            }
          }
          if (chunk != nullptr) {
            break;
          }
          obs::Add(m.steal_misses);
          if (pending.load(std::memory_order_acquire) == 0) {
            break;  // every chunk of this epoch is claimed: quiescent
          }
          std::this_thread::yield();
        }
        if (timing) {
          obs::Add(m.steal_idle_ns, obs::TraceNowNs() - idle_start);
        }
        if (chunk == nullptr) {
          break;
        }
      }
      pending.fetch_sub(1, std::memory_order_release);
      CHECK(chunk->epoch == epoch)
          << "work-stealing invariant broken: claimed a chunk of epoch "
          << chunk->epoch << " while expanding epoch " << epoch;

      // ---- Hot loop: identical to parallel_bfs.cc run_wave. ---------------
      for (const FrontierItem& item : chunk->items) {
        std::vector<Successor> succs;
        {
          obs::PhaseTimer t(m, Phase::kExpand);
          obs::Add(m.expand_calls);
          succs = ExpandAll(spec, item.state, &out.coverage, wp);
        }
        if (succs.empty()) {
          ++out.deadlocks;
          obs::Add(m.deadlocks);
          continue;
        }
        obs::Add(m.generated, succs.size());
        for (Successor& s : succs) {
          out.coverage.RecordEvent(s.label.kind);
          uint64_t fp;
          {
            obs::PhaseTimer t(m, Phase::kCanonicalize);
            fp = Fingerprint(spec, s.state, use_symmetry);
          }

          std::string bad_edge;
          {
            obs::PhaseTimer t(m, Phase::kInvariants);
            obs::Add(m.transition_checks);
            bad_edge =
                CheckTransitionInvariants(spec, item.state, s.label, s.state, wp);
          }
          if (!bad_edge.empty()) {
            out.candidates.push_back(
                ViolationCandidate{bad_edge, true, item.fp, fp, s.label, s.state});
          }

          bool duplicate;
          {
            obs::PhaseTimer t(m, Phase::kFingerprint);
            duplicate = !insert_visited(fp, item.fp);
          }
          if (duplicate) {
            obs::Add(m.duplicates);
            if (wp != nullptr) {
              wp->RecordDuplicate(s.action_index);
            }
            continue;
          }
          obs::Add(m.distinct_states);
          std::string bad;
          {
            obs::PhaseTimer t(m, Phase::kInvariants);
            obs::Add(m.invariant_checks);
            bad = CheckInvariants(spec, s.state, wp);
          }
          if (!bad.empty()) {
            out.candidates.push_back(
                ViolationCandidate{bad, false, fp, fp, ActionLabel{}, State{}});
          }
          if (distinct() >= base.max_distinct_states) {
            hit_state_limit.store(true, std::memory_order_relaxed);
            stop.store(true, std::memory_order_relaxed);
          }
          if (spec.WithinConstraint(s.state)) {
            open.push_back(FrontierItem{fp, std::move(s.state)});
            if (open.size() >= chunk_size) {
              flush_open();
            }
          }
        }
      }
      delete chunk;
      // Stop checks once per chunk, like once per claimed chunk in the
      // level-sync engine. A claimed chunk is always fully expanded.
      if (StopRequested(base.stop)) {
        cancel_hit.store(true, std::memory_order_relaxed);
        stop.store(true, std::memory_order_relaxed);
      }
      if (SecondsSince(start) > base.time_budget_s) {
        hit_time_limit.store(true, std::memory_order_relaxed);
        stop.store(true, std::memory_order_relaxed);
      }
    }
    flush_open();
  };

  // Persistent worker threads parked at the epoch barrier between releases.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w]() {
      uint64_t seen_round = 0;
      for (;;) {
        int side;
        uint64_t epoch;
        {
          obs::TraceSpan wait_span("barrier.wait", "worker", w);
          std::unique_lock<std::mutex> lk(sync.mu);
          sync.start_cv.wait(
              lk, [&]() { return sync.round != seen_round || sync.shutdown; });
          if (sync.shutdown) {
            return;
          }
          seen_round = sync.round;
          side = sync.cur_side;
          epoch = sync.epoch;
        }
        run_epoch(w, side, epoch);
        {
          std::lock_guard<std::mutex> lk(sync.mu);
          ++sync.arrived;
        }
        sync.done_cv.notify_one();
      }
    });
  }

  // All paths out of the epoch loop go through here: park nothing, wake the
  // workers into shutdown, join, and free any chunks still in the deques.
  auto shutdown = [&]() {
    {
      std::lock_guard<std::mutex> lk(sync.mu);
      sync.shutdown = true;
    }
    sync.start_cv.notify_all();
    for (std::thread& t : threads) {
      t.join();
    }
    drain_all_chunks();
  };

  uint64_t spool_seq = 0;
  auto new_spool = [&]() {
    char name[48];
    std::snprintf(name, sizeof(name), "steal-frontier-%06llu.seg",
                  static_cast<unsigned long long>(spool_seq++));
    return std::make_unique<store::FrontierSpool>(spool_cfg, name);
  };
  // Checkpoint whatever frontier `spool` holds; mirrors parallel_bfs.cc's
  // write_checkpoint (including the copy-merge of live worker slices).
  auto write_checkpoint = [&](const store::FrontierSpool& spool) {
    store::CheckpointMeta meta;
    meta.distinct_states = distinct();
    meta.depth_reached = depth;
    meta.frontier_size = spool.size();
    meta.seconds = base_seconds + SecondsSince(start);
    meta.use_symmetry = use_symmetry;
    meta.hash_compact = result.hash_compact;
    CoverageStats cov = result.coverage;
    uint64_t deadlocks = resumed_deadlocks;
    for (const WorkerOutput& out : outs) {
      cov.Merge(out.coverage);
      deadlocks += out.deadlocks;
    }
    meta.deadlock_states = deadlocks;
    if (profile != nullptr) {
      obs::ExplorationProfile prof = *profile;
      for (const WorkerOutput& out : outs) {
        prof.MergeCounts(out.profile);
      }
      prof.SetDistinctStates(distinct());
      std::vector<std::string> names;
      prof.DrainNewBranches(&names);
      for (std::string& n : names) {
        cov.branches.insert(std::move(n));
      }
      meta.analytics = prof.ToJson();
    }
    meta.coverage = cov.ToFullJson();
    if (base.metrics != nullptr) {
      meta.metrics = base.metrics->Snapshot().ToJson();
    }
    const Status st = ckpt->Write(*sstore, spool, std::move(meta));
    if (!st.ok()) {
      std::fprintf(stderr, "sandtable: checkpoint write failed: %s\n",
                   st.error().c_str());
    }
  };

  uint64_t frontier_items = seed_items;
  uint64_t frontier_chunks = seed_chunks;
  int cur_side = 0;

  while (frontier_items > 0) {
    if (depth >= base.max_depth) {
      shutdown();
      return finalize(depth, false);
    }
    obs::SetMax(m.frontier_peak, static_cast<int64_t>(frontier_items));
    if (profile != nullptr) {
      profile->RecordLevel(depth, frontier_items);
    }

    {
      obs::TraceSpan level_span("bfs.level", "level",
                                static_cast<int64_t>(depth), "frontier",
                                static_cast<int64_t>(frontier_items));
      // Publish the epoch (side / tag / unclaimed-chunk count) and release.
      pending.store(frontier_chunks, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lk(sync.mu);
        sync.arrived = 0;
        ++sync.round;
        sync.cur_side = cur_side;
        sync.epoch = depth;
      }
      sync.start_cv.notify_all();
      {
        std::unique_lock<std::mutex> lk(sync.mu);
        sync.done_cv.wait(lk, [&]() { return sync.arrived == workers; });
      }
    }

    // ---- Epoch barrier: the coordinator owns everything again. ------------

    // A cancellation stop checkpoints the exact set of unexpanded states:
    // unclaimed chunks of the stopped epoch plus the successors generated
    // before the stop (mixed adjacent depths — the same approximation as the
    // level-sync engine's cancel path). Budget stops keep the last
    // level-boundary checkpoint so a resumed run reproduces an uninterrupted
    // one.
    if (cancel_hit.load(std::memory_order_relaxed) && ckpt != nullptr) {
      bool has_candidates = false;
      for (const WorkerOutput& out : outs) {
        has_candidates = has_candidates || !out.candidates.empty();
      }
      if (!(has_candidates && base.stop_at_first_violation)) {
        std::unique_ptr<store::FrontierSpool> spool = new_spool();
        for (int side = 0; side < 2; ++side) {
          for (auto& dq : deques[side]) {
            dq->DrainQuiescent([&](StealChunk* c) {
              for (FrontierItem& item : c->items) {
                const Status st = spool->Push(item.fp, std::move(item.state));
                CHECK(st.ok()) << "frontier spill failed: " << st.error();
              }
              delete c;
            });
          }
        }
        write_checkpoint(*spool);
      }
    }

    merge_worker_profiles();

    // Arbitrate this epoch's violation candidates — shared CandidateLess, so
    // the winner matches the level-sync engine's at the same level.
    const ViolationCandidate* best = nullptr;
    for (const WorkerOutput& out : outs) {
      for (const ViolationCandidate& c : out.candidates) {
        if (best == nullptr || CandidateLess(c, *best)) {
          best = &c;
        }
      }
    }
    if (best != nullptr && !result.violation.has_value()) {
      std::vector<TraceStep> trace;
      reconstruct_error.clear();
      {
        obs::PhaseTimer t(m, Phase::kReconstruct);
        obs::Add(m.reconstructions);
        trace = parents_available
                    ? ReconstructTrace(spec, parent_of, best->fp, use_symmetry)
                    : ReconstructTraceResearch(spec, best->fp, depth + 2,
                                               use_symmetry, &reconstruct_error);
      }
      if (best->is_transition && !trace.empty()) {
        trace.push_back(TraceStep{best->label, best->state});
      }
      record_violation(best->invariant, best->is_transition, std::move(trace));
    }
    for (WorkerOutput& out : outs) {
      out.candidates.clear();
    }
    if (result.violation.has_value() && base.stop_at_first_violation) {
      shutdown();
      return finalize(depth, false);
    }

    if (cancel_hit.load(std::memory_order_relaxed)) {
      result.cancelled = true;
      shutdown();
      return finalize(depth, false);
    }
    if (hit_state_limit.load(std::memory_order_relaxed)) {
      result.hit_state_limit = true;
      shutdown();
      return finalize(depth, false);
    }
    if (hit_time_limit.load(std::memory_order_relaxed)) {
      result.hit_time_limit = true;
      shutdown();
      return finalize(depth, false);
    }

    // Flip sides: the next-side deques (filled worker-locally, never merged)
    // become the new frontier. Quiescent, so the counts are exact.
    cur_side ^= 1;
    frontier_chunks = 0;
    frontier_items = 0;
    std::vector<size_t> queue_depths(static_cast<size_t>(workers), 0);
    for (int w = 0; w < workers; ++w) {
      ChunkDeque& dq = *deques[cur_side][static_cast<size_t>(w)];
      frontier_chunks += dq.SizeApprox();
      dq.ForEachQuiescent([&](StealChunk* c) {
        frontier_items += c->items.size();
        queue_depths[static_cast<size_t>(w)] += c->items.size();
      });
    }

    if (base.progress != nullptr && base.progress->Due(distinct())) {
      obs::ProgressSample sample;
      sample.engine = "parallel_bfs_steal";
      sample.elapsed_s = SecondsSince(start);
      sample.distinct_states = distinct();
      sample.depth = depth + 1;
      sample.deadlocks = 0;
      for (const WorkerOutput& out : outs) {
        sample.deadlocks += out.deadlocks;
        sample.transitions += out.coverage.transitions;
      }
      for (size_t qd : queue_depths) {
        sample.worker_queue_depths.push_back(qd);
      }
      sample.frontier = frontier_items;
      if (sstore == nullptr) {
        const par::ShardedFingerprintSet::LoadStats load = visited.Load();
        obs::ShardLoad shard_load;
        shard_load.shards = load.sizes.size();
        shard_load.max_load_factor = load.max_load_factor;
        size_t min_size = load.sizes.empty() ? 0 : load.sizes[0];
        size_t max_size = 0;
        size_t total = 0;
        for (size_t sz : load.sizes) {
          min_size = std::min(min_size, sz);
          max_size = std::max(max_size, sz);
          total += sz;
        }
        shard_load.min_size = min_size;
        shard_load.max_size = max_size;
        shard_load.avg_size =
            load.sizes.empty()
                ? 0.0
                : static_cast<double>(total) / static_cast<double>(load.sizes.size());
        sample.shard_load = shard_load;
      }
      sample.event_kinds = result.coverage.DistinctEventKinds();
      sample.branches = result.coverage.branches.size();
      if (profile != nullptr) {
        sample.analytics = profile->SummaryJson(3);
      }
      base.progress->Emit(sample);
    }

    obs::Add(m.levels);
    obs::Set(m.frontier, static_cast<int64_t>(frontier_items));
    obs::TraceCounter("distinct_states", static_cast<int64_t>(distinct()));
    obs::TraceCounter("frontier", static_cast<int64_t>(frontier_items));
    if (frontier_items > 0) {
      ++depth;
    }
    if (ckpt != nullptr && ckpt->Due(distinct())) {
      // Level-boundary checkpoint: the new current side holds exactly the
      // unexpanded frontier. Copied (not drained) — exploration continues.
      std::unique_ptr<store::FrontierSpool> spool = new_spool();
      for (auto& dq : deques[cur_side]) {
        dq->ForEachQuiescent([&](StealChunk* c) {
          for (const FrontierItem& item : c->items) {
            const Status st = spool->Push(item.fp, State(item.state));
            CHECK(st.ok()) << "frontier spill failed: " << st.error();
          }
        });
      }
      write_checkpoint(*spool);
    }
  }

  shutdown();
  return finalize(depth, /*frontier_drained=*/true);
}

}  // namespace sandtable
