// Work-stealing parallel BFS: epoch-synchronized chase-lev deques replacing
// the level-synchronized chunk cursor of parallel_bfs.cc.
//
// Scheduling model:
//   - each worker owns TWO deques: `cur` holds chunks of the epoch being
//     expanded, `next` collects chunks of successor states. A chunk is an
//     epoch-tagged batch of up to ParBfsOptions::chunk_size frontier items;
//     the tag is CHECKed at expansion, which is what pins BFS level semantics
//     (= depth accounting and the minimal-depth violation guarantee) to the
//     same contract as the level-synchronized engine;
//   - a worker pops from the bottom of its own `cur` deque (LIFO, cache-warm)
//     and appends successors to its own `next` deque. When its `cur` runs
//     dry it steals a chunk from the TOP of a victim's `cur` deque instead
//     of idling at a barrier — the chase-lev discipline: owner and thieves
//     synchronize on a single compare-and-swap of the `top` cursor;
//   - an epoch ends at global quiescence: a shared counter of unclaimed
//     chunks reaches zero (chunks are only created for the NEXT epoch, so
//     the counter is strictly decreasing within an epoch). The coordinator
//     then owns the world exactly as at a level barrier: it merges worker
//     outputs, arbitrates violation candidates with the same deterministic
//     order as the level-sync engine, swaps every worker's cur/next deques,
//     and releases the next epoch.
//
// Compared to the level-synchronized engine this removes the serial
// frontier-merge phase (successors never pass through the coordinator) and
// replaces end-of-level idling with stealing, which is where the barrier
// idle time measured by the analytics profiler (ROADMAP item 3a) goes.
// Steal traffic is observable: steal.chunks / steal.misses / steal.idle_ns
// counters and the worker.wave / barrier.wait trace lanes.
//
// Result contract: identical to ParallelBfsCheck — on full exploration,
// distinct_states / depth_reached / deadlocks / exhausted / coverage equal
// serial BFS; violations are reported at minimal depth with deterministic
// arbitration. The same symmetry caveat as parallel_bfs.h applies.
#ifndef SANDTABLE_SRC_PAR_STEAL_H_
#define SANDTABLE_SRC_PAR_STEAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/par/parallel_bfs.h"

namespace sandtable {
namespace par {

// Chase-lev work-stealing deque (Chase & Lev, "Dynamic Circular Work-Stealing
// Deque"; memory orderings after Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models", with the standalone fences replaced
// by seq_cst accesses on the two cursors — marginally stronger, and exactly
// what ThreadSanitizer models precisely).
//
// Ownership protocol: ONE owner thread calls Push/Pop (bottom end); any
// number of thieves call Steal (top end). The element type must be trivially
// copyable (use pointers); slots are atomics so a thief's speculative read of
// a slot it then fails to win is benign. Grown arrays are retired, not freed,
// until destruction, so a thief holding a stale array pointer stays valid.
template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable<T>::value,
                "deque slots are raw atomics; store pointers");

 public:
  explicit ChaseLevDeque(size_t initial_capacity = 64) {
    size_t cap = 16;
    while (cap < initial_capacity) {
      cap <<= 1;
    }
    arrays_.push_back(std::make_unique<Array>(cap));
    array_.store(arrays_.back().get(), std::memory_order_release);
  }

  // Owner only.
  void Push(T v) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(a->capacity)) {
      a = Grow(a, t, b);
    }
    a->Put(b, v);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  // Owner only. False when empty or when a thief wins the race for the last
  // element. *out is written only on success — callers (the engine's
  // run_epoch) test their pointer against nullptr after a failed Pop, so the
  // lost-race path must not leak the element the thief now owns.
  bool Pop(T* out) {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    const T v = a->Get(b);
    if (t == b) {
      // Last element: race the thieves for it via the top cursor.
      if (last_element_race_hook_ != nullptr) {
        last_element_race_hook_(this);
      }
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) {
        return false;
      }
    }
    *out = v;
    return true;
  }

  // Test-only seam: called on the owner's last-element path after `top` has
  // been read and before the claiming CAS — exactly the window a concurrent
  // thief's CAS can land in. Lets a single-threaded regression test force the
  // lost race deterministically (tests/test_steal.cc); never set by engines.
  using RaceHook = void (*)(ChaseLevDeque*);
  void SetLastElementRaceHookForTest(RaceHook hook) {
    last_element_race_hook_ = hook;
  }

  // Test-only: act as a thief that read `top`/`bottom` before the owner's Pop
  // began and whose claiming CAS lands now. Unlike Steal, skips the emptiness
  // check against the owner's already-decremented `bottom`.
  bool StealTopForTest() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

  // Any thief. False when empty or when it lost a race (callers sweep on).
  bool Steal(T* out) {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) {
      return false;
    }
    Array* a = array_.load(std::memory_order_acquire);
    const T v = a->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *out = v;
    return true;
  }

  // Racy size hint for progress reporting only.
  size_t SizeApprox() const {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

  // Quiescent only (no concurrent owner or thieves): visit every element in
  // steal order without removing it.
  template <typename Fn>
  void ForEachQuiescent(Fn&& fn) const {
    const int64_t t = top_.load(std::memory_order_relaxed);
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    Array* a = array_.load(std::memory_order_relaxed);
    for (int64_t i = t; i < b; ++i) {
      fn(a->Get(i));
    }
  }

  // Quiescent only: visit and remove every element, leaving the deque empty.
  template <typename Fn>
  void DrainQuiescent(Fn&& fn) {
    ForEachQuiescent(fn);
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    top_.store(b, std::memory_order_relaxed);
  }

 private:
  struct Array {
    explicit Array(size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    T Get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(std::memory_order_relaxed);
    }
    void Put(int64_t i, T v) {
      slots[static_cast<size_t>(i) & mask].store(v, std::memory_order_relaxed);
    }
    const size_t capacity;
    const size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  // Owner only: double the array, copying live entries. The old array stays
  // alive for thieves holding its pointer.
  Array* Grow(Array* old, int64_t t, int64_t b) {
    arrays_.push_back(std::make_unique<Array>(old->capacity * 2));
    Array* a = arrays_.back().get();
    for (int64_t i = t; i < b; ++i) {
      a->Put(i, old->Get(i));
    }
    array_.store(a, std::memory_order_release);
    return a;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Array*> array_{nullptr};
  std::vector<std::unique_ptr<Array>> arrays_;  // owner-managed retirement
  RaceHook last_element_race_hook_ = nullptr;   // test-only, cold path
};

}  // namespace par

// Work-stealing exploration of `spec`. Normally reached via
// ParallelBfsCheck with options.steal = true; exposed for tests and benches.
BfsResult WorkStealingBfsCheck(const Spec& spec, const ParBfsOptions& options = {});

}  // namespace sandtable

#endif  // SANDTABLE_SRC_PAR_STEAL_H_
