// Chunked work claiming over one BFS level's frontier.
//
// The frontier of the current level is an immutable array; workers claim
// half-open index ranges [begin, end) through a single atomic cursor. Chunks
// amortize the cursor contention (one fetch_add per `chunk` states) while
// keeping the tail balanced: a worker stuck on expensive states simply claims
// fewer chunks. Level synchronization — nobody starts level d+1 until every
// chunk of level d is done — is what preserves the minimal-depth guarantee of
// serial BFS (see parallel_bfs.h).
#ifndef SANDTABLE_SRC_PAR_WORK_QUEUE_H_
#define SANDTABLE_SRC_PAR_WORK_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>

namespace sandtable {
namespace par {

class WorkQueue {
 public:
  WorkQueue(size_t total, size_t chunk)
      : total_(total), chunk_(chunk == 0 ? 1 : chunk) {}

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  // Claim the next chunk. Returns false when the frontier is drained.
  bool NextChunk(size_t* begin, size_t* end) {
    const size_t b = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (b >= total_) {
      return false;
    }
    *begin = b;
    *end = std::min(b + chunk_, total_);
    return true;
  }

  // Length of the claimed prefix. Workers claim contiguously from index 0 and
  // finish every chunk they claim, so after the pool quiesces (RunLevel
  // returned) everything in [0, Claimed()) was expanded and everything in
  // [Claimed(), total) was not — which is what an early-stop checkpoint needs
  // to carry over.
  size_t Claimed() const {
    return std::min(cursor_.load(std::memory_order_relaxed), total_);
  }

 private:
  const size_t total_;
  const size_t chunk_;
  std::atomic<size_t> cursor_{0};
};

}  // namespace par
}  // namespace sandtable

#endif  // SANDTABLE_SRC_PAR_WORK_QUEUE_H_
