#include "src/par/worker_pool.h"

#include <string>

#include "src/obs/trace.h"
#include "src/util/check.h"

namespace sandtable {
namespace par {

WorkerPool::WorkerPool(int workers) {
  CHECK_GT(workers, 0);
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { ThreadMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::RunLevel(const std::function<void(int)>& fn) {
  // barrier.join is the coordinator side of the level barrier: publish work,
  // then block until the slowest worker finishes. In a trace, its duration
  // is the whole parallel phase as seen from the coordinator lane.
  obs::TraceSpan join_span("barrier.join", "workers",
                           static_cast<int64_t>(workers()));
  std::unique_lock<std::mutex> lock(mu_);
  CHECK_EQ(active_, 0) << "RunLevel re-entered while a level is in flight";
  task_ = &fn;
  active_ = workers();
  ++generation_;
  work_ready_.notify_all();
  level_done_.wait(lock, [this] { return active_ == 0; });
  task_ = nullptr;
}

void WorkerPool::ThreadMain(int index) {
  obs::TraceSetCurrentThreadName("worker-" + std::to_string(index));
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    {
      // barrier.wait spans measure per-worker idle time between levels —
      // the "barrier idle %" that scripts/trace_summary.py reports.
      obs::TraceSpan wait_span("barrier.wait", "worker",
                               static_cast<int64_t>(index));
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      task = task_;
    }
    (*task)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    level_done_.notify_one();
  }
}

}  // namespace par
}  // namespace sandtable
