// A persistent pool of worker threads driven level-by-level.
//
// BFS alternates parallel phases (expand one level) with serial phases
// (merge frontiers, arbitrate violations, check limits). The pool keeps its
// threads across levels — a deep search runs thousands of levels and
// re-spawning threads per level would dominate small frontiers. RunLevel is
// the level barrier: it publishes a task, wakes every worker, and returns
// only after all of them finished, so the coordinator observes a quiescent
// world between levels and worker-local buffers can be merged without locks.
#ifndef SANDTABLE_SRC_PAR_WORKER_POOL_H_
#define SANDTABLE_SRC_PAR_WORKER_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sandtable {
namespace par {

class WorkerPool {
 public:
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  // Run fn(worker_index) on every worker; blocks until all return
  // (the level barrier). fn must not throw.
  void RunLevel(const std::function<void(int)>& fn);

 private:
  void ThreadMain(int index);

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable level_done_;
  const std::function<void(int)>* task_ = nullptr;  // valid for the current level
  uint64_t generation_ = 0;  // bumped once per RunLevel; workers run when it changes
  int active_ = 0;           // workers still inside the current level
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace par
}  // namespace sandtable

#endif  // SANDTABLE_SRC_PAR_WORKER_POOL_H_
