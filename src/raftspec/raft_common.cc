#include "src/raftspec/raft_common.h"

#include <algorithm>

#include "src/util/check.h"

namespace sandtable {
namespace raftspec {

Value NoneValue() { return Value::Str("None"); }

Value NodeV(int i) { return Value::Model(kServerClass, i); }

int NodeIndex(const Value& node_model) { return node_model.model_index(); }

std::vector<Value> AllNodes(int n) {
  std::vector<Value> nodes;
  nodes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes.push_back(NodeV(i));
  }
  return nodes;
}

const Value& Role(const State& s, const Value& node) {
  return s.field(kVarRole).Apply(node);
}

int64_t CurrentTerm(const State& s, const Value& node) {
  return s.field(kVarCurrentTerm).Apply(node).int_v();
}

const Value& VotedFor(const State& s, const Value& node) {
  return s.field(kVarVotedFor).Apply(node);
}

const Value& Log(const State& s, const Value& node) { return s.field(kVarLog).Apply(node); }

int64_t CommitIndex(const State& s, const Value& node) {
  return s.field(kVarCommitIndex).Apply(node).int_v();
}

int64_t SnapshotIndex(const State& s, const Value& node) {
  if (!s.has_field(kVarSnapshotIndex)) {
    return 0;
  }
  return s.field(kVarSnapshotIndex).Apply(node).int_v();
}

int64_t SnapshotTerm(const State& s, const Value& node) {
  if (!s.has_field(kVarSnapshotTerm)) {
    return 0;
  }
  return s.field(kVarSnapshotTerm).Apply(node).int_v();
}

bool IsCrashed(const State& s, const Value& node) {
  return Role(s, node).str_v() == kRoleCrashed;
}

Value CrashedSet(const State& s, int num_servers) {
  std::vector<Value> crashed;
  for (int i = 0; i < num_servers; ++i) {
    Value node = NodeV(i);
    if (IsCrashed(s, node)) {
      crashed.push_back(std::move(node));
    }
  }
  return Value::Set(std::move(crashed));
}

int64_t LastIndex(const State& s, const Value& node) {
  return SnapshotIndex(s, node) + static_cast<int64_t>(Log(s, node).size());
}

int64_t TermAt(const State& s, const Value& node, int64_t idx) {
  if (idx == 0) {
    return 0;
  }
  const int64_t snap = SnapshotIndex(s, node);
  if (idx == snap) {
    return SnapshotTerm(s, node);
  }
  CHECK_GT(idx, snap) << "TermAt below snapshot index";
  const Value& log = Log(s, node);
  const auto pos = static_cast<size_t>(idx - snap - 1);
  CHECK_LT(pos, log.size());
  return log.at(pos).field("term").int_v();
}

const Value& EntryAt(const State& s, const Value& node, int64_t idx) {
  const int64_t snap = SnapshotIndex(s, node);
  CHECK_GT(idx, snap);
  const Value& log = Log(s, node);
  const auto pos = static_cast<size_t>(idx - snap - 1);
  CHECK_LT(pos, log.size());
  return log.at(pos);
}

Value EntriesFrom(const State& s, const Value& node, int64_t from) {
  const int64_t snap = SnapshotIndex(s, node);
  CHECK_GT(from, snap) << "EntriesFrom inside snapshot";
  const Value& log = Log(s, node);
  return log.SubSeq(static_cast<size_t>(from - snap), log.size());
}

int QuorumSize(int num_servers) { return num_servers / 2 + 1; }

int64_t MaxCommittable(const State& s, const Value& leader, int num_servers) {
  const int64_t term = CurrentTerm(s, leader);
  const int64_t last = LastIndex(s, leader);
  const Value& match = s.field(kVarMatchIndex).Apply(leader);
  int64_t best = CommitIndex(s, leader);
  for (int64_t idx = CommitIndex(s, leader) + 1; idx <= last; ++idx) {
    int acks = 1;  // the leader itself
    for (const auto& [follower, m] : match.fun_pairs()) {
      if (m.int_v() >= idx) {
        ++acks;
      }
    }
    if (acks < QuorumSize(num_servers)) {
      break;  // acks can only shrink for larger indices
    }
    if (TermAt(s, leader, idx) == term) {
      best = idx;
    }
  }
  return best;
}

namespace {

// Apply the puts of `node`'s log up to `upto` for `key`; 0 if never written.
int64_t ApplyKey(const State& s, const Value& node, int64_t upto, const std::string& key) {
  int64_t value = 0;
  const int64_t snap = SnapshotIndex(s, node);
  const Value& log = Log(s, node);
  const int64_t last = std::min<int64_t>(upto, snap + static_cast<int64_t>(log.size()));
  for (int64_t idx = snap + 1; idx <= last; ++idx) {
    const Value& entry = log.at(static_cast<size_t>(idx - snap - 1));
    if (entry.has_field("key") && entry.field("key").str_v() == key) {
      value = entry.field("val").int_v();
    }
  }
  return value;
}

}  // namespace

int64_t GlobalCommittedValue(const State& s, const std::string& key, int num_servers) {
  int best_node = 0;
  int64_t best_commit = -1;
  for (int i = 0; i < num_servers; ++i) {
    const int64_t c = CommitIndex(s, NodeV(i));
    if (c > best_commit) {
      best_commit = c;
      best_node = i;
    }
  }
  return ApplyKey(s, NodeV(best_node), best_commit, key);
}

int64_t LocalValue(const State& s, const Value& node, const std::string& key) {
  return ApplyKey(s, node, CommitIndex(s, node), key);
}

int64_t Counter(const State& s, const char* name) {
  return s.field(kVarCounters).field(name).int_v();
}

State BumpCounter(const State& s, const char* name) {
  const Value& counters = s.field(kVarCounters);
  return s.WithField(kVarCounters,
                     counters.WithField(name, Value::Int(counters.field(name).int_v() + 1)));
}

}  // namespace raftspec
}  // namespace sandtable
