// Shared accessors over Raft specification states: variable names, log
// arithmetic under compaction, quorum/commit computations. Used by the spec
// actions, the invariants, the trace converter and the conformance observers.
#ifndef SANDTABLE_SRC_RAFTSPEC_RAFT_COMMON_H_
#define SANDTABLE_SRC_RAFTSPEC_RAFT_COMMON_H_

#include <string>
#include <vector>

#include "src/spec/spec.h"
#include "src/value/value.h"

namespace sandtable {
namespace raftspec {

// Spec variable (state record field) names.
inline constexpr const char* kVarRole = "role";
inline constexpr const char* kVarCurrentTerm = "currentTerm";
inline constexpr const char* kVarVotedFor = "votedFor";
inline constexpr const char* kVarLog = "log";
inline constexpr const char* kVarCommitIndex = "commitIndex";
inline constexpr const char* kVarNextIndex = "nextIndex";
inline constexpr const char* kVarMatchIndex = "matchIndex";
inline constexpr const char* kVarVotesGranted = "votesGranted";
inline constexpr const char* kVarPreVotesGranted = "preVotesGranted";
inline constexpr const char* kVarSnapshotIndex = "snapshotIndex";
inline constexpr const char* kVarSnapshotTerm = "snapshotTerm";
inline constexpr const char* kVarNet = "net";
inline constexpr const char* kVarCounters = "counters";

// Roles.
inline constexpr const char* kRoleFollower = "Follower";
inline constexpr const char* kRolePreCandidate = "PreCandidate";
inline constexpr const char* kRoleCandidate = "Candidate";
inline constexpr const char* kRoleLeader = "Leader";
inline constexpr const char* kRoleCrashed = "Crashed";

// Message types.
inline constexpr const char* kMsgRequestVote = "RV";
inline constexpr const char* kMsgRequestVoteResp = "RVR";
inline constexpr const char* kMsgPreVote = "PV";
inline constexpr const char* kMsgPreVoteResp = "PVR";
inline constexpr const char* kMsgAppendEntries = "AE";
inline constexpr const char* kMsgAppendEntriesResp = "AER";
inline constexpr const char* kMsgInstallSnapshot = "IS";
inline constexpr const char* kMsgInstallSnapshotResp = "ISR";

// The symmetry class of server identities.
inline constexpr const char* kServerClass = "n";

// The sentinel for "has not voted".
Value NoneValue();

// The model value for server i (0-based).
Value NodeV(int i);
int NodeIndex(const Value& node_model);
std::vector<Value> AllNodes(int n);

// Per-node accessors (s is the spec state record).
const Value& Role(const State& s, const Value& node);
int64_t CurrentTerm(const State& s, const Value& node);
const Value& VotedFor(const State& s, const Value& node);
const Value& Log(const State& s, const Value& node);
int64_t CommitIndex(const State& s, const Value& node);
int64_t SnapshotIndex(const State& s, const Value& node);  // 0 without compaction
int64_t SnapshotTerm(const State& s, const Value& node);

bool IsCrashed(const State& s, const Value& node);
// The set of crashed nodes (role == Crashed), as a Value set.
Value CrashedSet(const State& s, int num_servers);

// Log arithmetic (logical indices are 1-based; entries below the snapshot
// index have been compacted away).
int64_t LastIndex(const State& s, const Value& node);
// Term of the entry at logical index idx: 0 at index 0, snapshotTerm at the
// snapshot index, entry term above it. CHECKs that idx is not compacted away.
int64_t TermAt(const State& s, const Value& node, int64_t idx);
// The entry at logical index idx (CHECKs bounds and compaction).
const Value& EntryAt(const State& s, const Value& node, int64_t idx);
// Entries from logical index `from` through lastIndex, as a Seq.
Value EntriesFrom(const State& s, const Value& node, int64_t from);

// Quorum size for n servers.
int QuorumSize(int num_servers);

// The maximum committable index for `leader` under the *correct* Raft rule
// (quorum of matchIndex, entry term equals currentTerm), used both by the
// fixed commit-advance logic and by the CommitAdvanceComplete oracle.
int64_t MaxCommittable(const State& s, const Value& leader, int num_servers);

// KV oracle: the value of `key` in the globally committed prefix (0 when the
// key was never written). The globally committed prefix is the log of the
// node with the largest commitIndex, up to that index.
int64_t GlobalCommittedValue(const State& s, const std::string& key, int num_servers);
// The value of `key` applying node-local log up to the node's commitIndex.
int64_t LocalValue(const State& s, const Value& node, const std::string& key);

// Counter helpers.
int64_t Counter(const State& s, const char* name);
State BumpCounter(const State& s, const char* name);

}  // namespace raftspec
}  // namespace sandtable

#endif  // SANDTABLE_SRC_RAFTSPEC_RAFT_COMMON_H_
