// Safety properties of the Raft family specifications (§3.1 "Specifying
// correctness properties", §4.2). Sources: the Raft protocol design (election
// safety, log matching, leader completeness, state machine safety), and
// system-specific guarantees/regressions (WRaft's non-empty retries, Xraft-KV
// linearizability, monotonicity of protocol variables).
#include <algorithm>

#include "src/net/specnet.h"
#include "src/raftspec/raft_common.h"
#include "src/raftspec/raft_params.h"
#include "src/spec/spec.h"

namespace sandtable {

using namespace raftspec;  // NOLINT(build/namespaces): spec vocabulary

namespace {

bool RolesValid(const State& s, int n) {
  for (int i = 0; i < n; ++i) {
    const std::string& r = Role(s, NodeV(i)).str_v();
    if (r != kRoleFollower && r != kRolePreCandidate && r != kRoleCandidate &&
        r != kRoleLeader && r != kRoleCrashed) {
      return false;
    }
  }
  return true;
}

bool AtMostOneLeaderPerTerm(const State& s, int n) {
  for (int a = 0; a < n; ++a) {
    if (Role(s, NodeV(a)).str_v() != kRoleLeader) {
      continue;
    }
    for (int bn = a + 1; bn < n; ++bn) {
      if (Role(s, NodeV(bn)).str_v() == kRoleLeader &&
          CurrentTerm(s, NodeV(a)) == CurrentTerm(s, NodeV(bn))) {
        return false;
      }
    }
  }
  return true;
}

bool LogMatching(const State& s, int n) {
  for (int a = 0; a < n; ++a) {
    for (int bn = a + 1; bn < n; ++bn) {
      const Value na = NodeV(a);
      const Value nb = NodeV(bn);
      const int64_t lo = std::max(SnapshotIndex(s, na), SnapshotIndex(s, nb)) + 1;
      const int64_t hi = std::min(LastIndex(s, na), LastIndex(s, nb));
      for (int64_t idx = lo; idx <= hi; ++idx) {
        if (TermAt(s, na, idx) == TermAt(s, nb, idx) &&
            !(EntryAt(s, na, idx) == EntryAt(s, nb, idx))) {
          return false;
        }
      }
    }
  }
  return true;
}

// The committed prefixes of any two nodes agree: the terms (and, where both
// logs still hold the entry, the entries) at every jointly committed index
// match. Catches the WRaft#1+#2 data inconsistency of Figure 7.
bool CommittedLogsConsistent(const State& s, int n) {
  for (int a = 0; a < n; ++a) {
    for (int bn = a + 1; bn < n; ++bn) {
      const Value na = NodeV(a);
      const Value nb = NodeV(bn);
      const int64_t hi = std::min(CommitIndex(s, na), CommitIndex(s, nb));
      int64_t lo = std::max(SnapshotIndex(s, na), SnapshotIndex(s, nb));
      lo = std::max<int64_t>(lo, 1);
      for (int64_t idx = lo; idx <= hi; ++idx) {
        if (TermAt(s, na, idx) != TermAt(s, nb, idx)) {
          return false;
        }
        if (idx > SnapshotIndex(s, na) && idx > SnapshotIndex(s, nb) &&
            !(EntryAt(s, na, idx) == EntryAt(s, nb, idx))) {
          return false;
        }
      }
    }
  }
  return true;
}

// Every entry committed anywhere is present in the current leader's log
// (Raft's Leader Completeness property). Only leaders at the globally maximal
// term are constrained: a deposed leader that has not yet observed the newer
// term legitimately misses entries committed after its reign, whereas any
// commit happened at a term no larger than the global maximum, so a maximal-
// term leader must hold the whole committed prefix.
bool LeaderCompleteness(const State& s, int n) {
  int64_t max_term = 0;
  for (int i = 0; i < n; ++i) {
    max_term = std::max(max_term, CurrentTerm(s, NodeV(i)));
  }
  for (int l = 0; l < n; ++l) {
    const Value leader = NodeV(l);
    if (Role(s, leader).str_v() != kRoleLeader || CurrentTerm(s, leader) != max_term) {
      continue;
    }
    for (int f = 0; f < n; ++f) {
      const Value node = NodeV(f);
      const int64_t committed = CommitIndex(s, node);
      if (committed > LastIndex(s, leader)) {
        return false;
      }
      const int64_t lo = std::max({SnapshotIndex(s, leader), SnapshotIndex(s, node),
                                   static_cast<int64_t>(0)}) +
                         1;
      for (int64_t idx = lo; idx <= committed; ++idx) {
        if (!(EntryAt(s, leader, idx) == EntryAt(s, node, idx))) {
          return false;
        }
      }
    }
  }
  return true;
}

// nextIndex must stay strictly above matchIndex (PySyncObj#3, WRaft#7).
bool NextIndexSound(const State& s, int n) {
  for (int l = 0; l < n; ++l) {
    const Value leader = NodeV(l);
    if (Role(s, leader).str_v() != kRoleLeader) {
      continue;
    }
    const Value& next = s.field(kVarNextIndex).Apply(leader);
    const Value& match = s.field(kVarMatchIndex).Apply(leader);
    for (const auto& [peer, ni] : next.fun_pairs()) {
      if (match.FunHas(peer) && ni.int_v() <= match.Apply(peer).int_v()) {
        return false;
      }
    }
  }
  return true;
}

// WRaft#5: a retry AppendEntries must carry the entries being resent.
bool NonEmptyRetry(const State& s) {
  for (const Value& msg : specnet::AllMessages(s.field(kVarNet))) {
    if (msg.field("mtype").str_v() == kMsgAppendEntries &&
        msg.field("isRetry").bool_v() && msg.field("entries").empty()) {
      return false;
    }
  }
  return true;
}

// DaosRaft#1: a node leading term T has voted for itself in term T.
bool LeaderVotedSelf(const State& s, int n) {
  for (int i = 0; i < n; ++i) {
    const Value node = NodeV(i);
    if (Role(s, node).str_v() == kRoleLeader && !(VotedFor(s, node) == node)) {
      return false;
    }
  }
  return true;
}

bool CommitWithinLog(const State& s, int n) {
  for (int i = 0; i < n; ++i) {
    const Value node = NodeV(i);
    const int64_t commit = CommitIndex(s, node);
    if (commit < SnapshotIndex(s, node) || commit > LastIndex(s, node)) {
      return false;
    }
    if (CurrentTerm(s, node) < 0) {
      return false;
    }
  }
  return true;
}

bool SnapshotWithinCommit(const State& s, int n) {
  for (int i = 0; i < n; ++i) {
    const Value node = NodeV(i);
    if (SnapshotIndex(s, node) > CommitIndex(s, node)) {
      return false;
    }
  }
  return true;
}

int ParamNode(const ActionLabel& label, const char* field) {
  if (label.params.is_object() && label.params.contains(field) &&
      label.params[field].is_int()) {
    return static_cast<int>(label.params[field].as_int());
  }
  return -1;
}

}  // namespace

void AddRaftInvariants(Spec& spec, const RaftProfile& profile, int num_servers) {
  const int n = num_servers;

  spec.invariants.push_back({"TypeOK", [n](const State& s) { return RolesValid(s, n); }});
  spec.invariants.push_back(
      {"AtMostOneLeaderPerTerm", [n](const State& s) { return AtMostOneLeaderPerTerm(s, n); }});
  spec.invariants.push_back({"LogMatching", [n](const State& s) { return LogMatching(s, n); }});
  spec.invariants.push_back({"CommittedLogsConsistent",
                             [n](const State& s) { return CommittedLogsConsistent(s, n); }});
  spec.invariants.push_back(
      {"LeaderCompleteness", [n](const State& s) { return LeaderCompleteness(s, n); }});
  spec.invariants.push_back(
      {"NextIndexSound", [n](const State& s) { return NextIndexSound(s, n); }});
  spec.invariants.push_back(
      {"LeaderVotedSelf", [n](const State& s) { return LeaderVotedSelf(s, n); }});
  spec.invariants.push_back(
      {"CommitWithinLog", [n](const State& s) { return CommitWithinLog(s, n); }});
  spec.invariants.push_back({"NonEmptyRetry", [](const State& s) { return NonEmptyRetry(s); }});
  if (profile.features.compaction) {
    spec.invariants.push_back(
        {"SnapshotWithinCommit", [n](const State& s) { return SnapshotWithinCommit(s, n); }});
  }

  // ---- Transition invariants -------------------------------------------------

  // WRaft#4: currentTerm never decreases (terms are persistent).
  spec.transition_invariants.push_back(
      {"CurrentTermMonotonic",
       [n](const State& prev, const ActionLabel& label, const State& next) {
         for (int i = 0; i < n; ++i) {
           if (CurrentTerm(next, NodeV(i)) < CurrentTerm(prev, NodeV(i))) {
             return false;
           }
         }
         return true;
       }});

  // PySyncObj#2: commitIndex never decreases, except across a crash (it is
  // volatile and is rebuilt from the snapshot on restart).
  spec.transition_invariants.push_back(
      {"CommitIndexMonotonic",
       [n](const State& prev, const ActionLabel& label, const State& next) {
         if (label.kind == EventKind::kCrash || label.kind == EventKind::kRestart) {
           return true;
         }
         for (int i = 0; i < n; ++i) {
           if (CommitIndex(next, NodeV(i)) < CommitIndex(prev, NodeV(i))) {
             return false;
           }
         }
         return true;
       }});

  // PySyncObj#4 / RaftOS#1: matchIndex never decreases while the same node
  // keeps leading the same term.
  spec.transition_invariants.push_back(
      {"MatchIndexMonotonic",
       [n](const State& prev, const ActionLabel& label, const State& next) {
         for (int i = 0; i < n; ++i) {
           const Value node = NodeV(i);
           if (Role(prev, node).str_v() != kRoleLeader ||
               Role(next, node).str_v() != kRoleLeader ||
               CurrentTerm(prev, node) != CurrentTerm(next, node)) {
             continue;
           }
           const Value& before = prev.field(kVarMatchIndex).Apply(node);
           const Value& after = next.field(kVarMatchIndex).Apply(node);
           for (const auto& [peer, m] : before.fun_pairs()) {
             if (after.FunHas(peer) && after.Apply(peer).int_v() < m.int_v()) {
               return false;
             }
           }
         }
         return true;
       }});

  // PySyncObj#5: when the leader advances its commit index, the newly
  // committed entry must belong to the current term (Raft §5.4.2).
  spec.transition_invariants.push_back(
      {"LeaderCommitsCurrentTerm",
       [](const State& prev, const ActionLabel& label, const State& next) {
         if (label.action != "HandleAppendEntriesResponse" &&
             label.action != "HandleInstallSnapshotResponse") {
           return true;
         }
         const int node_id = ParamNode(label, "dst");
         if (node_id < 0) {
           return true;
         }
         const Value node = NodeV(node_id);
         if (Role(next, node).str_v() != kRoleLeader) {
           return true;
         }
         const int64_t before = CommitIndex(prev, node);
         const int64_t after = CommitIndex(next, node);
         if (after <= before) {
           return true;
         }
         return TermAt(next, node, after) == CurrentTerm(next, node);
       }});

  // RaftOS#4 oracle: after handling a replication response, a leader's commit
  // index equals the maximum committable index — commit advancement must not
  // stop early (approximates the paper's liveness consequence as safety).
  spec.transition_invariants.push_back(
      {"CommitAdvanceComplete",
       [n](const State& prev, const ActionLabel& label, const State& next) {
         if (label.action != "HandleAppendEntriesResponse" &&
             label.action != "HandleInstallSnapshotResponse") {
           return true;
         }
         const int node_id = ParamNode(label, "dst");
         if (node_id < 0) {
           return true;
         }
         const Value node = NodeV(node_id);
         if (Role(next, node).str_v() != kRoleLeader ||
             CurrentTerm(prev, node) != CurrentTerm(next, node)) {
           return true;
         }
         return CommitIndex(next, node) == MaxCommittable(next, node, n);
       }});

  // RaftOS#2: committed entries are durable — they never vanish or change
  // (compaction moves them into the snapshot, which still counts as present).
  spec.transition_invariants.push_back(
      {"LogDurability",
       [n](const State& prev, const ActionLabel& label, const State& next) {
         if (label.kind == EventKind::kCrash || label.kind == EventKind::kRestart) {
           return true;
         }
         for (int i = 0; i < n; ++i) {
           const Value node = NodeV(i);
           const int64_t committed =
               std::min(CommitIndex(prev, node), CommitIndex(next, node));
           if (LastIndex(next, node) < committed) {
             return false;
           }
           const int64_t lo =
               std::max(SnapshotIndex(prev, node), SnapshotIndex(next, node)) + 1;
           for (int64_t idx = lo; idx <= committed; ++idx) {
             if (!(EntryAt(prev, node, idx) == EntryAt(next, node, idx))) {
               return false;
             }
           }
         }
         return true;
       }});

  if (profile.features.kv) {
    // Xraft-KV#1: a read must return the value of the globally committed
    // prefix at the instant it is served (single-copy linearizability).
    spec.transition_invariants.push_back(
        {"ReadLinearizability",
         [n](const State& prev, const ActionLabel& label, const State& next) {
           if (label.action != "ClientRead") {
             return true;
           }
           const std::string key = label.params["key"].is_string()
                                       ? label.params["key"].as_string()
                                       : "x";
           return label.params["val"].as_int() == GlobalCommittedValue(prev, key, n);
         }});
  }
}

}  // namespace sandtable
