#include "src/raftspec/raft_params.h"

#include "src/util/check.h"

namespace sandtable {

const std::vector<std::string>& RaftSystemNames() {
  static const std::vector<std::string> kNames = {
      "pysyncobj", "wraft", "redisraft", "daosraft", "raftos", "xraft", "xraftkv",
  };
  return kNames;
}

RaftProfile GetRaftProfile(const std::string& system_name, bool with_bugs) {
  RaftProfile p;
  p.name = system_name;

  if (system_name == "pysyncobj") {
    // Full-featured TCP Raft library with optimistic nextIndex pipelining.
    p.features.optimistic_next = true;
    if (with_bugs) {
      p.bugs.pso2_commit_regress = true;
      p.bugs.pso3_next_le_match = true;
      p.bugs.pso4_match_regress = true;
      p.bugs.pso5_commit_old_term = true;
    }
  } else if (system_name == "wraft") {
    // C Raft library; no network assumptions => UDP failure model; has log
    // compaction.
    p.features.udp = true;
    p.features.compaction = true;
    p.budget.max_drops = 1;
    p.budget.max_dups = 1;
    if (with_bugs) {
      p.bugs.wr1_commit_own_last = true;
      p.bugs.wr2_ae_instead_of_snapshot = true;
      p.bugs.wr4_term_regress = true;
      p.bugs.wr5_empty_retry = true;
      p.bugs.wr7_next_eq_match = true;
    }
  } else if (system_name == "redisraft") {
    // WRaft downstream with the old bugs fixed; adds PreVote; TCP transport.
    p.features.compaction = true;
    p.features.prevote = true;
    // No new specification-level bugs were found in RedisRaft (§5.1.2).
  } else if (system_name == "daosraft") {
    // WRaft downstream with PreVote; TCP transport.
    p.features.compaction = true;
    p.features.prevote = true;
    if (with_bugs) {
      p.bugs.daos1_leader_votes = true;
    }
  } else if (system_name == "raftos") {
    // Python asyncio Raft over UDP.
    p.features.udp = true;
    p.budget.max_drops = 1;
    p.budget.max_dups = 1;
    if (with_bugs) {
      p.bugs.ros1_match_regress = true;
      p.bugs.ros2_erase_matched = true;
      p.bugs.ros4_commit_break = true;
    }
  } else if (system_name == "xraft") {
    // Java Raft with PreVote; TCP transport.
    p.features.prevote = true;
    if (with_bugs) {
      p.bugs.xr1_stale_vote = true;
    }
  } else if (system_name == "xraftkv") {
    // KV store on Xraft-core; the store build does not include PreVote (§4.2).
    p.features.kv = true;
    if (with_bugs) {
      p.bugs.xkv1_stale_read = true;
    }
  } else {
    CHECK(false) << "unknown Raft system profile: " << system_name;
  }

  // Bug-detection defaults of §5.1: 3 nodes, two workload values, and budget
  // constraints within the ranges the paper reports (3-6 timeouts, 3-4 client
  // requests, 1-4 failures, 4-10 message buffers). Scaled to laptop budgets.
  p.config.num_servers = 3;
  p.config.num_values = 2;
  p.budget.max_timeouts = 3;
  p.budget.max_client_requests = 2;
  p.budget.max_partitions = p.features.udp ? 0 : 1;
  p.budget.max_crashes = 1;
  p.budget.max_restarts = 1;
  return p;
}

}  // namespace sandtable
