// Raft family parameterization: features, seeded bugs, configurations and
// budget constraints.
//
// The paper integrates seven Raft-family systems (PySyncObj, WRaft, RedisRaft,
// DaosRaft, RaftOS, Xraft, Xraft-KV). This reproduction models them as
// profiles of one parameterized Raft spec/implementation pair: each profile
// fixes the feature set (PreVote, log compaction, KV layer), the network
// semantics (TCP vs UDP failure models) and the system's seeded bug switches
// from Table 2. Both the specification (st_raftspec) and the implementation
// (st_systems) consume the same RaftBugs switches, which is what makes
// conformance checking meaningful: with equal switches the two levels agree
// step for step; flipping a switch on one side only reproduces the paper's
// spec-vs-impl discrepancy workflow (§3.2, Figure 4).
#ifndef SANDTABLE_SRC_RAFTSPEC_RAFT_PARAMS_H_
#define SANDTABLE_SRC_RAFTSPEC_RAFT_PARAMS_H_

#include <string>
#include <vector>

namespace sandtable {

struct RaftFeatures {
  bool prevote = false;     // PreVote extension (RedisRaft, DaosRaft, Xraft)
  bool compaction = false;  // log compaction / InstallSnapshot (WRaft family)
  bool kv = false;          // KV client operations + linearizability oracle (Xraft-KV)
  bool udp = false;         // UDP network failure model (WRaft, RaftOS); TCP otherwise
  // PySyncObj-style optimistic pipelining: the leader advances nextIndex to
  // lastIndex+1 right after sending entries instead of waiting for the ack.
  bool optimistic_next = false;
};

// One switch per Table 2 bug that is visible at the specification level.
// Conformance-stage bugs (PySyncObj#1, WRaft#3/#6/#8, RaftOS#3, Xraft#2) are
// implementation-only defects and live in st_systems (RaftImplBugs).
struct RaftBugs {
  // PySyncObj#2: follower adopts leaderCommit without the monotonicity guard,
  // letting the commit index regress. Consequence: commit index not monotonic.
  bool pso2_commit_regress = false;
  // PySyncObj#3: on a rejected AppendEntries the leader resets nextIndex from
  // the response hint without clamping to matchIndex+1.
  bool pso3_next_le_match = false;
  // PySyncObj#4 (Figure 6): follower's success response carries a wrong next
  // hint (prev+len instead of prev+len+1) when entries are present, and the
  // leader assigns matchIndex from the hint without the max() guard.
  bool pso4_match_regress = false;
  // PySyncObj#5: leader advances commitIndex to entries of older terms.
  bool pso5_commit_old_term = false;
  // WRaft#1 (Figure 7): follower computes the commit bound from its own last
  // index instead of prev+len(entries), committing stale conflicting entries.
  bool wr1_commit_own_last = false;
  // WRaft#2 (Figure 7): when nextIndex is already compacted the leader sends a
  // (necessarily empty) AppendEntries instead of InstallSnapshot.
  bool wr2_ae_instead_of_snapshot = false;
  // WRaft#4: terms adopted from any message, even stale ones (term regress).
  bool wr4_term_regress = false;
  // WRaft#5: retry AppendEntries after a rejection carries no entries.
  bool wr5_empty_retry = false;
  // WRaft#7: on a successful response the leader sets nextIndex = matchIndex.
  bool wr7_next_eq_match = false;
  // DaosRaft#1: a leader grants RequestVote without stepping down first.
  bool daos1_leader_votes = false;
  // RaftOS#1: matchIndex assigned from the response without the max() guard.
  bool ros1_match_regress = false;
  // RaftOS#2: follower truncates at prevLogIndex unconditionally, erasing
  // already-matched (possibly committed) entries on duplicated messages.
  bool ros2_erase_matched = false;
  // RaftOS#4: the commit-advance loop breaks at the first entry of an older
  // term instead of skipping it, so newer committable entries never commit.
  bool ros4_commit_break = false;
  // Xraft#1: candidate counts vote responses without checking their term.
  bool xr1_stale_vote = false;
  // Xraft-KV#1: leader serves reads from local state without confirming
  // leadership, violating linearizability after a partition.
  bool xkv1_stale_read = false;

  bool AnySet() const {
    return pso2_commit_regress || pso3_next_le_match || pso4_match_regress ||
           pso5_commit_old_term || wr1_commit_own_last || wr2_ae_instead_of_snapshot ||
           wr4_term_regress || wr5_empty_retry || wr7_next_eq_match || daos1_leader_votes ||
           ros1_match_regress || ros2_erase_matched || ros4_commit_break || xr1_stale_vote ||
           xkv1_stale_read;
  }
};

// System configuration (§3.3): cluster size and workload values.
struct RaftConfig {
  int num_servers = 3;
  int num_values = 2;
};

// Budget constraint (§3.3): caps on event counts that bound the state space.
struct RaftBudget {
  int max_timeouts = 3;        // election + heartbeat timeouts
  int max_client_requests = 2;
  int max_crashes = 0;
  int max_restarts = 0;
  int max_partitions = 1;  // TCP failure model
  int max_drops = 0;       // UDP failure model
  int max_dups = 0;
  int max_msg_buffer = 4;  // largest per-channel load
  int max_term = 3;
  int max_log_len = 4;
  int max_snapshots = 1;  // compaction feature only
};

struct RaftProfile {
  std::string name;  // "pysyncobj", "wraft", ...
  RaftFeatures features;
  RaftBugs bugs;
  RaftConfig config;
  RaftBudget budget;
};

// The per-system profiles of Table 1/Table 2 with that system's seeded bugs
// enabled. `with_bugs = false` yields the bug-fixed profile (used by Table 3).
RaftProfile GetRaftProfile(const std::string& system_name, bool with_bugs);

// All seven Raft-family system names, in Table 1 order.
const std::vector<std::string>& RaftSystemNames();

}  // namespace sandtable

#endif  // SANDTABLE_SRC_RAFTSPEC_RAFT_PARAMS_H_
