#include "src/raftspec/raft_spec.h"

#include <algorithm>
#include <memory>

#include "src/net/specnet.h"
#include "src/raftspec/raft_common.h"
#include "src/util/check.h"

namespace sandtable {

using namespace raftspec;  // NOLINT(build/namespaces): spec vocabulary

namespace {

// All helper state shared by the action closures. Wrapped in a shared_ptr so
// the returned Spec owns it.
struct Builder {
  RaftProfile p;
  int n = 0;       // servers
  int quorum = 0;  // majority size
  std::vector<Value> nodes;

  explicit Builder(const RaftProfile& profile)
      : p(profile),
        n(profile.config.num_servers),
        quorum(QuorumSize(profile.config.num_servers)),
        nodes(AllNodes(profile.config.num_servers)) {}

  // ---- Generic state update helpers ---------------------------------------

  static State Upd(const State& s, const char* var, const Value& node, Value v) {
    return s.WithField(var, s.field(var).FunSet(node, std::move(v)));
  }

  State SetRole(const State& s, const Value& node, const char* role) const {
    return Upd(s, kVarRole, node, Value::Str(role));
  }

  // Adopt a (higher) term: reset vote, clear election and leader bookkeeping,
  // fall back to follower.
  State AdoptTerm(const State& s, const Value& node, int64_t term) const {
    State t = Upd(s, kVarCurrentTerm, node, Value::Int(term));
    t = Upd(t, kVarVotedFor, node, NoneValue());
    t = Upd(t, kVarVotesGranted, node, Value::EmptySet());
    if (p.features.prevote) {
      t = Upd(t, kVarPreVotesGranted, node, Value::EmptySet());
    }
    t = Upd(t, kVarNextIndex, node, Value::EmptyFun());
    t = Upd(t, kVarMatchIndex, node, Value::EmptyFun());
    return SetRole(t, node, kRoleFollower);
  }

  State WithNet(const State& s, Value net) const {
    return s.WithField(kVarNet, std::move(net));
  }

  State SendMsg(const State& s, const Value& msg) const {
    return WithNet(s, specnet::Send(s.field(kVarNet), msg, CrashedSet(s, n)));
  }

  // ---- Message constructors -------------------------------------------------

  static Value MsgBase(const char* type, const Value& src, const Value& dst, int64_t term) {
    return Value::Record({{"mtype", Value::Str(type)},
                          {"src", src},
                          {"dst", dst},
                          {"term", Value::Int(term)}});
  }

  static Value MsgRequestVote(const Value& src, const Value& dst, int64_t term,
                              int64_t last_index, int64_t last_term) {
    return MsgBase(kMsgRequestVote, src, dst, term)
        .WithField("lastLogIndex", Value::Int(last_index))
        .WithField("lastLogTerm", Value::Int(last_term));
  }

  static Value MsgRequestVoteResp(const Value& src, const Value& dst, int64_t term,
                                  bool granted) {
    return MsgBase(kMsgRequestVoteResp, src, dst, term)
        .WithField("granted", Value::Bool(granted));
  }

  static Value MsgPreVote(const Value& src, const Value& dst, int64_t next_term,
                          int64_t last_index, int64_t last_term) {
    return MsgBase(kMsgPreVote, src, dst, next_term)
        .WithField("lastLogIndex", Value::Int(last_index))
        .WithField("lastLogTerm", Value::Int(last_term));
  }

  static Value MsgPreVoteResp(const Value& src, const Value& dst, int64_t next_term,
                              bool granted) {
    return MsgBase(kMsgPreVoteResp, src, dst, next_term)
        .WithField("granted", Value::Bool(granted));
  }

  static Value MsgAppendEntries(const Value& src, const Value& dst, int64_t term,
                                int64_t prev_index, int64_t prev_term, Value entries,
                                int64_t commit, bool is_retry) {
    return MsgBase(kMsgAppendEntries, src, dst, term)
        .WithField("prevLogIndex", Value::Int(prev_index))
        .WithField("prevLogTerm", Value::Int(prev_term))
        .WithField("entries", std::move(entries))
        .WithField("commit", Value::Int(commit))
        .WithField("isRetry", Value::Bool(is_retry));
  }

  static Value MsgAppendEntriesResp(const Value& src, const Value& dst, int64_t term,
                                    bool success, int64_t hint) {
    return MsgBase(kMsgAppendEntriesResp, src, dst, term)
        .WithField("success", Value::Bool(success))
        .WithField("hint", Value::Int(hint));
  }

  static Value MsgInstallSnapshot(const Value& src, const Value& dst, int64_t term,
                                  int64_t last_index, int64_t last_term) {
    return MsgBase(kMsgInstallSnapshot, src, dst, term)
        .WithField("lastIndex", Value::Int(last_index))
        .WithField("lastTerm", Value::Int(last_term));
  }

  static Value MsgInstallSnapshotResp(const Value& src, const Value& dst, int64_t term,
                                      bool success, int64_t hint) {
    return MsgBase(kMsgInstallSnapshotResp, src, dst, term)
        .WithField("success", Value::Bool(success))
        .WithField("hint", Value::Int(hint));
  }

  // ---- Initial state ---------------------------------------------------------

  State InitState() const {
    std::vector<Value::Pair> role, term, voted, log, commit, next, match, votes, prevotes,
        snap_idx, snap_term;
    for (const Value& node : nodes) {
      role.emplace_back(node, Value::Str(kRoleFollower));
      term.emplace_back(node, Value::Int(0));
      voted.emplace_back(node, NoneValue());
      log.emplace_back(node, Value::EmptySeq());
      commit.emplace_back(node, Value::Int(0));
      next.emplace_back(node, Value::EmptyFun());
      match.emplace_back(node, Value::EmptyFun());
      votes.emplace_back(node, Value::EmptySet());
      prevotes.emplace_back(node, Value::EmptySet());
      snap_idx.emplace_back(node, Value::Int(0));
      snap_term.emplace_back(node, Value::Int(0));
    }
    std::vector<Value::Field> fields = {
        {kVarRole, Value::Fun(std::move(role))},
        {kVarCurrentTerm, Value::Fun(std::move(term))},
        {kVarVotedFor, Value::Fun(std::move(voted))},
        {kVarLog, Value::Fun(std::move(log))},
        {kVarCommitIndex, Value::Fun(std::move(commit))},
        {kVarNextIndex, Value::Fun(std::move(next))},
        {kVarMatchIndex, Value::Fun(std::move(match))},
        {kVarVotesGranted, Value::Fun(std::move(votes))},
        {kVarNet, p.features.udp ? specnet::InitUdp() : specnet::InitTcp()},
        {kVarCounters,
         Value::Record({{"timeouts", Value::Int(0)},
                        {"requests", Value::Int(0)},
                        {"crashes", Value::Int(0)},
                        {"restarts", Value::Int(0)},
                        {"partitions", Value::Int(0)},
                        {"drops", Value::Int(0)},
                        {"dups", Value::Int(0)},
                        {"snapshots", Value::Int(0)}})},
    };
    if (p.features.prevote) {
      fields.emplace_back(kVarPreVotesGranted, Value::Fun(std::move(prevotes)));
    }
    if (p.features.compaction) {
      fields.emplace_back(kVarSnapshotIndex, Value::Fun(std::move(snap_idx)));
      fields.emplace_back(kVarSnapshotTerm, Value::Fun(std::move(snap_term)));
    }
    return Value::Record(std::move(fields));
  }

  // ---- Log replication helpers ------------------------------------------------

  // The AppendEntries (or InstallSnapshot) message the leader sends to `peer`
  // given its current nextIndex. `is_retry` marks messages sent in response to
  // a rejection; the flag is only set when the leader actually has entries to
  // ship, so the NonEmptyRetry invariant can check in-flight messages.
  Value MakeAppendMsg(const State& s, const Value& leader, const Value& peer,
                      bool is_retry, ActionContext& ctx) const {
    const int64_t term = CurrentTerm(s, leader);
    const Value& next_fun = s.field(kVarNextIndex).Apply(leader);
    const int64_t ni = next_fun.FunHas(peer) ? next_fun.Apply(peer).int_v() : 1;
    const int64_t snap = SnapshotIndex(s, leader);
    if (p.features.compaction && ni <= snap) {
      if (p.bugs.wr2_ae_instead_of_snapshot) {
        // WRaft#2: the compacted range cannot be shipped as entries, but the
        // buggy leader sends an AppendEntries anyway — empty, yet carrying
        // prev=snapshot and the leader's commit index (Figure 7, AE1).
        ctx.Branch("send_ae_for_compacted[bug:wr2]");
        return MsgAppendEntries(leader, peer, term, snap, SnapshotTerm(s, leader),
                                Value::EmptySeq(), CommitIndex(s, leader), false);
      }
      ctx.Branch("send_snapshot");
      return MsgInstallSnapshot(leader, peer, term, snap, SnapshotTerm(s, leader));
    }
    const int64_t last = LastIndex(s, leader);
    Value entries = ni <= last ? EntriesFrom(s, leader, ni) : Value::EmptySeq();
    const bool retry_flag = is_retry && ni <= last;
    if (p.bugs.wr5_empty_retry && is_retry) {
      // WRaft#5: the retry after a rejection forgets to attach the entries.
      ctx.Branch("empty_retry[bug:wr5]");
      entries = Value::EmptySeq();
    }
    ctx.Branch(entries.empty() ? "send_heartbeat" : "send_entries");
    return MsgAppendEntries(leader, peer, term, ni - 1, TermAt(s, leader, ni - 1),
                            std::move(entries), CommitIndex(s, leader), retry_flag);
  }

  // After sending entries, a pipelining leader (PySyncObj) optimistically
  // advances nextIndex past what it just shipped.
  State MaybeOptimisticNext(const State& s, const Value& leader, const Value& peer,
                            const Value& sent_msg) const {
    if (!p.features.optimistic_next ||
        sent_msg.field("mtype").str_v() != kMsgAppendEntries ||
        sent_msg.field("entries").empty()) {
      return s;
    }
    const Value& next_fun = s.field(kVarNextIndex).Apply(leader);
    const int64_t advanced =
        sent_msg.field("prevLogIndex").int_v() +
        static_cast<int64_t>(sent_msg.field("entries").size()) + 1;
    return Upd(s, kVarNextIndex, leader, next_fun.FunSet(peer, Value::Int(advanced)));
  }

  // Is candidate's log at least as up-to-date as the voter's (RequestVote §5.4.1)?
  bool CandidateUpToDate(const State& s, const Value& voter, int64_t cand_last_term,
                         int64_t cand_last_index) const {
    const int64_t my_last = LastIndex(s, voter);
    const int64_t my_term = TermAt(s, voter, my_last);
    return cand_last_term > my_term ||
           (cand_last_term == my_term && cand_last_index >= my_last);
  }

  // Start an election at `node`: bump term, vote for self, solicit votes.
  State StartElection(const State& s, const Value& node, ActionContext& ctx) const {
    const int64_t new_term = CurrentTerm(s, node) + 1;
    State t = Upd(s, kVarCurrentTerm, node, Value::Int(new_term));
    t = SetRole(t, node, kRoleCandidate);
    t = Upd(t, kVarVotedFor, node, node);
    t = Upd(t, kVarVotesGranted, node, Value::Set({node}));
    if (p.features.prevote) {
      t = Upd(t, kVarPreVotesGranted, node, Value::EmptySet());
    }
    const int64_t last = LastIndex(t, node);
    const int64_t last_term = TermAt(t, node, last);
    for (const Value& peer : nodes) {
      if (peer == node) {
        continue;
      }
      t = SendMsg(t, MsgRequestVote(node, peer, new_term, last, last_term));
    }
    ctx.Branch("start_election");
    return t;
  }

  // Candidate won: initialize leader bookkeeping and send an initial round of
  // (empty) AppendEntries.
  State BecomeLeader(const State& s, const Value& node, ActionContext& ctx) const {
    State t = SetRole(s, node, kRoleLeader);
    const int64_t last = LastIndex(t, node);
    std::vector<Value::Pair> next;
    std::vector<Value::Pair> match;
    for (const Value& peer : nodes) {
      if (peer == node) {
        continue;
      }
      next.emplace_back(peer, Value::Int(last + 1));
      match.emplace_back(peer, Value::Int(0));
    }
    t = Upd(t, kVarNextIndex, node, Value::Fun(std::move(next)));
    t = Upd(t, kVarMatchIndex, node, Value::Fun(std::move(match)));
    for (const Value& peer : nodes) {
      if (peer == node) {
        continue;
      }
      const Value msg = MakeAppendMsg(t, node, peer, /*is_retry=*/false, ctx);
      t = SendMsg(t, msg);
      t = MaybeOptimisticNext(t, node, peer, msg);
    }
    ctx.Branch("become_leader");
    return t;
  }

  // Leader commit advancement after match indices changed (flags: PySyncObj#5
  // drops the current-term check; RaftOS#4 breaks out of the scan instead of
  // skipping older-term entries).
  State AdvanceCommit(const State& s, const Value& leader, ActionContext& ctx) const {
    const int64_t term = CurrentTerm(s, leader);
    const int64_t last = LastIndex(s, leader);
    const Value& match = s.field(kVarMatchIndex).Apply(leader);
    int64_t best = CommitIndex(s, leader);
    for (int64_t idx = best + 1; idx <= last; ++idx) {
      int acks = 1;
      for (const auto& [peer, m] : match.fun_pairs()) {
        if (m.int_v() >= idx) {
          ++acks;
        }
      }
      if (acks < quorum) {
        break;
      }
      if (TermAt(s, leader, idx) == term) {
        best = idx;
      } else if (p.bugs.pso5_commit_old_term) {
        // PySyncObj#5: no current-term check on the committed entry.
        ctx.Branch("commit_old_term[bug:pso5]");
        best = idx;
      } else if (p.bugs.ros4_commit_break) {
        // RaftOS#4: the scan stops at the first older-term entry, so newer
        // committable entries of the current term are never reached.
        ctx.Branch("commit_scan_break[bug:ros4]");
        break;
      }
    }
    if (best == CommitIndex(s, leader)) {
      return s;
    }
    ctx.Branch("advance_commit");
    return Upd(s, kVarCommitIndex, leader, Value::Int(best));
  }

  // ---- JSON param helpers -----------------------------------------------------

  static Json NodeParam(const Value& node) { return Json(static_cast<int64_t>(NodeIndex(node))); }

  static Json MsgParams(const Value& msg) {
    JsonObject o;
    o["src"] = NodeParam(msg.field("src"));
    o["dst"] = NodeParam(msg.field("dst"));
    o["msg"] = msg.ToJson();
    return Json(std::move(o));
  }
};

using BP = std::shared_ptr<const Builder>;

// ---- Actions ------------------------------------------------------------------

// Election timeout at a non-leader node.
Action ElectionTimeoutAction(const BP& b) {
  Action a;
  a.name = "Timeout";
  a.kind = EventKind::kTimeout;
  // The campaign path this profile is expected to exercise; a run that never
  // hits it (e.g. a budget with no timeouts left) shows up as a coverage-hole
  // warning in the analytics report.
  a.declared_branches = {b->p.features.prevote ? "prevote_round" : "start_election"};
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "timeouts") >= b->p.budget.max_timeouts) {
      return;
    }
    for (const Value& node : b->nodes) {
      const std::string& role = Role(s, node).str_v();
      if (role == kRoleLeader || role == kRoleCrashed) {
        continue;
      }
      if (CurrentTerm(s, node) + 1 > b->p.budget.max_term) {
        continue;
      }
      State t = BumpCounter(s, "timeouts");
      JsonObject params;
      params["node"] = Builder::NodeParam(node);
      if (b->p.features.prevote) {
        // PreVote: solicit non-binding votes for term+1 before campaigning.
        ctx.Branch("prevote_round");
        t = b->SetRole(t, node, kRolePreCandidate);
        t = Builder::Upd(t, kVarPreVotesGranted, node, Value::Set({node}));
        const int64_t last = LastIndex(t, node);
        const int64_t last_term = TermAt(t, node, last);
        for (const Value& peer : b->nodes) {
          if (peer == node) {
            continue;
          }
          t = b->SendMsg(t, Builder::MsgPreVote(node, peer, CurrentTerm(t, node) + 1, last,
                                                last_term));
        }
      } else {
        t = b->StartElection(t, node, ctx);
      }
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

// Heartbeat timeout at a leader: replicate to every peer.
Action HeartbeatAction(const BP& b) {
  Action a;
  a.name = "HeartbeatTimeout";
  a.kind = EventKind::kTimeout;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "timeouts") >= b->p.budget.max_timeouts) {
      return;
    }
    for (const Value& node : b->nodes) {
      if (Role(s, node).str_v() != kRoleLeader) {
        continue;
      }
      State t = BumpCounter(s, "timeouts");
      for (const Value& peer : b->nodes) {
        if (peer == node) {
          continue;
        }
        const Value msg = b->MakeAppendMsg(t, node, peer, /*is_retry=*/false, ctx);
        t = b->SendMsg(t, msg);
        t = b->MaybeOptimisticNext(t, node, peer, msg);
      }
      JsonObject params;
      params["node"] = Builder::NodeParam(node);
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

// Generic frame for message-delivery actions: enumerate deliverable messages
// of one type and apply the handler.
Action DeliveryAction(const BP& b, const char* name, const char* mtype,
                      std::function<State(const Builder&, State, const Value& msg,
                                          ActionContext&)>
                          handler) {
  Action a;
  a.name = name;
  a.kind = EventKind::kMessage;
  a.expand = [b, mtype, handler = std::move(handler)](const State& s, ActionContext& ctx) {
    const Value crashed = CrashedSet(s, b->n);
    for (specnet::Delivery& d : specnet::Deliveries(s.field(kVarNet), crashed)) {
      if (d.msg.field("mtype").str_v() != mtype) {
        continue;
      }
      State t = b->WithNet(s, std::move(d.net_after));
      t = handler(*b, std::move(t), d.msg, ctx);
      Json params = Builder::MsgParams(d.msg);
      if (d.from_delayed) {
        params["delayed"] = Json(true);
      }
      ctx.Emit(std::move(t), std::move(params));
    }
  };
  return a;
}

State HandleRequestVote(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  const int64_t mterm = m.field("term").int_v();
  const bool was_leader = Role(s, dst).str_v() == kRoleLeader;

  if (mterm > CurrentTerm(s, dst)) {
    if (b.p.bugs.daos1_leader_votes && was_leader) {
      // DaosRaft#1: the leader adopts the new term and may grant the vote —
      // but never steps down.
      ctx.Branch("leader_keeps_leading[bug:daos1]");
      s = Builder::Upd(s, kVarCurrentTerm, dst, Value::Int(mterm));
      s = Builder::Upd(s, kVarVotedFor, dst, NoneValue());
    } else {
      ctx.Branch("step_down_on_higher_term");
      s = b.AdoptTerm(s, dst, mterm);
    }
  } else if (b.p.bugs.wr4_term_regress && mterm < CurrentTerm(s, dst)) {
    // WRaft#4: terms are adopted from any message, even stale ones.
    ctx.Branch("term_regress[bug:wr4]");
    s = b.AdoptTerm(s, dst, mterm);
  }

  const Value& voted = VotedFor(s, dst);
  bool grant = mterm == CurrentTerm(s, dst) &&
               (voted == NoneValue() || voted == src) &&
               b.CandidateUpToDate(s, dst, m.field("lastLogTerm").int_v(),
                                   m.field("lastLogIndex").int_v());
  if (!b.p.bugs.daos1_leader_votes && Role(s, dst).str_v() == kRoleLeader) {
    // The DaosRaft fix: a leader rejects RequestVote outright.
    grant = false;
  }
  ctx.Branch(grant ? "grant_vote" : "reject_vote");
  if (grant) {
    s = Builder::Upd(s, kVarVotedFor, dst, src);
  }
  return b.SendMsg(s, Builder::MsgRequestVoteResp(dst, src, CurrentTerm(s, dst), grant));
}

State HandleRequestVoteResp(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  const int64_t mterm = m.field("term").int_v();
  if (mterm > CurrentTerm(s, dst)) {
    ctx.Branch("step_down_on_higher_term");
    return b.AdoptTerm(s, dst, mterm);
  }
  if (Role(s, dst).str_v() != kRoleCandidate) {
    ctx.Branch("not_candidate");
    return s;
  }
  const bool term_matches = mterm == CurrentTerm(s, dst);
  bool counted = m.field("granted").bool_v();
  if (!b.p.bugs.xr1_stale_vote) {
    counted = counted && term_matches;
  } else if (counted && !term_matches) {
    // Xraft#1: stale grants from an earlier election are counted.
    ctx.Branch("stale_vote_counted[bug:xr1]");
  }
  if (!counted) {
    ctx.Branch("vote_not_counted");
    return s;
  }
  const Value votes = s.field(kVarVotesGranted).Apply(dst).SetAdd(src);
  s = Builder::Upd(s, kVarVotesGranted, dst, votes);
  if (static_cast<int>(votes.size()) >= b.quorum) {
    return b.BecomeLeader(s, dst, ctx);
  }
  ctx.Branch("vote_counted");
  return s;
}

State HandlePreVote(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  const int64_t next_term = m.field("term").int_v();
  // PreVote is non-binding: no state change at the voter.
  const bool grant = next_term > CurrentTerm(s, dst) &&
                     b.CandidateUpToDate(s, dst, m.field("lastLogTerm").int_v(),
                                         m.field("lastLogIndex").int_v());
  ctx.Branch(grant ? "grant_prevote" : "reject_prevote");
  return b.SendMsg(s, Builder::MsgPreVoteResp(dst, src, next_term, grant));
}

State HandlePreVoteResp(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  if (Role(s, dst).str_v() != kRolePreCandidate ||
      m.field("term").int_v() != CurrentTerm(s, dst) + 1 || !m.field("granted").bool_v()) {
    ctx.Branch("prevote_ignored");
    return s;
  }
  const Value votes = s.field(kVarPreVotesGranted).Apply(dst).SetAdd(src);
  s = Builder::Upd(s, kVarPreVotesGranted, dst, votes);
  if (static_cast<int>(votes.size()) >= b.quorum) {
    ctx.Branch("prevote_quorum");
    return b.StartElection(s, dst, ctx);
  }
  ctx.Branch("prevote_counted");
  return s;
}

State HandleAppendEntries(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  const int64_t mterm = m.field("term").int_v();

  if (mterm > CurrentTerm(s, dst)) {
    ctx.Branch("adopt_leader_term");
    s = b.AdoptTerm(s, dst, mterm);
  } else if (b.p.bugs.wr4_term_regress && mterm < CurrentTerm(s, dst)) {
    ctx.Branch("term_regress[bug:wr4]");
    s = b.AdoptTerm(s, dst, mterm);
  }
  if (mterm < CurrentTerm(s, dst)) {
    ctx.Branch("reject_stale_leader");
    return b.SendMsg(s, Builder::MsgAppendEntriesResp(dst, src, CurrentTerm(s, dst), false,
                                                      LastIndex(s, dst) + 1));
  }
  if (Role(s, dst).str_v() == kRoleLeader) {
    // Same-term AppendEntries at a leader cannot happen in correct Raft; the
    // message is consumed without effect.
    ctx.Branch("ignored_at_leader");
    return s;
  }
  s = b.SetRole(s, dst, kRoleFollower);

  const int64_t prev_index = m.field("prevLogIndex").int_v();
  const int64_t prev_term = m.field("prevLogTerm").int_v();
  const Value& entries = m.field("entries");
  const int64_t snap = SnapshotIndex(s, dst);
  const int64_t last = LastIndex(s, dst);

  // Consistency check on the entry preceding the batch.
  bool prev_ok;
  if (prev_index < snap) {
    // The prefix is already inside our snapshot; treat as matching (covered
    // entries are skipped below).
    prev_ok = true;
  } else {
    prev_ok = prev_index <= last && TermAt(s, dst, prev_index) == prev_term;
    if (!prev_ok && b.p.bugs.wr1_commit_own_last && prev_index <= 1 && prev_index <= last) {
      // WRaft#1: the consistency check is skipped for the first-entry special
      // case, so a conflicting entry 1 survives (Figure 7).
      ctx.Branch("skip_first_entry_check[bug:wr1]");
      prev_ok = true;
    }
  }
  if (!prev_ok) {
    ctx.Branch("reject_log_mismatch");
    const int64_t hint = std::min<int64_t>(last + 1, std::max<int64_t>(prev_index, snap + 1));
    return b.SendMsg(s, Builder::MsgAppendEntriesResp(dst, src, CurrentTerm(s, dst), false,
                                                      hint));
  }

  // Append / reconcile the entries.
  if (b.p.bugs.ros2_erase_matched && !entries.empty() && prev_index >= snap) {
    // RaftOS#2: truncate at prevLogIndex unconditionally before appending,
    // erasing already-matched (possibly committed) entries when a duplicate
    // or reordered message arrives.
    ctx.Branch("truncate_unconditionally[bug:ros2]");
    Value log = Log(s, dst).SubSeq(1, static_cast<size_t>(std::max<int64_t>(
                                          prev_index - snap, 0)));
    for (const Value& e : entries.elems()) {
      log = log.Append(e);
    }
    s = Builder::Upd(s, kVarLog, dst, log);
  } else {
    for (size_t k = 0; k < entries.size(); ++k) {
      const int64_t idx = prev_index + 1 + static_cast<int64_t>(k);
      if (idx <= snap) {
        continue;  // covered by our snapshot
      }
      const Value& e = entries.at(k);
      if (idx <= LastIndex(s, dst)) {
        if (TermAt(s, dst, idx) == e.field("term").int_v()) {
          continue;  // already matched
        }
        ctx.Branch("truncate_conflict");
        const int64_t keep = idx - SnapshotIndex(s, dst) - 1;
        s = Builder::Upd(s, kVarLog, dst,
                         Log(s, dst).SubSeq(1, static_cast<size_t>(std::max<int64_t>(keep, 0))));
      }
      ctx.Branch("append_entry");
      s = Builder::Upd(s, kVarLog, dst, Log(s, dst).Append(e));
    }
  }

  // Commit index update.
  const int64_t base = b.p.bugs.wr1_commit_own_last
                           ? LastIndex(s, dst)  // WRaft#1: bound by own last index
                           : prev_index + static_cast<int64_t>(entries.size());
  int64_t new_commit = std::min(m.field("commit").int_v(), base);
  new_commit = std::max(new_commit, SnapshotIndex(s, dst));
  if (b.p.bugs.pso2_commit_regress) {
    // PySyncObj#2: leaderCommit adopted without the monotonicity guard.
    if (new_commit < CommitIndex(s, dst)) {
      ctx.Branch("commit_regress[bug:pso2]");
    }
  } else {
    new_commit = std::max(new_commit, CommitIndex(s, dst));
  }
  s = Builder::Upd(s, kVarCommitIndex, dst, Value::Int(new_commit));

  // Success response with the next-index hint. PySyncObj#4: when the message
  // carried entries the hint is off by one (prev+len instead of prev+len+1,
  // Figure 6 AER3).
  int64_t hint = prev_index + static_cast<int64_t>(entries.size()) + 1;
  if (b.p.bugs.pso4_match_regress && !entries.empty()) {
    ctx.Branch("wrong_success_hint[bug:pso4]");
    hint = prev_index + static_cast<int64_t>(entries.size());
  }
  ctx.Branch("accept_entries");
  return b.SendMsg(s, Builder::MsgAppendEntriesResp(dst, src, CurrentTerm(s, dst), true, hint));
}

State HandleAppendEntriesResp(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");  // the leader
  const Value& src = m.field("src");  // the follower
  const int64_t mterm = m.field("term").int_v();
  if (mterm > CurrentTerm(s, dst)) {
    ctx.Branch("step_down_on_higher_term");
    return b.AdoptTerm(s, dst, mterm);
  }
  if (Role(s, dst).str_v() != kRoleLeader || mterm != CurrentTerm(s, dst)) {
    ctx.Branch("stale_response_ignored");
    return s;
  }
  const Value& next_fun = s.field(kVarNextIndex).Apply(dst);
  const Value& match_fun = s.field(kVarMatchIndex).Apply(dst);
  if (!next_fun.FunHas(src)) {
    ctx.Branch("unknown_peer");
    return s;
  }
  const int64_t hint = m.field("hint").int_v();
  const int64_t old_next = next_fun.Apply(src).int_v();
  const int64_t old_match = match_fun.Apply(src).int_v();

  if (m.field("success").bool_v()) {
    const int64_t acked = hint - 1;
    int64_t new_match;
    if (b.p.bugs.pso4_match_regress || b.p.bugs.ros1_match_regress) {
      // PySyncObj#4 / RaftOS#1: assignment without the max() guard.
      if (acked < old_match) {
        ctx.Branch("match_regress[bug]");
      }
      new_match = acked;
    } else {
      new_match = std::max(old_match, acked);
    }
    int64_t new_next;
    if (b.p.bugs.wr7_next_eq_match) {
      // WRaft#7: nextIndex set to the match index itself.
      ctx.Branch("next_eq_match[bug:wr7]");
      new_next = std::max<int64_t>(new_match, 1);
    } else if (b.p.bugs.pso3_next_le_match) {
      // PySyncObj#3: nextIndex taken from the hint without clamping.
      new_next = std::max<int64_t>(hint, 1);
    } else {
      new_next = std::max({old_next, hint, new_match + 1});
    }
    new_next = std::min(new_next, LastIndex(s, dst) + 1);
    s = Builder::Upd(s, kVarMatchIndex, dst, match_fun.FunSet(src, Value::Int(new_match)));
    s = Builder::Upd(s, kVarNextIndex, dst,
                     s.field(kVarNextIndex).Apply(dst).FunSet(src, Value::Int(new_next)));
    ctx.Branch("replication_acked");
    return b.AdvanceCommit(s, dst, ctx);
  }

  // Rejected: back off nextIndex and retry immediately. The follower's hint
  // is its own log end, which can exceed ours when an uncommitted longer log
  // lost an election — clamp to our last index + 1.
  int64_t new_next;
  if (b.p.bugs.pso3_next_le_match || b.p.bugs.pso4_match_regress) {
    // PySyncObj#3/#4 share a root cause: the reset from the response hint is
    // not clamped to matchIndex+1, so a delayed rejection (old-connection
    // traffic surfacing after a partition heals, Figure 6's AER1) rewinds
    // nextIndex below — and later, via the wrong success hint, matchIndex
    // regresses too.
    new_next = std::max<int64_t>(hint, 1);
  } else {
    new_next = std::max<int64_t>(std::max(hint, old_match + 1), 1);
  }
  new_next = std::min(new_next, LastIndex(s, dst) + 1);
  s = Builder::Upd(s, kVarNextIndex, dst, next_fun.FunSet(src, Value::Int(new_next)));
  ctx.Branch("replication_rejected");
  const Value retry = b.MakeAppendMsg(s, dst, src, /*is_retry=*/true, ctx);
  s = b.SendMsg(s, retry);
  return b.MaybeOptimisticNext(s, dst, src, retry);
}

State HandleInstallSnapshot(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  const int64_t mterm = m.field("term").int_v();
  if (mterm > CurrentTerm(s, dst)) {
    ctx.Branch("adopt_leader_term");
    s = b.AdoptTerm(s, dst, mterm);
  }
  if (mterm < CurrentTerm(s, dst)) {
    ctx.Branch("reject_stale_snapshot");
    return b.SendMsg(s, Builder::MsgInstallSnapshotResp(dst, src, CurrentTerm(s, dst), false,
                                                        LastIndex(s, dst) + 1));
  }
  if (Role(s, dst).str_v() == kRoleLeader) {
    ctx.Branch("ignored_at_leader");
    return s;
  }
  s = b.SetRole(s, dst, kRoleFollower);
  const int64_t snap_index = m.field("lastIndex").int_v();
  const int64_t snap_term = m.field("lastTerm").int_v();
  if (snap_index <= SnapshotIndex(s, dst)) {
    ctx.Branch("stale_snapshot_content");
    return b.SendMsg(s, Builder::MsgInstallSnapshotResp(dst, src, CurrentTerm(s, dst), true,
                                                        LastIndex(s, dst) + 1));
  }
  // Retain any suffix that extends past the snapshot and matches its term.
  Value new_log = Value::EmptySeq();
  if (snap_index <= LastIndex(s, dst) && snap_index > SnapshotIndex(s, dst) &&
      TermAt(s, dst, snap_index) == snap_term) {
    ctx.Branch("retain_suffix");
    new_log = EntriesFrom(s, dst, snap_index + 1);
  } else {
    ctx.Branch("discard_log");
  }
  s = Builder::Upd(s, kVarLog, dst, new_log);
  s = Builder::Upd(s, kVarSnapshotIndex, dst, Value::Int(snap_index));
  s = Builder::Upd(s, kVarSnapshotTerm, dst, Value::Int(snap_term));
  s = Builder::Upd(s, kVarCommitIndex, dst,
                   Value::Int(std::max(CommitIndex(s, dst), snap_index)));
  return b.SendMsg(s, Builder::MsgInstallSnapshotResp(dst, src, CurrentTerm(s, dst), true,
                                                      snap_index + 1));
}

State HandleInstallSnapshotResp(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  const int64_t mterm = m.field("term").int_v();
  if (mterm > CurrentTerm(s, dst)) {
    ctx.Branch("step_down_on_higher_term");
    return b.AdoptTerm(s, dst, mterm);
  }
  if (Role(s, dst).str_v() != kRoleLeader || mterm != CurrentTerm(s, dst) ||
      !m.field("success").bool_v()) {
    ctx.Branch("snapshot_resp_ignored");
    return s;
  }
  const Value& next_fun = s.field(kVarNextIndex).Apply(dst);
  const Value& match_fun = s.field(kVarMatchIndex).Apply(dst);
  if (!next_fun.FunHas(src)) {
    ctx.Branch("unknown_peer");
    return s;
  }
  const int64_t hint = m.field("hint").int_v();
  const int64_t new_match = std::max(match_fun.Apply(src).int_v(), hint - 1);
  const int64_t new_next = std::max(next_fun.Apply(src).int_v(), hint);
  s = Builder::Upd(s, kVarMatchIndex, dst, match_fun.FunSet(src, Value::Int(new_match)));
  s = Builder::Upd(s, kVarNextIndex, dst,
                   s.field(kVarNextIndex).Apply(dst).FunSet(src, Value::Int(new_next)));
  ctx.Branch("snapshot_acked");
  return b.AdvanceCommit(s, dst, ctx);
}

Action ClientRequestAction(const BP& b) {
  Action a;
  a.name = "ClientRequest";
  a.kind = EventKind::kClientRequest;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "requests") >= b->p.budget.max_client_requests) {
      return;
    }
    for (const Value& node : b->nodes) {
      if (Role(s, node).str_v() != kRoleLeader) {
        continue;
      }
      if (LastIndex(s, node) >= b->p.budget.max_log_len) {
        continue;
      }
      for (int v = 1; v <= b->p.config.num_values; ++v) {
        std::vector<Value::Field> fields = {{"term", Value::Int(CurrentTerm(s, node))},
                                            {"val", Value::Int(v)}};
        if (b->p.features.kv) {
          fields.emplace_back("key", Value::Str("x"));
        }
        State t = Builder::Upd(s, kVarLog, node, Log(s, node).Append(Value::Record(fields)));
        t = BumpCounter(t, "requests");
        ctx.Branch("append_request");
        JsonObject params;
        params["node"] = Builder::NodeParam(node);
        params["val"] = Json(static_cast<int64_t>(v));
        if (b->p.features.kv) {
          params["key"] = Json(std::string("x"));
        }
        ctx.Emit(std::move(t), Json(std::move(params)));
      }
    }
  };
  return a;
}

// A leader whose leadership would survive a ReadIndex quorum round: a quorum
// of nodes (including itself) is reachable and has not moved past its term.
// Used by the fixed ClientRead semantics.
bool IsCurrentLeader(const Builder& b, const State& s, const Value& node) {
  const int64_t my_term = CurrentTerm(s, node);
  int reachable = 1;
  for (const Value& peer : b.nodes) {
    if (peer == node || IsCrashed(s, peer)) {
      continue;
    }
    if (CurrentTerm(s, peer) > my_term) {
      continue;  // this peer would reject the heartbeat
    }
    if (!specnet::ConnectedPair(s.field(kVarNet), node, peer)) {
      continue;
    }
    ++reachable;
  }
  return reachable >= b.quorum;
}

// Xraft-KV reads: the leader answers from local state. The stale-read bug
// serves reads without confirming leadership; the fixed variant models the
// ReadIndex protocol's outcome (the returned value reflects the globally
// committed prefix). Reads do not change the state; the linearizability
// oracle checks the returned value on the transition label.
Action ClientReadAction(const BP& b) {
  Action a;
  a.name = "ClientRead";
  a.kind = EventKind::kClientRequest;
  a.expand = [b](const State& s, ActionContext& ctx) {
    for (const Value& node : b->nodes) {
      if (Role(s, node).str_v() != kRoleLeader) {
        continue;
      }
      if (!b->p.bugs.xkv1_stale_read) {
        // ReadIndex semantics: the read is served only by a leader whose
        // leadership would survive a quorum round and whose applied state has
        // caught up with everything committed (Raft requires the latter via
        // the new-leader no-op commit). A deposed leader cannot serve reads.
        ctx.Branch("readindex_read");
        if (!IsCurrentLeader(*b, s, node)) {
          continue;
        }
        int64_t max_commit = 0;
        for (const Value& peer : b->nodes) {
          max_commit = std::max(max_commit, CommitIndex(s, peer));
        }
        if (CommitIndex(s, node) != max_commit) {
          continue;
        }
      } else {
        // Xraft-KV#1: any node that believes it is the leader serves the read
        // from local state, without confirming leadership.
        ctx.Branch("local_read[bug:xkv1]");
      }
      const int64_t val = LocalValue(s, node, "x");
      JsonObject params;
      params["node"] = Builder::NodeParam(node);
      params["key"] = Json(std::string("x"));
      params["val"] = Json(val);
      ctx.Emit(s, Json(std::move(params)));
    }
  };
  return a;
}

Action CrashAction(const BP& b) {
  Action a;
  a.name = "NodeCrash";
  a.kind = EventKind::kCrash;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "crashes") >= b->p.budget.max_crashes) {
      return;
    }
    // At most a minority may be down at once, or the cluster trivially stalls.
    int down = 0;
    for (const Value& node : b->nodes) {
      down += IsCrashed(s, node) ? 1 : 0;
    }
    if (down + 1 >= b->quorum) {
      return;
    }
    for (const Value& node : b->nodes) {
      if (IsCrashed(s, node)) {
        continue;
      }
      // Crash: volatile state is lost (role, votes, leader bookkeeping, commit
      // index); persistent state (term, votedFor, log, snapshot) survives.
      State t = b->SetRole(s, node, kRoleCrashed);
      t = Builder::Upd(t, kVarVotesGranted, node, Value::EmptySet());
      if (b->p.features.prevote) {
        t = Builder::Upd(t, kVarPreVotesGranted, node, Value::EmptySet());
      }
      t = Builder::Upd(t, kVarNextIndex, node, Value::EmptyFun());
      t = Builder::Upd(t, kVarMatchIndex, node, Value::EmptyFun());
      t = Builder::Upd(t, kVarCommitIndex, node, Value::Int(SnapshotIndex(s, node)));
      t = b->WithNet(t, specnet::OnCrash(t.field(kVarNet), node));
      t = BumpCounter(t, "crashes");
      ctx.Branch("crash");
      JsonObject params;
      params["node"] = Builder::NodeParam(node);
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

Action RestartAction(const BP& b) {
  Action a;
  a.name = "NodeRestart";
  a.kind = EventKind::kRestart;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "restarts") >= b->p.budget.max_restarts) {
      return;
    }
    for (const Value& node : b->nodes) {
      if (!IsCrashed(s, node)) {
        continue;
      }
      State t = b->SetRole(s, node, kRoleFollower);
      t = b->WithNet(t, specnet::OnRestart(t.field(kVarNet), node));
      t = BumpCounter(t, "restarts");
      ctx.Branch("restart");
      JsonObject params;
      params["node"] = Builder::NodeParam(node);
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

Action PartitionAction(const BP& b) {
  Action a;
  a.name = "PartitionStart";
  a.kind = EventKind::kPartition;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "partitions") >= b->p.budget.max_partitions) {
      return;
    }
    const Value& net = s.field(kVarNet);
    if (specnet::HasPartition(net)) {
      return;
    }
    // Enumerate cuts as subsets; a cut and its complement are the same
    // partition, so only the lexicographically smaller side is used.
    const int total = 1 << b->n;
    for (int mask = 1; mask < total - 1; ++mask) {
      std::vector<Value> side;
      std::vector<Value> other;
      for (int i = 0; i < b->n; ++i) {
        ((mask >> i) & 1 ? side : other).push_back(b->nodes[static_cast<size_t>(i)]);
      }
      Value side_set = Value::Set(std::move(side));
      Value other_set = Value::Set(std::move(other));
      if (Compare(other_set, side_set) < 0) {
        continue;  // complement will be enumerated as its own mask
      }
      State t = b->WithNet(s, specnet::Partition(net, side_set));
      t = BumpCounter(t, "partitions");
      ctx.Branch("partition");
      JsonArray ids;
      for (const Value& v : side_set.elems()) {
        ids.push_back(Json(static_cast<int64_t>(NodeIndex(v))));
      }
      JsonObject params;
      params["side"] = Json(std::move(ids));
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

Action HealAction(const BP& b) {
  Action a;
  a.name = "PartitionHeal";
  a.kind = EventKind::kRecover;
  a.expand = [b](const State& s, ActionContext& ctx) {
    const Value& net = s.field(kVarNet);
    if (!specnet::HasPartition(net)) {
      return;
    }
    ctx.Branch("heal");
    ctx.Emit(b->WithNet(s, specnet::Heal(net)), Json(JsonObject{}));
  };
  return a;
}

Action DropAction(const BP& b) {
  Action a;
  a.name = "DropMessage";
  a.kind = EventKind::kNetworkFault;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "drops") >= b->p.budget.max_drops) {
      return;
    }
    for (specnet::FaultOption& f : specnet::DropOptions(s.field(kVarNet))) {
      State t = b->WithNet(s, std::move(f.net_after));
      t = BumpCounter(t, "drops");
      ctx.Branch("drop");
      ctx.Emit(std::move(t), Builder::MsgParams(f.msg));
    }
  };
  return a;
}

Action DupAction(const BP& b) {
  Action a;
  a.name = "DuplicateMessage";
  a.kind = EventKind::kNetworkFault;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "dups") >= b->p.budget.max_dups) {
      return;
    }
    for (specnet::FaultOption& f : specnet::DupOptions(s.field(kVarNet), 2)) {
      State t = b->WithNet(s, std::move(f.net_after));
      t = BumpCounter(t, "dups");
      ctx.Branch("duplicate");
      ctx.Emit(std::move(t), Builder::MsgParams(f.msg));
    }
  };
  return a;
}

Action SnapshotAction(const BP& b) {
  Action a;
  a.name = "TakeSnapshot";
  a.kind = EventKind::kInternal;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "snapshots") >= b->p.budget.max_snapshots) {
      return;
    }
    for (const Value& node : b->nodes) {
      if (IsCrashed(s, node)) {
        continue;
      }
      const int64_t commit = CommitIndex(s, node);
      if (commit <= SnapshotIndex(s, node)) {
        continue;
      }
      State t = Builder::Upd(s, kVarSnapshotTerm, node, Value::Int(TermAt(s, node, commit)));
      t = Builder::Upd(t, kVarLog, node, EntriesFrom(t, node, commit + 1));
      t = Builder::Upd(t, kVarSnapshotIndex, node, Value::Int(commit));
      t = BumpCounter(t, "snapshots");
      ctx.Branch("compact");
      JsonObject params;
      params["node"] = Builder::NodeParam(node);
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

}  // namespace

// Declared in raft_invariants.cc.
void AddRaftInvariants(Spec& spec, const RaftProfile& profile, int num_servers);

Spec MakeRaftSpec(const RaftProfile& profile) {
  auto b = std::make_shared<const Builder>(profile);

  Spec spec;
  spec.name = "raft/" + profile.name;
  spec.init_states.push_back(b->InitState());
  spec.symmetry = Symmetry{kServerClass, b->n};

  spec.actions.push_back(ElectionTimeoutAction(b));
  spec.actions.push_back(HeartbeatAction(b));
  {
    Action vote = DeliveryAction(b, "HandleRequestVoteRequest", kMsgRequestVote,
                                 HandleRequestVote);
    // Every exploration worth trusting sees both verdicts; a missing one is
    // flagged as a coverage hole by the analytics report.
    vote.declared_branches = {"grant_vote", "reject_vote"};
    spec.actions.push_back(std::move(vote));
  }
  spec.actions.push_back(DeliveryAction(b, "HandleRequestVoteResponse", kMsgRequestVoteResp,
                                        HandleRequestVoteResp));
  spec.actions.push_back(DeliveryAction(b, "HandleAppendEntriesRequest", kMsgAppendEntries,
                                        HandleAppendEntries));
  spec.actions.push_back(DeliveryAction(b, "HandleAppendEntriesResponse",
                                        kMsgAppendEntriesResp, HandleAppendEntriesResp));
  if (profile.features.prevote) {
    spec.actions.push_back(DeliveryAction(b, "HandlePreVoteRequest", kMsgPreVote,
                                          HandlePreVote));
    spec.actions.push_back(DeliveryAction(b, "HandlePreVoteResponse", kMsgPreVoteResp,
                                          HandlePreVoteResp));
  }
  if (profile.features.compaction) {
    spec.actions.push_back(DeliveryAction(b, "HandleInstallSnapshotRequest",
                                          kMsgInstallSnapshot, HandleInstallSnapshot));
    spec.actions.push_back(DeliveryAction(b, "HandleInstallSnapshotResponse",
                                          kMsgInstallSnapshotResp, HandleInstallSnapshotResp));
    spec.actions.push_back(SnapshotAction(b));
  }
  spec.actions.push_back(ClientRequestAction(b));
  if (profile.features.kv) {
    spec.actions.push_back(ClientReadAction(b));
  }
  spec.actions.push_back(CrashAction(b));
  spec.actions.push_back(RestartAction(b));
  if (profile.features.udp) {
    spec.actions.push_back(DropAction(b));
    spec.actions.push_back(DupAction(b));
  } else {
    spec.actions.push_back(PartitionAction(b));
    spec.actions.push_back(HealAction(b));
  }

  // Budget constraint (§3.3): counters and structural bounds.
  const RaftBudget budget = profile.budget;
  const int n = b->n;
  spec.constraint = [budget, n](const State& s) {
    if (Counter(s, "timeouts") > budget.max_timeouts ||
        Counter(s, "requests") > budget.max_client_requests ||
        Counter(s, "crashes") > budget.max_crashes ||
        Counter(s, "restarts") > budget.max_restarts ||
        Counter(s, "partitions") > budget.max_partitions ||
        Counter(s, "drops") > budget.max_drops ||
        Counter(s, "dups") > budget.max_dups ||
        Counter(s, "snapshots") > budget.max_snapshots) {
      return false;
    }
    if (specnet::MaxChannelLoad(s.field(kVarNet)) > budget.max_msg_buffer) {
      return false;
    }
    for (int i = 0; i < n; ++i) {
      const Value node = NodeV(i);
      if (CurrentTerm(s, node) > budget.max_term || LastIndex(s, node) > budget.max_log_len) {
        return false;
      }
    }
    return true;
  };

  spec.compared_vars = {kVarRole,        kVarCurrentTerm, kVarVotedFor, kVarLog,
                        kVarCommitIndex, kVarNet};
  if (profile.features.compaction) {
    spec.compared_vars.push_back(kVarSnapshotIndex);
    spec.compared_vars.push_back(kVarSnapshotTerm);
  }

  AddRaftInvariants(spec, profile, b->n);
  return spec;
}

}  // namespace sandtable
