// Builds the parameterized Raft specification for a system profile (§3.1).
//
// The spec models node-level events only — message handling, timeouts, client
// requests, node crashes/restarts and network failures — exactly the paper's
// "global exploration" granularity; thread interleavings and serialization are
// abstracted away. Per-profile bug switches make the spec describe the actual
// (potentially buggy) implementation rather than ideal Raft.
#ifndef SANDTABLE_SRC_RAFTSPEC_RAFT_SPEC_H_
#define SANDTABLE_SRC_RAFTSPEC_RAFT_SPEC_H_

#include "src/raftspec/raft_params.h"
#include "src/spec/spec.h"

namespace sandtable {

// Constructs the bounded specification for `profile`: initial state, actions,
// the safety properties of §4.2 (single leader, log consistency, durability,
// commitment requirements, variable monotonicity, system-specific properties
// such as WRaft's non-empty retries and Xraft-KV's linearizability), and the
// budget-constraint predicate.
Spec MakeRaftSpec(const RaftProfile& profile);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_RAFTSPEC_RAFT_SPEC_H_
