#include "src/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace sandtable {
namespace serve {

namespace {

Result<int> DialUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Result<int>::Error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Result<int>::Error("socket: " + std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Result<int>::Error("connect " + path + ": " + err);
  }
  return fd;
}

Result<int> DialTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Result<int>::Error("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Result<int>::Error("socket: " + std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Result<int>::Error("connect " + host + ":" + std::to_string(port) +
                              ": " + err);
  }
  return fd;
}

// Writes all of `data`, retrying short writes.
Status WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return Status::Error("send: " + std::string(std::strerror(errno)));
    }
  }
  return Status();
}

// One-shot HTTP/1.0 exchange on a connected socket; returns the body.
Result<std::string> HttpExchange(int fd, const std::string& path,
                                 double timeout_s) {
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  const Status sent = WriteAll(fd, request);
  if (!sent.ok()) {
    ::close(fd);
    return Result<std::string>::Error(sent.error());
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::string response;
  char buf[16384];
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(std::max<int64_t>(0, remaining.count()))) <= 0) {
      ::close(fd);
      return Result<std::string>::Error("timeout reading HTTP response");
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // HTTP/1.0: server closes when done
    }
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Result<std::string>::Error("malformed HTTP response");
  }
  const size_t sp = response.find(' ');
  const int status = sp == std::string::npos ? 0 : std::atoi(response.c_str() + sp + 1);
  if (status != 200) {
    return Result<std::string>::Error("HTTP " + std::to_string(status) + ": " +
                                      response.substr(head_end + 4));
  }
  return response.substr(head_end + 4);
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), inbuf_(std::move(other.inbuf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    inbuf_ = std::move(other.inbuf_);
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::ConnectUnix(const std::string& path) {
  auto fd = DialUnix(path);
  if (!fd.ok()) {
    return Result<Client>::Error(fd.error());
  }
  return Client(fd.value());
}

Result<Client> Client::ConnectTcp(const std::string& host, int port) {
  auto fd = DialTcp(host, port);
  if (!fd.ok()) {
    return Result<Client>::Error(fd.error());
  }
  return Client(fd.value());
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Send(const Json& request) {
  if (fd_ < 0) {
    return Status::Error("not connected");
  }
  return WriteAll(fd_, request.Dump() + "\n");
}

Result<Json> Client::NextFrame(double timeout_s) {
  if (fd_ < 0) {
    return Result<Json>::Error("not connected");
  }
  const bool forever = timeout_s < 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(forever ? 0 : timeout_s);
  for (;;) {
    const size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (line.empty()) {
        continue;
      }
      auto parsed = Json::Parse(line);
      if (!parsed.ok()) {
        return Result<Json>::Error("malformed frame: " + parsed.error());
      }
      return std::move(parsed).value();
    }
    int wait_ms = -1;
    if (!forever) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        return Result<Json>::Error("timeout waiting for frame");
      }
      wait_ms = static_cast<int>(remaining.count());
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready == 0) {
      return Result<Json>::Error("timeout waiting for frame");
    }
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Result<Json>::Error("poll: " + std::string(std::strerror(errno)));
    }
    char buf[16384];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return Result<Json>::Error("connection closed by server");
    }
    inbuf_.append(buf, static_cast<size_t>(n));
  }
}

Result<uint64_t> Client::Submit(const std::string& kind, Json params,
                                const std::string& tenant, double timeout_s) {
  static std::atomic<int64_t> next_token{1};
  const int64_t token = next_token.fetch_add(1, std::memory_order_relaxed);
  JsonObject req;
  req["op"] = Json("submit");
  req["kind"] = Json(kind);
  req["req"] = Json(token);
  if (!tenant.empty()) {
    req["tenant"] = Json(tenant);
  }
  if (!params.is_null()) {
    req["params"] = std::move(params);
  }
  const Status sent = Send(Json(std::move(req)));
  if (!sent.ok()) {
    return Result<uint64_t>::Error(sent.error());
  }
  for (;;) {
    auto frame = NextFrame(timeout_s);
    if (!frame.ok()) {
      return Result<uint64_t>::Error(frame.error());
    }
    const Json& f = frame.value();
    if (!(f["req"].is_int() && f["req"].as_int() == token)) {
      continue;  // unrelated stream frame
    }
    if (f["type"].as_string() == "ack") {
      return static_cast<uint64_t>(f["job"].as_int());
    }
    return Result<uint64_t>::Error(f["code"].as_string() + ": " +
                                   f["message"].as_string());
  }
}

Result<Json> Client::WaitResult(uint64_t job, double timeout_s) {
  for (;;) {
    auto frame = NextFrame(timeout_s);
    if (!frame.ok()) {
      return frame;
    }
    const Json& f = frame.value();
    if (f["type"].is_string() && f["type"].as_string() == "result" &&
        f["job"].is_int() && static_cast<uint64_t>(f["job"].as_int()) == job) {
      return frame;
    }
  }
}

Result<std::string> Client::HttpGetUnix(const std::string& socket_path,
                                        const std::string& path,
                                        double timeout_s) {
  auto fd = DialUnix(socket_path);
  if (!fd.ok()) {
    return Result<std::string>::Error(fd.error());
  }
  return HttpExchange(fd.value(), path, timeout_s);
}

Result<std::string> Client::HttpGetTcp(const std::string& host, int port,
                                       const std::string& path,
                                       double timeout_s) {
  auto fd = DialTcp(host, port);
  if (!fd.ok()) {
    return Result<std::string>::Error(fd.error());
  }
  return HttpExchange(fd.value(), path, timeout_s);
}

}  // namespace serve
}  // namespace sandtable
