// Blocking client for sandtable_serve: connects over a Unix-domain socket or
// loopback TCP, sends request frames and reads response/stream frames one at
// a time. Used by the sandtable_client binary and the serve tests; the wire
// format lives in wire.h.
#ifndef SANDTABLE_SRC_SERVE_CLIENT_H_
#define SANDTABLE_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/util/json.h"
#include "src/util/result.h"

namespace sandtable {
namespace serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<Client> ConnectUnix(const std::string& path);
  static Result<Client> ConnectTcp(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }

  // Writes one request frame (a single NDJSON line).
  Status Send(const Json& request);

  // Reads the next complete frame, waiting up to timeout_s (<0 = forever).
  // Errors on timeout, EOF and malformed lines.
  Result<Json> NextFrame(double timeout_s);

  // Submits a job and reads frames until its ack/error arrives (other frames
  // are discarded — use the raw Send/NextFrame loop to multiplex). Returns
  // the job id.
  Result<uint64_t> Submit(const std::string& kind, Json params,
                          const std::string& tenant = "", double timeout_s = 10);

  // Reads frames until `job`'s result frame arrives; returns that frame.
  Result<Json> WaitResult(uint64_t job, double timeout_s);

  void Close();

  // One-shot HTTP/1.0 GET against the daemon's metrics listener; returns the
  // response body (status errors become Result errors).
  static Result<std::string> HttpGetUnix(const std::string& socket_path,
                                         const std::string& path,
                                         double timeout_s = 10);
  static Result<std::string> HttpGetTcp(const std::string& host, int port,
                                        const std::string& path,
                                        double timeout_s = 10);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace serve
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SERVE_CLIENT_H_
