#include "src/serve/http_metrics.h"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "src/util/run_id.h"

namespace sandtable {
namespace serve {

std::optional<HttpRequest> ParseHttpRequest(const std::string& data) {
  // Head complete at the first blank line; a bare "\n\n" is tolerated for
  // hand-typed requests (nc / socat debugging).
  const size_t head_end = data.find("\r\n\r\n") != std::string::npos
                              ? data.find("\r\n\r\n")
                              : data.find("\n\n");
  if (head_end == std::string::npos) {
    return std::nullopt;
  }
  HttpRequest r;
  const size_t line_end = data.find_first_of("\r\n");
  const std::string line = data.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) {
    return r;  // malformed: empty method/path -> 400 upstream
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  r.method = line.substr(0, sp1);
  r.path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                    : line.substr(sp1 + 1, sp2 - sp1 - 1);
  return r;
}

std::string HttpResponse(int status, const std::string& content_type,
                         const std::string& body) {
  const char* reason = "OK";
  switch (status) {
    case 200:
      reason = "OK";
      break;
    case 400:
      reason = "Bad Request";
      break;
    case 404:
      reason = "Not Found";
      break;
    case 405:
      reason = "Method Not Allowed";
      break;
    default:
      reason = "Internal Server Error";
      break;
  }
  std::ostringstream out;
  out << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else ('.', '-',
// '#') becomes '_'.
std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Label values allow any characters; only '\\', '"' and newlines need
// escaping (a git-describe version keeps its dots and dashes intact).
std::string EscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void Line(std::ostringstream& out, const std::string& name, const char* type,
          double value) {
  out << "# TYPE " << name << ' ' << type << '\n';
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << name << ' ' << buf << '\n';
}

}  // namespace

std::string RenderPrometheus(const obs::MetricsSnapshot& snapshot,
                             const SchedulerStats& stats) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    Line(out, "sandtable_" + Sanitize(name), "counter",
         static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    Line(out, "sandtable_" + Sanitize(name), "gauge",
         static_cast<double>(value));
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string base = "sandtable_" + Sanitize(name);
    Line(out, base + "_count", "gauge", static_cast<double>(h.count));
    Line(out, base + "_sum", "gauge", static_cast<double>(h.sum));
    if (h.count > 0) {
      Line(out, base + "_min", "gauge", static_cast<double>(h.min));
      Line(out, base + "_max", "gauge", static_cast<double>(h.max));
      Line(out, base + "_p50", "gauge", h.Percentile(0.5));
      Line(out, base + "_p99", "gauge", h.Percentile(0.99));
    }
  }
  // Scheduler job accounting, rendered directly from the live stats so the
  // scrape works even when the daemon runs without a metrics registry.
  Line(out, "sandtable_scheduler_jobs_submitted_total", "counter",
       static_cast<double>(stats.submitted));
  Line(out, "sandtable_scheduler_jobs_completed_total", "counter",
       static_cast<double>(stats.completed));
  Line(out, "sandtable_scheduler_jobs_cancelled_total", "counter",
       static_cast<double>(stats.cancelled));
  Line(out, "sandtable_scheduler_jobs_failed_total", "counter",
       static_cast<double>(stats.failed));
  Line(out, "sandtable_scheduler_jobs_rejected_total", "counter",
       static_cast<double>(stats.rejected));
  Line(out, "sandtable_scheduler_jobs_queued", "gauge",
       static_cast<double>(stats.queued));
  Line(out, "sandtable_scheduler_jobs_running", "gauge",
       static_cast<double>(stats.running));
  // Identity gauges: value is always 1, the labels carry the information.
  // run_id matches progress JSONL / reports / trace metadata for this process.
  out << "# TYPE sandtable_run_info gauge\n"
      << "sandtable_run_info{run_id=\"" << EscapeLabel(RunId()) << "\"} 1\n"
      << "# TYPE sandtable_build_info gauge\n"
      << "sandtable_build_info{version=\"" << EscapeLabel(BuildVersion())
      << "\"} 1\n";
  return out.str();
}

}  // namespace serve
}  // namespace sandtable
