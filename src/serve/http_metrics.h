// The daemon's HTTP/1.0 scrape surface: request parsing, response framing and
// Prometheus text rendering. Pure functions over buffers — the server owns
// the sockets, the tests exercise this layer directly.
//
// Endpoints (served by server.cc on the metrics listener):
//   GET /metrics  Prometheus text exposition of the daemon-wide metrics
//                 registry plus scheduler job gauges/counters
//   GET /jobs     JSON array of job records (id, tenant, kind, state, timings)
//   GET /healthz  "ok"
#ifndef SANDTABLE_SRC_SERVE_HTTP_METRICS_H_
#define SANDTABLE_SRC_SERVE_HTTP_METRICS_H_

#include <optional>
#include <string>

#include "src/obs/metrics.h"
#include "src/serve/scheduler.h"

namespace sandtable {
namespace serve {

struct HttpRequest {
  std::string method;
  std::string path;
};

// Returns the parsed request line once `data` holds a complete request head
// (terminated by a blank line), nullopt while incomplete. A malformed first
// line parses as an empty method/path, which the server answers with 400.
std::optional<HttpRequest> ParseHttpRequest(const std::string& data);

// Serializes a complete HTTP/1.0 response with Content-Length and
// Connection: close (the server closes after writing).
std::string HttpResponse(int status, const std::string& content_type,
                         const std::string& body);

// Prometheus text exposition: every counter/gauge/histogram in the snapshot
// (prefixed "sandtable_", metric names sanitized to [a-zA-Z0-9_:]) plus the
// scheduler's job accounting as "sandtable_scheduler_*". Histograms render
// as _count/_sum/_min/_max/_p50/_p99 summaries.
std::string RenderPrometheus(const obs::MetricsSnapshot& snapshot,
                             const SchedulerStats& stats);

}  // namespace serve
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SERVE_HTTP_METRICS_H_
