#include "src/serve/job.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <limits>
#include <memory>
#include <optional>
#include <ostream>
#include <streambuf>
#include <utility>
#include <vector>

#include "src/conformance/bug_catalog.h"
#include "src/conformance/raft_harness.h"
#include "src/conformance/zab_harness.h"
#include "src/mc/bfs.h"
#include "src/mc/random_walk.h"
#include "src/minimize/minimize.h"
#include "src/obs/analytics.h"
#include "src/obs/progress.h"
#include "src/par/parallel_bfs.h"
#include "src/raftspec/raft_params.h"
#include "src/store/checkpoint.h"
#include "src/store/compact_store.h"
#include "src/util/rng.h"
#include "src/util/run_id.h"

namespace sandtable {
namespace serve {

const char* JobKindName(JobKind kind) {
  switch (kind) {
    case JobKind::kCheck:
      return "check";
    case JobKind::kSimulate:
      return "simulate";
    case JobKind::kMinimize:
      return "minimize";
    case JobKind::kCkptInfo:
      return "ckpt-info";
  }
  return "check";
}

namespace {

using conformance::BugCatalog;
using conformance::BugInfo;
using conformance::BugStageName;
using conformance::MakeBugProfile;
using conformance::MakeBugSpec;
using conformance::MakeHarnessSpec;
using conformance::MakeRaftHarness;
using conformance::MakeZabHarness;
using conformance::ObservationChannel;
using conformance::RaftHarness;
using conformance::ZabHarness;

bool KnownSystem(const std::string& name) {
  if (name == "zookeeper") {
    return true;
  }
  const std::vector<std::string>& names = RaftSystemNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

// Returns null for unknown ids — FindBug() CHECK-aborts, which a daemon
// validating client input cannot afford.
const BugInfo* LookupBug(const std::string& id) {
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.id == id) {
      return &bug;
    }
  }
  return nullptr;
}

// Field-typed extraction helpers: each returns an error string on type
// mismatch so ParseJobParams reads as a flat validation table.
bool GetString(const Json& o, const char* key, std::string* dst, std::string* err) {
  if (!o.contains(key)) {
    return true;
  }
  if (!o[key].is_string()) {
    *err = std::string("\"") + key + "\" must be a string";
    return false;
  }
  *dst = o[key].as_string();
  return true;
}

bool GetU64(const Json& o, const char* key, uint64_t* dst, std::string* err) {
  if (!o.contains(key)) {
    return true;
  }
  if (!o[key].is_int() || o[key].as_int() < 0) {
    *err = std::string("\"") + key + "\" must be a non-negative integer";
    return false;
  }
  *dst = static_cast<uint64_t>(o[key].as_int());
  return true;
}

bool GetInt(const Json& o, const char* key, int* dst, std::string* err) {
  uint64_t v = static_cast<uint64_t>(*dst);
  if (!GetU64(o, key, &v, err)) {
    return false;
  }
  // A bare static_cast would wrap (traces=4294967301 -> 5) and silently run
  // a different job than the client asked for.
  if (v > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    *err = std::string("\"") + key + "\" must be at most " +
           std::to_string(std::numeric_limits<int>::max());
    return false;
  }
  *dst = static_cast<int>(v);
  return true;
}

bool GetBool(const Json& o, const char* key, bool* dst, std::string* err) {
  if (!o.contains(key)) {
    return true;
  }
  if (!o[key].is_bool()) {
    *err = std::string("\"") + key + "\" must be a boolean";
    return false;
  }
  *dst = o[key].as_bool();
  return true;
}

bool GetDouble(const Json& o, const char* key, double* dst, std::string* err) {
  if (!o.contains(key)) {
    return true;
  }
  if (o[key].is_double()) {
    *dst = o[key].as_double();
  } else if (o[key].is_int()) {
    *dst = static_cast<double>(o[key].as_int());
  } else {
    *err = std::string("\"") + key + "\" must be a number";
    return false;
  }
  if (!(*dst >= 0)) {
    *err = std::string("\"") + key + "\" must be non-negative";
    return false;
  }
  return true;
}

// The fields each kind accepts; anything else in params is a typo we reject.
const char* const kCommonKeys[] = {"system",         "bug",
                                   "with_bugs",      "channel",
                                   "progress_every", "progress_every_s",
                                   "run_id"};
const char* const kCheckKeys[] = {"workers",        "max_states",
                                  "max_depth",      "time_budget_ms",
                                  "analytics",      "steal",
                                  "hash_compact"};
const char* const kSimulateKeys[] = {"traces", "seed", "walk_depth",
                                     "check_invariants", "time_budget_ms",
                                     "analytics"};
const char* const kMinimizeKeys[] = {"match_any", "time_budget_ms",
                                     "max_states"};
const char* const kCkptKeys[] = {"ckpt_dir"};

bool KeyAllowed(JobKind kind, const std::string& key) {
  for (const char* k : kCommonKeys) {
    if (key == k) {
      return true;
    }
  }
  auto scan = [&key](const char* const* keys, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (key == keys[i]) {
        return true;
      }
    }
    return false;
  };
  switch (kind) {
    case JobKind::kCheck:
      return scan(kCheckKeys, std::size(kCheckKeys));
    case JobKind::kSimulate:
      return scan(kSimulateKeys, std::size(kSimulateKeys));
    case JobKind::kMinimize:
      return scan(kMinimizeKeys, std::size(kMinimizeKeys));
    case JobKind::kCkptInfo:
      return scan(kCkptKeys, std::size(kCkptKeys));
  }
  return false;
}

// Same target construction as sandtable_cli's MakeTarget, minus the
// implementation-side engine factory/observer (the daemon only runs
// specification-level work; confirmation replay stays a CLI workflow).
Spec MakeJobSpec(const JobParams& p) {
  if (p.system == "zookeeper") {
    ZabHarness h = MakeZabHarness(p.with_bugs || !p.bug.empty());
    if (!p.bug.empty()) {
      h.profile.budget.max_timeouts = 5;
      h.profile.budget.max_client_requests = 1;
      h.profile.budget.max_crashes = 1;
      h.profile.budget.max_restarts = 1;
      h.profile.budget.max_history = 1;
      h.profile.budget.max_msg_buffer = 3;
    }
    h.channel = p.channel == "log" ? ObservationChannel::kLogParser
                                   : ObservationChannel::kApi;
    return MakeHarnessSpec(h);
  }
  RaftHarness h = MakeRaftHarness(p.system, p.with_bugs);
  if (!p.bug.empty()) {
    const BugInfo* bug = LookupBug(p.bug);  // validated at parse time
    h.profile = MakeBugProfile(*bug);
    h.impl_bugs = systems::RaftImplBugs{};
    if (bug->enable_impl != nullptr) {
      bug->enable_impl(h.impl_bugs);
    }
  }
  h.channel = p.channel == "log" ? ObservationChannel::kLogParser
                                 : ObservationChannel::kApi;
  return MakeHarnessSpec(h);
}

// std::streambuf bridging obs::ProgressReporter (which writes JSONL to an
// ostream) onto the job's ProgressSink: each complete line is parsed and
// forwarded as one progress document. Unparseable lines are forwarded as
// strings rather than dropped (ProgressFrame wraps them as log frames).
class LineSinkBuf : public std::streambuf {
 public:
  explicit LineSinkBuf(const ProgressSink* sink) : sink_(sink) {}

  ~LineSinkBuf() override {
    if (!line_.empty()) {
      Flush();
    }
  }

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) {
      return ch;
    }
    if (ch == '\n') {
      Flush();
    } else {
      line_.push_back(static_cast<char>(ch));
    }
    return ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) {
      overflow(s[i]);
    }
    return n;
  }

 private:
  void Flush() {
    if ((*sink_) != nullptr) {
      auto parsed = Json::Parse(line_);
      (*sink_)(parsed.ok() ? std::move(parsed).value() : Json(line_));
    }
    line_.clear();
  }

  const ProgressSink* sink_;
  std::string line_;
};

// Progress cadence for one job: the params' explicit cadence, or a 0.5 s
// time cadence so every long-running job streams something.
obs::ProgressOptions CadenceFor(const JobParams& p) {
  obs::ProgressOptions popts;
  popts.every_states = p.progress_every;
  popts.every_seconds = p.progress_every_s;
  popts.run_id = p.run_id;
  if (popts.every_states == 0 && popts.every_seconds == 0) {
    popts.every_seconds = 0.5;
  }
  return popts;
}

JobOutcome RunCheck(const JobParams& p, const Spec& spec,
                    obs::ProgressReporter* progress, const StopToken& stop,
                    obs::MetricsRegistry* metrics) {
  BfsOptions opts;
  if (p.time_budget_ms > 0) {
    opts.time_budget_s = static_cast<double>(p.time_budget_ms) / 1000.0;
  }
  if (p.max_states > 0) {
    opts.max_distinct_states = p.max_states;
  }
  if (p.max_depth > 0) {
    opts.max_depth = p.max_depth;
  }
  opts.progress = progress;
  opts.metrics = metrics;
  opts.stop = &stop;
  obs::ExplorationProfile profile;
  if (p.analytics) {
    opts.analytics = &profile;
  }
  // Hash compaction: swap the visited set for the fingerprint-only store.
  // Job-scoped — the daemon never checkpoints check jobs, so no spool or
  // checkpointer wiring is needed; r.ToJson() reports the mode and the
  // collision-probability bound.
  std::unique_ptr<store::CompactStateStore> compact;
  if (p.hash_compact) {
    compact = std::make_unique<store::CompactStateStore>();
    opts.ooc.state_store = compact.get();
  }
  BfsResult r;
  if (p.workers > 1 || p.steal) {
    ParBfsOptions popts;
    popts.base = opts;
    popts.workers = p.workers;
    popts.steal = p.steal;
    r = ParallelBfsCheck(spec, popts);
  } else {
    r = BfsCheck(spec, opts);
  }
  JobOutcome out;
  out.status = r.cancelled ? "cancelled" : "done";
  out.result = r.ToJson();
  if (p.analytics) {
    // Embedded in the result frame for the client; per-action counters also
    // aggregate into the daemon registry so GET /metrics exports them.
    out.result["analytics"] = profile.ToJson();
    profile.FlushToMetrics(metrics);
  }
  return out;
}

JobOutcome RunSimulate(const JobParams& p, const Spec& spec,
                       obs::ProgressReporter* progress, const StopToken& stop,
                       obs::MetricsRegistry* metrics) {
  WalkOptions opts;
  opts.max_depth = p.walk_depth;
  opts.metrics = metrics;
  opts.stop = &stop;
  // One shared profile across the batch: counts aggregate and the depth
  // histogram buckets every walk's end depth.
  obs::ExplorationProfile profile;
  if (p.analytics) {
    opts.analytics = &profile;
  }
  if (p.check_invariants) {
    opts.collect_trace = true;
    opts.check_invariants = true;
    opts.check_transition_invariants = true;
  }
  // Same aggregation loop (and per-walk seed formula) as the CLI's simulate,
  // so a daemon job and `sandtable_cli simulate --seed N --traces K` produce
  // identical summaries.
  const double budget_s =
      p.time_budget_ms > 0 ? static_cast<double>(p.time_budget_ms) / 1000.0
                           : std::numeric_limits<double>::infinity();
  CoverageStats coverage;
  uint64_t total_depth = 0;
  uint64_t max_depth = 0;
  uint64_t deadlocked = 0;
  uint64_t depth_capped = 0;
  uint64_t time_capped = 0;
  bool cancelled = false;
  std::optional<Violation> violation;
  int walks_done = 0;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };
  for (int i = 0; i < p.traces; ++i) {
    if (StopRequested(&stop)) {
      cancelled = true;
      break;
    }
    if (std::isfinite(budget_s)) {
      const double remaining = budget_s - elapsed_s();
      if (remaining <= 0) {
        ++time_capped;
        break;
      }
      opts.time_budget_s = remaining;  // total budget, spread across walks
    }
    Rng rng(p.seed + static_cast<uint64_t>(i));
    const WalkResult w = RandomWalk(spec, opts, rng);
    walks_done = i + 1;
    coverage.Merge(w.coverage);
    total_depth += w.depth;
    max_depth = std::max(max_depth, w.depth);
    deadlocked += w.deadlocked ? 1 : 0;
    depth_capped += w.hit_depth_limit ? 1 : 0;
    time_capped += w.hit_time_limit ? 1 : 0;
    if (w.cancelled) {
      cancelled = true;
    }
    const uint64_t done = static_cast<uint64_t>(i) + 1;
    if (progress != nullptr && progress->Due(done)) {
      obs::ProgressSample s;
      s.engine = "random_walk";
      s.elapsed_s = elapsed_s();
      s.distinct_states = done;
      s.depth = max_depth;
      s.transitions = coverage.transitions;
      s.deadlocks = deadlocked;
      s.event_kinds = coverage.DistinctEventKinds();
      s.branches = coverage.branches.size();
      if (p.analytics) {
        s.analytics = profile.SummaryJson(3);
      }
      progress->Emit(s);
    }
    if (w.violation.has_value()) {
      violation = w.violation;
      break;
    }
    if (cancelled || w.hit_time_limit) {
      break;
    }
  }
  JsonObject summary;
  summary["walks"] = Json(static_cast<int64_t>(walks_done));
  summary["avg_depth"] =
      Json(walks_done > 0 ? static_cast<double>(total_depth) / walks_done : 0.0);
  summary["max_depth"] = Json(max_depth);
  summary["deadlocked"] = Json(deadlocked);
  summary["hit_depth_limit"] = Json(depth_capped);
  summary["hit_time_limit"] = Json(time_capped);
  summary["cancelled"] = Json(cancelled);
  summary["coverage"] = coverage.ToJson();
  if (p.analytics) {
    summary["analytics"] = profile.ToJson();
    profile.FlushToMetrics(metrics);
  }
  if (violation.has_value()) {
    summary["violation"] = violation->ToJson();
  }
  JobOutcome out;
  out.status = cancelled ? "cancelled" : "done";
  out.result = Json(std::move(summary));
  return out;
}

JobOutcome RunMinimizeJob(const JobParams& p, obs::ProgressReporter* progress,
                          const StopToken& stop, obs::MetricsRegistry* metrics) {
  const BugInfo* bug = LookupBug(p.bug);  // validated at parse time
  const Spec spec = MakeBugSpec(*bug);

  // Hunt a counterexample with BFS first (the CLI's no-trace minimize path).
  BfsOptions opts;
  opts.time_budget_s = p.time_budget_ms > 0
                           ? std::max(static_cast<double>(p.time_budget_ms) / 1000.0,
                                      bug->min_hunt_s)
                           : std::max(60.0, bug->min_hunt_s);
  if (p.max_states > 0) {
    opts.max_distinct_states = p.max_states;
  }
  opts.progress = progress;
  opts.metrics = metrics;
  opts.stop = &stop;
  const BfsResult r = BfsCheck(spec, opts);
  JobOutcome out;
  if (!r.violation.has_value()) {
    out.status = r.cancelled ? "cancelled" : "done";
    out.result = r.ToJson(/*include_trace=*/false);
    return out;
  }
  minimize::MinimizeOptions mopts;
  mopts.match_any = p.match_any;
  mopts.metrics = metrics;
  const minimize::MinimizeResult m =
      minimize::MinimizeCounterexample(spec, *r.violation, mopts);
  out.status = "done";
  out.result = m.ToJson(/*include_trace=*/true);
  return out;
}

JobOutcome RunCkptInfo(const JobParams& p) {
  JobOutcome out;
  auto meta_or = store::ReadCheckpointMeta(p.ckpt_dir);
  if (!meta_or.ok()) {
    out.status = "failed";
    JsonObject e;
    e["error"] = Json(meta_or.error());
    out.result = Json(std::move(e));
    return out;
  }
  out.status = "done";
  out.result = meta_or.value().ToJson();
  return out;
}

}  // namespace

Result<JobParams> ParseJobParams(const std::string& kind, const Json& params) {
  JobParams p;
  if (kind == "check") {
    p.kind = JobKind::kCheck;
  } else if (kind == "simulate") {
    p.kind = JobKind::kSimulate;
  } else if (kind == "minimize") {
    p.kind = JobKind::kMinimize;
  } else if (kind == "ckpt-info") {
    p.kind = JobKind::kCkptInfo;
  } else {
    return Result<JobParams>::Error("unknown job kind: " + kind);
  }
  if (params.is_null()) {
    if (p.kind == JobKind::kMinimize) {
      return Result<JobParams>::Error("minimize needs params.bug");
    }
    if (p.kind == JobKind::kCkptInfo) {
      return Result<JobParams>::Error("ckpt-info needs params.ckpt_dir");
    }
    return p;
  }
  if (!params.is_object()) {
    return Result<JobParams>::Error("\"params\" must be an object");
  }
  for (const auto& [key, value] : params.as_object()) {
    (void)value;
    if (!KeyAllowed(p.kind, key)) {
      return Result<JobParams>::Error("unknown param \"" + key + "\" for kind " +
                                      kind);
    }
  }
  std::string err;
  if (!GetString(params, "system", &p.system, &err) ||
      !GetString(params, "bug", &p.bug, &err) ||
      !GetBool(params, "with_bugs", &p.with_bugs, &err) ||
      !GetString(params, "channel", &p.channel, &err) ||
      !GetU64(params, "progress_every", &p.progress_every, &err) ||
      !GetDouble(params, "progress_every_s", &p.progress_every_s, &err) ||
      !GetInt(params, "workers", &p.workers, &err) ||
      !GetU64(params, "max_states", &p.max_states, &err) ||
      !GetU64(params, "max_depth", &p.max_depth, &err) ||
      !GetU64(params, "time_budget_ms", &p.time_budget_ms, &err) ||
      !GetInt(params, "traces", &p.traces, &err) ||
      !GetU64(params, "seed", &p.seed, &err) ||
      !GetU64(params, "walk_depth", &p.walk_depth, &err) ||
      !GetBool(params, "check_invariants", &p.check_invariants, &err) ||
      !GetBool(params, "analytics", &p.analytics, &err) ||
      !GetBool(params, "steal", &p.steal, &err) ||
      !GetBool(params, "hash_compact", &p.hash_compact, &err) ||
      !GetBool(params, "match_any", &p.match_any, &err) ||
      !GetString(params, "ckpt_dir", &p.ckpt_dir, &err) ||
      !GetString(params, "run_id", &p.run_id, &err)) {
    return Result<JobParams>::Error(err);
  }
  if (p.run_id.empty()) {
    p.run_id = NewRunId();  // every job is joinable even without a client id
  }
  if (p.channel != "api" && p.channel != "log") {
    return Result<JobParams>::Error("\"channel\" must be \"api\" or \"log\"");
  }
  if (p.kind != JobKind::kCkptInfo && !KnownSystem(p.system)) {
    return Result<JobParams>::Error("unknown system: " + p.system);
  }
  if (!p.bug.empty() && LookupBug(p.bug) == nullptr) {
    return Result<JobParams>::Error("unknown bug: " + p.bug);
  }
  if (p.kind == JobKind::kCheck && p.workers < 1) {
    return Result<JobParams>::Error("\"workers\" must be >= 1");
  }
  if (p.kind == JobKind::kSimulate && p.traces < 1) {
    return Result<JobParams>::Error("\"traces\" must be >= 1");
  }
  if (p.kind == JobKind::kMinimize) {
    const BugInfo* bug = p.bug.empty() ? nullptr : LookupBug(p.bug);
    if (bug == nullptr) {
      return Result<JobParams>::Error("minimize needs params.bug (see list-bugs)");
    }
    if (bug->invariant.empty()) {
      return Result<JobParams>::Error(
          p.bug + " has no spec-level invariant (stage: " +
          BugStageName(bug->stage) +
          "); only verification-stage bugs have counterexample traces");
    }
  }
  if (p.kind == JobKind::kCkptInfo && p.ckpt_dir.empty()) {
    return Result<JobParams>::Error("ckpt-info needs params.ckpt_dir");
  }
  return p;
}

JobOutcome ExecuteJob(const JobParams& params, const ProgressSink& sink,
                      const StopToken& stop, obs::MetricsRegistry* metrics) {
  // Every outcome document carries the job's run_id, matching the id on its
  // progress lines — the same join key the CLI stamps via MakeReport.
  auto stamped = [&params](JobOutcome out) {
    if (out.result.is_object()) {
      out.result["run_id"] = Json(params.run_id);
    }
    return out;
  };
  if (params.kind == JobKind::kCkptInfo) {
    return stamped(RunCkptInfo(params));
  }
  LineSinkBuf buf(&sink);
  std::ostream line_out(&buf);
  obs::ProgressReporter progress(&line_out, CadenceFor(params));
  switch (params.kind) {
    case JobKind::kCheck:
      return stamped(
          RunCheck(params, MakeJobSpec(params), &progress, stop, metrics));
    case JobKind::kSimulate:
      return stamped(
          RunSimulate(params, MakeJobSpec(params), &progress, stop, metrics));
    case JobKind::kMinimize:
      return stamped(RunMinimizeJob(params, &progress, stop, metrics));
    case JobKind::kCkptInfo:
      break;  // handled above
  }
  JobOutcome out;
  out.status = "failed";
  JsonObject e;
  e["error"] = Json("unreachable job kind");
  out.result = Json(std::move(e));
  return out;
}

JobFn MakeJobFn(JobParams params, obs::MetricsRegistry* metrics) {
  return [params = std::move(params), metrics](const ProgressSink& sink,
                                               const StopToken& stop) {
    return ExecuteJob(params, sink, stop, metrics);
  };
}

}  // namespace serve
}  // namespace sandtable
