// The SandTable-specific job kinds sandtable_serve runs, adapted into the
// scheduler's generic JobFn closures.
//
// A job is described by the "params" object of a submit frame; ParseJobParams
// validates it up front (unknown systems/bugs are submit-time bad_request
// errors, not daemon aborts) and MakeJobFn builds the closure a worker thread
// executes. Spec construction deliberately mirrors sandtable_cli's
// MakeTarget, so a job submitted to the daemon returns the same result
// document the standalone CLI prints for the same spec/seed — the
// equivalence the serve tests pin down.
//
// Engine progress streams through the job's ProgressSink: the engines'
// obs::ProgressReporter writes its usual JSONL to an in-process line sink,
// and each line is forwarded as a progress frame tagged with the job id.
#ifndef SANDTABLE_SRC_SERVE_JOB_H_
#define SANDTABLE_SRC_SERVE_JOB_H_

#include <cstdint>
#include <limits>
#include <string>

#include "src/obs/metrics.h"
#include "src/serve/scheduler.h"
#include "src/util/json.h"
#include "src/util/result.h"

namespace sandtable {
namespace serve {

enum class JobKind { kCheck, kSimulate, kMinimize, kCkptInfo };
const char* JobKindName(JobKind kind);

struct JobParams {
  JobKind kind = JobKind::kCheck;

  // Target selection, mirroring the CLI: a catalog bug id and/or a system
  // profile name ("pysyncobj", ..., "zookeeper").
  std::string system = "pysyncobj";
  std::string bug;
  bool with_bugs = false;
  std::string channel = "api";  // "api" | "log" observation channel

  // check: engine shape and budgets. time_budget_ms == 0 means unlimited —
  // the daemon's admission-time default lives in ServerOptions, not here.
  int workers = 1;
  uint64_t max_states = 0;  // 0 = unlimited
  uint64_t max_depth = 0;   // 0 = unlimited
  uint64_t time_budget_ms = 0;
  // check: use the work-stealing parallel scheduler (src/par/steal.h); forces
  // the parallel engine even with workers == 1, mirroring the CLI's --steal.
  bool steal = false;
  // check: fingerprint-only visited set (src/store/compact_store.h). The
  // result document then carries "hash_compact": true and the
  // "collision_probability" bound.
  bool hash_compact = false;

  // simulate: number of walks, base RNG seed (walk i uses seed + i, exactly
  // like the CLI), per-walk depth cap, invariant checking.
  int traces = 100;
  uint64_t seed = 1;
  uint64_t walk_depth = 60;
  bool check_invariants = false;

  // check/simulate: collect the per-action exploration profile
  // (src/obs/analytics.h) and embed it as result["analytics"]; its per-action
  // counters also aggregate into the daemon registry for GET /metrics.
  // On by default — the profile is cheap and clients can opt out.
  bool analytics = true;

  // minimize: accept any violation while shrinking (CLI --minimize-any).
  bool match_any = false;

  // ckpt-info: checkpoint directory to describe.
  std::string ckpt_dir;

  // Progress cadence: emit a progress frame every N units of work (states
  // for check, walks for simulate) and/or every S seconds. 0/0 falls back to
  // a 0.5 s time cadence so every long job streams something.
  uint64_t progress_every = 0;
  double progress_every_s = 0;

  // Client-settable run correlation id; minted at parse time when absent.
  // Stamped on the job's progress JSONL lines and result document so a
  // client can join daemon artifacts with its own records.
  std::string run_id;
};

// Validates a submit frame's params for `kind`. Unknown fields are rejected
// so client typos fail loudly instead of silently running defaults.
Result<JobParams> ParseJobParams(const std::string& kind, const Json& params);

// Builds the closure executing `params` on a worker thread. `metrics` is the
// daemon-wide registry (borrowed, may be null): engine counters and phase
// timers from all jobs aggregate there for GET /metrics.
JobFn MakeJobFn(JobParams params, obs::MetricsRegistry* metrics);

// Direct execution, used by MakeJobFn and the tests' CLI-equivalence checks.
JobOutcome ExecuteJob(const JobParams& params, const ProgressSink& sink,
                      const StopToken& stop, obs::MetricsRegistry* metrics);

}  // namespace serve
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SERVE_JOB_H_
