#include "src/serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"

namespace sandtable {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// The last events before a job failed usually explain *why* it failed, the
// same way a crash dump would: ship them inside the error result so remote
// clients get a post-mortem without daemon-host access.
void AttachFlightRecorder(JsonObject& err) {
  obs::FlightRecorder* recorder = obs::FlightRecorder::Installed();
  if (recorder != nullptr) {
    err["flight_recorder"] = recorder->RecentJson(64);
  }
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kFailed:
      return "failed";
  }
  return "failed";
}

Json JobRecord::ToJson() const {
  JsonObject o;
  o["id"] = Json(id);
  o["tenant"] = Json(tenant);
  o["kind"] = Json(kind);
  o["state"] = Json(JobStateName(state));
  o["queued_s"] = Json(queued_s);
  o["run_s"] = Json(run_s);
  return Json(std::move(o));
}

Json SchedulerStats::ToJson() const {
  JsonObject o;
  o["type"] = Json("stats");
  o["submitted"] = Json(submitted);
  o["completed"] = Json(completed);
  o["cancelled"] = Json(cancelled);
  o["failed"] = Json(failed);
  o["rejected"] = Json(rejected);
  o["queued"] = Json(static_cast<int64_t>(queued));
  o["running"] = Json(static_cast<int64_t>(running));
  return Json(std::move(o));
}

// One scheduled job. The token outlives the engine run because workers and
// cancellers both hold the shared_ptr.
struct Scheduler::Job {
  uint64_t id = 0;
  std::string tenant;
  std::string kind;
  JobState state = JobState::kQueued;
  JobFn fn;
  FrameSink sink;
  StopToken token;
  Clock::time_point submitted_at;
  Clock::time_point started_at;
  double queued_s = 0;
  double run_s = 0;

  JobRecord Record() const {
    JobRecord r;
    r.id = id;
    r.tenant = tenant;
    r.kind = kind;
    r.state = state;
    r.queued_s = state == JobState::kQueued
                     ? SecondsBetween(submitted_at, Clock::now())
                     : queued_s;
    r.run_s = state == JobState::kRunning
                  ? SecondsBetween(started_at, Clock::now())
                  : run_s;
    return r;
  }
};

Scheduler::Scheduler(const SchedulerOptions& options) : options_(options) {
  options_.workers = std::max(1, options_.workers);
  options_.max_queued = std::max(0, options_.max_queued);
  if (options_.metrics != nullptr) {
    g_queued_ = &options_.metrics->GetGauge("serve.jobs_queued");
    g_running_ = &options_.metrics->GetGauge("serve.jobs_running");
    c_submitted_ = &options_.metrics->GetCounter("serve.jobs_submitted");
    c_completed_ = &options_.metrics->GetCounter("serve.jobs_completed");
    c_cancelled_ = &options_.metrics->GetCounter("serve.jobs_cancelled");
    c_failed_ = &options_.metrics->GetCounter("serve.jobs_failed");
    c_rejected_ = &options_.metrics->GetCounter("serve.jobs_rejected");
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] {
      obs::TraceSetCurrentThreadName("serve-worker-" + std::to_string(i));
      WorkerMain();
    });
  }
}

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::UpdateGaugesLocked() {
  if (g_queued_ != nullptr) {
    g_queued_->Set(queued_total_);
  }
  if (g_running_ != nullptr) {
    g_running_->Set(running_total_);
  }
}

Scheduler::SubmitResult Scheduler::Submit(const std::string& tenant,
                                          const std::string& kind, JobFn fn,
                                          FrameSink sink) {
  SubmitResult res;
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      res.code = ErrorCode::kShuttingDown;
      res.message = "server is shutting down";
      if (c_rejected_ != nullptr) {
        c_rejected_->Add();
      }
      ++stats_.rejected;
      return res;
    }
    if (queued_total_ >= options_.max_queued) {
      res.code = ErrorCode::kQueueFull;
      res.message = "queue full (" + std::to_string(options_.max_queued) +
                    " jobs queued)";
      if (c_rejected_ != nullptr) {
        c_rejected_->Add();
      }
      ++stats_.rejected;
      return res;
    }
    auto& q = queues_[tenant];
    if (options_.max_queued_per_tenant > 0 &&
        static_cast<int>(q.size()) >= options_.max_queued_per_tenant) {
      if (q.empty()) {
        queues_.erase(tenant);  // don't leak the entry we just created
      }
      res.code = ErrorCode::kTenantQueueFull;
      res.message = "tenant \"" + tenant + "\" queue full (" +
                    std::to_string(options_.max_queued_per_tenant) + " jobs)";
      if (c_rejected_ != nullptr) {
        c_rejected_->Add();
      }
      ++stats_.rejected;
      return res;
    }
    job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->tenant = tenant;
    job->kind = kind;
    job->fn = std::move(fn);
    job->sink = std::move(sink);
    job->submitted_at = Clock::now();
    if (q.empty()) {
      rr_.push_back(tenant);  // tenant (re)joins the round-robin rotation
    }
    q.push_back(job);
    jobs_[job->id] = job;
    ++queued_total_;
    ++stats_.submitted;
    if (c_submitted_ != nullptr) {
      c_submitted_->Add();
    }
    UpdateGaugesLocked();
    res.ok = true;
    res.job = job->id;
    res.queue_depth = static_cast<uint64_t>(queued_total_);
  }
  work_cv_.notify_one();
  return res;
}

// Round-robin across tenants, FIFO within one. Called with `lock` held.
std::shared_ptr<Scheduler::Job> Scheduler::PopNextLocked(
    std::unique_lock<std::mutex>& lock) {
  (void)lock;
  while (!rr_.empty()) {
    const std::string tenant = rr_.front();
    rr_.pop_front();
    auto it = queues_.find(tenant);
    if (it == queues_.end() || it->second.empty()) {
      continue;  // stale rotation entry (queue drained by Cancel)
    }
    std::shared_ptr<Job> job = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) {
      queues_.erase(it);
    } else {
      rr_.push_back(tenant);  // still has work: back of the rotation
    }
    --queued_total_;
    return job;
  }
  return nullptr;
}

void Scheduler::WorkerMain() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return draining_ || queued_total_ > 0; });
      if (draining_) {
        return;
      }
      job = PopNextLocked(lock);
      if (job == nullptr) {
        continue;
      }
      job->state = JobState::kRunning;
      job->started_at = Clock::now();
      job->queued_s = SecondsBetween(job->submitted_at, job->started_at);
      ++running_total_;
      UpdateGaugesLocked();
    }

    // Retroactive queued→dispatched span: the wait is only known at dispatch
    // time, so it is emitted here with its start backdated to submission.
    if (obs::TraceActive()) {
      obs::TraceEvent queued_span;
      queued_span.name = "job.queued";
      queued_span.ts_ns = static_cast<uint64_t>(
          std::max<int64_t>(0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   job->submitted_at - obs::TraceEpoch())
                                   .count()));
      queued_span.dur_ns = static_cast<uint64_t>(job->queued_s * 1e9);
      queued_span.arg1_name = "job";
      queued_span.arg1 = static_cast<int64_t>(job->id);
      queued_span.set_sarg("tenant", job->tenant);
      obs::EmitEvent(queued_span);
    }

    job->sink(StartedFrame(job->id, job->queued_s));
    const uint64_t id = job->id;
    const FrameSink& sink = job->sink;
    ProgressSink progress = [id, &sink](Json doc) {
      sink(ProgressFrame(id, std::move(doc)));
    };

    JobOutcome outcome;
    // The daemon must survive anything a job throws (bad params discovered
    // late, allocation failure in a huge exploration, ...): a throwing job
    // fails, the worker slot lives on.
    try {
      obs::TraceSpan run_span("job.run", "job",
                              static_cast<int64_t>(job->id));
      run_span.set_sarg("tenant", job->tenant);
      outcome = job->fn(progress, job->token);
    } catch (const std::exception& e) {
      outcome.status = "failed";
      JsonObject err;
      err["error"] = Json(std::string("job threw: ") + e.what());
      AttachFlightRecorder(err);
      outcome.result = Json(std::move(err));
    } catch (...) {
      outcome.status = "failed";
      JsonObject err;
      err["error"] = Json("job threw a non-standard exception");
      AttachFlightRecorder(err);
      outcome.result = Json(std::move(err));
    }
    // A job that ignored its raised token still reports as cancelled: the
    // caller asked for cancellation and observed the ack.
    JobState final_state = JobState::kDone;
    if (outcome.status == "cancelled" ||
        (job->token.stop_requested() && outcome.status != "failed")) {
      final_state = JobState::kCancelled;
      outcome.status = "cancelled";
    } else if (outcome.status == "failed") {
      final_state = JobState::kFailed;
    }
    FinishJob(job, final_state, outcome);
  }
}

void Scheduler::FinishJob(const std::shared_ptr<Job>& job, JobState state,
                          const JobOutcome& outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job->state == JobState::kRunning) {
      --running_total_;
      job->run_s = SecondsBetween(job->started_at, Clock::now());
    }
    job->state = state;
    switch (state) {
      case JobState::kDone:
        ++stats_.completed;
        if (c_completed_ != nullptr) {
          c_completed_->Add();
        }
        break;
      case JobState::kCancelled:
        ++stats_.cancelled;
        if (c_cancelled_ != nullptr) {
          c_cancelled_->Add();
        }
        break;
      default:
        ++stats_.failed;
        if (c_failed_ != nullptr) {
          c_failed_->Add();
        }
        break;
    }
    finished_order_.push_back(job->id);
    while (static_cast<int>(finished_order_.size()) > options_.retain_finished) {
      jobs_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
    UpdateGaugesLocked();
  }
  if (obs::TraceActive()) {
    obs::TraceEvent done;
    done.kind = obs::TraceEventKind::kInstant;
    done.name = "job.result";
    done.ts_ns = obs::TraceNowNs();
    done.arg1_name = "job";
    done.arg1 = static_cast<int64_t>(job->id);
    done.set_sarg("status", outcome.status);
    obs::EmitEvent(done);
  }
  job->sink(ResultFrame(job->id, outcome.status, outcome.result, job->queued_s,
                        job->run_s));
  idle_cv_.notify_all();
}

bool Scheduler::Cancel(uint64_t job_id) {
  std::shared_ptr<Job> queued_job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return false;
    }
    std::shared_ptr<Job> job = it->second;
    if (job->state == JobState::kRunning) {
      job->token.RequestStop();
      return true;  // the worker emits the result frame when the engine yields
    }
    if (job->state != JobState::kQueued) {
      return false;  // already finished
    }
    auto qit = queues_.find(job->tenant);
    if (qit != queues_.end()) {
      auto& q = qit->second;
      q.erase(std::remove(q.begin(), q.end(), job), q.end());
      if (q.empty()) {
        queues_.erase(qit);
      }
    }
    --queued_total_;
    queued_job = std::move(job);
    queued_job->state = JobState::kCancelled;
    queued_job->queued_s = SecondsBetween(queued_job->submitted_at, Clock::now());
    ++stats_.cancelled;
    if (c_cancelled_ != nullptr) {
      c_cancelled_->Add();
    }
    finished_order_.push_back(job_id);
    while (static_cast<int>(finished_order_.size()) > options_.retain_finished) {
      jobs_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
    UpdateGaugesLocked();
  }
  queued_job->sink(
      ResultFrame(queued_job->id, "cancelled", Json(), queued_job->queued_s, 0));
  idle_cv_.notify_all();
  return true;
}

int Scheduler::CancelTenant(const std::string& tenant) {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, job] : jobs_) {
      if (job->tenant == tenant &&
          (job->state == JobState::kQueued || job->state == JobState::kRunning)) {
        ids.push_back(id);
      }
    }
  }
  int cancelled = 0;
  for (uint64_t id : ids) {
    if (Cancel(id)) {
      ++cancelled;
    }
  }
  return cancelled;
}

std::optional<JobRecord> Scheduler::Status(uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return std::nullopt;
  }
  return it->second->Record();
}

std::vector<JobRecord> Scheduler::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    out.push_back(job->Record());
  }
  return out;
}

SchedulerStats Scheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s = stats_;
  s.queued = queued_total_;
  s.running = running_total_;
  return s;
}

bool Scheduler::WaitIdle(double timeout_s) const {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s),
      [&] { return queued_total_ == 0 && running_total_ == 0; });
}

bool Scheduler::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void Scheduler::Shutdown() {
  std::vector<std::shared_ptr<Job>> queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ && workers_.empty()) {
      return;  // already shut down
    }
    draining_ = true;
    // Drain the queues: every queued job is cancelled, every running token is
    // raised. Workers exit once they notice draining_.
    for (auto& [tenant, q] : queues_) {
      for (auto& job : q) {
        job->state = JobState::kCancelled;
        job->queued_s = SecondsBetween(job->submitted_at, Clock::now());
        ++stats_.cancelled;
        if (c_cancelled_ != nullptr) {
          c_cancelled_->Add();
        }
        finished_order_.push_back(job->id);
        queued.push_back(job);
      }
    }
    queues_.clear();
    rr_.clear();
    queued_total_ = 0;
    for (const auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) {
        job->token.RequestStop();
      }
    }
    UpdateGaugesLocked();
  }
  work_cv_.notify_all();
  for (const auto& job : queued) {
    job->sink(ResultFrame(job->id, "cancelled", Json(), job->queued_s, 0));
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers_.clear();
  }
  idle_cv_.notify_all();
}

}  // namespace serve
}  // namespace sandtable
