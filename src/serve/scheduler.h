// Multi-tenant job scheduling for sandtable_serve.
//
// The scheduler owns a bounded pool of worker threads and a per-tenant FIFO
// admission queue. Dispatch is round-robin across tenants with FIFO order
// inside each tenant, so one tenant flooding the queue delays — but never
// starves — everyone else. Admission control is two-level: a global queued
// cap and an optional per-tenant cap, both rejecting at submit time with a
// structured error code (the server relays it as an error frame; see
// wire.h).
//
// The scheduler is deliberately generic: it runs JobFn closures, not model
// checker jobs. The SandTable-specific job kinds (check / simulate /
// minimize / ckpt-info) are adapted into JobFns by job.h, and tests inject
// synthetic jobs to exercise queueing, fairness and cancellation without
// paying for real exploration.
//
// Cancellation is cooperative: every job gets a StopToken (util/stop_token.h)
// that the engines poll. Cancelling a queued job removes it immediately;
// cancelling a running job raises its token and the worker slot frees when
// the engine returns. Every job — completed, failed or cancelled — emits
// exactly one result frame through its FrameSink.
#ifndef SANDTABLE_SRC_SERVE_SCHEDULER_H_
#define SANDTABLE_SRC_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/serve/wire.h"
#include "src/util/json.h"
#include "src/util/stop_token.h"

namespace sandtable {
namespace serve {

// What one job produced. `status` is "done", "cancelled" or "failed";
// `result` is the engine-specific document embedded in the result frame.
struct JobOutcome {
  std::string status;
  Json result;
};

// Receives per-job progress documents (already JSON; the scheduler tags them
// with the job id before forwarding). Called from the worker thread.
using ProgressSink = std::function<void(Json)>;

// The work itself: runs to completion on a worker thread, streaming progress
// through the sink and polling the token for cooperative cancellation.
using JobFn = std::function<JobOutcome(const ProgressSink&, const StopToken&)>;

// Receives complete wire frames (started / progress / result) for one job.
// Called from worker threads and from Cancel/Shutdown callers — must be
// thread-safe and must not block indefinitely.
using FrameSink = std::function<void(const Json&)>;

struct SchedulerOptions {
  // Concurrent worker slots (max running jobs).
  int workers = 2;
  // Global admission bound on queued (not yet running) jobs.
  int max_queued = 64;
  // Per-tenant admission bound; 0 = bounded only by max_queued.
  int max_queued_per_tenant = 0;
  // Finished-job records retained for status/listing (oldest evicted first).
  int retain_finished = 1024;
  // Borrowed, may be null: job gauges/counters land here under "serve.*",
  // and job.h points the engines at the same registry.
  obs::MetricsRegistry* metrics = nullptr;
};

enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };
const char* JobStateName(JobState state);

// Snapshot of one job for status queries and GET /jobs.
struct JobRecord {
  uint64_t id = 0;
  std::string tenant;
  std::string kind;
  JobState state = JobState::kQueued;
  double queued_s = 0;  // time spent in the queue
  double run_s = 0;     // time spent running (0 while queued)
  Json ToJson() const;
};

struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;
  int queued = 0;
  int running = 0;
  Json ToJson() const;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options);
  ~Scheduler();  // Shutdown()

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  struct SubmitResult {
    bool ok = false;
    uint64_t job = 0;          // valid when ok
    uint64_t queue_depth = 0;  // global queued count after admission
    ErrorCode code = ErrorCode::kInternal;  // valid when !ok
    std::string message;                    // valid when !ok
  };

  // Admission-checks and enqueues one job. `kind` is informational (status
  // frames); `sink` receives this job's started/progress/result frames.
  SubmitResult Submit(const std::string& tenant, const std::string& kind,
                      JobFn fn, FrameSink sink);

  // True if the job was found queued (removed immediately, result frame
  // emitted) or running (token raised; the slot frees when the engine
  // yields). False for unknown or already-finished jobs.
  bool Cancel(uint64_t job);

  // Cancels every queued and running job belonging to `tenant` (used when a
  // client connection goes away). Returns the number of jobs cancelled.
  int CancelTenant(const std::string& tenant);

  std::optional<JobRecord> Status(uint64_t job) const;
  std::vector<JobRecord> List() const;
  SchedulerStats Stats() const;

  // Blocks until no job is queued or running (tests; bounded by timeout).
  // Returns false on timeout.
  bool WaitIdle(double timeout_s) const;

  // Stops admission, cancels all queued jobs, raises every running token and
  // joins the workers. Idempotent.
  void Shutdown();

  bool draining() const;

 private:
  struct Job;
  void WorkerMain();
  std::shared_ptr<Job> PopNextLocked(std::unique_lock<std::mutex>& lock);
  void FinishJob(const std::shared_ptr<Job>& job, JobState state,
                 const JobOutcome& outcome);
  void UpdateGaugesLocked();

  SchedulerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  mutable std::condition_variable idle_cv_;
  bool draining_ = false;

  uint64_t next_job_id_ = 1;
  // Per-tenant FIFO queues plus a round-robin rotation of tenant names.
  std::map<std::string, std::deque<std::shared_ptr<Job>>> queues_;
  std::deque<std::string> rr_;
  int queued_total_ = 0;
  int running_total_ = 0;

  // All known jobs by id; finished ones are evicted FIFO past retain_finished.
  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<uint64_t> finished_order_;

  SchedulerStats stats_;
  std::vector<std::thread> workers_;

  // serve.* instruments (null when options_.metrics is null).
  obs::Gauge* g_queued_ = nullptr;
  obs::Gauge* g_running_ = nullptr;
  obs::Counter* c_submitted_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_cancelled_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
};

}  // namespace serve
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SERVE_SCHEDULER_H_
