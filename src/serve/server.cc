#include "src/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "src/serve/http_metrics.h"
#include "src/serve/job.h"
#include "src/util/run_id.h"

namespace sandtable {
namespace serve {

namespace {

// How long a worker will wait, in total per frame, for a slow client before
// disconnecting it instead of blocking the worker slot on its progress stream.
constexpr int kWriteTimeoutMs = 5000;

// A job connection must send a newline within this many buffered bytes;
// beyond it the "line" is either abuse or a framing bug, and buffering more
// only grows daemon memory. (The HTTP path has its own 16 KB head cap.)
constexpr size_t kMaxRequestLineBytes = 4u << 20;  // 4 MiB

Status Errno(const std::string& what) {
  return Status::Error(what + ": " + std::strerror(errno));
}

}  // namespace

// One accepted connection. Reads happen only on the loop thread; writes are
// serialized by write_mu and may come from the loop thread (acks) or worker
// threads (job frames).
struct Server::Conn {
  int fd = -1;
  uint64_t id = 0;
  ConnKind kind = ConnKind::kJob;
  std::string inbuf;
  std::string tenant;  // default tenant for submits without one

  std::mutex write_mu;
  bool dead = false;  // write failed/timed out; loop reaps via shutdown()

  // Jobs submitted on this connection, cancelled when it goes away.
  std::vector<uint64_t> jobs;
};

Server::Server(const ServerOptions& options) : options_(options) {
  SchedulerOptions sopts = options_.scheduler;
  sopts.metrics = options_.metrics;
  scheduler_ = std::make_unique<Scheduler>(sopts);
}

Server::~Server() { Stop(); }

namespace {

Result<int> ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Result<int>::Error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  // A stale path from a crashed daemon would fail bind(); only unlink paths
  // nothing is listening on, so two daemons can't silently steal each other's
  // socket. The probe socket is discarded either way: POSIX leaves a socket
  // in unspecified state after a failed connect(), so bind() gets a fresh fd.
  {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) {
      return Result<int>::Error("socket: " + std::string(std::strerror(errno)));
    }
    const bool alive =
        ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    ::close(probe);
    if (alive) {
      return Result<int>::Error("already in use: " + path);
    }
  }
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Result<int>::Error("socket: " + std::string(std::strerror(errno)));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Result<int>::Error("bind/listen " + path + ": " + err);
  }
  return fd;
}

Result<int> ListenTcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Result<int>::Error("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Result<int>::Error("bind/listen 127.0.0.1:" + std::to_string(port) +
                              ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

Status Server::Start() {
  if (started_) {
    return Status::Error("server already started");
  }
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return Status::Error("no job listener configured (unix_path or tcp_port)");
  }
  if (::pipe(wake_pipe_) != 0) {
    return Errno("pipe");
  }
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    return Errno("epoll_create1");
  }
  auto watch = [this](int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  };

  if (!options_.unix_path.empty()) {
    auto fd = ListenUnix(options_.unix_path);
    if (!fd.ok()) {
      return Status::Error(fd.error());
    }
    job_unix_fd_ = fd.value();
  }
  if (options_.tcp_port >= 0) {
    auto fd = ListenTcp(options_.tcp_port, &tcp_port_);
    if (!fd.ok()) {
      return Status::Error(fd.error());
    }
    job_tcp_fd_ = fd.value();
  }
  if (!options_.metrics_unix_path.empty()) {
    auto fd = ListenUnix(options_.metrics_unix_path);
    if (!fd.ok()) {
      return Status::Error(fd.error());
    }
    http_unix_fd_ = fd.value();
  }
  if (options_.metrics_tcp_port >= 0) {
    auto fd = ListenTcp(options_.metrics_tcp_port, &metrics_tcp_port_);
    if (!fd.ok()) {
      return Status::Error(fd.error());
    }
    http_tcp_fd_ = fd.value();
  }
  for (int fd : {wake_pipe_[0], job_unix_fd_, job_tcp_fd_, http_unix_fd_, http_tcp_fd_}) {
    if (fd >= 0 && !watch(fd)) {
      return Errno("epoll_ctl");
    }
  }
  started_ = true;
  loop_ = std::thread([this] { LoopMain(); });
  return Status();
}

void Server::RequestStop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::Stop() {
  if (!started_) {
    return;
  }
  RequestStop();
  if (loop_.joinable()) {
    loop_.join();
  }
  scheduler_->Shutdown();
  for (int* fd : {&job_unix_fd_, &job_tcp_fd_, &http_unix_fd_, &http_tcp_fd_,
                  &epoll_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
  if (!options_.metrics_unix_path.empty()) {
    ::unlink(options_.metrics_unix_path.c_str());
  }
  started_ = false;
  {
    std::lock_guard<std::mutex> lock(stopped_mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::WaitShutdown() {
  std::unique_lock<std::mutex> lock(stopped_mu_);
  stopped_cv_.wait(lock, [this] { return stopped_; });
}

void Server::LoopMain() {
  epoll_event events[64];
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, 200);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_pipe_[0]) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fd == job_unix_fd_ || fd == job_tcp_fd_) {
        Accept(fd, ConnKind::kJob);
        continue;
      }
      if (fd == http_unix_fd_ || fd == http_tcp_fd_) {
        Accept(fd, ConnKind::kHttp);
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) {
        continue;  // already closed this iteration
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(it->second, /*cancel_jobs=*/true);
        continue;
      }
      HandleReadable(it->second);
    }
    // Reap connections whose writers hit the timeout/EPIPE path. try_lock:
    // a held write_mu means a worker is mid-write (for up to the write
    // deadline) and the conn isn't reapable yet anyway — don't stall the
    // event loop behind it; the next loop pass will catch it.
    std::vector<std::shared_ptr<Conn>> dead;
    for (auto& [cfd, conn] : conns_) {
      std::unique_lock<std::mutex> lock(conn->write_mu, std::try_to_lock);
      if (lock.owns_lock() && conn->dead) {
        dead.push_back(conn);
      }
    }
    for (auto& conn : dead) {
      CloseConn(conn, /*cancel_jobs=*/true);
    }
  }
  // Drain: close every connection (cancelling its jobs) before the scheduler
  // shuts down, so no frame sink outlives its socket.
  while (!conns_.empty()) {
    CloseConn(conns_.begin()->second, /*cancel_jobs=*/true);
  }
  // Unblock WaitShutdown(); full teardown (scheduler join, fd close) stays in
  // Stop(), which cannot run on this thread.
  {
    std::lock_guard<std::mutex> lock(stopped_mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::Accept(int listen_fd, ConnKind kind) {
  // Connections must be non-blocking: SendRaw's poll/timeout path only runs
  // if send() can return EAGAIN, and a blocking fd would let one stalled
  // client wedge a worker thread (and everyone queued on its write_mu).
  int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
  if (fd < 0 && (errno == ENOSYS || errno == EINVAL)) {
    fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int fl = ::fcntl(fd, F_GETFL, 0);
      if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) != 0) {
        ::close(fd);
        return;
      }
    }
  }
  if (fd < 0) {
    return;
  }
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->id = next_conn_id_++;
  conn->kind = kind;
  conn->tenant = "conn-" + std::to_string(conn->id);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  conns_[fd] = conn;
  if (kind == ConnKind::kJob) {
    SendFrame(conn, HelloFrame(options_.scheduler.workers,
                               options_.scheduler.max_queued));
  }
}

void Server::HandleReadable(std::shared_ptr<Conn> conn) {
  char buf[16384];
  const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
  if (n <= 0) {
    if (n < 0 && (errno == EAGAIN || errno == EINTR)) {
      return;
    }
    CloseConn(conn, /*cancel_jobs=*/true);
    return;
  }
  conn->inbuf.append(buf, static_cast<size_t>(n));
  if (conn->kind == ConnKind::kHttp) {
    HandleHttp(conn);
    return;
  }
  size_t start = 0;
  for (size_t nl = conn->inbuf.find('\n', start); nl != std::string::npos;
       nl = conn->inbuf.find('\n', start)) {
    std::string line = conn->inbuf.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (!line.empty()) {
      HandleRequestLine(conn, line);
    }
    // A request (shutdown, or a fatal write error) may have closed the
    // connection; stop parsing its buffer in that case.
    if (conns_.find(conn->fd) == conns_.end() || conns_[conn->fd] != conn) {
      return;
    }
  }
  conn->inbuf.erase(0, start);
  // A partial line may legitimately span reads, but not without bound: a
  // client streaming bytes with no '\n' would otherwise grow daemon memory
  // until the OOM killer arbitrates.
  if (conn->inbuf.size() > kMaxRequestLineBytes) {
    SendFrame(conn, ErrorFrame(Json(), ErrorCode::kBadRequest,
                               "request line exceeds " +
                                   std::to_string(kMaxRequestLineBytes) +
                                   " bytes"));
    CloseConn(conn, /*cancel_jobs=*/true);
  }
}

void Server::HandleRequestLine(const std::shared_ptr<Conn>& conn,
                               const std::string& line) {
  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    const bool unknown_op = parsed.error().rfind("unknown op:", 0) == 0;
    SendFrame(conn, ErrorFrame(Json(), unknown_op ? ErrorCode::kUnknownOp
                                                  : ErrorCode::kBadRequest,
                               parsed.error()));
    return;
  }
  const Request& req = parsed.value();
  switch (req.op) {
    case Request::Op::kPing:
      SendFrame(conn, PongFrame(req.req_token));
      return;
    case Request::Op::kStats: {
      Json frame = scheduler_->Stats().ToJson();
      frame.as_object()["type"] = Json("stats");
      if (!req.req_token.is_null()) {
        frame.as_object()["req"] = req.req_token;
      }
      SendFrame(conn, frame);
      return;
    }
    case Request::Op::kStatus: {
      auto record = scheduler_->Status(req.job);
      if (!record.has_value()) {
        SendFrame(conn, ErrorFrame(req.req_token, ErrorCode::kUnknownJob,
                                   "unknown job: " + std::to_string(req.job)));
        return;
      }
      Json frame = record->ToJson();
      frame.as_object()["type"] = Json("status");
      if (!req.req_token.is_null()) {
        frame.as_object()["req"] = req.req_token;
      }
      SendFrame(conn, frame);
      return;
    }
    case Request::Op::kCancel: {
      if (!scheduler_->Cancel(req.job)) {
        SendFrame(conn, ErrorFrame(req.req_token, ErrorCode::kUnknownJob,
                                   "job not queued or running: " +
                                       std::to_string(req.job)));
        return;
      }
      SendFrame(conn, AckFrame(req.req_token, req.job, "cancelling",
                               scheduler_->Stats().queued));
      return;
    }
    case Request::Op::kShutdown: {
      if (!options_.allow_shutdown) {
        SendFrame(conn, ErrorFrame(req.req_token, ErrorCode::kForbidden,
                                   "shutdown disabled; start the daemon with "
                                   "--allow-shutdown to enable"));
        return;
      }
      SendFrame(conn, AckFrame(req.req_token, 0, "shutting_down",
                               scheduler_->Stats().queued));
      RequestStop();
      return;
    }
    case Request::Op::kSubmit:
      break;
  }

  // Submit: validate params, apply the server's budget policy, enqueue.
  auto params = ParseJobParams(req.kind, req.params);
  if (!params.ok()) {
    const bool unknown_kind = params.error().rfind("unknown job kind", 0) == 0;
    SendFrame(conn, ErrorFrame(req.req_token,
                               unknown_kind ? ErrorCode::kUnknownKind
                                            : ErrorCode::kBadRequest,
                               params.error()));
    return;
  }
  JobParams p = std::move(params).value();
  if (p.time_budget_ms == 0 && options_.default_time_budget_ms > 0) {
    p.time_budget_ms = options_.default_time_budget_ms;
  }
  if (options_.max_time_budget_ms > 0 &&
      (p.time_budget_ms == 0 || p.time_budget_ms > options_.max_time_budget_ms)) {
    p.time_budget_ms = options_.max_time_budget_ms;
  }
  if (options_.max_states_cap > 0 &&
      (p.max_states == 0 || p.max_states > options_.max_states_cap)) {
    p.max_states = options_.max_states_cap;
  }
  if (options_.max_depth_cap > 0 &&
      (p.max_depth == 0 || p.max_depth > options_.max_depth_cap)) {
    p.max_depth = options_.max_depth_cap;
  }
  // ParallelBfsCheck spawns p.workers threads verbatim; never let a client
  // pick the daemon's thread count for it.
  int workers_cap = options_.max_workers_cap;
  if (workers_cap <= 0) {
    workers_cap = static_cast<int>(std::thread::hardware_concurrency());
    if (workers_cap <= 0) {
      workers_cap = 1;  // hardware_concurrency() may report 0
    }
  }
  if (p.workers > workers_cap) {
    p.workers = workers_cap;
  }

  const std::string tenant = req.tenant.empty() ? conn->tenant : req.tenant;
  std::weak_ptr<Conn> weak = conn;
  FrameSink sink = [weak](const Json& frame) {
    if (auto conn = weak.lock()) {
      SendFrame(conn, frame);
    }
  };
  const Scheduler::SubmitResult sub = scheduler_->Submit(
      tenant, req.kind, MakeJobFn(std::move(p), options_.metrics),
      std::move(sink));
  if (!sub.ok) {
    SendFrame(conn, ErrorFrame(req.req_token, sub.code, sub.message));
    return;
  }
  // Jobs on the implicit per-connection tenant die with the connection; jobs
  // submitted under an explicit tenant are externally owned and keep running
  // (the point of sandtable_client --detach), cancellable by id later.
  if (req.tenant.empty()) {
    conn->jobs.push_back(sub.job);
  }
  SendFrame(conn, AckFrame(req.req_token, sub.job, "queued", sub.queue_depth));
}

void Server::HandleHttp(const std::shared_ptr<Conn>& conn) {
  auto req = ParseHttpRequest(conn->inbuf);
  if (!req.has_value()) {
    if (conn->inbuf.size() > 16384) {
      CloseConn(conn, /*cancel_jobs=*/false);  // oversized head
    }
    return;
  }
  std::string response;
  if (req->method != "GET") {
    response = HttpResponse(405, "text/plain", "only GET is supported\n");
  } else if (req->path == "/metrics") {
    obs::MetricsSnapshot snap;
    if (options_.metrics != nullptr) {
      snap = options_.metrics->Snapshot();
    }
    response = HttpResponse(200, "text/plain; version=0.0.4",
                            RenderPrometheus(snap, scheduler_->Stats()));
  } else if (req->path == "/jobs") {
    JsonArray jobs;
    for (const JobRecord& r : scheduler_->List()) {
      jobs.push_back(r.ToJson());
    }
    response = HttpResponse(200, "application/json",
                            Json(std::move(jobs)).Dump() + "\n");
  } else if (req->path == "/healthz") {
    response = HttpResponse(200, "text/plain",
                            "ok run_id=" + RunId() +
                                " version=" + BuildVersion() + "\n");
  } else if (req->path.empty()) {
    response = HttpResponse(400, "text/plain", "malformed request line\n");
  } else {
    response = HttpResponse(404, "text/plain", "unknown path: " + req->path +
                                                   " (try /metrics)\n");
  }
  SendRaw(conn, response);
  CloseConn(conn, /*cancel_jobs=*/false);  // HTTP/1.0: one request per connection
}

void Server::CloseConn(std::shared_ptr<Conn> conn, bool cancel_jobs) {
  auto it = conns_.find(conn->fd);
  if (it == conns_.end() || it->second != conn) {
    return;
  }
  conns_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  if (cancel_jobs) {
    for (uint64_t job : conn->jobs) {
      scheduler_->Cancel(job);  // false for finished jobs; that's fine
    }
  }
  std::lock_guard<std::mutex> lock(conn->write_mu);
  ::close(conn->fd);
  conn->fd = -1;
  conn->dead = true;
}

bool Server::SendRaw(const std::shared_ptr<Conn>& conn, const std::string& data) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->dead || conn->fd < 0) {
    return false;
  }
  // One deadline for the whole frame: a client draining one byte per poll
  // round must not extend its grace period indefinitely.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kWriteTimeoutMs);
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(conn->fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (remaining.count() > 0) {
        pollfd pfd{conn->fd, POLLOUT, 0};
        if (::poll(&pfd, 1, static_cast<int>(remaining.count())) > 0) {
          continue;
        }
      }
    }
    // Broken pipe or a client unwritable past the timeout: mark the
    // connection dead; the loop thread reaps and cancels its jobs.
    conn->dead = true;
    return false;
  }
  return true;
}

void Server::SendFrame(const std::shared_ptr<Conn>& conn, const Json& frame) {
  SendRaw(conn, frame.Dump() + "\n");
}

}  // namespace serve
}  // namespace sandtable
