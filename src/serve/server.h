// sandtable_serve's network core: an epoll event loop accepting job
// connections (newline-delimited JSON, wire.h) and HTTP/1.0 metrics scrapes,
// dispatching submitted jobs to the shared Scheduler.
//
// Threading model:
//   - One event-loop thread owns accept/read/close for every connection.
//   - Scheduler worker threads execute jobs and push started/progress/result
//     frames through a thread-safe per-connection Send (mutex-serialized
//     writes on non-blocking fds, polling under a per-frame deadline; a
//     client that stays unwritable past it is disconnected rather than
//     wedging a worker).
//   - Client disconnect cancels that connection's outstanding jobs: queued
//     ones leave the queue immediately, running ones get their StopToken
//     raised and the worker slot frees at the next engine poll.
//
// Lifecycle: Start() binds the listeners and launches the loop; Stop() (or a
// client "shutdown" op when enabled, or RequestStop from a signal handler)
// drains: admission closes, running jobs are cancelled, workers join,
// connections close. WaitShutdown() parks the daemon main thread until then.
#ifndef SANDTABLE_SRC_SERVE_SERVER_H_
#define SANDTABLE_SRC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/serve/scheduler.h"
#include "src/serve/wire.h"
#include "src/util/result.h"

namespace sandtable {
namespace serve {

struct ServerOptions {
  // Job listener: a Unix-domain socket path and/or a loopback TCP port
  // (0 = ephemeral, -1 = disabled). At least one must be enabled.
  std::string unix_path;
  int tcp_port = -1;

  // Metrics listener (HTTP/1.0 GET /metrics | /jobs | /healthz), same
  // conventions. Both disabled = no scrape endpoint.
  std::string metrics_unix_path;
  int metrics_tcp_port = -1;

  SchedulerOptions scheduler;

  // Honor the "shutdown" op from clients (off by default: a shared daemon
  // shouldn't be stoppable by any tenant).
  bool allow_shutdown = false;

  // Per-job budget policy applied at submit time: defaults fill unset (zero)
  // params, caps clamp client-requested budgets. 0 = no default / no cap.
  uint64_t default_time_budget_ms = 0;
  uint64_t max_time_budget_ms = 0;
  uint64_t max_states_cap = 0;
  uint64_t max_depth_cap = 0;

  // Cap on a check job's client-requested "workers" (threads spawned inside
  // the daemon). 0 = cap at std::thread::hardware_concurrency().
  int max_workers_cap = 0;

  // Borrowed, may be null: daemon-wide registry shared by the scheduler's
  // job gauges and every job's engine counters; rendered by GET /metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();  // Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds listeners and starts the loop thread. Fails (with errno detail) on
  // bind/listen errors, e.g. an already-taken socket path.
  Status Start();

  // Full drain; idempotent, safe from any thread (not from signal handlers —
  // those use RequestStop).
  void Stop();

  // Async-signal-safe stop request: flips a flag and pokes the loop's wake
  // pipe. The loop thread performs the actual Stop().
  void RequestStop();

  // Blocks until the server stopped (Stop/RequestStop/client shutdown op).
  void WaitShutdown();

  // Bound ports after Start() when the corresponding listener used port 0.
  int tcp_port() const { return tcp_port_; }
  int metrics_tcp_port() const { return metrics_tcp_port_; }

  Scheduler& scheduler() { return *scheduler_; }

 private:
  struct Conn;
  enum class ConnKind { kJob, kHttp };

  void LoopMain();
  void Accept(int listen_fd, ConnKind kind);
  // HandleReadable and CloseConn take the shared_ptr BY VALUE on purpose:
  // callers pass the shared_ptr stored in conns_ itself, and CloseConn erases
  // that map entry — a reference parameter would dangle the moment the entry
  // (the last strong ref; job sinks hold weak_ptrs) is destroyed.
  void HandleReadable(std::shared_ptr<Conn> conn);
  void HandleRequestLine(const std::shared_ptr<Conn>& conn,
                         const std::string& line);
  void HandleHttp(const std::shared_ptr<Conn>& conn);
  void CloseConn(std::shared_ptr<Conn> conn, bool cancel_jobs);
  static bool SendRaw(const std::shared_ptr<Conn>& conn, const std::string& data);
  static void SendFrame(const std::shared_ptr<Conn>& conn, const Json& frame);

  ServerOptions options_;
  std::unique_ptr<Scheduler> scheduler_;
  std::thread loop_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  int job_unix_fd_ = -1;
  int job_tcp_fd_ = -1;
  int http_unix_fd_ = -1;
  int http_tcp_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int tcp_port_ = -1;
  int metrics_tcp_port_ = -1;

  // Connections are owned here and referenced weakly by job FrameSinks, so a
  // frame for a vanished connection is dropped, not use-after-freed.
  std::map<int, std::shared_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
};

}  // namespace serve
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SERVE_SERVER_H_
