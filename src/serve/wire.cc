#include "src/serve/wire.h"

namespace sandtable {
namespace serve {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kUnknownOp:
      return "unknown_op";
    case ErrorCode::kUnknownKind:
      return "unknown_kind";
    case ErrorCode::kUnknownJob:
      return "unknown_job";
    case ErrorCode::kQueueFull:
      return "queue_full";
    case ErrorCode::kTenantQueueFull:
      return "tenant_queue_full";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kForbidden:
      return "forbidden";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

Result<Request> ParseRequest(const std::string& line) {
  auto parsed = Json::Parse(line);
  if (!parsed.ok()) {
    return Result<Request>::Error("not valid JSON: " + parsed.error());
  }
  const Json& j = parsed.value();
  if (!j.is_object()) {
    return Result<Request>::Error("request must be a JSON object");
  }
  if (!j["op"].is_string()) {
    return Result<Request>::Error("missing string field \"op\"");
  }
  Request r;
  r.req_token = j["req"];
  const std::string& op = j["op"].as_string();
  if (op == "submit") {
    r.op = Request::Op::kSubmit;
    if (!j["kind"].is_string()) {
      return Result<Request>::Error("submit needs a string field \"kind\"");
    }
    r.kind = j["kind"].as_string();
    if (j.contains("tenant")) {
      if (!j["tenant"].is_string()) {
        return Result<Request>::Error("\"tenant\" must be a string");
      }
      r.tenant = j["tenant"].as_string();
    }
    r.params = j["params"];
    if (!r.params.is_null() && !r.params.is_object()) {
      return Result<Request>::Error("\"params\" must be an object");
    }
    return r;
  }
  if (op == "cancel" || op == "status") {
    r.op = op == "cancel" ? Request::Op::kCancel : Request::Op::kStatus;
    if (!j["job"].is_int() || j["job"].as_int() < 0) {
      return Result<Request>::Error(op + " needs a non-negative integer \"job\"");
    }
    r.job = static_cast<uint64_t>(j["job"].as_int());
    return r;
  }
  if (op == "stats") {
    r.op = Request::Op::kStats;
    return r;
  }
  if (op == "ping") {
    r.op = Request::Op::kPing;
    return r;
  }
  if (op == "shutdown") {
    r.op = Request::Op::kShutdown;
    return r;
  }
  return Result<Request>::Error("unknown op: " + op);
}

namespace {

// Every response frame echoes the request's correlation token when present.
void PutToken(JsonObject& o, const Json& req_token) {
  if (!req_token.is_null()) {
    o["req"] = req_token;
  }
}

}  // namespace

Json HelloFrame(int max_running, int max_queued) {
  JsonObject o;
  o["type"] = Json("hello");
  o["server"] = Json("sandtable_serve");
  o["protocol"] = Json(kProtocolVersion);
  o["max_running"] = Json(static_cast<int64_t>(max_running));
  o["max_queued"] = Json(static_cast<int64_t>(max_queued));
  return Json(std::move(o));
}

Json AckFrame(const Json& req_token, uint64_t job, const char* status,
              uint64_t queue_depth) {
  JsonObject o;
  o["type"] = Json("ack");
  PutToken(o, req_token);
  o["job"] = Json(job);
  o["status"] = Json(status);
  o["queue_depth"] = Json(queue_depth);
  return Json(std::move(o));
}

Json ErrorFrame(const Json& req_token, ErrorCode code, const std::string& message) {
  JsonObject o;
  o["type"] = Json("error");
  PutToken(o, req_token);
  o["code"] = Json(ErrorCodeName(code));
  o["message"] = Json(message);
  return Json(std::move(o));
}

Json PongFrame(const Json& req_token) {
  JsonObject o;
  o["type"] = Json("pong");
  PutToken(o, req_token);
  o["protocol"] = Json(kProtocolVersion);
  return Json(std::move(o));
}

Json StartedFrame(uint64_t job, double queued_s) {
  JsonObject o;
  o["type"] = Json("started");
  o["job"] = Json(job);
  o["queued_s"] = Json(queued_s);
  return Json(std::move(o));
}

Json ProgressFrame(uint64_t job, Json progress) {
  if (progress.is_object()) {
    progress.as_object()["job"] = Json(job);
    return progress;
  }
  // Non-object engine output (shouldn't happen) still reaches the client as a
  // tagged log frame rather than being dropped.
  JsonObject o;
  o["type"] = Json("log");
  o["job"] = Json(job);
  o["line"] = std::move(progress);
  return Json(std::move(o));
}

Json ResultFrame(uint64_t job, const std::string& status, Json result,
                 double queued_s, double run_s) {
  JsonObject o;
  o["type"] = Json("result");
  o["job"] = Json(job);
  o["status"] = Json(status);
  o["result"] = std::move(result);
  o["queued_s"] = Json(queued_s);
  o["run_s"] = Json(run_s);
  return Json(std::move(o));
}

}  // namespace serve
}  // namespace sandtable
