// Wire protocol of sandtable_serve (see DESIGN.md "Model checking as a
// service" for the full specification).
//
// Everything on a job connection is newline-delimited JSON, both directions.
// The client sends request frames:
//
//   {"op":"submit","kind":"check","tenant":"ci","req":7,"params":{...}}
//   {"op":"cancel","job":3}         {"op":"status","job":3}
//   {"op":"stats"}  {"op":"ping"}   {"op":"shutdown"}
//
// The server answers with exactly one ack/error/pong/stats frame per request
// (correlated by the client-chosen "req" token, echoed verbatim), and streams
// unsolicited per-job frames — started / progress / result — tagged with the
// server-assigned job id. Frames of concurrent jobs interleave on the
// connection; the job id is the demultiplexing key.
//
// This layer is pure data: frame builders and the request parser, shared by
// the server, the client library and the tests so the two sides cannot
// drift. No sockets here.
#ifndef SANDTABLE_SRC_SERVE_WIRE_H_
#define SANDTABLE_SRC_SERVE_WIRE_H_

#include <cstdint>
#include <string>

#include "src/util/json.h"
#include "src/util/result.h"

namespace sandtable {
namespace serve {

inline constexpr int kProtocolVersion = 1;

// Stable machine-readable error codes ("code" in error frames).
enum class ErrorCode {
  kBadRequest,       // unparseable line, missing/mistyped field
  kUnknownOp,        // "op" not one of the verbs above
  kUnknownKind,      // submit with an unrecognized job kind
  kUnknownJob,       // cancel/status for a job id the server never assigned
  kQueueFull,        // admission control: global queue at capacity
  kTenantQueueFull,  // admission control: this tenant's queue at capacity
  kShuttingDown,     // server is draining; no new work accepted
  kForbidden,        // op disabled by server configuration (e.g. shutdown)
  kInternal,         // unexpected server-side failure
};
const char* ErrorCodeName(ErrorCode code);

// Client -> server request, one per line.
struct Request {
  enum class Op { kSubmit, kCancel, kStatus, kStats, kPing, kShutdown };
  Op op = Op::kPing;
  Json req_token;       // echoed in the response frame; null when absent
  std::string tenant;   // submit only; "" = per-connection default tenant
  std::string kind;     // submit only; job kind name
  Json params;          // submit only; job parameters (object or null)
  uint64_t job = 0;     // cancel/status only
};

// Parses one request line. Returns an error message suitable for a
// bad_request error frame; the caller still answers on the wire.
Result<Request> ParseRequest(const std::string& line);

// Server -> client frame builders. Every frame has a "type" key.
Json HelloFrame(int max_running, int max_queued);
Json AckFrame(const Json& req_token, uint64_t job, const char* status,
              uint64_t queue_depth);
Json ErrorFrame(const Json& req_token, ErrorCode code, const std::string& message);
Json PongFrame(const Json& req_token);
Json StartedFrame(uint64_t job, double queued_s);
// Wraps one engine progress line (obs::ProgressReporter output) with the job id.
Json ProgressFrame(uint64_t job, Json progress);
// `status` is done|cancelled|failed; `result` is the engine-specific document.
Json ResultFrame(uint64_t job, const std::string& status, Json result,
                 double queued_s, double run_s);

}  // namespace serve
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SERVE_WIRE_H_
