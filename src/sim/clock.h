// Per-node virtual clock (Appendix A.1).
//
// The paper's interceptor overrides clock_gettime()/gettimeofday() so the
// engine can advance time arbitrarily and trigger timeout events without
// waiting for the wall clock. Each query bumps the clock by a small increment
// to preserve monotonicity, exactly as described in the paper; the engine
// advances it in larger steps to fire a specific node's pending timer.
#ifndef SANDTABLE_SRC_SIM_CLOCK_H_
#define SANDTABLE_SRC_SIM_CLOCK_H_

#include <cstdint>

namespace sandtable {
namespace sim {

class VirtualClock {
 public:
  explicit VirtualClock(int64_t start_ns = 0, int64_t auto_increment_ns = 1)
      : now_ns_(start_ns), auto_increment_ns_(auto_increment_ns) {}

  // The intercepted clock_gettime(): returns the current virtual time and
  // bumps it by the predefined increment to keep time strictly monotonic.
  int64_t NowNs() {
    const int64_t t = now_ns_;
    now_ns_ += auto_increment_ns_;
    return t;
  }

  // Read without advancing (engine-side inspection).
  int64_t PeekNs() const { return now_ns_; }

  // Engine command: advance time (e.g. to one tick past a timer deadline).
  void AdvanceNs(int64_t delta_ns) {
    if (delta_ns > 0) {
      now_ns_ += delta_ns;
    }
  }

  void AdvanceToNs(int64_t target_ns) {
    if (target_ns > now_ns_) {
      now_ns_ = target_ns;
    }
  }

 private:
  int64_t now_ns_;
  int64_t auto_increment_ns_;
};

}  // namespace sim
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SIM_CLOCK_H_
