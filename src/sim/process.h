// The implementation-level process model.
//
// Target-system nodes are written as event-driven processes against this
// POSIX-like facade: they read a (virtual) clock, send bytes over sockets,
// persist state to storage, and emit log lines — the same control points the
// paper's interceptor captures with LD_PRELOAD on a real system (Appendix A).
// The deterministic execution engine (src/engine) owns the environment and
// steps processes one event at a time.
#ifndef SANDTABLE_SRC_SIM_PROCESS_H_
#define SANDTABLE_SRC_SIM_PROCESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/util/json.h"

namespace sandtable {
namespace sim {

// Persistent per-node storage that survives crashes (the node's "disk").
// Nodes keep durable protocol state (currentTerm, votedFor, log, snapshot)
// here; the engine hands the same Storage back on restart.
class Storage {
 public:
  bool Has(const std::string& key) const { return data_.contains(key); }
  const Json& Get(const std::string& key) const { return data_[key]; }
  void Put(const std::string& key, Json value) { data_[key] = std::move(value); }
  void Clear() { data_ = Json(JsonObject{}); }
  const Json& raw() const { return data_; }

 private:
  Json data_ = Json(JsonObject{});
};

// The environment a process runs in; implemented by the engine.
class Env {
 public:
  virtual ~Env() = default;

  virtual int node_id() const = 0;
  virtual int cluster_size() const = 0;

  // Intercepted clock_gettime(): virtual, per node, monotonic.
  virtual int64_t NowNs() = 0;

  // Intercepted send()/sendto(): hand bytes to the transparent proxy. May
  // silently fail (partition, crashed peer) exactly like the real network.
  // Returns false when the proxy refuses the message (connection down) —
  // systems that check send results (WRaft#8) can observe this.
  virtual bool SendTo(int dst, const std::string& bytes) = 0;

  // Intercepted write() on the log file descriptor: captured for log-parsing
  // state observation (Appendix A.4).
  virtual void WriteLog(const std::string& line) = 0;

  // Durable storage (the node's disk).
  virtual Storage& Disk() = 0;
};

// An event-driven node. All nondeterminism is externalized: the engine decides
// which message is delivered, when timers fire, and when crashes happen; the
// handlers themselves must be deterministic functions of (state, event).
//
// A handler signalling failure (returning false) models an unhandled exception
// crashing the process — how the paper's conformance checking surfaces bugs
// like PySyncObj#1 / RaftOS#3 / Xraft#2.
class Process {
 public:
  virtual ~Process() = default;

  virtual void OnStart() = 0;

  // A message from `src` was delivered by the proxy.
  [[nodiscard]] virtual bool OnMessage(int src, const std::string& bytes) = 0;

  // The virtual clock advanced; the process checks its deadlines.
  [[nodiscard]] virtual bool OnTick() = 0;

  // A client request (workload command from the trace).
  [[nodiscard]] virtual bool OnClientRequest(const Json& request, Json* response) = 0;

  // A peer connection dropped (partition or peer crash). TCP semantics only.
  [[nodiscard]] virtual bool OnDisconnect(int peer) = 0;

  // Debug API exposing internal state (conformance observation channel 1).
  virtual Json QueryState() = 0;

  // Earliest pending timer deadline in ns, or a negative value if none. The
  // engine advances the virtual clock past it to fire the timeout.
  virtual int64_t NextDeadlineNs(const std::string& timer_kind) = 0;
};

using ProcessFactory = std::function<std::unique_ptr<Process>(Env& env)>;

}  // namespace sim
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SIM_PROCESS_H_
