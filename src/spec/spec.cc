#include "src/spec/spec.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace sandtable {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kMessage:
      return "Message";
    case EventKind::kTimeout:
      return "Timeout";
    case EventKind::kClientRequest:
      return "ClientRequest";
    case EventKind::kCrash:
      return "Crash";
    case EventKind::kRestart:
      return "Restart";
    case EventKind::kPartition:
      return "Partition";
    case EventKind::kRecover:
      return "Recover";
    case EventKind::kNetworkFault:
      return "NetworkFault";
    case EventKind::kInternal:
      return "Internal";
  }
  return "?";
}

std::string ActionLabel::ToString() const {
  if (params.is_object() && !params.as_object().empty()) {
    return action + " " + params.Dump();
  }
  return action;
}

std::string TraceToString(const std::vector<TraceStep>& trace) {
  std::string out;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i == 0) {
      out += StrFormat("  0: <init>\n     %s\n", trace[i].state.ToString().c_str());
    } else {
      out += StrFormat("  %zu: %s\n     %s\n", i, trace[i].label.ToString().c_str(),
                       trace[i].state.ToString().c_str());
    }
  }
  return out;
}

std::string TraceToJsonl(const std::vector<TraceStep>& trace) {
  std::string out;
  for (const TraceStep& step : trace) {
    JsonObject o;
    o["action"] = Json(step.label.action);
    o["kind"] = Json(std::string(EventKindName(step.label.kind)));
    o["params"] = step.label.params;
    o["state"] = step.state.ToJson();
    out += Json(std::move(o)).Dump();
    out += '\n';
  }
  return out;
}

Result<std::vector<TraceStep>> TraceFromJsonl(const std::string& text) {
  std::vector<TraceStep> trace;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (StripWhitespace(line).empty()) {
      continue;
    }
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      return Result<std::vector<TraceStep>>::Error(parsed.error());
    }
    const Json& j = parsed.value();
    if (!j.is_object()) {
      return Result<std::vector<TraceStep>>::Error("trace line is not an object");
    }
    TraceStep step;
    step.label.action = j["action"].is_string() ? j["action"].as_string() : "";
    const std::string kind_name = j["kind"].is_string() ? j["kind"].as_string() : "Internal";
    step.label.kind = EventKind::kInternal;
    for (int k = 0; k < kNumEventKinds; ++k) {
      if (kind_name == EventKindName(static_cast<EventKind>(k))) {
        step.label.kind = static_cast<EventKind>(k);
        break;
      }
    }
    step.label.params = j["params"];
    auto state = Value::FromJson(j["state"]);
    if (!state.ok()) {
      return Result<std::vector<TraceStep>>::Error(state.error());
    }
    step.state = std::move(state).value();
    trace.push_back(std::move(step));
  }
  return trace;
}

}  // namespace sandtable
