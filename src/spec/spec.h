// Specification framework: TLA+-style guarded-action state machines.
//
// A Spec is a state machine over Value states (a record mapping variable
// names to values): a set of initial states, a set of actions that enumerate
// nondeterministic successors, state invariants, transition invariants, and a
// state constraint bounding exploration (the paper's budget constraints, §3.3).
//
// Actions report which code branches they exercised via ActionContext::Branch;
// the random-walk simulator aggregates this into the branch-coverage metric
// used by Algorithm 1 to rank budget constraints.
//
// ## Thread-safety contract (required by the parallel checker, src/par/)
//
// Next-state evaluation must be pure with respect to the Spec: `expand`,
// invariant `check`, transition-invariant `check` and `constraint` callables
// are invoked concurrently from worker threads on a `const Spec&` and MUST
// NOT mutate captured state (capture by value or by const reference only;
// build helper state into an immutable structure, e.g. the
// `shared_ptr<const Builder>` idiom of raftspec/zabspec). All successors must
// be freshly constructed Values. Value's internal hash/symmetry memoization
// is thread-safe (see value.h), with one restriction: two concurrently
// running checks must not use different symmetry declarations — sequencing
// runs per spec, as ParallelBfsCheck does, satisfies this.
#ifndef SANDTABLE_SRC_SPEC_SPEC_H_
#define SANDTABLE_SRC_SPEC_SPEC_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/value/value.h"

namespace sandtable {

// A specification state: a Record value, one field per spec variable.
using State = Value;

// Node-level event classes, used for the event-diversity metric of Algorithm 1
// and for converting spec events into engine replay commands.
enum class EventKind : uint8_t {
  kMessage = 0,       // message delivery / handling
  kTimeout = 1,       // election or heartbeat timeout firing
  kClientRequest = 2, // workload operation
  kCrash = 3,         // node crash
  kRestart = 4,       // node restart/rejoin
  kPartition = 5,     // network partition start (TCP failure model)
  kRecover = 6,       // network partition heal
  kNetworkFault = 7,  // UDP drop/duplicate (reordering is implicit in delivery choice)
  kInternal = 8,      // bookkeeping transitions not replayed at the impl level
};

const char* EventKindName(EventKind kind);
constexpr int kNumEventKinds = 9;

// Identifies one concrete transition: the action that fired plus its
// parameters (serializable, for trace files and replay conversion).
struct ActionLabel {
  std::string action;
  EventKind kind = EventKind::kInternal;
  Json params;  // object, e.g. {"src": "n1", "dst": "n2", "msg": {...}}

  std::string ToString() const;
};

// Passed to an action's expand function; collects successors and branch hits.
class ActionContext {
 public:
  virtual ~ActionContext() = default;

  // Emit a successor state produced with the given parameters.
  virtual void Emit(State next, Json params) = 0;
  void Emit(State next) { Emit(std::move(next), Json(JsonObject{})); }

  // Record that the spec branch `id` (scoped by action name) was exercised.
  virtual void Branch(std::string_view id) = 0;
};

struct Action {
  std::string name;
  EventKind kind = EventKind::kInternal;
  // Enumerate all successors of `state` for this action. An action that is
  // not enabled simply emits nothing.
  std::function<void(const State& state, ActionContext& ctx)> expand;
  // Branch ids this action is expected to exercise (optional). A declared
  // branch never hit during exploration is a coverage hole the analytics
  // report warns about.
  std::vector<std::string> declared_branches = {};
};

// A state invariant; `check` returns true when the state is safe.
struct Invariant {
  std::string name;
  std::function<bool(const State& state)> check;
};

// A transition invariant, checked on every explored edge. Used for the
// monotonicity-style properties of Table 2 (e.g. "commit index is monotonic")
// and for computed oracles ("AdvanceCommitIndex must reach the maximum
// committable index").
struct TransitionInvariant {
  std::string name;
  std::function<bool(const State& prev, const ActionLabel& label, const State& next)> check;
};

// Symmetry declaration: states are considered equal up to permutations of the
// model values Model(cls, 0..count-1) (§3.3, symmetry reduction).
struct Symmetry {
  std::string cls;
  int count = 0;
};

struct Spec {
  std::string name;

  std::vector<State> init_states;
  std::vector<Action> actions;
  std::vector<Invariant> invariants;
  std::vector<TransitionInvariant> transition_invariants;

  // States violating the constraint are still checked against invariants but
  // not expanded (TLC CONSTRAINT semantics).
  std::function<bool(const State&)> constraint;  // may be null (no bound)

  std::optional<Symmetry> symmetry;

  // Variables compared during conformance checking (a subset of state fields).
  std::vector<std::string> compared_vars;

  bool WithinConstraint(const State& s) const { return !constraint || constraint(s); }
};

// A step of a counterexample or random-walk trace. Step 0 holds the initial
// state with an empty label.
struct TraceStep {
  ActionLabel label;
  State state;
};

std::string TraceToString(const std::vector<TraceStep>& trace);

// Serialize/deserialize traces as JSONL (one step per line).
std::string TraceToJsonl(const std::vector<TraceStep>& trace);
Result<std::vector<TraceStep>> TraceFromJsonl(const std::string& text);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_SPEC_SPEC_H_
