#include "src/store/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <utility>

#include "src/obs/phase_timer.h"
#include "src/obs/trace.h"
#include "src/util/hash.h"

namespace sandtable {
namespace store {

namespace fs = std::filesystem;

namespace {

Status SyncPath(const fs::path& p, bool is_dir) {
  const int fd = ::open(p.c_str(), is_dir ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) {
    return Status::Error("cannot open " + p.string() + " for fsync");
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    return Status::Error("fsync failed for " + p.string());
  }
  return Status();
}

// Durably sync every staged file plus the stage directory itself, so a power
// loss after the publishing rename cannot surface a checkpoint whose files
// were never written back.
Status SyncStage(const fs::path& stage) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(stage, ec)) {
    if (entry.is_regular_file()) {
      const Status st = SyncPath(entry.path(), /*is_dir=*/false);
      if (!st.ok()) {
        return st;
      }
    }
  }
  if (ec) {
    return Status::Error("cannot list checkpoint stage " + stage.string() + ": " +
                         ec.message());
  }
  return SyncPath(stage, /*is_dir=*/true);
}

// The directory that actually holds the complete checkpoint: `dir` itself,
// or `<dir>.old` when a crash between the two publishing renames left the
// previous checkpoint rotated aside with the stage not yet in place.
fs::path ResolveCheckpointDir(const std::string& dir) {
  if (fs::exists(fs::path(dir) / "manifest.json")) {
    return dir;
  }
  const fs::path old = dir + ".old";
  if (!fs::exists(dir) && fs::exists(old / "manifest.json")) {
    return old;
  }
  return dir;
}

}  // namespace

uint64_t SpecIdentityHash(const Spec& spec) {
  uint64_t h = FnvHash(spec.name);
  for (const Action& a : spec.actions) {
    h = HashCombine(h, FnvHash(a.name));
    h = HashCombine(h, static_cast<uint64_t>(a.kind));
  }
  for (const Invariant& inv : spec.invariants) {
    h = HashCombine(h, FnvHash(inv.name));
  }
  for (const TransitionInvariant& inv : spec.transition_invariants) {
    h = HashCombine(h, FnvHash(inv.name));
  }
  if (spec.symmetry.has_value()) {
    h = HashCombine(h, FnvHash(spec.symmetry->cls));
    h = HashCombine(h, static_cast<uint64_t>(spec.symmetry->count));
  }
  for (const State& s : spec.init_states) {
    h = HashCombine(h, s.hash());
  }
  return h;
}

Json CheckpointMeta::ToJson() const {
  JsonObject o;
  o["format"] = Json("sandtable-checkpoint");
  o["format_version"] = Json(static_cast<int64_t>(format_version));
  o["spec_name"] = Json(spec_name);
  o["spec_hash"] = Json(spec_hash);
  o["distinct_states"] = Json(distinct_states);
  o["depth_reached"] = Json(depth_reached);
  o["frontier_size"] = Json(frontier_size);
  o["deadlock_states"] = Json(deadlock_states);
  o["seconds"] = Json(seconds);
  o["use_symmetry"] = Json(use_symmetry);
  o["hash_compact"] = Json(hash_compact);
  JsonArray runs;
  for (const std::string& name : visited_runs) {
    runs.emplace_back(name);
  }
  o["visited_runs"] = Json(std::move(runs));
  o["frontier_segment"] = Json(frontier_segment);
  o["coverage"] = coverage;
  o["metrics"] = metrics;
  o["analytics"] = analytics;
  return Json(std::move(o));
}

Result<CheckpointMeta> CheckpointMeta::FromJson(const Json& j) {
  using R = Result<CheckpointMeta>;
  if (!j.is_object() || !j["format"].is_string() ||
      j["format"].as_string() != "sandtable-checkpoint") {
    return R::Error("not a sandtable checkpoint manifest");
  }
  if (!j["format_version"].is_int() || !j["spec_name"].is_string() ||
      !j["spec_hash"].is_int() || !j["distinct_states"].is_int() ||
      !j["depth_reached"].is_int() || !j["frontier_size"].is_int() ||
      !j["visited_runs"].is_array() || !j["frontier_segment"].is_string()) {
    return R::Error("checkpoint manifest is missing required fields");
  }
  CheckpointMeta m;
  m.format_version = static_cast<int>(j["format_version"].as_int());
  m.spec_name = j["spec_name"].as_string();
  m.spec_hash = static_cast<uint64_t>(j["spec_hash"].as_int());
  m.distinct_states = static_cast<uint64_t>(j["distinct_states"].as_int());
  m.depth_reached = static_cast<uint64_t>(j["depth_reached"].as_int());
  m.frontier_size = static_cast<uint64_t>(j["frontier_size"].as_int());
  m.deadlock_states = static_cast<uint64_t>(j["deadlock_states"].as_int());
  m.seconds = j["seconds"].is_number() ? j["seconds"].as_double() : 0;
  m.use_symmetry = j["use_symmetry"].is_bool() && j["use_symmetry"].as_bool();
  // Absent in pre-hash-compaction checkpoints, which always retained parents.
  m.hash_compact = j["hash_compact"].is_bool() && j["hash_compact"].as_bool();
  for (const Json& name : j["visited_runs"].as_array()) {
    if (!name.is_string()) {
      return R::Error("checkpoint manifest: non-string run name");
    }
    m.visited_runs.push_back(name.as_string());
  }
  m.frontier_segment = j["frontier_segment"].as_string();
  m.coverage = j["coverage"];
  m.metrics = j["metrics"];
  m.analytics = j["analytics"];
  return m;
}

Checkpointer::Checkpointer(Config config, const Spec* spec)
    : config_(std::move(config)), spec_(spec) {
  if (config_.metrics != nullptr) {
    ckpt_writes_ = &config_.metrics->GetCounter("ckpt.writes");
    ckpt_ns_ = &config_.metrics->GetHistogram("ckpt.write_ns");
  }
}

bool Checkpointer::Due(uint64_t distinct_states) const {
  return config_.every_states > 0 &&
         distinct_states >= last_states_ + config_.every_states;
}

Status Checkpointer::Write(StateStore& store, const FrontierSpool& frontier,
                           CheckpointMeta meta) {
  obs::TraceSpan ckpt_span("ckpt.write", "distinct_states",
                           static_cast<int64_t>(meta.distinct_states),
                           "frontier", static_cast<int64_t>(meta.frontier_size));
  const auto start = std::chrono::steady_clock::now();
  const fs::path dir(config_.dir);
  const fs::path stage = dir.string() + ".tmp";
  const fs::path old = dir.string() + ".old";

  std::error_code ec;
  fs::remove_all(stage, ec);
  fs::create_directories(stage, ec);
  if (ec) {
    return Status::Error("cannot create checkpoint stage " + stage.string() + ": " +
                         ec.message());
  }

  auto runs = store.SaveRuns(stage.string());
  if (!runs.ok()) {
    return Status::Error(runs.error());
  }
  meta.visited_runs = std::move(runs).value();

  meta.frontier_segment = "frontier.seg";
  Status st = frontier.SaveSegment((stage / meta.frontier_segment).string());
  if (!st.ok()) {
    return st;
  }

  meta.format_version = kCheckpointFormatVersion;
  meta.spec_name = spec_->name;
  meta.spec_hash = SpecIdentityHash(*spec_);

  // Manifest last: its presence marks the stage complete.
  {
    const fs::path manifest = stage / "manifest.json";
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out << meta.ToJson().DumpPretty() << "\n";
    out.flush();
    if (!out.good()) {
      return Status::Error("cannot write " + manifest.string());
    }
  }

  // Sync the stage before publishing so the renamed-in checkpoint is durable,
  // not just present in the page cache.
  st = SyncStage(stage);
  if (!st.ok()) {
    return st;
  }

  // Rotate: old checkpoint aside, stage into place, old removed. A crash
  // between the two renames leaves only `<dir>.old`; ResolveCheckpointDir
  // falls back to it on resume.
  fs::remove_all(old, ec);
  if (fs::exists(dir)) {
    ec.clear();
    fs::rename(dir, old, ec);
    if (ec) {
      return Status::Error("cannot rotate previous checkpoint: " + ec.message());
    }
  }
  ec.clear();
  fs::rename(stage, dir, ec);
  if (ec) {
    return Status::Error("cannot publish checkpoint " + dir.string() + ": " +
                         ec.message());
  }
  fs::remove_all(old, ec);
  // Make the renames themselves durable.
  const fs::path parent = dir.has_parent_path() ? dir.parent_path() : fs::path(".");
  st = SyncPath(parent, /*is_dir=*/true);
  if (!st.ok()) {
    return st;
  }

  last_states_ = meta.distinct_states;
  ++writes_;
  obs::Add(ckpt_writes_);
  if (ckpt_ns_ != nullptr) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    ckpt_ns_->Record(static_cast<uint64_t>(ns < 0 ? 0 : ns));
  }
  return Status();
}

Result<CheckpointMeta> ReadCheckpointMeta(const std::string& dir) {
  using R = Result<CheckpointMeta>;
  const fs::path manifest = ResolveCheckpointDir(dir) / "manifest.json";
  std::ifstream in(manifest, std::ios::binary);
  if (!in.good()) {
    return R::Error("no checkpoint manifest at " + manifest.string() +
                    (fs::exists(dir + ".tmp") && !fs::exists(dir)
                         ? " (only an incomplete .tmp stage exists — the "
                           "checkpoint write did not finish)"
                         : ""));
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) {
    return R::Error("corrupt checkpoint manifest " + manifest.string() + ": " +
                    parsed.error());
  }
  return CheckpointMeta::FromJson(parsed.value());
}

Result<ResumedRun> OpenCheckpoint(const std::string& dir, const Spec& spec) {
  using R = Result<ResumedRun>;
  // Resolve once and read everything (manifest, runs, frontier) from the same
  // directory, so a `.old` fallback stays self-consistent.
  const std::string resolved = ResolveCheckpointDir(dir).string();
  auto meta = ReadCheckpointMeta(resolved);
  if (!meta.ok()) {
    return R::Error(meta.error());
  }
  ResumedRun run;
  run.dir = resolved;
  run.meta = std::move(meta).value();
  if (run.meta.format_version != kCheckpointFormatVersion) {
    return R::Error("checkpoint format version mismatch: checkpoint is v" +
                    std::to_string(run.meta.format_version) + ", this binary reads v" +
                    std::to_string(kCheckpointFormatVersion));
  }
  const uint64_t expect = SpecIdentityHash(spec);
  if (run.meta.spec_hash != expect) {
    return R::Error("checkpoint spec mismatch: checkpoint was written for spec '" +
                    run.meta.spec_name + "' (hash " + std::to_string(run.meta.spec_hash) +
                    "), resuming spec '" + spec.name + "' has hash " +
                    std::to_string(expect) +
                    " — actions, invariants, symmetry or initial states differ");
  }
  for (const std::string& name : run.meta.visited_runs) {
    const fs::path p = fs::path(resolved) / name;
    if (!fs::exists(p)) {
      return R::Error("checkpoint is missing visited run " + p.string());
    }
    run.run_paths.push_back(p.string());
  }
  run.frontier_path = (fs::path(resolved) / run.meta.frontier_segment).string();
  if (!fs::exists(run.frontier_path)) {
    return R::Error("checkpoint is missing frontier segment " + run.frontier_path);
  }
  return run;
}

}  // namespace store
}  // namespace sandtable
