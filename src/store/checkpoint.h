// Checkpoint/resume for long explorations.
//
// A checkpoint is a directory written at a BFS level barrier (the only points
// where visited set + frontier + counters are mutually consistent):
//
//   <dir>/
//     manifest.json       written LAST — its presence marks a complete ckpt
//     visited-NNNNNN.run  sorted fingerprint runs (state_store.h format)
//     frontier.seg        the next frontier (frontier.h segment format)
//
// Crash safety is temp-dir + rename: everything is staged under `<dir>.tmp`,
// the manifest is written last, the staged files and directory are fsync'd,
// then the stage is renamed into place (any previous checkpoint is rotated to
// `<dir>.old` and removed after, and the parent directory is fsync'd). A
// crash at any point leaves either a complete checkpoint at `<dir>`, a
// complete one rotated aside at `<dir>.old` (readers fall back to it when
// `<dir>` is missing), or a `.tmp` stage that resume refuses to open — never
// a torn checkpoint.
//
// The manifest (format v1) records the format version and a spec identity
// hash; OpenCheckpoint rejects mismatches with a clear error so a checkpoint
// can never silently resume under a different spec or incompatible binary.
// The identity hash covers the spec's name, action names/kinds, invariant and
// transition-invariant names, symmetry declaration, and the hashes of all
// initial states. (Callable bodies cannot be hashed; changing an action's
// logic without renaming it is not detected.)
#ifndef SANDTABLE_SRC_STORE_CHECKPOINT_H_
#define SANDTABLE_SRC_STORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/spec/spec.h"
#include "src/store/frontier.h"
#include "src/store/state_store.h"
#include "src/util/json.h"
#include "src/util/result.h"

namespace sandtable {
namespace store {

inline constexpr int kCheckpointFormatVersion = 1;

// Stable hash of a spec's checkable identity (see file comment for coverage).
uint64_t SpecIdentityHash(const Spec& spec);

struct CheckpointMeta {
  int format_version = kCheckpointFormatVersion;
  std::string spec_name;
  uint64_t spec_hash = 0;

  // Exploration progress at the barrier.
  uint64_t distinct_states = 0;
  uint64_t depth_reached = 0;  // completed levels; frontier holds level +1
  uint64_t frontier_size = 0;
  uint64_t deadlock_states = 0;
  double seconds = 0;  // wall time spent before this checkpoint
  bool use_symmetry = false;
  // Visited runs came from a hash-compacted store: entries are self-parent
  // fingerprints with no ancestry. Such a checkpoint must be resumed into a
  // hash-compacted run (and vice versa); the engines reject mismatches.
  bool hash_compact = false;

  // Files inside the checkpoint directory.
  std::vector<std::string> visited_runs;
  std::string frontier_segment;

  // Engine-owned payloads, carried opaquely: full-fidelity coverage stats,
  // an informational metrics snapshot, and the exploration-analytics profile
  // (obs::ExplorationProfile::ToJson; null in checkpoints written without
  // analytics, including pre-analytics ones).
  Json coverage;
  Json metrics;
  Json analytics;

  Json ToJson() const;
  static Result<CheckpointMeta> FromJson(const Json& j);
};

// Writes checkpoints on a distinct-state cadence. Not thread-safe; call from
// the engine's coordinator at level barriers.
class Checkpointer {
 public:
  struct Config {
    std::string dir;             // checkpoint directory (rewritten each time)
    uint64_t every_states = 0;   // cadence in distinct states; 0 = only on demand
    obs::MetricsRegistry* metrics = nullptr;  // borrowed, may be null
  };

  Checkpointer(Config config, const Spec* spec);

  // True when `distinct_states` has grown past the cadence since last Write.
  bool Due(uint64_t distinct_states) const;

  // Start the cadence from a resumed run's state count instead of zero.
  void SeedCadence(uint64_t distinct_states) { last_states_ = distinct_states; }

  // Stage runs + frontier + manifest under dir.tmp, then rotate into place.
  // `meta`'s progress fields must be filled by the caller; spec identity,
  // format version and file lists are filled here.
  Status Write(StateStore& store, const FrontierSpool& frontier, CheckpointMeta meta);

  uint64_t writes() const { return writes_; }

 private:
  Config config_;
  const Spec* spec_;
  uint64_t last_states_ = 0;
  uint64_t writes_ = 0;
  obs::Counter* ckpt_writes_ = nullptr;   // ckpt.writes
  obs::Histogram* ckpt_ns_ = nullptr;     // ckpt.write_ns
};

// A validated, opened checkpoint ready to seed a resumed run. The directory
// must outlive the run: visited runs are mmap'd in place.
struct ResumedRun {
  std::string dir;
  CheckpointMeta meta;
  std::vector<std::string> run_paths;  // absolute paths of visited runs
  std::string frontier_path;           // absolute path of the frontier segment
};

// Read a manifest without validating it against a spec (ckpt-info).
Result<CheckpointMeta> ReadCheckpointMeta(const std::string& dir);

// Open `dir` for resuming: parse the manifest, check format version and spec
// identity against `spec`, and verify the referenced files exist.
Result<ResumedRun> OpenCheckpoint(const std::string& dir, const Spec& spec);

}  // namespace store
}  // namespace sandtable

#endif  // SANDTABLE_SRC_STORE_CHECKPOINT_H_
