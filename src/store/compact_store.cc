#include "src/store/compact_store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "src/obs/analytics.h"
#include "src/util/check.h"

namespace sandtable {
namespace store {

namespace {

// Slot index within a shard. The shard is selected by the fingerprint's high
// bits, so the raw value would cluster inside a shard's table; one multiply
// respreads it (SplitMix64 finalizer constant).
inline size_t SlotHash(uint64_t fp) {
  return static_cast<size_t>(fp * 0x9E3779B97F4A7C15ULL);
}

constexpr double kMaxLoad = 0.7;

size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

CompactStateStore::CompactStateStore() : CompactStateStore(Config()) {}

CompactStateStore::CompactStateStore(Config config)
    : nshards_(1 << config.shard_count_log2),
      shift_(64 - config.shard_count_log2),
      shards_(new Shard[static_cast<size_t>(nshards_)]) {
  const uint64_t per_shard =
      std::max<uint64_t>(1, config.reserve / static_cast<uint64_t>(nshards_));
  const size_t cap =
      NextPow2(static_cast<size_t>(static_cast<double>(per_shard) / kMaxLoad) + 1);
  for (int i = 0; i < nshards_; ++i) {
    shards_[i].slots.assign(cap, 0);
  }
}

bool CompactStateStore::InsertLocked(Shard* shard, uint64_t fp) {
  if (fp == 0) {
    if (shard->has_zero) {
      return false;
    }
    shard->has_zero = true;
    return true;
  }
  if (static_cast<double>(shard->used + 1) >
      kMaxLoad * static_cast<double>(shard->slots.size())) {
    GrowLocked(shard);
  }
  const size_t mask = shard->slots.size() - 1;
  size_t i = SlotHash(fp) & mask;
  while (shard->slots[i] != 0) {
    if (shard->slots[i] == fp) {
      return false;
    }
    i = (i + 1) & mask;
  }
  shard->slots[i] = fp;
  ++shard->used;
  return true;
}

void CompactStateStore::GrowLocked(Shard* shard) {
  std::vector<uint64_t> old = std::move(shard->slots);
  shard->slots.assign(old.size() * 2, 0);
  const size_t mask = shard->slots.size() - 1;
  for (uint64_t fp : old) {
    if (fp == 0) {
      continue;
    }
    size_t i = SlotHash(fp) & mask;
    while (shard->slots[i] != 0) {
      i = (i + 1) & mask;
    }
    shard->slots[i] = fp;
  }
}

bool CompactStateStore::InsertIfAbsent(uint64_t fp, uint64_t parent_fp) {
  (void)parent_fp;  // hash compaction drops ancestry by design
  Shard& shard = shards_[ShardIndex(fp)];
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    inserted = InsertLocked(&shard, fp);
  }
  if (inserted) {
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  return inserted;
}

std::optional<uint64_t> CompactStateStore::Parent(uint64_t fp) const {
  (void)fp;
  return std::nullopt;
}

bool CompactStateStore::Contains(uint64_t fp) const {
  const Shard& shard = shards_[ShardIndex(fp)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (fp == 0) {
    return shard.has_zero;
  }
  const size_t mask = shard.slots.size() - 1;
  size_t i = SlotHash(fp) & mask;
  while (shard.slots[i] != 0) {
    if (shard.slots[i] == fp) {
      return true;
    }
    i = (i + 1) & mask;
  }
  return false;
}

Result<std::vector<std::string>> CompactStateStore::SaveRuns(const std::string& dir) {
  using R = Result<std::vector<std::string>>;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return R::Error("cannot create run dir " + dir + ": " + ec.message());
  }
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(static_cast<size_t>(Size()));
  for (int s = 0; s < nshards_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.has_zero) {
      entries.emplace_back(0, 0);
    }
    for (uint64_t fp : shard.slots) {
      if (fp != 0) {
        entries.emplace_back(fp, fp);  // self-parent: ancestry is not retained
      }
    }
  }
  std::sort(entries.begin(), entries.end());
  const std::string name = "visited-000000.run";
  const Status st = WriteRunFile((std::filesystem::path(dir) / name).string(), entries);
  if (!st.ok()) {
    return R::Error(st.error());
  }
  return std::vector<std::string>{name};
}

Status CompactStateStore::LoadRuns(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    auto run = MappedRun::Open(path);
    if (!run.ok()) {
      return Status::Error(run.error());
    }
    const MappedRun& r = *run.value();
    for (uint64_t i = 0; i < r.count(); ++i) {
      InsertIfAbsent(r.fp(i), r.fp(i));
    }
  }
  return Status();
}

double CompactStateStore::CollisionProbability() const {
  return obs::ExplorationProfile::CollisionProbability(Size());
}

}  // namespace store
}  // namespace sandtable
