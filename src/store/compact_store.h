// Hash-compacted visited set: 64-bit fingerprints only, no parent pointers.
//
// TLC's classic space optimization (the "fingerprint set" of the TLA+
// toolchain): instead of `fingerprint -> parent fingerprint` the store keeps
// just the fingerprint, in sharded open-addressing tables of raw uint64
// slots. At the default 0.7 load ceiling that is ~11.5 bytes per distinct
// state versus ~48 bytes per std::unordered_map node — a >4x capacity win for
// the same memory budget — and inserts touch one cache line instead of
// chasing bucket pointers.
//
// The price is twofold, and both halves are surfaced rather than hidden:
//   - No parents means no parent-chain trace reconstruction. Parent() always
//     returns nullopt and RetainsParents() is false; engines detect this and
//     rebuild counterexample paths with a bounded re-search instead
//     (mc/reconstruct.h, ReconstructTraceResearch). Violations stay sound:
//     invariants are always evaluated on real states, never on fingerprints.
//   - Two distinct states hashing to the same 64-bit fingerprint are silently
//     merged, so states can be *missed* (never falsely reported). Engines
//     publish the TLC collision estimate 1 - exp(-n^2 / 2^65) in their result
//     whenever this store is active (see DESIGN.md "Hash compaction").
//
// Checkpoints: SaveRuns writes the standard STFPRUN1 run format with each
// entry's parent equal to its own fingerprint. Such runs only make sense
// resumed into another CompactStateStore; CheckpointMeta.hash_compact records
// the mode and the engines refuse a mismatched resume.
//
// Thread-safe: shards are lock-striped by fingerprint high bits, exactly like
// par/fingerprint_shards.h, so the parallel engines' workers insert
// concurrently.
#ifndef SANDTABLE_SRC_STORE_COMPACT_STORE_H_
#define SANDTABLE_SRC_STORE_COMPACT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/store/state_store.h"

namespace sandtable {
namespace store {

class CompactStateStore : public StateStore {
 public:
  struct Config {
    // Expected distinct states; shard tables start sized for this.
    uint64_t reserve = 1u << 16;
    int shard_count_log2 = 6;
  };

  CompactStateStore();
  explicit CompactStateStore(Config config);

  // parent_fp is accepted for StateStore interface compatibility and dropped.
  bool InsertIfAbsent(uint64_t fp, uint64_t parent_fp) override;

  // Always nullopt, even for present fingerprints: returning a self-parent
  // would let ReconstructTrace silently produce a truncated trace, while a
  // missing-parent lookup fails loudly. Use RetainsParents() to pick the
  // re-search reconstruction path instead.
  std::optional<uint64_t> Parent(uint64_t fp) const override;

  bool RetainsParents() const override { return false; }

  bool Contains(uint64_t fp) const;

  uint64_t Size() const override { return count_.load(std::memory_order_relaxed); }

  // Sorted STFPRUN1 runs with parent == fp for every entry (see file comment).
  Result<std::vector<std::string>> SaveRuns(const std::string& dir) override;

  // Seed from checkpoint runs: inserts every fingerprint and drops the file
  // mapping (nothing to keep mmap'd — the table is the only tier).
  Status LoadRuns(const std::vector<std::string>& paths);

  // TLC birthday-bound estimate that at least one pair of the `n` distinct
  // states inserted so far collided in the 64-bit fingerprint space.
  double CollisionProbability() const;

 private:
  // Open-addressing table of raw fingerprints, one mutex per shard. A slot
  // value of 0 means empty; the real fingerprint 0 is tracked by `has_zero`.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<uint64_t> slots;  // size is a power of two
    uint64_t used = 0;
    bool has_zero = false;
  };

  size_t ShardIndex(uint64_t fp) const { return shift_ >= 64 ? 0 : fp >> shift_; }
  // Insert into `shard` without touching count_. Caller holds shard.mu.
  static bool InsertLocked(Shard* shard, uint64_t fp);
  static void GrowLocked(Shard* shard);

  const int nshards_;
  const int shift_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> count_{0};
};

}  // namespace store
}  // namespace sandtable

#endif  // SANDTABLE_SRC_STORE_COMPACT_STORE_H_
