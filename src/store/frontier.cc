#include "src/store/frontier.h"

#include <sys/stat.h>

#include <cstring>
#include <filesystem>
#include <utility>

#include "src/obs/phase_timer.h"

namespace sandtable {
namespace store {

namespace {

constexpr char kSegMagic[8] = {'S', 'T', 'F', 'R', 'S', 'E', 'G', '1'};

// Bytes between the stream position and the end of the file. Chunk lengths
// are untrusted 64-bit values read from disk; a corrupt or truncated segment
// must produce a clean Status, not a huge resize/bad_alloc.
bool RemainingBytes(std::FILE* f, uint64_t* out) {
  struct stat st {};
  const long pos = std::ftell(f);
  if (pos < 0 || ::fstat(::fileno(f), &st) != 0 || st.st_size < pos) {
    return false;
  }
  *out = static_cast<uint64_t>(st.st_size) - static_cast<uint64_t>(pos);
  return true;
}

}  // namespace

std::string EncodeFrontierChunk(const std::vector<FrontierEntry>& chunk) {
  ValueEncoder enc;
  std::string body;
  for (const FrontierEntry& e : chunk) {
    AppendVarint(body, e.fp);
    enc.Encode(e.state, body);
  }
  std::string out;
  AppendVarint(out, chunk.size());
  enc.WriteStringTable(out);
  out.append(body);
  return out;
}

Result<std::vector<FrontierEntry>> DecodeFrontierChunk(std::string_view payload) {
  using R = Result<std::vector<FrontierEntry>>;
  ByteReader in(payload);
  uint64_t count;
  if (!in.ReadVarint(&count) || count > payload.size()) {
    return R::Error("frontier chunk: bad state count");
  }
  auto dec = ValueDecoder::FromStringTable(in);
  if (!dec.ok()) {
    return R::Error(dec.error());
  }
  std::vector<FrontierEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FrontierEntry e;
    if (!in.ReadVarint(&e.fp)) {
      return R::Error("frontier chunk: truncated fingerprint");
    }
    auto v = dec.value().Decode(in);
    if (!v.ok()) {
      return R::Error(v.error());
    }
    e.state = std::move(v).value();
    entries.push_back(std::move(e));
  }
  return entries;
}

// ---- SegmentWriter ---------------------------------------------------------

SegmentWriter::~SegmentWriter() {
  if (f_ != nullptr) {
    std::fclose(f_);
  }
}

Status SegmentWriter::Open(const std::string& path) {
  CHECK(f_ == nullptr);
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    return Status::Error("cannot open segment " + path + " for writing");
  }
  path_ = path;
  if (std::fwrite(kSegMagic, 1, sizeof(kSegMagic), f_) != sizeof(kSegMagic)) {
    return Status::Error("short write to segment " + path_);
  }
  return Status();
}

Status SegmentWriter::Append(const std::vector<FrontierEntry>& chunk) {
  CHECK(f_ != nullptr);
  const std::string payload = EncodeFrontierChunk(chunk);
  const uint64_t len = payload.size();
  if (std::fwrite(&len, sizeof(len), 1, f_) != 1 ||
      std::fwrite(payload.data(), 1, payload.size(), f_) != payload.size() ||
      std::fflush(f_) != 0) {  // readers open the file while we keep appending
    return Status::Error("short write to segment " + path_);
  }
  ++chunks_;
  return Status();
}

Status SegmentWriter::Close() {
  if (f_ == nullptr) {
    return Status();
  }
  const bool ok = std::fclose(f_) == 0;
  f_ = nullptr;
  return ok ? Status() : Status::Error("close failed for segment " + path_);
}

Status ForEachSegmentEntry(const std::string& path,
                           const std::function<Status(uint64_t fp, State&& state)>& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Error("cannot open segment " + path);
  }
  auto fail = [&f](std::string msg) {
    std::fclose(f);
    return Status::Error(std::move(msg));
  };
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::memcmp(magic, kSegMagic, sizeof(magic)) != 0) {
    return fail("bad segment magic in " + path);
  }
  std::string payload;
  for (;;) {
    uint64_t len;
    const size_t n = std::fread(&len, sizeof(len), 1, f);
    if (n == 0) {
      break;  // clean EOF
    }
    uint64_t remaining = 0;
    if (!RemainingBytes(f, &remaining) || len > remaining) {
      return fail("truncated chunk in segment " + path);
    }
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) {
      return fail("truncated chunk in segment " + path);
    }
    auto entries = DecodeFrontierChunk(payload);
    if (!entries.ok()) {
      return fail(entries.error() + " in segment " + path);
    }
    for (FrontierEntry& e : entries.value()) {
      const Status st = fn(e.fp, std::move(e.state));
      if (!st.ok()) {
        std::fclose(f);
        return st;
      }
    }
  }
  std::fclose(f);
  return Status();
}

// ---- FrontierSpool ---------------------------------------------------------

FrontierSpool::FrontierSpool(const SpoolConfig* config, std::string segment_name)
    : config_(config) {
  if (config_ != nullptr && !config_->dir.empty()) {
    segment_path_ = config_->dir + "/" + segment_name;
    if (config_->metrics != nullptr) {
      spilled_metric_ = &config_->metrics->GetCounter("frontier.spilled_states");
    }
  }
}

FrontierSpool::~FrontierSpool() {
  writer_.Close().ok();
  if (spilled_ > 0 && !segment_path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(segment_path_, ec);
  }
}

Status FrontierSpool::Push(uint64_t fp, State state) {
  ++size_;
  const bool can_spill =
      config_ != nullptr && config_->max_resident > 0 && !segment_path_.empty();
  if (!can_spill || resident_.size() < config_->max_resident) {
    resident_.push_back(FrontierEntry{fp, std::move(state)});
    return Status();
  }
  tail_.push_back(FrontierEntry{fp, std::move(state)});
  if (tail_.size() >= config_->chunk_states) {
    return FlushTail();
  }
  return Status();
}

Status FrontierSpool::FlushTail() {
  if (tail_.empty()) {
    return Status();
  }
  if (!writer_.is_open()) {
    std::error_code ec;
    std::filesystem::create_directories(config_->dir, ec);
    const Status st = writer_.Open(segment_path_);
    if (!st.ok()) {
      return st;
    }
  }
  const Status st = writer_.Append(tail_);
  if (!st.ok()) {
    return st;
  }
  spilled_ += tail_.size();
  obs::Add(spilled_metric_, tail_.size());
  tail_.clear();
  return Status();
}

// ---- FrontierSpool::Reader -------------------------------------------------

FrontierSpool::Reader::Reader(const FrontierSpool* spool) : spool_(spool) {}

FrontierSpool::Reader::~Reader() {
  if (f_ != nullptr) {
    std::fclose(f_);
  }
}

FrontierSpool::Reader::Reader(Reader&& other) noexcept
    : spool_(other.spool_), resident_i_(other.resident_i_), chunk_i_(other.chunk_i_),
      f_(other.f_), buffer_(std::move(other.buffer_)), buffer_i_(other.buffer_i_),
      tail_i_(other.tail_i_), status_(std::move(other.status_)) {
  other.f_ = nullptr;
}

FrontierSpool::Reader FrontierSpool::Read() const {
  return Reader(this);
}

bool FrontierSpool::Reader::FillFromChunk() {
  if (chunk_i_ >= spool_->writer_.chunks()) {
    return false;
  }
  if (f_ == nullptr) {
    f_ = std::fopen(spool_->segment_path_.c_str(), "rb");
    if (f_ == nullptr) {
      status_ = Status::Error("cannot reopen segment " + spool_->segment_path_);
      return false;
    }
    char magic[8];
    if (std::fread(magic, 1, sizeof(magic), f_) != sizeof(magic) ||
        std::memcmp(magic, kSegMagic, sizeof(magic)) != 0) {
      status_ = Status::Error("bad segment magic in " + spool_->segment_path_);
      return false;
    }
  }
  uint64_t len;
  std::string payload;
  if (std::fread(&len, sizeof(len), 1, f_) != 1) {
    status_ = Status::Error("truncated chunk header in " + spool_->segment_path_);
    return false;
  }
  uint64_t remaining = 0;
  if (!RemainingBytes(f_, &remaining) || len > remaining) {
    status_ = Status::Error("truncated chunk in " + spool_->segment_path_);
    return false;
  }
  payload.resize(len);
  if (std::fread(payload.data(), 1, len, f_) != len) {
    status_ = Status::Error("truncated chunk in " + spool_->segment_path_);
    return false;
  }
  auto entries = DecodeFrontierChunk(payload);
  if (!entries.ok()) {
    status_ = Status::Error(entries.error());
    return false;
  }
  buffer_ = std::move(entries).value();
  buffer_i_ = 0;
  ++chunk_i_;
  return !buffer_.empty();
}

bool FrontierSpool::Reader::Next(uint64_t* fp, State* state) {
  if (!status_.ok()) {
    return false;
  }
  if (resident_i_ < spool_->resident_.size()) {
    const FrontierEntry& e = spool_->resident_[resident_i_++];
    *fp = e.fp;
    *state = e.state;
    return true;
  }
  while (buffer_i_ >= buffer_.size()) {
    if (!FillFromChunk()) {
      if (!status_.ok()) {
        return false;
      }
      if (f_ != nullptr) {
        std::fclose(f_);
        f_ = nullptr;
      }
      if (tail_i_ < spool_->tail_.size()) {
        const FrontierEntry& e = spool_->tail_[tail_i_++];
        *fp = e.fp;
        *state = e.state;
        return true;
      }
      return false;
    }
  }
  FrontierEntry& e = buffer_[buffer_i_++];
  *fp = e.fp;
  *state = std::move(e.state);
  return true;
}

// ---- Checkpoint persistence ------------------------------------------------

Status FrontierSpool::SaveSegment(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  SegmentWriter out;
  Status st = out.Open(tmp);
  if (!st.ok()) {
    return st;
  }
  const uint64_t chunk_states =
      config_ != nullptr && config_->chunk_states > 0 ? config_->chunk_states : 1024;
  std::vector<FrontierEntry> chunk;
  chunk.reserve(chunk_states);
  Reader reader = Read();
  uint64_t fp;
  State state;
  while (reader.Next(&fp, &state)) {
    chunk.push_back(FrontierEntry{fp, std::move(state)});
    if (chunk.size() >= chunk_states) {
      st = out.Append(chunk);
      if (!st.ok()) {
        return st;
      }
      chunk.clear();
    }
  }
  if (!reader.status().ok()) {
    return reader.status();
  }
  if (!chunk.empty()) {
    st = out.Append(chunk);
    if (!st.ok()) {
      return st;
    }
  }
  st = out.Close();
  if (!st.ok()) {
    return st;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Error("rename " + tmp + " -> " + path + ": " + ec.message());
  }
  return Status();
}

}  // namespace store
}  // namespace sandtable
