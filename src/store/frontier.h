// Disk-spilling frontier queue for out-of-core BFS.
//
// A level-synchronized BFS holds two frontiers (current + next); at paper
// scale either can dwarf the fingerprint set because each entry carries a full
// state snapshot. FrontierSpool keeps the oldest `max_resident` entries in
// memory and appends the overflow to a segment file in compact binary form
// (value_codec.h), chunked so reads decode a bounded batch at a time.
//
// Frontier segment format ("frontier segment v1", also the checkpoint format):
//   bytes 0-7  magic "STFRSEG1"
//   then chunks until EOF, each:
//     uint64 LE payload length
//     payload: varint state count, string table (value_codec.h),
//              then per state: varint fingerprint + encoded value
//
// Read order equals push order (FIFO): resident entries first, then the file
// chunks in write order, then the still-open tail chunk. That preserves the
// engines' deterministic level iteration, so out-of-core runs visit states in
// exactly the in-memory order.
//
// Not thread-safe: engines push/read only from the coordinator thread (level
// barriers); workers hand successor batches to the coordinator.
#ifndef SANDTABLE_SRC_STORE_FRONTIER_H_
#define SANDTABLE_SRC_STORE_FRONTIER_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/spec/spec.h"
#include "src/util/result.h"
#include "src/value/value_codec.h"

namespace sandtable {
namespace store {

struct SpoolConfig {
  // Directory for segment files; created if missing. Required for spilling.
  std::string dir;
  // Frontier entries kept in memory before the overflow spills. 0 means
  // "never spill" (pure in-memory queue).
  uint64_t max_resident = 1u << 16;
  // States per encoded chunk (decode batch size).
  uint64_t chunk_states = 1024;
  obs::MetricsRegistry* metrics = nullptr;  // borrowed, may be null
};

struct FrontierEntry {
  uint64_t fp = 0;
  State state;
};

// Appends chunks of encoded frontier entries to one segment file.
class SegmentWriter {
 public:
  SegmentWriter() = default;
  ~SegmentWriter();
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  // Create/truncate `path` and write the magic.
  Status Open(const std::string& path);
  Status Append(const std::vector<FrontierEntry>& chunk);
  // Flush and close; returns the first error seen, if any.
  Status Close();
  bool is_open() const { return f_ != nullptr; }
  uint64_t chunks() const { return chunks_; }

 private:
  std::FILE* f_ = nullptr;
  std::string path_;
  uint64_t chunks_ = 0;
};

// Decode every entry of a segment file in order, invoking `fn` per entry.
// Stops and forwards the first non-ok status `fn` returns.
Status ForEachSegmentEntry(const std::string& path,
                           const std::function<Status(uint64_t fp, State&& state)>& fn);

class FrontierSpool {
 public:
  // `config` may be null (never spill); it is borrowed and must outlive the
  // spool. The segment file (if any) is deleted on destruction.
  FrontierSpool(const SpoolConfig* config, std::string segment_name);
  ~FrontierSpool();
  FrontierSpool(const FrontierSpool&) = delete;
  FrontierSpool& operator=(const FrontierSpool&) = delete;

  Status Push(uint64_t fp, State state);

  uint64_t size() const { return size_; }
  uint64_t spilled() const { return spilled_; }
  bool empty() const { return size_ == 0; }

  // Sequential cursor over the spool's content in push order. The spool must
  // not be pushed to while a Reader is live.
  class Reader {
   public:
    ~Reader();
    Reader(Reader&& other) noexcept;
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;
    Reader& operator=(Reader&&) = delete;

    // False at end of frontier or on decode error (check status()).
    bool Next(uint64_t* fp, State* state);
    const Status& status() const { return status_; }

   private:
    friend class FrontierSpool;
    explicit Reader(const FrontierSpool* spool);
    bool FillFromChunk();

    const FrontierSpool* spool_;
    uint64_t resident_i_ = 0;
    uint64_t chunk_i_ = 0;
    std::FILE* f_ = nullptr;  // owned read handle on the segment file
    std::vector<FrontierEntry> buffer_;
    uint64_t buffer_i_ = 0;
    uint64_t tail_i_ = 0;
    Status status_;
  };
  Reader Read() const;

  // Persist the entire frontier (resident + spilled + tail) as one segment
  // file at `path` via tmp+rename. Non-destructive; used by checkpoints.
  Status SaveSegment(const std::string& path) const;

 private:
  friend class Reader;
  Status FlushTail();

  const SpoolConfig* config_;  // null = never spill
  std::string segment_path_;   // lazily created on first spill
  SegmentWriter writer_;
  std::vector<FrontierEntry> resident_;
  std::vector<FrontierEntry> tail_;  // open chunk, <= chunk_states entries
  uint64_t size_ = 0;
  uint64_t spilled_ = 0;
  obs::Counter* spilled_metric_ = nullptr;
};

// Encode/decode one chunk payload (exposed for tests).
std::string EncodeFrontierChunk(const std::vector<FrontierEntry>& chunk);
Result<std::vector<FrontierEntry>> DecodeFrontierChunk(std::string_view payload);

}  // namespace store
}  // namespace sandtable

#endif  // SANDTABLE_SRC_STORE_FRONTIER_H_
