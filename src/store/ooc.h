// Out-of-core configuration handed to the exploration engines.
//
// All pointers are borrowed and null by default, so a default OocConfig is
// exactly the pre-existing pure in-memory behaviour — the engines only branch
// into the store/spool/checkpoint paths when the corresponding member is set.
#ifndef SANDTABLE_SRC_STORE_OOC_H_
#define SANDTABLE_SRC_STORE_OOC_H_

#include "src/store/checkpoint.h"
#include "src/store/frontier.h"
#include "src/store/state_store.h"

namespace sandtable {
namespace store {

struct OocConfig {
  // Visited-set store replacing the engine's built-in map. The engine does
  // not own it; it may be pre-seeded (LoadRuns) when resuming.
  StateStore* state_store = nullptr;

  // When set, frontier queues spill to disk past the configured budget.
  const SpoolConfig* frontier_spool = nullptr;

  // When set, the engine writes checkpoints at level barriers whenever
  // Due(distinct_states). Requires state_store (checkpoints persist the
  // visited set through StateStore::SaveRuns).
  Checkpointer* checkpointer = nullptr;

  // When set, the engine seeds its visited counts, depth, coverage and
  // frontier from this opened checkpoint instead of the spec's init states.
  // Requires state_store; the caller is responsible for having LoadRuns'd
  // the checkpoint's visited runs into it.
  const ResumedRun* resume = nullptr;

  bool enabled() const { return state_store != nullptr; }
};

}  // namespace store
}  // namespace sandtable

#endif  // SANDTABLE_SRC_STORE_OOC_H_
