#include "src/store/state_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "src/obs/phase_timer.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace sandtable {
namespace store {

namespace {

constexpr char kRunMagic[8] = {'S', 'T', 'F', 'P', 'R', 'U', 'N', '1'};
constexpr size_t kRunHeaderBytes = 16;  // magic + count

}  // namespace

StoreMetrics StoreMetrics::Bind(obs::MetricsRegistry* registry) {
  StoreMetrics m;
  if (registry == nullptr) {
    return m;
  }
  m.spilled_fingerprints = &registry->GetCounter("store.fingerprints_spilled");
  m.spills = &registry->GetCounter("store.spills");
  m.compactions = &registry->GetCounter("store.compactions");
  m.disk_probes = &registry->GetCounter("store.disk_probes");
  m.disk_hits = &registry->GetCounter("store.disk_probe_hits");
  m.runs = &registry->GetGauge("store.runs");
  m.resident = &registry->GetGauge("store.resident_fingerprints");
  return m;
}

// ---- MemoryStateStore ------------------------------------------------------

MemoryStateStore::MemoryStateStore(int shard_count_log2)
    : nshards_(1 << shard_count_log2), shift_(64 - shard_count_log2),
      shards_(new Shard[static_cast<size_t>(nshards_)]) {
  CHECK_GE(shard_count_log2, 0);
  CHECK_LE(shard_count_log2, 16);
}

bool MemoryStateStore::InsertIfAbsent(uint64_t fp, uint64_t parent_fp) {
  Shard& shard = shards_[ShardIndex(fp)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!shard.map.emplace(fp, parent_fp).second) {
    return false;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<uint64_t> MemoryStateStore::Parent(uint64_t fp) const {
  const Shard& shard = shards_[ShardIndex(fp)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(fp);
  if (it == shard.map.end()) {
    return std::nullopt;
  }
  return it->second;
}

Result<std::vector<std::string>> MemoryStateStore::SaveRuns(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Result<std::vector<std::string>>::Error("cannot create " + dir + ": " +
                                                   ec.message());
  }
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(Size());
  for (int i = 0; i < nshards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    for (const auto& [fp, parent] : shards_[i].map) {
      entries.emplace_back(fp, parent);
    }
  }
  std::sort(entries.begin(), entries.end());
  const std::string name = "visited-000000.run";
  const Status st = WriteRunFile(dir + "/" + name, entries);
  if (!st.ok()) {
    return Result<std::vector<std::string>>::Error(st.error());
  }
  return std::vector<std::string>{name};
}

// ---- Run files -------------------------------------------------------------

Status WriteRunFile(const std::string& path,
                    const std::vector<std::pair<uint64_t, uint64_t>>& entries) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("cannot open " + tmp + " for writing");
  }
  const uint64_t count = entries.size();
  bool ok = std::fwrite(kRunMagic, 1, sizeof(kRunMagic), f) == sizeof(kRunMagic) &&
            std::fwrite(&count, sizeof(count), 1, f) == 1;
  // Interleaved {fp, parent} pairs; std::pair<uint64_t,uint64_t> has no
  // padding but write explicitly to keep the layout independent of the ABI.
  for (size_t i = 0; ok && i < entries.size(); ++i) {
    const uint64_t rec[2] = {entries[i].first, entries[i].second};
    ok = std::fwrite(rec, sizeof(uint64_t), 2, f) == 2;
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Error("short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Error("rename " + tmp + " -> " + path + ": " + ec.message());
  }
  return Status();
}

Result<std::unique_ptr<MappedRun>> MappedRun::Open(const std::string& path) {
  using R = Result<std::unique_ptr<MappedRun>>;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return R::Error("cannot open run file " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || static_cast<size_t>(st.st_size) < kRunHeaderBytes) {
    ::close(fd);
    return R::Error("run file too short: " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) {
    return R::Error("mmap failed for " + path);
  }
  const char* bytes = static_cast<const char*>(base);
  if (std::memcmp(bytes, kRunMagic, sizeof(kRunMagic)) != 0) {
    ::munmap(base, len);
    return R::Error("bad run magic in " + path);
  }
  uint64_t count;
  std::memcpy(&count, bytes + sizeof(kRunMagic), sizeof(count));
  // count is untrusted: compare against the entry capacity derived from the
  // mapped length rather than multiplying (count * 16 can wrap for a
  // tampered file, which would pass a `len != header + count * 16` check and
  // send Find()/fp() far past the mapping).
  if ((len - kRunHeaderBytes) % 16 != 0 || count != (len - kRunHeaderBytes) / 16) {
    ::munmap(base, len);
    return R::Error("run size mismatch in " + path);
  }
  auto run = std::unique_ptr<MappedRun>(new MappedRun());
  run->path_ = path;
  run->base_ = base;
  run->map_len_ = len;
  run->entries_ = reinterpret_cast<const uint64_t*>(bytes + kRunHeaderBytes);
  run->count_ = count;
  return run;
}

MappedRun::~MappedRun() {
  if (base_ != nullptr) {
    ::munmap(base_, map_len_);
  }
}

std::optional<uint64_t> MappedRun::Find(uint64_t target) const {
  uint64_t lo = 0;
  uint64_t hi = count_;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    const uint64_t v = fp(mid);
    if (v == target) {
      return parent(mid);
    }
    if (v < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

// ---- SpillingStateStore ----------------------------------------------------

SpillingStateStore::SpillingStateStore(StoreConfig config)
    : config_(std::move(config)), nshards_(1 << config_.shard_count_log2),
      shift_(64 - config_.shard_count_log2),
      shards_(new Shard[static_cast<size_t>(nshards_)]),
      m_(StoreMetrics::Bind(config_.metrics)) {
  CHECK_GE(config_.shard_count_log2, 0);
  CHECK_LE(config_.shard_count_log2, 16);
  CHECK_GE(config_.max_runs, 2u) << "compaction needs at least 2 runs";
  if (!config_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.spill_dir, ec);
  }
}

Status SpillingStateStore::LoadRuns(const std::vector<std::string>& paths) {
  std::lock_guard<std::mutex> spill_lock(spill_mu_);
  uint64_t loaded = 0;
  std::vector<std::unique_ptr<MappedRun>> opened;
  for (const std::string& path : paths) {
    auto run = MappedRun::Open(path);
    if (!run.ok()) {
      return Status::Error(run.error());
    }
    loaded += run.value()->count();
    opened.push_back(std::move(run).value());
  }
  {
    std::unique_lock<std::shared_mutex> lock(runs_mu_);
    for (auto& run : opened) {
      runs_.push_back(std::move(run));
    }
    obs::Set(m_.runs, static_cast<int64_t>(runs_.size()));
  }
  spilled_.fetch_add(loaded, std::memory_order_relaxed);
  count_.fetch_add(loaded, std::memory_order_relaxed);
  spill_epoch_.fetch_add(1, std::memory_order_release);
  return Status();
}

std::optional<uint64_t> SpillingStateStore::DiskFind(uint64_t fp, bool count_metrics) const {
  std::shared_lock<std::shared_mutex> lock(runs_mu_);
  if (runs_.empty()) {
    return std::nullopt;
  }
  if (count_metrics) {
    obs::Add(m_.disk_probes);
  }
  // Newest runs first: recent states are the likeliest duplicates.
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (auto parent = (*it)->Find(fp)) {
      if (count_metrics) {
        obs::Add(m_.disk_hits);
      }
      return parent;
    }
  }
  return std::nullopt;
}

bool SpillingStateStore::InsertIfAbsent(uint64_t fp, uint64_t parent_fp) {
  // The disk probe and the shard insert must be atomic with respect to
  // spills: a spill that completes between them moves already-inserted
  // fingerprints (possibly this one) into a run and clears the shards, so a
  // stale probe result would let the same fp land in both tiers. Spills bump
  // spill_epoch_ while holding every shard lock, so if the epoch is unchanged
  // once we hold our shard lock, no run was published since our probe.
  for (;;) {
    const uint64_t epoch = spill_epoch_.load(std::memory_order_acquire);
    if (DiskFind(fp, /*count_metrics=*/true).has_value()) {
      return false;
    }
    Shard& shard = shards_[ShardIndex(fp)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (spill_epoch_.load(std::memory_order_acquire) != epoch) {
      continue;  // a spill published a run mid-probe; re-probe the disk tier
    }
    if (!shard.map.emplace(fp, parent_fp).second) {
      return false;
    }
    break;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t resident = resident_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::SetMax(m_.resident, static_cast<int64_t>(resident));
  if (config_.max_resident > 0 && resident >= config_.max_resident &&
      !config_.spill_dir.empty()) {
    std::lock_guard<std::mutex> spill_lock(spill_mu_);
    // Another thread may have spilled while we waited for the lock.
    if (resident_.load(std::memory_order_relaxed) >= config_.max_resident) {
      const Status st = SpillLocked();
      // Spill failure (disk full, bad dir) is not fatal to exploration: keep
      // the entries in memory and let the run die at RAM like before.
      if (!st.ok()) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
          std::fprintf(stderr, "sandtable: fingerprint spill failed: %s\n",
                       st.error().c_str());
        }
      }
    }
  }
  return true;
}

std::optional<uint64_t> SpillingStateStore::Parent(uint64_t fp) const {
  {
    const Shard& shard = shards_[ShardIndex(fp)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(fp);
    if (it != shard.map.end()) {
      return it->second;
    }
  }
  return DiskFind(fp, /*count_metrics=*/false);
}

size_t SpillingStateStore::RunCount() const {
  std::shared_lock<std::shared_mutex> lock(runs_mu_);
  return runs_.size();
}

std::string SpillingStateStore::NextRunPath() {
  char name[32];
  std::snprintf(name, sizeof(name), "spill-%06llu.run",
                static_cast<unsigned long long>(next_run_id_++));
  return config_.spill_dir + "/" + name;
}

Status SpillingStateStore::SpillLocked() {
  // Drain the memory tier under all shard locks: inserts block for the
  // duration, so no entry can be observed in neither tier.
  obs::TraceSpan spill_span("store.spill", "resident",
                            static_cast<int64_t>(
                                resident_.load(std::memory_order_relaxed)));
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(resident_.load(std::memory_order_relaxed));
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(static_cast<size_t>(nshards_));
  for (int i = 0; i < nshards_; ++i) {
    locks.emplace_back(shards_[i].mu);
  }
  for (int i = 0; i < nshards_; ++i) {
    for (const auto& [fp, parent] : shards_[i].map) {
      entries.emplace_back(fp, parent);
    }
  }
  if (entries.empty()) {
    return Status();
  }
  std::sort(entries.begin(), entries.end());
  const std::string path = NextRunPath();
  const Status st = WriteRunFile(path, entries);
  if (!st.ok()) {
    return st;
  }
  auto run = MappedRun::Open(path);
  if (!run.ok()) {
    return Status::Error(run.error());
  }
  {
    std::unique_lock<std::shared_mutex> runs_lock(runs_mu_);
    runs_.push_back(std::move(run).value());
    obs::Set(m_.runs, static_cast<int64_t>(runs_.size()));
  }
  for (int i = 0; i < nshards_; ++i) {
    shards_[i].map.clear();
  }
  resident_.store(0, std::memory_order_relaxed);
  spilled_.fetch_add(entries.size(), std::memory_order_relaxed);
  obs::Add(m_.spilled_fingerprints, entries.size());
  obs::Add(m_.spills);
  obs::Set(m_.resident, 0);
  // Publish the new epoch before any shard lock is released so a concurrent
  // InsertIfAbsent that probed disk before this run existed sees the bump
  // under its shard lock and re-probes.
  spill_epoch_.fetch_add(1, std::memory_order_release);
  locks.clear();

  if (RunCount() > config_.max_runs) {
    return CompactLocked();
  }
  return Status();
}

Status SpillingStateStore::CompactLocked() {
  // Merge every run into one. Runs are disjoint (inserts probe disk before
  // the shard insert, atomically w.r.t. spills), so this is a pure k-way
  // merge with no duplicate resolution needed — and the total entry count is
  // the sum of the run counts, known up front. Stream the merge straight to
  // the output file (stdio-buffered) so compaction memory is O(runs), not
  // O(total spilled fingerprints).
  obs::TraceSpan compact_span("store.compact", "runs",
                              static_cast<int64_t>(RunCount()));
  const std::string path = NextRunPath();
  const std::string tmp = path + ".tmp";
  {
    std::shared_lock<std::shared_mutex> lock(runs_mu_);
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Status::Error("cannot open " + tmp + " for writing");
    }
    uint64_t total = 0;
    for (const auto& run : runs_) {
      total += run->count();
    }
    bool ok = std::fwrite(kRunMagic, 1, sizeof(kRunMagic), f) == sizeof(kRunMagic) &&
              std::fwrite(&total, sizeof(total), 1, f) == 1;
    struct Cursor {
      const MappedRun* run;
      uint64_t i = 0;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(runs_.size());
    for (const auto& run : runs_) {
      if (run->count() > 0) {
        cursors.push_back(Cursor{run.get()});
      }
    }
    while (ok && !cursors.empty()) {
      size_t best = 0;
      for (size_t c = 1; c < cursors.size(); ++c) {
        if (cursors[c].run->fp(cursors[c].i) < cursors[best].run->fp(cursors[best].i)) {
          best = c;
        }
      }
      Cursor& cur = cursors[best];
      const uint64_t rec[2] = {cur.run->fp(cur.i), cur.run->parent(cur.i)};
      ok = std::fwrite(rec, sizeof(uint64_t), 2, f) == 2;
      if (++cur.i >= cur.run->count()) {
        cursors.erase(cursors.begin() + static_cast<long>(best));
      }
    }
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
      std::remove(tmp.c_str());
      return Status::Error("short write to " + tmp);
    }
  }
  {
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      return Status::Error("rename " + tmp + " -> " + path + ": " + ec.message());
    }
  }
  auto run = MappedRun::Open(path);
  if (!run.ok()) {
    return Status::Error(run.error());
  }
  std::vector<std::unique_ptr<MappedRun>> old;
  {
    std::unique_lock<std::shared_mutex> lock(runs_mu_);
    old.swap(runs_);
    runs_.push_back(std::move(run).value());
    obs::Set(m_.runs, static_cast<int64_t>(runs_.size()));
  }
  obs::Add(m_.compactions);
  for (const auto& r : old) {
    // Checkpoint-owned runs (LoadRuns) live outside spill_dir; only delete
    // files this store created.
    if (r->path().rfind(config_.spill_dir + "/", 0) == 0) {
      std::error_code ec;
      std::filesystem::remove(r->path(), ec);
    }
  }
  return Status();
}

Status SpillingStateStore::Flush() {
  if (config_.spill_dir.empty()) {
    return Status::Error("no spill_dir configured");
  }
  std::lock_guard<std::mutex> spill_lock(spill_mu_);
  return SpillLocked();
}

Result<std::vector<std::string>> SpillingStateStore::SaveRuns(const std::string& dir) {
  using R = Result<std::vector<std::string>>;
  std::lock_guard<std::mutex> spill_lock(spill_mu_);
  {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return R::Error("cannot create " + dir + ": " + ec.message());
    }
  }
  std::vector<std::string> names;
  uint64_t id = 0;
  auto name_for = [&id]() {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "visited-%06llu.run",
                  static_cast<unsigned long long>(id++));
    return std::string(buf);
  };
  {
    std::shared_lock<std::shared_mutex> lock(runs_mu_);
    for (const auto& run : runs_) {
      const std::string name = name_for();
      std::error_code ec;
      std::filesystem::copy_file(run->path(), dir + "/" + name,
                                 std::filesystem::copy_options::overwrite_existing, ec);
      if (ec) {
        return R::Error("cannot copy run " + run->path() + ": " + ec.message());
      }
      names.push_back(name);
    }
  }
  // Snapshot the memory tier as one more run (without draining it).
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(resident_.load(std::memory_order_relaxed));
  for (int i = 0; i < nshards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    for (const auto& [fp, parent] : shards_[i].map) {
      entries.emplace_back(fp, parent);
    }
  }
  if (!entries.empty()) {
    std::sort(entries.begin(), entries.end());
    const std::string name = name_for();
    const Status st = WriteRunFile(dir + "/" + name, entries);
    if (!st.ok()) {
      return R::Error(st.error());
    }
    names.push_back(name);
  }
  return names;
}

MemBudget SplitMemBudget(uint64_t budget_mb) {
  const uint64_t bytes = budget_mb * (1ull << 20);
  MemBudget b;
  b.max_resident_fingerprints = std::max<uint64_t>(1024, (bytes * 2 / 3) / 48);
  b.max_resident_frontier = std::max<uint64_t>(256, (bytes / 3) / 256);
  return b;
}

}  // namespace store
}  // namespace sandtable
