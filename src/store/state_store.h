// Pluggable visited-state stores for the exploration engines.
//
// Both BFS engines track visited states as `fingerprint -> parent fingerprint`
// (mc/reconstruct.h). By default they keep that map purely in memory; a
// StateStore lets a run swap in the two-tier SpillingStateStore, which spills
// sorted fingerprint runs to disk past a configurable resident budget — the
// design of TLC's disk-based fingerprint set — so multi-hour hunts are bounded
// by disk, not RAM.
//
// Two-tier organization (SpillingStateStore):
//   - memory tier: lock-striped sharded hash maps (same layout as
//     par/fingerprint_shards.h), absorbing all inserts;
//   - disk tier: immutable sorted run files, mmap'd and probed by binary
//     search. When the memory tier exceeds `max_resident` entries it is
//     drained into a fresh run; when the run count exceeds `max_runs` all
//     runs are merged into one (compaction), keeping probe cost at
//     O(runs * log n) with runs <= max_runs.
//
// Run file format ("fingerprint run v1", also the checkpoint format):
//   bytes 0-7   magic "STFPRUN1"
//   bytes 8-15  entry count, uint64 little-endian
//   then count * { uint64 fp, uint64 parent }, sorted by fp ascending
//
// An entry's fp can appear in at most one tier and one run: inserts probe the
// disk tier first, and spills move entries out of memory. All operations are
// thread-safe; the parallel engine's workers insert concurrently.
#ifndef SANDTABLE_SRC_STORE_STATE_STORE_H_
#define SANDTABLE_SRC_STORE_STATE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/result.h"

namespace sandtable {
namespace store {

// Null-safe handles on the store's well-known metrics, bound once per store.
struct StoreMetrics {
  obs::Counter* spilled_fingerprints = nullptr;  // store.fingerprints_spilled
  obs::Counter* spills = nullptr;                // store.spills
  obs::Counter* compactions = nullptr;           // store.compactions
  obs::Counter* disk_probes = nullptr;           // store.disk_probes
  obs::Counter* disk_hits = nullptr;             // store.disk_probe_hits
  obs::Gauge* runs = nullptr;                    // store.runs
  obs::Gauge* resident = nullptr;                // store.resident_fingerprints

  static StoreMetrics Bind(obs::MetricsRegistry* registry);
};

class StateStore {
 public:
  virtual ~StateStore() = default;

  // Insert fp -> parent_fp if absent; true on first insertion. parent_fp == fp
  // marks an initial state (mc/reconstruct.h convention). Thread-safe.
  virtual bool InsertIfAbsent(uint64_t fp, uint64_t parent_fp) = 0;

  // Parent pointer of a visited fingerprint; nullopt if never inserted.
  virtual std::optional<uint64_t> Parent(uint64_t fp) const = 0;

  // Distinct fingerprints inserted (memory + disk). Monotonic, lock-free.
  virtual uint64_t Size() const = 0;

  // Fingerprints currently living in disk runs (0 for in-memory stores).
  virtual uint64_t SpilledSize() const { return 0; }

  // Number of on-disk runs (0 for in-memory stores).
  virtual size_t RunCount() const { return 0; }

  // Persist every entry as sorted run files under `dir` (for checkpoints).
  // Returns the file names (relative to dir) written. Does not mutate the
  // store. Must not race concurrent inserts — call from a level barrier.
  virtual Result<std::vector<std::string>> SaveRuns(const std::string& dir) = 0;

  // True when Parent() returns real ancestry for every inserted fingerprint.
  // Hash-compacted stores (compact_store.h) return false; engines then switch
  // counterexample reconstruction from the parent-chain walk to a bounded
  // re-search (mc/reconstruct.h) and report the fingerprint-collision
  // probability in their results.
  virtual bool RetainsParents() const { return true; }
};

// Plain sharded in-memory store: the explicit-StateStore equivalent of the
// engines' built-in maps, used as the reference point in tests and benches.
class MemoryStateStore : public StateStore {
 public:
  explicit MemoryStateStore(int shard_count_log2 = 6);

  bool InsertIfAbsent(uint64_t fp, uint64_t parent_fp) override;
  std::optional<uint64_t> Parent(uint64_t fp) const override;
  uint64_t Size() const override { return count_.load(std::memory_order_relaxed); }
  Result<std::vector<std::string>> SaveRuns(const std::string& dir) override;

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, uint64_t> map;
  };
  size_t ShardIndex(uint64_t fp) const { return shift_ >= 64 ? 0 : fp >> shift_; }

  const int nshards_;
  const int shift_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> count_{0};
};

struct StoreConfig {
  // Directory for spill runs; created if missing. Required for spilling.
  std::string spill_dir;
  // Fingerprints kept in the memory tier before a spill. 0 means "never
  // spill" (the store degenerates to MemoryStateStore behaviour).
  uint64_t max_resident = 1u << 20;
  // Merge all runs into one when their count exceeds this.
  size_t max_runs = 8;
  int shard_count_log2 = 6;
  obs::MetricsRegistry* metrics = nullptr;  // borrowed, may be null
};

// A read-only mmap'd sorted run file.
class MappedRun {
 public:
  // Maps `path`; returns an error on missing/short/corrupt files.
  static Result<std::unique_ptr<MappedRun>> Open(const std::string& path);
  ~MappedRun();

  MappedRun(const MappedRun&) = delete;
  MappedRun& operator=(const MappedRun&) = delete;

  uint64_t count() const { return count_; }
  const std::string& path() const { return path_; }
  uint64_t fp(uint64_t i) const { return entries_[2 * i]; }
  uint64_t parent(uint64_t i) const { return entries_[2 * i + 1]; }
  // Binary search; returns the parent if fp is present.
  std::optional<uint64_t> Find(uint64_t fp) const;

 private:
  MappedRun() = default;
  std::string path_;
  void* base_ = nullptr;
  size_t map_len_ = 0;
  const uint64_t* entries_ = nullptr;  // interleaved {fp, parent} pairs
  uint64_t count_ = 0;
};

// Write a sorted (by .first) entry list as a run file. The file is written to
// `path + ".tmp"` and renamed into place.
Status WriteRunFile(const std::string& path,
                    const std::vector<std::pair<uint64_t, uint64_t>>& entries);

class SpillingStateStore : public StateStore {
 public:
  explicit SpillingStateStore(StoreConfig config);

  // Adopt existing run files (a resumed checkpoint's visited runs). The files
  // are mmap'd in place and must outlive the store. Call before exploring.
  Status LoadRuns(const std::vector<std::string>& paths);

  bool InsertIfAbsent(uint64_t fp, uint64_t parent_fp) override;
  std::optional<uint64_t> Parent(uint64_t fp) const override;
  uint64_t Size() const override { return count_.load(std::memory_order_relaxed); }
  uint64_t SpilledSize() const override { return spilled_.load(std::memory_order_relaxed); }
  size_t RunCount() const override;
  Result<std::vector<std::string>> SaveRuns(const std::string& dir) override;

  // Force the memory tier out to a run (exposed for tests).
  Status Flush();

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, uint64_t> map;
  };
  size_t ShardIndex(uint64_t fp) const { return shift_ >= 64 ? 0 : fp >> shift_; }

  // Probe the disk tier. Counts probe/hit metrics when `count_metrics`.
  std::optional<uint64_t> DiskFind(uint64_t fp, bool count_metrics) const;

  // Drain the memory tier into a new run; compact if over max_runs. Caller
  // must hold spill_mu_.
  Status SpillLocked();
  Status CompactLocked();

  std::string NextRunPath();

  const StoreConfig config_;
  const int nshards_;
  const int shift_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> count_{0};      // total distinct (memory + disk)
  std::atomic<uint64_t> resident_{0};   // memory-tier entries
  std::atomic<uint64_t> spilled_{0};    // disk-tier entries
  // Bumped by SpillLocked/LoadRuns while all shard locks are held, after new
  // runs are published. InsertIfAbsent re-probes the disk tier when the epoch
  // moved between its probe and its shard-lock acquisition, keeping
  // probe+insert atomic w.r.t. spills (tiers and runs stay disjoint).
  std::atomic<uint64_t> spill_epoch_{0};
  std::mutex spill_mu_;                 // serializes spill/compact/save
  mutable std::shared_mutex runs_mu_;   // guards runs_ vector swaps
  std::vector<std::unique_ptr<MappedRun>> runs_;
  uint64_t next_run_id_ = 0;
  StoreMetrics m_;
};

// How a --mem-budget-mb style budget is divided between the two resident
// tiers: roughly 2/3 to the fingerprint maps (~48 bytes per entry counting
// hash-node overhead) and 1/3 to the frontier queue (~256 bytes per decoded
// state), with floors so tiny budgets still make progress.
struct MemBudget {
  uint64_t max_resident_fingerprints = 0;
  uint64_t max_resident_frontier = 0;
};
MemBudget SplitMemBudget(uint64_t budget_mb);

}  // namespace store
}  // namespace sandtable

#endif  // SANDTABLE_SRC_STORE_STATE_STORE_H_
