#include "src/systems/raft_node.h"

#include <algorithm>

#include "src/raftspec/raft_common.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace sandtable {
namespace systems {

namespace rs = raftspec;

RaftImplBugs GetRaftImplBugs(const std::string& system_name, bool with_bugs) {
  RaftImplBugs bugs;
  if (!with_bugs) {
    return bugs;
  }
  if (system_name == "pysyncobj") {
    bugs.pso1_crash_on_disconnect = true;
  } else if (system_name == "wraft") {
    bugs.wr3_reject_snapshot = true;
    bugs.wr6_leak = true;
    bugs.wr8_stop_heartbeats = true;
  } else if (system_name == "raftos") {
    bugs.ros3_crash_unknown_peer = true;
  } else if (system_name == "xraft") {
    bugs.xr2_concurrent_modification = true;
  }
  return bugs;
}

const char* RaftNode::RoleName(Role role) {
  switch (role) {
    case Role::kFollower:
      return rs::kRoleFollower;
    case Role::kPreCandidate:
      return rs::kRolePreCandidate;
    case Role::kCandidate:
      return rs::kRoleCandidate;
    case Role::kLeader:
      return rs::kRoleLeader;
  }
  return "?";
}

Json RaftNode::LogEntry::ToJson(bool kv) const {
  JsonObject o;
  o["term"] = Json(term);
  o["val"] = Json(val);
  if (kv) {
    o["key"] = Json(key);
  }
  return Json(std::move(o));
}

RaftNode::RaftNode(sim::Env& env, RaftNodeConfig config)
    : env_(env),
      cfg_(std::move(config)),
      id_(env.node_id()),
      n_(env.cluster_size()),
      quorum_(rs::QuorumSize(env.cluster_size())) {}

// ---- Log arithmetic ----------------------------------------------------------

int64_t RaftNode::LastIndex() const {
  return snapshot_index_ + static_cast<int64_t>(log_.size());
}

int64_t RaftNode::TermAt(int64_t idx) const {
  if (idx == 0) {
    return 0;
  }
  if (idx == snapshot_index_) {
    return snapshot_term_;
  }
  CHECK_GT(idx, snapshot_index_);
  const auto pos = static_cast<size_t>(idx - snapshot_index_ - 1);
  CHECK_LT(pos, log_.size());
  return log_[pos].term;
}

const RaftNode::LogEntry& RaftNode::EntryAt(int64_t idx) const {
  CHECK_GT(idx, snapshot_index_);
  const auto pos = static_cast<size_t>(idx - snapshot_index_ - 1);
  CHECK_LT(pos, log_.size());
  return log_[pos];
}

std::vector<RaftNode::LogEntry> RaftNode::EntriesFrom(int64_t from) const {
  std::vector<LogEntry> out;
  for (int64_t idx = std::max(from, snapshot_index_ + 1); idx <= LastIndex(); ++idx) {
    out.push_back(EntryAt(idx));
  }
  return out;
}

int64_t RaftNode::LocalKvValue(const std::string& key) const {
  int64_t value = 0;
  const int64_t upto = std::min(commit_index_, LastIndex());
  for (int64_t idx = snapshot_index_ + 1; idx <= upto; ++idx) {
    const LogEntry& e = EntryAt(idx);
    if (e.key == key) {
      value = e.val;
    }
  }
  return value;
}

// ---- Wire and disk ---------------------------------------------------------------

bool RaftNode::SendJson(int dst, JsonObject msg) {
  msg["src"] = Json(static_cast<int64_t>(id_));
  msg["dst"] = Json(static_cast<int64_t>(dst));
  const std::string bytes = Json(std::move(msg)).Dump();
  return env_.SendTo(dst, bytes);
}

void RaftNode::PersistHardState() {
  JsonObject hard;
  hard["currentTerm"] = Json(current_term_);
  hard["votedFor"] = Json(static_cast<int64_t>(voted_for_));
  JsonArray log;
  for (const LogEntry& e : log_) {
    log.push_back(e.ToJson(cfg_.profile.features.kv));
  }
  hard["log"] = Json(std::move(log));
  hard["snapshotIndex"] = Json(snapshot_index_);
  hard["snapshotTerm"] = Json(snapshot_term_);
  env_.Disk().Put("hard", Json(std::move(hard)));
}

void RaftNode::LoadHardState() {
  if (!env_.Disk().Has("hard")) {
    return;
  }
  const Json& hard = env_.Disk().Get("hard");
  current_term_ = hard["currentTerm"].as_int();
  voted_for_ = static_cast<int>(hard["votedFor"].as_int());
  snapshot_index_ = hard["snapshotIndex"].as_int();
  snapshot_term_ = hard["snapshotTerm"].as_int();
  log_.clear();
  for (const Json& e : hard["log"].as_array()) {
    LogEntry entry;
    entry.term = e["term"].as_int();
    entry.val = e["val"].as_int();
    if (e.contains("key")) {
      entry.key = e["key"].as_string();
    }
    log_.push_back(std::move(entry));
  }
}

void RaftNode::LogStateLine(const char* event) {
  // Debug-level state line parsed by the log-based conformance observer
  // (Appendix A.4). Industrial systems log exactly this kind of detail.
  env_.WriteLog(StrFormat(
      "STATE event=%s role=%s term=%lld votedFor=%d commit=%lld lastIndex=%lld snap=%lld",
      event, RoleName(role_), static_cast<long long>(current_term_), voted_for_,
      static_cast<long long>(commit_index_), static_cast<long long>(LastIndex()),
      static_cast<long long>(snapshot_index_)));
}

void RaftNode::ArmElectionTimer() {
  election_deadline_ns_ = env_.NowNs() + cfg_.election_timeout_ns;
  heartbeat_deadline_ns_ = -1;
}

void RaftNode::ArmHeartbeatTimer() {
  heartbeat_deadline_ns_ = env_.NowNs() + cfg_.heartbeat_interval_ns;
  election_deadline_ns_ = -1;
}

// ---- Lifecycle ---------------------------------------------------------------------

void RaftNode::OnStart() {
  LoadHardState();
  role_ = Role::kFollower;
  commit_index_ = snapshot_index_;  // the commit index is volatile
  votes_granted_.clear();
  prevotes_granted_.clear();
  next_index_.clear();
  match_index_.clear();
  ArmElectionTimer();
  LogStateLine("Start");
}

int64_t RaftNode::NextDeadlineNs(const std::string& timer_kind) {
  if (timer_kind == "election") {
    return role_ == Role::kLeader ? -1 : election_deadline_ns_;
  }
  if (timer_kind == "heartbeat") {
    return role_ == Role::kLeader ? heartbeat_deadline_ns_ : -1;
  }
  return -1;
}

bool RaftNode::OnTick() {
  const int64_t now = env_.NowNs();
  if (role_ == Role::kLeader) {
    if (heartbeat_deadline_ns_ >= 0 && now >= heartbeat_deadline_ns_) {
      SendHeartbeats(cfg_.impl_bugs.wr8_stop_heartbeats);
      ArmHeartbeatTimer();
      LogStateLine("HeartbeatTimeout");
    }
    return true;
  }
  if (election_deadline_ns_ >= 0 && now >= election_deadline_ns_) {
    if (cfg_.profile.features.prevote) {
      StartPreVote();
    } else {
      StartElection();
    }
    if (role_ != Role::kLeader) {
      ArmElectionTimer();
    }
    LogStateLine("Timeout");
  }
  return true;
}

bool RaftNode::OnDisconnect(int peer) {
  if (cfg_.impl_bugs.pso1_crash_on_disconnect) {
    // PySyncObj#1: the disconnection callback dereferences connection state
    // that was already torn down — an unhandled exception kills the node.
    env_.WriteLog(StrFormat("EXCEPTION in onDisconnected(peer=%d)", peer));
    return false;
  }
  LogStateLine("Disconnect");
  return true;
}

bool RaftNode::OnClientRequest(const Json& request, Json* response) {
  const std::string op = request["op"].is_string() ? request["op"].as_string() : "";
  JsonObject resp;
  if (op == "propose") {
    if (role_ != Role::kLeader) {
      resp["ok"] = Json(false);
      resp["error"] = Json(std::string("not leader"));
    } else {
      LogEntry e;
      e.term = current_term_;
      e.val = request["val"].as_int();
      if (cfg_.profile.features.kv && request.contains("key")) {
        e.key = request["key"].as_string();
      }
      log_.push_back(std::move(e));
      PersistHardState();
      resp["ok"] = Json(true);
      resp["index"] = Json(LastIndex());
      LogStateLine("ClientRequest");
    }
  } else if (op == "get") {
    // Xraft-KV style read served from leader-local state. Whether this is
    // linearizable depends on the protocol around it (Xraft-KV#1).
    if (role_ != Role::kLeader) {
      resp["ok"] = Json(false);
      resp["error"] = Json(std::string("not leader"));
    } else {
      resp["ok"] = Json(true);
      resp["val"] = Json(LocalKvValue(request["key"].is_string() ? request["key"].as_string()
                                                                 : "x"));
      LogStateLine("ClientRead");
    }
  } else if (op == "compact") {
    if (!HandleCompact()) {
      return false;
    }
    resp["ok"] = Json(true);
  } else {
    resp["ok"] = Json(false);
    resp["error"] = Json(std::string("unknown op"));
  }
  *response = Json(std::move(resp));
  return true;
}

bool RaftNode::HandleCompact() {
  if (commit_index_ > snapshot_index_) {
    snapshot_term_ = TermAt(commit_index_);
    log_ = EntriesFrom(commit_index_ + 1);
    snapshot_index_ = commit_index_;
    PersistHardState();
    LogStateLine("TakeSnapshot");
  }
  return true;
}

// ---- Elections ----------------------------------------------------------------------

void RaftNode::StartPreVote() {
  role_ = Role::kPreCandidate;
  prevotes_granted_ = {id_};
  const int64_t last = LastIndex();
  for (int peer = 0; peer < n_; ++peer) {
    if (peer == id_) {
      continue;
    }
    JsonObject m;
    m["mtype"] = Json(std::string(rs::kMsgPreVote));
    m["term"] = Json(current_term_ + 1);
    m["lastLogIndex"] = Json(last);
    m["lastLogTerm"] = Json(TermAt(last));
    SendJson(peer, std::move(m));
  }
}

void RaftNode::StartElection() {
  ++current_term_;
  role_ = Role::kCandidate;
  voted_for_ = id_;
  votes_granted_ = {id_};
  prevotes_granted_.clear();
  PersistHardState();
  const int64_t last = LastIndex();
  for (int peer = 0; peer < n_; ++peer) {
    if (peer == id_) {
      continue;
    }
    JsonObject m;
    m["mtype"] = Json(std::string(rs::kMsgRequestVote));
    m["term"] = Json(current_term_);
    m["lastLogIndex"] = Json(last);
    m["lastLogTerm"] = Json(TermAt(last));
    SendJson(peer, std::move(m));
  }
}

void RaftNode::BecomeLeader() {
  role_ = Role::kLeader;
  next_index_.clear();
  match_index_.clear();
  const int64_t last = LastIndex();
  for (int peer = 0; peer < n_; ++peer) {
    if (peer == id_) {
      continue;
    }
    next_index_[peer] = last + 1;
    match_index_[peer] = 0;
  }
  for (int peer = 0; peer < n_; ++peer) {
    if (peer == id_) {
      continue;
    }
    SendAppend(peer, /*is_retry=*/false);
  }
  ArmHeartbeatTimer();
  LogStateLine("BecomeLeader");
}

void RaftNode::AdoptTerm(int64_t term) {
  current_term_ = term;
  voted_for_ = -1;
  votes_granted_.clear();
  prevotes_granted_.clear();
  next_index_.clear();
  match_index_.clear();
  role_ = Role::kFollower;
  PersistHardState();
  ArmElectionTimer();
}

// ---- Replication ----------------------------------------------------------------------

bool RaftNode::SendAppend(int peer, bool is_retry) {
  const RaftBugs& bugs = cfg_.profile.bugs;
  auto it = next_index_.find(peer);
  const int64_t ni = it == next_index_.end() ? 1 : it->second;
  if (cfg_.profile.features.compaction && ni <= snapshot_index_) {
    if (bugs.wr2_ae_instead_of_snapshot) {
      // WRaft#2: ships an (empty) AppendEntries for a compacted range.
      JsonObject m;
      m["mtype"] = Json(std::string(rs::kMsgAppendEntries));
      m["term"] = Json(current_term_);
      m["prevLogIndex"] = Json(snapshot_index_);
      m["prevLogTerm"] = Json(snapshot_term_);
      m["entries"] = Json(JsonArray{});
      m["commit"] = Json(commit_index_);
      m["isRetry"] = Json(false);
      return SendJson(peer, std::move(m));
    }
    JsonObject m;
    m["mtype"] = Json(std::string(rs::kMsgInstallSnapshot));
    m["term"] = Json(current_term_);
    m["lastIndex"] = Json(snapshot_index_);
    m["lastTerm"] = Json(snapshot_term_);
    return SendJson(peer, std::move(m));
  }
  const int64_t last = LastIndex();
  std::vector<LogEntry> entries = ni <= last ? EntriesFrom(ni) : std::vector<LogEntry>();
  const bool retry_flag = is_retry && ni <= last;
  if (bugs.wr5_empty_retry && is_retry) {
    entries.clear();  // WRaft#5: the retry forgets its payload
  }
  JsonObject m;
  m["mtype"] = Json(std::string(rs::kMsgAppendEntries));
  m["term"] = Json(current_term_);
  m["prevLogIndex"] = Json(ni - 1);
  m["prevLogTerm"] = Json(TermAt(ni - 1));
  JsonArray earr;
  for (const LogEntry& e : entries) {
    earr.push_back(e.ToJson(cfg_.profile.features.kv));
  }
  const size_t sent = earr.size();
  m["entries"] = Json(std::move(earr));
  m["commit"] = Json(commit_index_);
  m["isRetry"] = Json(retry_flag);
  const int64_t prev = ni - 1;
  const bool sent_ok = SendJson(peer, std::move(m));
  if (cfg_.profile.features.optimistic_next && sent > 0) {
    // PySyncObj-style pipelining: advance nextIndex past what was shipped
    // (whether or not the write reached the wire — the sender cannot know).
    next_index_[peer] = prev + static_cast<int64_t>(sent) + 1;
  }
  return sent_ok;
}

void RaftNode::SendHeartbeats(bool stop_on_failure) {
  for (int peer = 0; peer < n_; ++peer) {
    if (peer == id_) {
      continue;
    }
    const bool sent_ok = SendAppend(peer, /*is_retry=*/false);
    if (stop_on_failure && !sent_ok) {
      // WRaft#8: the broadcast loop aborts when one send fails, so peers
      // later in the iteration order silently miss their heartbeats.
      env_.WriteLog(StrFormat("heartbeat: send to %d failed, stopping round", peer));
      break;
    }
  }
}

// ---- Message handling -----------------------------------------------------------------------

bool RaftNode::OnMessage(int src, const std::string& bytes) {
  if (cfg_.impl_bugs.wr6_leak) {
    ++leaked_buffers_;  // WRaft#6: the receive buffer is never freed
  }
  auto parsed = Json::Parse(bytes);
  if (!parsed.ok()) {
    env_.WriteLog(StrFormat("EXCEPTION decoding message from %d: %s", src,
                            parsed.error().c_str()));
    return false;
  }
  const Json m = std::move(parsed).value();
  const std::string mtype = m["mtype"].is_string() ? m["mtype"].as_string() : "";
  bool ok;
  if (mtype == rs::kMsgRequestVote) {
    ok = HandleRequestVote(src, m);
  } else if (mtype == rs::kMsgRequestVoteResp) {
    ok = HandleRequestVoteResp(src, m);
  } else if (mtype == rs::kMsgPreVote) {
    ok = HandlePreVote(src, m);
  } else if (mtype == rs::kMsgPreVoteResp) {
    ok = HandlePreVoteResp(src, m);
  } else if (mtype == rs::kMsgAppendEntries) {
    ok = HandleAppendEntries(src, m);
  } else if (mtype == rs::kMsgAppendEntriesResp) {
    ok = HandleAppendEntriesResp(src, m);
  } else if (mtype == rs::kMsgInstallSnapshot) {
    ok = HandleInstallSnapshot(src, m);
  } else if (mtype == rs::kMsgInstallSnapshotResp) {
    ok = HandleInstallSnapshotResp(src, m);
  } else {
    env_.WriteLog(StrFormat("EXCEPTION: unknown message type '%s'", mtype.c_str()));
    return false;
  }
  if (ok) {
    LogStateLine(("Handle" + mtype).c_str());
  }
  return ok;
}

bool RaftNode::HandleRequestVote(int src, const Json& m) {
  const RaftBugs& bugs = cfg_.profile.bugs;
  const int64_t mterm = m["term"].as_int();
  const bool was_leader = role_ == Role::kLeader;
  if (mterm > current_term_) {
    if (bugs.daos1_leader_votes && was_leader) {
      // DaosRaft#1: term adopted, but the node keeps leading.
      current_term_ = mterm;
      voted_for_ = -1;
      PersistHardState();
    } else {
      AdoptTerm(mterm);
    }
  } else if (bugs.wr4_term_regress && mterm < current_term_) {
    AdoptTerm(mterm);  // WRaft#4
  }
  const int64_t my_last = LastIndex();
  const int64_t my_last_term = TermAt(my_last);
  const int64_t cand_last_term = m["lastLogTerm"].as_int();
  const int64_t cand_last = m["lastLogIndex"].as_int();
  const bool up_to_date = cand_last_term > my_last_term ||
                          (cand_last_term == my_last_term && cand_last >= my_last);
  bool grant = mterm == current_term_ && (voted_for_ == -1 || voted_for_ == src) &&
               up_to_date;
  if (!bugs.daos1_leader_votes && role_ == Role::kLeader) {
    grant = false;  // the DaosRaft fix: leaders reject RequestVote
  }
  if (grant) {
    voted_for_ = src;
    PersistHardState();
  }
  JsonObject r;
  r["mtype"] = Json(std::string(rs::kMsgRequestVoteResp));
  r["term"] = Json(current_term_);
  r["granted"] = Json(grant);
  SendJson(src, std::move(r));
  return true;
}

bool RaftNode::HandleRequestVoteResp(int src, const Json& m) {
  const RaftBugs& bugs = cfg_.profile.bugs;
  const int64_t mterm = m["term"].as_int();
  if (mterm > current_term_) {
    AdoptTerm(mterm);
    return true;
  }
  if (cfg_.impl_bugs.xr2_concurrent_modification && role_ == Role::kLeader &&
      m["granted"].as_bool() && mterm == current_term_) {
    // Xraft#2: a straggler vote mutates the vote set while the election
    // result is being consumed — ConcurrentModificationException.
    env_.WriteLog("EXCEPTION ConcurrentModificationException in vote handling");
    return false;
  }
  if (role_ != Role::kCandidate) {
    return true;
  }
  bool counted = m["granted"].as_bool();
  if (!bugs.xr1_stale_vote) {
    counted = counted && mterm == current_term_;
  }
  if (!counted) {
    return true;
  }
  votes_granted_.insert(src);
  if (static_cast<int>(votes_granted_.size()) >= quorum_) {
    BecomeLeader();
  }
  return true;
}

bool RaftNode::HandlePreVote(int src, const Json& m) {
  const int64_t next_term = m["term"].as_int();
  const int64_t my_last = LastIndex();
  const int64_t my_last_term = TermAt(my_last);
  const int64_t cand_last_term = m["lastLogTerm"].as_int();
  const int64_t cand_last = m["lastLogIndex"].as_int();
  const bool grant = next_term > current_term_ &&
                     (cand_last_term > my_last_term ||
                      (cand_last_term == my_last_term && cand_last >= my_last));
  JsonObject r;
  r["mtype"] = Json(std::string(rs::kMsgPreVoteResp));
  r["term"] = Json(next_term);
  r["granted"] = Json(grant);
  SendJson(src, std::move(r));
  return true;
}

bool RaftNode::HandlePreVoteResp(int src, const Json& m) {
  if (role_ != Role::kPreCandidate || m["term"].as_int() != current_term_ + 1 ||
      !m["granted"].as_bool()) {
    return true;
  }
  prevotes_granted_.insert(src);
  if (static_cast<int>(prevotes_granted_.size()) >= quorum_) {
    StartElection();
  }
  return true;
}

bool RaftNode::HandleAppendEntries(int src, const Json& m) {
  const RaftBugs& bugs = cfg_.profile.bugs;
  const int64_t mterm = m["term"].as_int();
  if (mterm > current_term_) {
    AdoptTerm(mterm);
  } else if (bugs.wr4_term_regress && mterm < current_term_) {
    AdoptTerm(mterm);  // WRaft#4
  }
  auto reply = [&](bool success, int64_t hint) {
    JsonObject r;
    r["mtype"] = Json(std::string(rs::kMsgAppendEntriesResp));
    r["term"] = Json(current_term_);
    r["success"] = Json(success);
    r["hint"] = Json(hint);
    SendJson(src, std::move(r));
  };
  if (mterm < current_term_) {
    reply(false, LastIndex() + 1);
    return true;
  }
  if (role_ == Role::kLeader) {
    return true;  // same-term AppendEntries at a leader: consumed silently
  }
  role_ = Role::kFollower;
  ArmElectionTimer();

  const int64_t prev_index = m["prevLogIndex"].as_int();
  const int64_t prev_term = m["prevLogTerm"].as_int();
  const Json& entries = m["entries"];
  const int64_t last = LastIndex();

  bool prev_ok;
  if (prev_index < snapshot_index_) {
    prev_ok = true;  // covered by our snapshot; covered entries are skipped
  } else {
    prev_ok = prev_index <= last && TermAt(prev_index) == prev_term;
    if (!prev_ok && bugs.wr1_commit_own_last && prev_index <= 1 && prev_index <= last) {
      prev_ok = true;  // WRaft#1: first-entry consistency check skipped
    }
  }
  if (!prev_ok) {
    reply(false, std::min<int64_t>(last + 1, std::max<int64_t>(prev_index,
                                                               snapshot_index_ + 1)));
    return true;
  }

  auto entry_from_json = [&](const Json& e) {
    LogEntry out;
    out.term = e["term"].as_int();
    out.val = e["val"].as_int();
    if (e.contains("key")) {
      out.key = e["key"].as_string();
    }
    return out;
  };

  bool log_changed = false;
  if (bugs.ros2_erase_matched && entries.size() > 0 && prev_index >= snapshot_index_) {
    // RaftOS#2: truncate unconditionally before appending.
    log_.resize(static_cast<size_t>(std::max<int64_t>(prev_index - snapshot_index_, 0)));
    for (size_t k = 0; k < entries.size(); ++k) {
      log_.push_back(entry_from_json(entries[k]));
    }
    log_changed = true;
  } else {
    for (size_t k = 0; k < entries.size(); ++k) {
      const int64_t idx = prev_index + 1 + static_cast<int64_t>(k);
      if (idx <= snapshot_index_) {
        continue;
      }
      const LogEntry e = entry_from_json(entries[k]);
      if (idx <= LastIndex()) {
        if (TermAt(idx) == e.term) {
          continue;  // already matched
        }
        log_.resize(static_cast<size_t>(std::max<int64_t>(idx - snapshot_index_ - 1, 0)));
        log_changed = true;
      }
      log_.push_back(e);
      log_changed = true;
    }
  }
  if (log_changed) {
    PersistHardState();
  }

  const int64_t base = bugs.wr1_commit_own_last
                           ? LastIndex()
                           : prev_index + static_cast<int64_t>(entries.size());
  int64_t new_commit = std::min(m["commit"].as_int(), base);
  new_commit = std::max(new_commit, snapshot_index_);
  if (!bugs.pso2_commit_regress) {
    new_commit = std::max(new_commit, commit_index_);
  }
  commit_index_ = new_commit;

  int64_t hint = prev_index + static_cast<int64_t>(entries.size()) + 1;
  if (bugs.pso4_match_regress && entries.size() > 0) {
    hint = prev_index + static_cast<int64_t>(entries.size());  // PySyncObj#4
  }
  reply(true, hint);
  return true;
}

bool RaftNode::HandleAppendEntriesResp(int src, const Json& m) {
  const RaftBugs& bugs = cfg_.profile.bugs;
  const int64_t mterm = m["term"].as_int();
  if (mterm > current_term_) {
    AdoptTerm(mterm);
    return true;
  }
  if (cfg_.impl_bugs.ros3_crash_unknown_peer && role_ != Role::kLeader) {
    // RaftOS#3: the peer bookkeeping dictionary is read before the role
    // check; a response reaching a non-leader raises KeyError.
    env_.WriteLog(StrFormat("EXCEPTION KeyError: %d in match_index", src));
    return false;
  }
  if (role_ != Role::kLeader || mterm != current_term_) {
    return true;
  }
  auto ni_it = next_index_.find(src);
  if (ni_it == next_index_.end()) {
    return true;
  }
  const int64_t hint = m["hint"].as_int();
  const int64_t old_next = ni_it->second;
  const int64_t old_match = match_index_[src];

  if (m["success"].as_bool()) {
    const int64_t acked = hint - 1;
    int64_t new_match;
    if (bugs.pso4_match_regress || bugs.ros1_match_regress) {
      new_match = acked;  // missing max() guard
    } else {
      new_match = std::max(old_match, acked);
    }
    int64_t new_next;
    if (bugs.wr7_next_eq_match) {
      new_next = std::max<int64_t>(new_match, 1);  // WRaft#7
    } else if (bugs.pso3_next_le_match) {
      new_next = std::max<int64_t>(hint, 1);  // PySyncObj#3
    } else {
      new_next = std::max({old_next, hint, new_match + 1});
    }
    new_next = std::min(new_next, LastIndex() + 1);
    match_index_[src] = new_match;
    next_index_[src] = new_next;
    AdvanceCommit();
    return true;
  }

  int64_t new_next;
  if (bugs.pso3_next_le_match || bugs.pso4_match_regress) {
    // PySyncObj#3/#4: the reset from the hint is not clamped to matchIndex+1.
    new_next = std::max<int64_t>(hint, 1);
  } else {
    new_next = std::max<int64_t>(std::max(hint, old_match + 1), 1);
  }
  // The follower's hint is its own log end, which can exceed ours when an
  // uncommitted longer log lost an election — clamp to our last index + 1.
  new_next = std::min(new_next, LastIndex() + 1);
  next_index_[src] = new_next;
  SendAppend(src, /*is_retry=*/true);
  return true;
}

void RaftNode::AdvanceCommit() {
  const RaftBugs& bugs = cfg_.profile.bugs;
  const int64_t last = LastIndex();
  int64_t best = commit_index_;
  for (int64_t idx = best + 1; idx <= last; ++idx) {
    int acks = 1;
    for (const auto& [peer, match] : match_index_) {
      if (match >= idx) {
        ++acks;
      }
    }
    if (acks < quorum_) {
      break;
    }
    if (TermAt(idx) == current_term_) {
      best = idx;
    } else if (bugs.pso5_commit_old_term) {
      best = idx;  // PySyncObj#5: no current-term check
    } else if (bugs.ros4_commit_break) {
      break;  // RaftOS#4: stops at the first older-term entry
    }
  }
  commit_index_ = best;
}

bool RaftNode::HandleInstallSnapshot(int src, const Json& m) {
  const int64_t mterm = m["term"].as_int();
  if (mterm > current_term_) {
    AdoptTerm(mterm);
  }
  auto reply = [&](bool success, int64_t hint) {
    JsonObject r;
    r["mtype"] = Json(std::string(rs::kMsgInstallSnapshotResp));
    r["term"] = Json(current_term_);
    r["success"] = Json(success);
    r["hint"] = Json(hint);
    SendJson(src, std::move(r));
  };
  if (mterm < current_term_) {
    reply(false, LastIndex() + 1);
    return true;
  }
  if (role_ == Role::kLeader) {
    return true;
  }
  role_ = Role::kFollower;
  ArmElectionTimer();
  const int64_t snap_index = m["lastIndex"].as_int();
  const int64_t snap_term = m["lastTerm"].as_int();
  if (snap_index <= snapshot_index_) {
    reply(true, LastIndex() + 1);
    return true;
  }
  if (cfg_.impl_bugs.wr3_reject_snapshot && snap_index <= LastIndex() &&
      snap_index > snapshot_index_ && TermAt(snap_index) != snap_term) {
    // WRaft#3: the snapshot is rejected because the local log conflicts —
    // but the snapshot is precisely how the conflict should be resolved.
    env_.WriteLog(StrFormat("snapshot rejected: conflicting entry at %lld",
                            static_cast<long long>(snap_index)));
    reply(false, LastIndex() + 1);
    return true;
  }
  if (snap_index <= LastIndex() && snap_index > snapshot_index_ &&
      TermAt(snap_index) == snap_term) {
    log_ = EntriesFrom(snap_index + 1);  // retain the matching suffix
  } else {
    log_.clear();
  }
  snapshot_index_ = snap_index;
  snapshot_term_ = snap_term;
  commit_index_ = std::max(commit_index_, snap_index);
  PersistHardState();
  reply(true, snap_index + 1);
  return true;
}

bool RaftNode::HandleInstallSnapshotResp(int src, const Json& m) {
  const int64_t mterm = m["term"].as_int();
  if (mterm > current_term_) {
    AdoptTerm(mterm);
    return true;
  }
  if (role_ != Role::kLeader || mterm != current_term_ || !m["success"].as_bool()) {
    return true;
  }
  auto ni_it = next_index_.find(src);
  if (ni_it == next_index_.end()) {
    return true;
  }
  const int64_t hint = m["hint"].as_int();
  match_index_[src] = std::max(match_index_[src], hint - 1);
  ni_it->second = std::max(ni_it->second, hint);
  AdvanceCommit();
  return true;
}

Json RaftNode::QueryState() {
  JsonObject s;
  s["role"] = Json(std::string(RoleName(role_)));
  s["currentTerm"] = Json(current_term_);
  s["votedFor"] = Json(static_cast<int64_t>(voted_for_));
  JsonArray log;
  for (const LogEntry& e : log_) {
    log.push_back(e.ToJson(cfg_.profile.features.kv));
  }
  s["log"] = Json(std::move(log));
  s["commitIndex"] = Json(commit_index_);
  s["snapshotIndex"] = Json(snapshot_index_);
  s["snapshotTerm"] = Json(snapshot_term_);
  JsonObject next;
  JsonObject match;
  for (const auto& [peer, v] : next_index_) {
    next[std::to_string(peer)] = Json(v);
  }
  for (const auto& [peer, v] : match_index_) {
    match[std::to_string(peer)] = Json(v);
  }
  s["nextIndex"] = Json(std::move(next));
  s["matchIndex"] = Json(std::move(match));
  JsonArray votes;
  for (int v : votes_granted_) {
    votes.push_back(Json(static_cast<int64_t>(v)));
  }
  s["votesGranted"] = Json(std::move(votes));
  s["leakedBuffers"] = Json(leaked_buffers_);
  return Json(std::move(s));
}

sim::ProcessFactory MakeRaftFactory(RaftNodeConfig config) {
  return [config](sim::Env& env) -> std::unique_ptr<sim::Process> {
    return std::make_unique<RaftNode>(env, config);
  };
}

}  // namespace systems
}  // namespace sandtable
