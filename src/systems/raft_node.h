// An event-driven Raft implementation running on the deterministic engine.
//
// This is the "target system" side of the reproduction: a real imperative
// implementation (structs, maps, deadlines, serialized wire messages) of the
// same per-system profiles the specification models. It consumes the same
// RaftBugs switches as the spec — when both sides agree on the switches the
// implementation conforms to the specification step for step, and the seeded
// Table 2 bugs are reproducible at this level by deterministic replay.
//
// RaftImplBugs adds the conformance-stage defects of Table 2 that exist only
// in the implementation (unhandled exceptions, resource leaks, liveness
// defects); the conformance checker surfaces them as node crashes or
// spec/impl divergences.
#ifndef SANDTABLE_SRC_SYSTEMS_RAFT_NODE_H_
#define SANDTABLE_SRC_SYSTEMS_RAFT_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/raftspec/raft_params.h"
#include "src/sim/process.h"

namespace sandtable {
namespace systems {

// Implementation-only defects (the paper's conformance/modeling-stage bugs).
struct RaftImplBugs {
  // PySyncObj#1: unhandled exception while processing a disconnection.
  bool pso1_crash_on_disconnect = false;
  // WRaft#3: follower rejects the leader's snapshot when its log conflicts,
  // lagging behind until the next snapshot.
  bool wr3_reject_snapshot = false;
  // WRaft#6: received message buffers are never freed (memory leak).
  bool wr6_leak = false;
  // WRaft#8: the heartbeat broadcast stops at the first failed send.
  bool wr8_stop_heartbeats = false;
  // RaftOS#3: KeyError — peer bookkeeping accessed before the role check when
  // a replication response reaches a non-leader.
  bool ros3_crash_unknown_peer = false;
  // Xraft#2: concurrent-modification exception when a late vote arrives at a
  // node that already won the election.
  bool xr2_concurrent_modification = false;

  bool AnySet() const {
    return pso1_crash_on_disconnect || wr3_reject_snapshot || wr6_leak ||
           wr8_stop_heartbeats || ros3_crash_unknown_peer || xr2_concurrent_modification;
  }
};

struct RaftNodeConfig {
  RaftProfile profile;
  RaftImplBugs impl_bugs;
  int64_t election_timeout_ns = 150'000'000;   // 150ms
  int64_t heartbeat_interval_ns = 50'000'000;  // 50ms
};

// Returns the implementation-only bug set a system profile ships with.
RaftImplBugs GetRaftImplBugs(const std::string& system_name, bool with_bugs);

class RaftNode : public sim::Process {
 public:
  RaftNode(sim::Env& env, RaftNodeConfig config);

  void OnStart() override;
  [[nodiscard]] bool OnMessage(int src, const std::string& bytes) override;
  [[nodiscard]] bool OnTick() override;
  [[nodiscard]] bool OnClientRequest(const Json& request, Json* response) override;
  [[nodiscard]] bool OnDisconnect(int peer) override;
  Json QueryState() override;
  int64_t NextDeadlineNs(const std::string& timer_kind) override;

 private:
  enum class Role { kFollower, kPreCandidate, kCandidate, kLeader };
  static const char* RoleName(Role role);

  struct LogEntry {
    int64_t term = 0;
    int64_t val = 0;
    std::string key;  // empty unless the KV feature is on

    Json ToJson(bool kv) const;
  };

  // ---- Log arithmetic (1-based logical indices over the compacted log) ----
  int64_t LastIndex() const;
  int64_t TermAt(int64_t idx) const;
  const LogEntry& EntryAt(int64_t idx) const;
  std::vector<LogEntry> EntriesFrom(int64_t from) const;

  // ---- Protocol steps, mirroring the specification actions ----
  void StartPreVote();
  void StartElection();
  void BecomeLeader();
  void AdoptTerm(int64_t term);
  void AdvanceCommit();
  // Build and send the AppendEntries / InstallSnapshot for `peer`; returns
  // whether the send reached the proxy (false across a partition cut).
  bool SendAppend(int peer, bool is_retry);
  void SendHeartbeats(bool stop_on_failure);

  bool HandleRequestVote(int src, const Json& m);
  bool HandleRequestVoteResp(int src, const Json& m);
  bool HandlePreVote(int src, const Json& m);
  bool HandlePreVoteResp(int src, const Json& m);
  bool HandleAppendEntries(int src, const Json& m);
  bool HandleAppendEntriesResp(int src, const Json& m);
  bool HandleInstallSnapshot(int src, const Json& m);
  bool HandleInstallSnapshotResp(int src, const Json& m);
  bool HandleCompact();

  int64_t LocalKvValue(const std::string& key) const;

  // ---- Wire and disk ----
  bool SendJson(int dst, JsonObject msg);
  void PersistHardState();
  void LoadHardState();
  void LogStateLine(const char* event);
  void ArmElectionTimer();
  void ArmHeartbeatTimer();

  sim::Env& env_;
  RaftNodeConfig cfg_;
  int id_;
  int n_;
  int quorum_;

  // Volatile state.
  Role role_ = Role::kFollower;
  int64_t commit_index_ = 0;
  std::set<int> votes_granted_;
  std::set<int> prevotes_granted_;
  std::map<int, int64_t> next_index_;
  std::map<int, int64_t> match_index_;
  int64_t election_deadline_ns_ = -1;
  int64_t heartbeat_deadline_ns_ = -1;
  int64_t leaked_buffers_ = 0;  // WRaft#6 observable

  // Persistent state (mirrored to env_.Disk()).
  int64_t current_term_ = 0;
  int voted_for_ = -1;  // -1 = None
  std::vector<LogEntry> log_;
  int64_t snapshot_index_ = 0;
  int64_t snapshot_term_ = 0;
};

// Factory for the engine.
sim::ProcessFactory MakeRaftFactory(RaftNodeConfig config);

}  // namespace systems
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SYSTEMS_RAFT_NODE_H_
