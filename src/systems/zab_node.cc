#include "src/systems/zab_node.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/strings.h"
#include "src/zabspec/zab_common.h"

namespace sandtable {
namespace systems {

namespace zs = zabspec;

const char* ZabNode::RoleName(Role role) {
  switch (role) {
    case Role::kLooking:
      return zs::kRoleLooking;
    case Role::kFollowing:
      return zs::kRoleFollowing;
    case Role::kLeading:
      return zs::kRoleLeading;
  }
  return "?";
}

Json ZabNode::Zxid::ToJson() const {
  JsonObject o;
  o["epoch"] = Json(epoch);
  o["counter"] = Json(counter);
  return Json(std::move(o));
}

ZabNode::Zxid ZabNode::Zxid::FromJson(const Json& j) {
  Zxid z;
  z.epoch = j["epoch"].as_int();
  z.counter = j["counter"].as_int();
  return z;
}

ZabNode::ZabNode(sim::Env& env, ZabNodeConfig config)
    : env_(env),
      cfg_(std::move(config)),
      id_(env.node_id()),
      n_(env.cluster_size()),
      quorum_(zs::QuorumSize(env.cluster_size())) {
  vote_.leader = id_;
}

ZabNode::Zxid ZabNode::LastZxid() const {
  return history_.empty() ? Zxid{} : history_.back().zxid;
}

bool ZabNode::Better(const VoteInfo& new_vote, int64_t new_round, const VoteInfo& cur_vote,
                     int64_t cur_round) const {
  const int zxid_cmp = new_vote.zxid == cur_vote.zxid ? 0
                       : cur_vote.zxid < new_vote.zxid ? 1
                                                       : -1;
  if (cfg_.profile.bugs.zk1_vote_order) {
    // ZooKeeper#1: the round-equality guard is missing from the zxid clause.
    return new_round > cur_round || zxid_cmp > 0 ||
           (new_round == cur_round && zxid_cmp == 0 && new_vote.leader > cur_vote.leader);
  }
  if (new_round != cur_round) {
    return new_round > cur_round;
  }
  if (zxid_cmp != 0) {
    return zxid_cmp > 0;
  }
  return new_vote.leader > cur_vote.leader;
}

// ---- Wire / disk ---------------------------------------------------------------

bool ZabNode::SendJson(int dst, JsonObject msg) {
  msg["src"] = Json(static_cast<int64_t>(id_));
  msg["dst"] = Json(static_cast<int64_t>(dst));
  return env_.SendTo(dst, Json(std::move(msg)).Dump());
}

void ZabNode::PersistHardState() {
  JsonObject hard;
  hard["acceptedEpoch"] = Json(accepted_epoch_);
  JsonArray txns;
  for (const Txn& t : history_) {
    JsonObject o;
    o["zxid"] = t.zxid.ToJson();
    o["val"] = Json(t.val);
    txns.push_back(Json(std::move(o)));
  }
  hard["history"] = Json(std::move(txns));
  hard["lastCommitted"] = Json(last_committed_);
  env_.Disk().Put("hard", Json(std::move(hard)));
}

void ZabNode::LoadHardState() {
  if (!env_.Disk().Has("hard")) {
    return;
  }
  const Json& hard = env_.Disk().Get("hard");
  accepted_epoch_ = hard["acceptedEpoch"].as_int();
  last_committed_ = hard["lastCommitted"].as_int();
  history_.clear();
  for (const Json& t : hard["history"].as_array()) {
    history_.push_back(Txn{Zxid::FromJson(t["zxid"]), t["val"].as_int()});
  }
}

void ZabNode::LogStateLine(const char* event) {
  env_.WriteLog(StrFormat(
      "STATE event=%s role=%s round=%lld epoch=%lld committed=%lld histLen=%zu leader=%d",
      event, RoleName(role_), static_cast<long long>(round_),
      static_cast<long long>(accepted_epoch_), static_cast<long long>(last_committed_),
      history_.size(), vote_.leader));
}

// ---- Lifecycle --------------------------------------------------------------------

void ZabNode::OnStart() {
  LoadHardState();
  role_ = Role::kLooking;
  round_ = 0;
  vote_ = VoteInfo{id_, LastZxid()};
  recv_votes_.clear();
  followers_.clear();
  acks_.clear();
  established_ = false;
  election_deadline_ns_ = env_.NowNs() + cfg_.election_timeout_ns;
  LogStateLine("Start");
}

int64_t ZabNode::NextDeadlineNs(const std::string& timer_kind) {
  if (timer_kind == "election") {
    return election_deadline_ns_;
  }
  return -1;
}

bool ZabNode::OnTick() {
  const int64_t now = env_.NowNs();
  if (election_deadline_ns_ >= 0 && now >= election_deadline_ns_) {
    EnterLooking();
    election_deadline_ns_ = env_.NowNs() + cfg_.election_timeout_ns;
    LogStateLine("Timeout");
  }
  return true;
}

bool ZabNode::OnDisconnect(int peer) {
  LogStateLine("Disconnect");
  return true;
}

// ---- Election -----------------------------------------------------------------------

void ZabNode::EnterLooking() {
  role_ = Role::kLooking;
  ++round_;
  vote_ = VoteInfo{id_, LastZxid()};
  recv_votes_.clear();
  followers_.clear();
  acks_.clear();
  established_ = false;
  recv_votes_[id_] = RecvEntry{vote_, round_};
  BroadcastNotification();
}

void ZabNode::SendNotificationTo(int dst) {
  JsonObject m;
  m["mtype"] = Json(std::string(zs::kMsgNotification));
  JsonObject vote;
  vote["leader"] = Json(static_cast<int64_t>(vote_.leader));
  vote["zxid"] = vote_.zxid.ToJson();
  m["vote"] = Json(std::move(vote));
  m["round"] = Json(round_);
  m["state"] = Json(std::string(RoleName(role_)));
  SendJson(dst, std::move(m));
}

void ZabNode::BroadcastNotification() {
  for (int peer = 0; peer < n_; ++peer) {
    if (peer != id_) {
      SendNotificationTo(peer);
    }
  }
}

void ZabNode::BecomeLeading() {
  role_ = Role::kLeading;
  followers_.clear();
  acks_.clear();
  established_ = false;
  ++accepted_epoch_;  // propose the next epoch
  PersistHardState();
  LogStateLine("BecomeLeading");
}

void ZabNode::BecomeFollowing(int leader) {
  role_ = Role::kFollowing;
  vote_ = VoteInfo{leader, LastZxid()};
  followers_.clear();
  acks_.clear();
  established_ = false;
  JsonObject m;
  m["mtype"] = Json(std::string(zs::kMsgFollowerInfo));
  m["acceptedEpoch"] = Json(accepted_epoch_);
  m["lastZxid"] = LastZxid().ToJson();
  SendJson(leader, std::move(m));
  LogStateLine("BecomeFollowing");
}

void ZabNode::CheckElectionQuorum() {
  int support = 0;
  for (const auto& [voter, entry] : recv_votes_) {
    if (entry.round == round_ && entry.vote.leader == vote_.leader) {
      ++support;
    }
  }
  if (support < quorum_) {
    return;
  }
  if (vote_.leader == id_) {
    BecomeLeading();
  } else {
    BecomeFollowing(vote_.leader);
  }
}

bool ZabNode::HandleNotification(int src, const Json& m) {
  VoteInfo n_vote;
  n_vote.leader = static_cast<int>(m["vote"]["leader"].as_int());
  n_vote.zxid = Zxid::FromJson(m["vote"]["zxid"]);
  const int64_t n_round = m["round"].as_int();
  const std::string n_state = m["state"].as_string();

  if (role_ != Role::kLooking) {
    // An out-of-election server answers a LOOKING sender with its current
    // vote (Figure 3, lines 18-21).
    if (n_state == zs::kRoleLooking) {
      SendNotificationTo(src);
    }
    return true;
  }

  if (n_state != zs::kRoleLooking) {
    if (n_state == zs::kRoleLeading && n_vote.leader == src) {
      BecomeFollowing(src);
    }
    return true;
  }

  if (n_round > round_) {
    round_ = n_round;
    recv_votes_.clear();
    const VoteInfo self_vote{id_, LastZxid()};
    vote_ = Better(n_vote, n_round, self_vote, n_round) ? n_vote : self_vote;
    recv_votes_[id_] = RecvEntry{vote_, round_};
    BroadcastNotification();
  } else if (n_round < round_) {
    if (cfg_.profile.bugs.zk1_vote_order && Better(n_vote, n_round, vote_, round_)) {
      // ZooKeeper#1: the round guard is missing, so a stale-round vote with a
      // larger zxid wins and gets adopted.
      vote_ = n_vote;
      recv_votes_[id_] = RecvEntry{vote_, round_};
      BroadcastNotification();
    } else {
      SendNotificationTo(src);
      return true;
    }
  } else if (n_round == round_ && Better(n_vote, n_round, vote_, round_)) {
    vote_ = n_vote;
    recv_votes_[id_] = RecvEntry{vote_, round_};
    BroadcastNotification();
  }

  recv_votes_[src] = RecvEntry{n_vote, n_round};
  CheckElectionQuorum();
  return true;
}

// ---- Discovery + synchronization -----------------------------------------------------

int64_t ZabNode::ZxidPosition(const Zxid& zxid) const {
  for (size_t i = 0; i < history_.size(); ++i) {
    if (history_[i].zxid == zxid) {
      return static_cast<int64_t>(i) + 1;
    }
  }
  return 0;
}

bool ZabNode::HandleFollowerInfo(int src, const Json& m) {
  if (role_ != Role::kLeading) {
    return true;
  }
  const int64_t proposed = std::max(accepted_epoch_, m["acceptedEpoch"].as_int() + 1);
  if (proposed > accepted_epoch_) {
    accepted_epoch_ = proposed;
    PersistHardState();
  }
  const Zxid f_zxid = Zxid::FromJson(m["lastZxid"]);
  const int64_t pos = f_zxid == Zxid{} ? 0 : ZxidPosition(f_zxid);
  JsonObject sync;
  sync["mtype"] = Json(std::string(zs::kMsgSync));
  sync["epoch"] = Json(accepted_epoch_);
  JsonArray entries;
  if (f_zxid == Zxid{} || pos > 0) {
    sync["mode"] = Json(std::string("DIFF"));
    for (size_t i = static_cast<size_t>(pos); i < history_.size(); ++i) {
      JsonObject t;
      t["zxid"] = history_[i].zxid.ToJson();
      t["val"] = Json(history_[i].val);
      entries.push_back(Json(std::move(t)));
    }
  } else {
    sync["mode"] = Json(std::string("SNAP"));
    for (const Txn& t : history_) {
      JsonObject o;
      o["zxid"] = t.zxid.ToJson();
      o["val"] = Json(t.val);
      entries.push_back(Json(std::move(o)));
    }
  }
  sync["entries"] = Json(std::move(entries));
  sync["lastCommitted"] = Json(last_committed_);
  SendJson(src, std::move(sync));
  return true;
}

bool ZabNode::HandleSync(int src, const Json& m) {
  const int64_t epoch = m["epoch"].as_int();
  if (role_ != Role::kFollowing || vote_.leader != src || epoch <= accepted_epoch_) {
    return true;
  }
  accepted_epoch_ = epoch;
  if (m["mode"].as_string() != "DIFF") {
    history_.clear();
  }
  for (const Json& t : m["entries"].as_array()) {
    const Zxid zxid = Zxid::FromJson(t["zxid"]);
    // DIFF may overlap proposals already received since our FOLLOWERINFO.
    if (LastZxid() < zxid) {
      history_.push_back(Txn{zxid, t["val"].as_int()});
    }
  }
  last_committed_ =
      std::max(last_committed_,
               std::min(m["lastCommitted"].as_int(), static_cast<int64_t>(history_.size())));
  PersistHardState();
  JsonObject ack;
  ack["mtype"] = Json(std::string(zs::kMsgAckLeader));
  ack["epoch"] = Json(epoch);
  SendJson(src, std::move(ack));
  return true;
}

bool ZabNode::HandleAckLeader(int src, const Json& m) {
  if (role_ != Role::kLeading || m["epoch"].as_int() != accepted_epoch_) {
    return true;
  }
  followers_.insert(src);
  const bool was_established = established_;
  if (static_cast<int>(followers_.size()) + 1 >= quorum_ && !was_established) {
    established_ = true;
    for (int f : followers_) {
      JsonObject utd;
      utd["mtype"] = Json(std::string(zs::kMsgUpToDate));
      SendJson(f, std::move(utd));
    }
    LogStateLine("Established");
  } else if (was_established) {
    JsonObject utd;
    utd["mtype"] = Json(std::string(zs::kMsgUpToDate));
    SendJson(src, std::move(utd));
  }
  return true;
}

bool ZabNode::HandleUpToDate(int src, const Json& m) {
  if (role_ != Role::kFollowing || vote_.leader != src) {
    return true;
  }
  established_ = true;
  return true;
}

// ---- Broadcast --------------------------------------------------------------------------

bool ZabNode::OnClientRequest(const Json& request, Json* response) {
  const std::string op = request["op"].is_string() ? request["op"].as_string() : "";
  JsonObject resp;
  if (op == "propose") {
    if (role_ != Role::kLeading || !established_) {
      resp["ok"] = Json(false);
      resp["error"] = Json(std::string("not an established leader"));
    } else {
      const Zxid last = LastZxid();
      Zxid zxid;
      zxid.epoch = accepted_epoch_;
      zxid.counter = last.epoch == accepted_epoch_ ? last.counter + 1 : 1;
      history_.push_back(Txn{zxid, request["val"].as_int()});
      acks_[{zxid.epoch, zxid.counter}] = {};
      PersistHardState();
      for (int f : followers_) {
        JsonObject prop;
        prop["mtype"] = Json(std::string(zs::kMsgProposal));
        prop["zxid"] = zxid.ToJson();
        prop["val"] = request["val"];
        SendJson(f, std::move(prop));
      }
      resp["ok"] = Json(true);
      LogStateLine("ClientRequest");
    }
  } else {
    resp["ok"] = Json(false);
    resp["error"] = Json(std::string("unknown op"));
  }
  *response = Json(std::move(resp));
  return true;
}

bool ZabNode::HandleProposal(int src, const Json& m) {
  if (role_ != Role::kFollowing || vote_.leader != src) {
    return true;
  }
  const Zxid zxid = Zxid::FromJson(m["zxid"]);
  if (!(LastZxid() < zxid)) {
    return true;
  }
  history_.push_back(Txn{zxid, m["val"].as_int()});
  PersistHardState();
  JsonObject ack;
  ack["mtype"] = Json(std::string(zs::kMsgAck));
  ack["zxid"] = zxid.ToJson();
  SendJson(src, std::move(ack));
  return true;
}

bool ZabNode::HandleAck(int src, const Json& m) {
  const Zxid zxid = Zxid::FromJson(m["zxid"]);
  auto it = acks_.find({zxid.epoch, zxid.counter});
  if (role_ != Role::kLeading || it == acks_.end()) {
    return true;
  }
  it->second.insert(src);
  if (static_cast<int>(it->second.size()) + 1 >= quorum_) {
    last_committed_ = std::max(last_committed_, ZxidPosition(zxid));
    acks_.erase(it);
    PersistHardState();
    for (int f : followers_) {
      JsonObject commit;
      commit["mtype"] = Json(std::string(zs::kMsgCommit));
      commit["zxid"] = zxid.ToJson();
      SendJson(f, std::move(commit));
    }
    LogStateLine("Commit");
  }
  return true;
}

bool ZabNode::HandleCommit(int src, const Json& m) {
  const int64_t pos = ZxidPosition(Zxid::FromJson(m["zxid"]));
  if (pos == 0) {
    return true;
  }
  last_committed_ = std::max(last_committed_, pos);
  PersistHardState();
  return true;
}

// ---- Dispatch / observation ----------------------------------------------------------------

bool ZabNode::OnMessage(int src, const std::string& bytes) {
  auto parsed = Json::Parse(bytes);
  if (!parsed.ok()) {
    env_.WriteLog("EXCEPTION decoding message: " + parsed.error());
    return false;
  }
  const Json m = std::move(parsed).value();
  const std::string mtype = m["mtype"].is_string() ? m["mtype"].as_string() : "";
  bool ok;
  if (mtype == zs::kMsgNotification) {
    ok = HandleNotification(src, m);
  } else if (mtype == zs::kMsgFollowerInfo) {
    ok = HandleFollowerInfo(src, m);
  } else if (mtype == zs::kMsgSync) {
    ok = HandleSync(src, m);
  } else if (mtype == zs::kMsgAckLeader) {
    ok = HandleAckLeader(src, m);
  } else if (mtype == zs::kMsgUpToDate) {
    ok = HandleUpToDate(src, m);
  } else if (mtype == zs::kMsgProposal) {
    ok = HandleProposal(src, m);
  } else if (mtype == zs::kMsgAck) {
    ok = HandleAck(src, m);
  } else if (mtype == zs::kMsgCommit) {
    ok = HandleCommit(src, m);
  } else {
    env_.WriteLog(StrFormat("EXCEPTION: unknown message type '%s'", mtype.c_str()));
    return false;
  }
  if (ok) {
    LogStateLine(("Handle" + mtype).c_str());
  }
  return ok;
}

Json ZabNode::QueryState() {
  JsonObject s;
  s["role"] = Json(std::string(RoleName(role_)));
  s["round"] = Json(round_);
  JsonObject vote;
  vote["leader"] = Json(static_cast<int64_t>(vote_.leader));
  vote["zxid"] = vote_.zxid.ToJson();
  s["vote"] = Json(std::move(vote));
  s["acceptedEpoch"] = Json(accepted_epoch_);
  JsonArray txns;
  for (const Txn& t : history_) {
    JsonObject o;
    o["zxid"] = t.zxid.ToJson();
    o["val"] = Json(t.val);
    txns.push_back(Json(std::move(o)));
  }
  s["history"] = Json(std::move(txns));
  s["lastCommitted"] = Json(last_committed_);
  s["established"] = Json(established_);
  return Json(std::move(s));
}

sim::ProcessFactory MakeZabFactory(ZabNodeConfig config) {
  return [config](sim::Env& env) -> std::unique_ptr<sim::Process> {
    return std::make_unique<ZabNode>(env, config);
  };
}

}  // namespace systems
}  // namespace sandtable
