// An event-driven ZooKeeper/Zab implementation running on the deterministic
// engine: fast leader election (the implementation twin of Figure 3's
// FastLeaderElection handler), discovery + synchronization, and broadcast.
// Shares the ZabBugs switches with the specification so conformance checking
// and replay-based confirmation work exactly as for the Raft family.
#ifndef SANDTABLE_SRC_SYSTEMS_ZAB_NODE_H_
#define SANDTABLE_SRC_SYSTEMS_ZAB_NODE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/sim/process.h"
#include "src/zabspec/zab_spec.h"

namespace sandtable {
namespace systems {

struct ZabNodeConfig {
  ZabProfile profile;
  int64_t election_timeout_ns = 200'000'000;  // 200ms
};

class ZabNode : public sim::Process {
 public:
  ZabNode(sim::Env& env, ZabNodeConfig config);

  void OnStart() override;
  [[nodiscard]] bool OnMessage(int src, const std::string& bytes) override;
  [[nodiscard]] bool OnTick() override;
  [[nodiscard]] bool OnClientRequest(const Json& request, Json* response) override;
  [[nodiscard]] bool OnDisconnect(int peer) override;
  Json QueryState() override;
  int64_t NextDeadlineNs(const std::string& timer_kind) override;

 private:
  enum class Role { kLooking, kFollowing, kLeading };
  static const char* RoleName(Role role);

  struct Zxid {
    int64_t epoch = 0;
    int64_t counter = 0;

    bool operator<(const Zxid& other) const {
      return epoch != other.epoch ? epoch < other.epoch : counter < other.counter;
    }
    bool operator==(const Zxid& other) const {
      return epoch == other.epoch && counter == other.counter;
    }
    Json ToJson() const;
    static Zxid FromJson(const Json& j);
  };

  struct Txn {
    Zxid zxid;
    int64_t val = 0;
  };

  struct VoteInfo {
    int leader = 0;
    Zxid zxid;
  };

  Zxid LastZxid() const;
  // The fast-leader-election comparison, including the ZooKeeper#1 switch.
  bool Better(const VoteInfo& new_vote, int64_t new_round, const VoteInfo& cur_vote,
              int64_t cur_round) const;

  void EnterLooking();
  void BroadcastNotification();
  void SendNotificationTo(int dst);
  void BecomeLeading();
  void BecomeFollowing(int leader);
  void CheckElectionQuorum();
  int64_t ZxidPosition(const Zxid& zxid) const;

  bool HandleNotification(int src, const Json& m);
  bool HandleFollowerInfo(int src, const Json& m);
  bool HandleSync(int src, const Json& m);
  bool HandleAckLeader(int src, const Json& m);
  bool HandleUpToDate(int src, const Json& m);
  bool HandleProposal(int src, const Json& m);
  bool HandleAck(int src, const Json& m);
  bool HandleCommit(int src, const Json& m);

  bool SendJson(int dst, JsonObject msg);
  void PersistHardState();
  void LoadHardState();
  void LogStateLine(const char* event);

  sim::Env& env_;
  ZabNodeConfig cfg_;
  int id_;
  int n_;
  int quorum_;

  // Volatile.
  Role role_ = Role::kLooking;
  int64_t round_ = 0;
  VoteInfo vote_;
  struct RecvEntry {
    VoteInfo vote;
    int64_t round = 0;
  };
  std::map<int, RecvEntry> recv_votes_;
  std::set<int> followers_;
  std::map<std::pair<int64_t, int64_t>, std::set<int>> acks_;  // zxid -> ackers
  bool established_ = false;
  int64_t election_deadline_ns_ = -1;

  // Persistent.
  int64_t accepted_epoch_ = 0;
  std::vector<Txn> history_;
  int64_t last_committed_ = 0;
};

sim::ProcessFactory MakeZabFactory(ZabNodeConfig config);

}  // namespace systems
}  // namespace sandtable

#endif  // SANDTABLE_SRC_SYSTEMS_ZAB_NODE_H_
