#include "src/trace/replay.h"

#include "src/util/strings.h"

namespace sandtable {
namespace trace {

namespace {

// Replace every {"$model": cls, "i": k} object with the plain integer k.
Json StripModels(const Json& j) {
  switch (j.type()) {
    case Json::Type::kObject: {
      if (j.contains("$model")) {
        return Json(j["i"].as_int());
      }
      JsonObject out;
      for (const auto& [k, v] : j.as_object()) {
        out[k] = StripModels(v);
      }
      return Json(std::move(out));
    }
    case Json::Type::kArray: {
      JsonArray out;
      for (const Json& v : j.as_array()) {
        out.push_back(StripModels(v));
      }
      return Json(std::move(out));
    }
    default:
      return j;
  }
}

}  // namespace

Json SpecMsgJsonToWire(const Json& spec_msg_json) { return StripModels(spec_msg_json); }

std::string SpecMsgToWireBytes(const Value& spec_msg) {
  return SpecMsgJsonToWire(spec_msg.ToJson()).Dump();
}

Result<Value> WireToSpecMsg(const std::string& wire_bytes, const std::string& node_class) {
  auto parsed = Json::Parse(wire_bytes);
  if (!parsed.ok()) {
    return Result<Value>::Error("wire message is not JSON: " + parsed.error());
  }
  Json j = std::move(parsed).value();
  if (!j.is_object()) {
    return Result<Value>::Error("wire message is not an object");
  }
  // Node identities travel as integers on the wire; lift them back into
  // model values so the result compares equal to spec messages. Identities
  // appear as top-level src/dst fields and, in Zab election notifications, as
  // the proposed leader inside the vote.
  auto lift = [&node_class](Json& obj, const char* field) {
    if (obj.contains(field) && obj[field].is_int()) {
      JsonObject model;
      model["$model"] = Json(node_class);
      model["i"] = Json(obj[field].as_int());
      obj[field] = Json(std::move(model));
    }
  };
  lift(j, "src");
  lift(j, "dst");
  if (j.contains("vote") && j["vote"].is_object()) {
    lift(j["vote"], "leader");
  }
  return Value::FromJson(j);
}

const char* CommandTypeName(CommandType type) {
  switch (type) {
    case CommandType::kDeliver:
      return "deliver";
    case CommandType::kTimeout:
      return "timeout";
    case CommandType::kClientRequest:
      return "client_request";
    case CommandType::kClientRead:
      return "client_read";
    case CommandType::kCrash:
      return "crash";
    case CommandType::kRestart:
      return "restart";
    case CommandType::kPartition:
      return "partition";
    case CommandType::kHeal:
      return "heal";
    case CommandType::kDrop:
      return "drop";
    case CommandType::kDuplicate:
      return "duplicate";
    case CommandType::kCompact:
      return "compact";
  }
  return "?";
}

std::string ReplayCommand::ToString() const {
  switch (type) {
    case CommandType::kDeliver:
    case CommandType::kDrop:
    case CommandType::kDuplicate:
      return StrFormat("%s %d->%d %s", CommandTypeName(type), src, dst, wire.c_str());
    case CommandType::kTimeout:
      return StrFormat("timeout node=%d kind=%s", node, timer_kind.c_str());
    case CommandType::kClientRequest:
    case CommandType::kClientRead:
      return StrFormat("%s node=%d %s", CommandTypeName(type), node, request.Dump().c_str());
    case CommandType::kCrash:
    case CommandType::kRestart:
    case CommandType::kCompact:
      return StrFormat("%s node=%d", CommandTypeName(type), node);
    case CommandType::kPartition: {
      std::string ids;
      for (int s : side) {
        ids += (ids.empty() ? "" : ",") + std::to_string(s);
      }
      return "partition {" + ids + "}";
    }
    case CommandType::kHeal:
      return "heal";
  }
  return "?";
}

Result<ReplayCommand> CommandFromStep(const TraceStep& step) {
  const std::string& action = step.label.action;
  const Json& params = step.label.params;
  ReplayCommand cmd;

  auto node_param = [&](const char* field) {
    return params.contains(field) && params[field].is_int()
               ? static_cast<int>(params[field].as_int())
               : -1;
  };

  if (StartsWith(action, "Handle")) {
    cmd.type = CommandType::kDeliver;
    cmd.src = node_param("src");
    cmd.dst = node_param("dst");
    if (cmd.src < 0 || cmd.dst < 0 || !params.contains("msg")) {
      return Result<ReplayCommand>::Error("delivery step lacks src/dst/msg: " +
                                          step.label.ToString());
    }
    cmd.wire = SpecMsgJsonToWire(params["msg"]).Dump();
    cmd.from_delayed = params.contains("delayed") && params["delayed"].as_bool();
    return cmd;
  }
  if (action == "Timeout") {
    cmd.type = CommandType::kTimeout;
    cmd.node = node_param("node");
    cmd.timer_kind = "election";
    return cmd;
  }
  if (action == "HeartbeatTimeout") {
    cmd.type = CommandType::kTimeout;
    cmd.node = node_param("node");
    cmd.timer_kind = "heartbeat";
    return cmd;
  }
  if (action == "ClientRequest") {
    cmd.type = CommandType::kClientRequest;
    cmd.node = node_param("node");
    JsonObject req;
    req["op"] = Json(std::string("propose"));
    req["val"] = params["val"];
    if (params.contains("key")) {
      req["key"] = params["key"];
    }
    cmd.request = Json(std::move(req));
    return cmd;
  }
  if (action == "ClientRead") {
    cmd.type = CommandType::kClientRead;
    cmd.node = node_param("node");
    JsonObject req;
    req["op"] = Json(std::string("get"));
    req["key"] = params["key"];
    cmd.request = Json(std::move(req));
    JsonObject expected;
    expected["val"] = params["val"];
    cmd.expected_response = Json(std::move(expected));
    return cmd;
  }
  if (action == "NodeCrash") {
    cmd.type = CommandType::kCrash;
    cmd.node = node_param("node");
    return cmd;
  }
  if (action == "NodeRestart") {
    cmd.type = CommandType::kRestart;
    cmd.node = node_param("node");
    return cmd;
  }
  if (action == "PartitionStart") {
    cmd.type = CommandType::kPartition;
    if (!params.contains("side") || !params["side"].is_array()) {
      return Result<ReplayCommand>::Error("partition step lacks side");
    }
    for (const Json& id : params["side"].as_array()) {
      cmd.side.insert(static_cast<int>(id.as_int()));
    }
    return cmd;
  }
  if (action == "PartitionHeal") {
    cmd.type = CommandType::kHeal;
    return cmd;
  }
  if (action == "DropMessage" || action == "DuplicateMessage") {
    cmd.type = action[0] == 'D' && action[1] == 'r' ? CommandType::kDrop
                                                    : CommandType::kDuplicate;
    cmd.src = node_param("src");
    cmd.dst = node_param("dst");
    cmd.wire = SpecMsgJsonToWire(params["msg"]).Dump();
    return cmd;
  }
  if (action == "TakeSnapshot") {
    cmd.type = CommandType::kCompact;
    cmd.node = node_param("node");
    JsonObject req;
    req["op"] = Json(std::string("compact"));
    cmd.request = Json(std::move(req));
    return cmd;
  }
  return Result<ReplayCommand>::Error("no conversion for spec action '" + action +
                                      "' (extend CommandFromStep for system-specific events)");
}

Status ExecuteCommand(engine::Engine& eng, const ReplayCommand& cmd, Json* response) {
  switch (cmd.type) {
    case CommandType::kDeliver:
      return eng.DeliverMessage(cmd.src, cmd.dst, cmd.wire, cmd.from_delayed);
    case CommandType::kTimeout:
      return eng.FireTimeout(cmd.node, cmd.timer_kind);
    case CommandType::kClientRequest:
    case CommandType::kClientRead:
      return eng.ClientRequest(cmd.node, cmd.request, response);
    case CommandType::kCrash:
      return eng.Crash(cmd.node);
    case CommandType::kRestart:
      return eng.Restart(cmd.node);
    case CommandType::kPartition:
      return eng.PartitionStart(cmd.side);
    case CommandType::kHeal:
      return eng.PartitionHeal();
    case CommandType::kDrop:
      return eng.DropMessage(cmd.src, cmd.dst, cmd.wire);
    case CommandType::kDuplicate:
      return eng.DuplicateMessage(cmd.src, cmd.dst, cmd.wire);
    case CommandType::kCompact:
      return eng.ClientRequest(cmd.node, cmd.request, response);
  }
  return Status::Error("unhandled command type");
}

}  // namespace trace
}  // namespace sandtable
