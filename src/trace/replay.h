// Converting specification traces into deterministic-execution commands
// (§4.1: "the trace events and states must be converted into corresponding
// SandTable deterministic execution commands").
//
// Message delivery and failure events convert automatically; client requests
// and timeouts carry the system-specific payloads (operation JSON, timer
// kind) that the integration layer assigned when building the spec.
#ifndef SANDTABLE_SRC_TRACE_REPLAY_H_
#define SANDTABLE_SRC_TRACE_REPLAY_H_

#include <set>
#include <string>

#include "src/engine/engine.h"
#include "src/spec/spec.h"
#include "src/util/json.h"
#include "src/util/result.h"
#include "src/value/value.h"

namespace sandtable {
namespace trace {

// ---- Wire <-> spec message conversion -------------------------------------

// Spec messages carry model-value node identities; on the wire they are plain
// integers. These helpers translate between the two representations; the wire
// encoding (sorted-key JSON) is byte-identical to what the target systems
// serialize, so proxy buffers can be matched against spec messages directly.
Json SpecMsgJsonToWire(const Json& spec_msg_json);
std::string SpecMsgToWireBytes(const Value& spec_msg);
Result<Value> WireToSpecMsg(const std::string& wire_bytes, const std::string& node_class);

// ---- Replay commands ---------------------------------------------------------

enum class CommandType {
  kDeliver,        // network command: release one proxied message
  kTimeout,        // node command: advance the virtual clock, fire a timer
  kClientRequest,  // node command: inject a workload operation
  kClientRead,     // node command: read operation with an expected result
  kCrash,          // node command: SIGQUIT
  kRestart,        // node command: restart with persistent state
  kPartition,      // network command: install a cut
  kHeal,           // network command: remove the cut
  kDrop,           // network command: drop one datagram (UDP)
  kDuplicate,      // network command: duplicate one datagram (UDP)
  kCompact,        // node command: trigger local log compaction
};

const char* CommandTypeName(CommandType type);

struct ReplayCommand {
  CommandType type = CommandType::kDeliver;
  int node = -1;                  // timeout/client/crash/restart/compact
  int src = -1;                   // deliver/drop/duplicate
  int dst = -1;
  std::string wire;               // serialized message to match in the proxy
  bool from_delayed = false;      // deliver: drain the old-connection buffer
  std::set<int> side;             // partition side
  Json request;                   // client operation payload
  std::string timer_kind;         // "election" or "heartbeat"
  Json expected_response;         // e.g. {"val": N} for reads

  std::string ToString() const;
};

// Translate one spec trace step into a replay command. Steps produced by the
// Raft/Zab specs of this repository are understood out of the box; unknown
// actions produce an error (the paper requires users to extend the conversion
// scripts for system-specific events).
Result<ReplayCommand> CommandFromStep(const TraceStep& step);

// Execute a command against the engine. `response` receives the client
// response for request/read commands.
Status ExecuteCommand(engine::Engine& eng, const ReplayCommand& cmd, Json* response);

}  // namespace trace
}  // namespace sandtable

#endif  // SANDTABLE_SRC_TRACE_REPLAY_H_
