#include "src/trace/spec_replay.h"

#include <utility>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace sandtable {
namespace trace {

namespace {

// Collects the successors of one named action; Branch hits are irrelevant here.
class CollectContext : public ActionContext {
 public:
  using ActionContext::Emit;
  void Emit(State next, Json params) override {
    succs_.emplace_back(std::move(next), std::move(params));
  }
  void Branch(std::string_view) override {}

  std::vector<std::pair<State, Json>>& succs() { return succs_; }

 private:
  std::vector<std::pair<State, Json>> succs_;
};

// First violated state invariant, or empty. Local so st_trace does not need
// to depend on the model-checking library for its CheckInvariants helper.
std::string FirstBadInvariant(const Spec& spec, const State& s) {
  for (const Invariant& inv : spec.invariants) {
    if (!inv.check(s)) {
      return inv.name;
    }
  }
  return "";
}

std::string FirstBadTransition(const Spec& spec, const State& prev,
                               const ActionLabel& label, const State& next) {
  for (const TransitionInvariant& inv : spec.transition_invariants) {
    if (!inv.check(prev, label, next)) {
      return inv.name;
    }
  }
  return "";
}

}  // namespace

const char* SpecReplayOutcomeName(SpecReplayOutcome outcome) {
  switch (outcome) {
    case SpecReplayOutcome::kCompleted:
      return "completed";
    case SpecReplayOutcome::kViolation:
      return "violation";
    case SpecReplayOutcome::kStuck:
      return "stuck";
  }
  return "?";
}

SpecReplayResult ReplayLabels(const Spec& spec, const State& init,
                              const std::vector<ActionLabel>& labels,
                              const SpecReplayOptions& options) {
  SpecReplayResult result;
  result.trace.push_back(TraceStep{ActionLabel{}, init});

  if (options.check_invariants) {
    const std::string bad = FirstBadInvariant(spec, init);
    if (!bad.empty()) {
      result.outcome = SpecReplayOutcome::kViolation;
      result.invariant = bad;
      return result;
    }
  }

  State state = init;
  for (const ActionLabel& label : labels) {
    // Expand only the labelled action; every other action is irrelevant to
    // this step, which keeps replay linear in trace length, not state degree.
    const Action* action = nullptr;
    for (const Action& a : spec.actions) {
      if (a.name == label.action) {
        action = &a;
        break;
      }
    }
    if (action == nullptr) {
      result.outcome = SpecReplayOutcome::kStuck;
      result.stuck_reason = StrFormat("unknown action '%s' at step %zu",
                                      label.action.c_str(), result.steps_applied + 1);
      return result;
    }

    CollectContext ctx;
    action->expand(state, ctx);
    State* match = nullptr;
    for (auto& [next, params] : ctx.succs()) {
      if (params == label.params) {
        match = &next;
        break;
      }
    }
    if (match == nullptr) {
      result.outcome = SpecReplayOutcome::kStuck;
      result.stuck_reason =
          StrFormat("no successor of '%s' matches params at step %zu (%zu enabled)",
                    label.action.c_str(), result.steps_applied + 1, ctx.succs().size());
      return result;
    }

    if (options.check_transition_invariants) {
      const std::string bad = FirstBadTransition(spec, state, label, *match);
      if (!bad.empty()) {
        result.outcome = SpecReplayOutcome::kViolation;
        result.invariant = bad;
        result.is_transition_invariant = true;
        ++result.steps_applied;
        result.trace.push_back(TraceStep{label, std::move(*match)});
        return result;
      }
    }

    state = std::move(*match);
    ++result.steps_applied;
    result.trace.push_back(TraceStep{label, state});

    if (options.check_invariants) {
      const std::string bad = FirstBadInvariant(spec, state);
      if (!bad.empty()) {
        result.outcome = SpecReplayOutcome::kViolation;
        result.invariant = bad;
        return result;
      }
    }
  }

  result.outcome = SpecReplayOutcome::kCompleted;
  return result;
}

SpecReplayResult ReplayLabels(const Spec& spec, size_t init_index,
                              const std::vector<ActionLabel>& labels,
                              const SpecReplayOptions& options) {
  CHECK(init_index < spec.init_states.size())
      << "init_index " << init_index << " out of range (" << spec.init_states.size()
      << " initial states)";
  return ReplayLabels(spec, spec.init_states[init_index], labels, options);
}

}  // namespace trace
}  // namespace sandtable
