// Guided specification-level replay: re-execute a sequence of action labels
// through a Spec from an initial state, without any stored intermediate
// states. At every step the labelled action is expanded and the successor
// whose parameters match the label exactly is taken; invariants are
// re-evaluated along the way.
//
// This is the validity oracle behind counterexample minimization
// (src/minimize/) and the golden-trace regression corpus (tests/corpus/):
// a trace is pinned down by its event labels alone, and replaying the labels
// both validates that the sequence is still executable under the current
// specification and recomputes the states it passes through. It is the
// specification-side analogue of trace-validation tools that check recorded
// implementation traces against a TLA+ spec.
#ifndef SANDTABLE_SRC_TRACE_SPEC_REPLAY_H_
#define SANDTABLE_SRC_TRACE_SPEC_REPLAY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/spec/spec.h"

namespace sandtable {
namespace trace {

enum class SpecReplayOutcome {
  kCompleted,  // every label applied, no (checked) invariant fired
  kViolation,  // an invariant fired; `trace` ends at the violating step
  kStuck,      // a label matched no enabled successor (sequence not executable)
};

const char* SpecReplayOutcomeName(SpecReplayOutcome outcome);

struct SpecReplayOptions {
  // Which invariant classes to evaluate during replay. The minimizer narrows
  // these to the class of its target violation so an unrelated property cannot
  // shadow the one being reproduced.
  bool check_invariants = true;
  bool check_transition_invariants = true;
};

struct SpecReplayResult {
  SpecReplayOutcome outcome = SpecReplayOutcome::kStuck;
  // Labels consumed before stopping (== labels.size() on completion).
  size_t steps_applied = 0;
  // Violation identity (kViolation only).
  std::string invariant;
  bool is_transition_invariant = false;
  // Why the replay could not continue (kStuck only).
  std::string stuck_reason;
  // The replayed prefix with freshly computed states; step 0 is the initial
  // state. On kViolation the last step is the violating one.
  std::vector<TraceStep> trace;
};

// Replay `labels` starting from `init` (which must satisfy the checked state
// invariants' vocabulary, i.e. be a state of `spec`). Labels match successors
// by action name plus exact parameter equality; a label with no match stops
// the replay as kStuck. The state constraint is deliberately NOT enforced:
// budget constraints bound exploration, not semantics, so a shrunk trace may
// legally pass through states the checker never expanded.
SpecReplayResult ReplayLabels(const Spec& spec, const State& init,
                              const std::vector<ActionLabel>& labels,
                              const SpecReplayOptions& options = {});

// Convenience overload: start from spec.init_states[init_index].
SpecReplayResult ReplayLabels(const Spec& spec, size_t init_index,
                              const std::vector<ActionLabel>& labels,
                              const SpecReplayOptions& options = {});

}  // namespace trace
}  // namespace sandtable

#endif  // SANDTABLE_SRC_TRACE_SPEC_REPLAY_H_
