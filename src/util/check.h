// Assertion macros for invariants that must hold in all build modes.
//
// CHECK(cond) aborts with a source location and message when `cond` is false.
// Following the no-exceptions policy of this codebase, programmer errors are
// fatal rather than recoverable; recoverable errors use util::Result.
#ifndef SANDTABLE_SRC_UTIL_CHECK_H_
#define SANDTABLE_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sandtable {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream sink that builds the optional message attached to a CHECK.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sandtable

#define SANDTABLE_CHECK_IMPL(cond, expr)                                        \
  if (cond) {                                                                   \
  } else /* NOLINT */                                                           \
    ::sandtable::internal::CheckMessage(__FILE__, __LINE__, expr)

#define CHECK(cond) SANDTABLE_CHECK_IMPL((cond), #cond)
#define CHECK_EQ(a, b) SANDTABLE_CHECK_IMPL((a) == (b), #a " == " #b)
#define CHECK_NE(a, b) SANDTABLE_CHECK_IMPL((a) != (b), #a " != " #b)
#define CHECK_LT(a, b) SANDTABLE_CHECK_IMPL((a) < (b), #a " < " #b)
#define CHECK_LE(a, b) SANDTABLE_CHECK_IMPL((a) <= (b), #a " <= " #b)
#define CHECK_GT(a, b) SANDTABLE_CHECK_IMPL((a) > (b), #a " > " #b)
#define CHECK_GE(a, b) SANDTABLE_CHECK_IMPL((a) >= (b), #a " >= " #b)

#ifdef NDEBUG
#define DCHECK(cond) SANDTABLE_CHECK_IMPL(true, #cond)
#else
#define DCHECK(cond) CHECK(cond)
#endif

#endif  // SANDTABLE_SRC_UTIL_CHECK_H_
